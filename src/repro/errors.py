"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class RoutingError(ReproError):
    """A packet could not be routed (bad destination, broken invariant)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (e.g. suspected deadlock)."""


class WorkloadError(ReproError):
    """A manycore kernel or dataset was mis-specified."""
