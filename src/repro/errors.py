"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class RoutingError(ReproError):
    """A packet could not be routed (bad destination, broken invariant)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (e.g. suspected deadlock)."""


class DeadlockError(SimulationError):
    """The forward-progress watchdog declared the network wedged.

    Carries a :class:`repro.sim.watchdog.DeadlockSnapshot` on
    ``snapshot`` attributing the stall to specific routers (per-router
    buffered packets, blocked head-of-line moves, invariant audit
    results).  Subclasses :class:`SimulationError` so existing handlers
    of the old inline watchdog keep working.
    """

    def __init__(self, message: str, snapshot=None) -> None:
        super().__init__(message)
        self.snapshot = snapshot


class SimulationTimeout(SimulationError):
    """A run exceeded its cycle budget or wall-clock limit.

    Raised by :func:`repro.sim.simulator.run_synthetic` when
    ``max_cycles`` / ``max_wall_seconds`` are set, so hardened
    campaigns can bound wedged design points instead of hanging.
    """


class WorkloadError(ReproError):
    """A manycore kernel or dataset was mis-specified."""
