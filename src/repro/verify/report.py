"""Structured results of static verification and certification runs."""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional


@dataclasses.dataclass
class VerificationReport:
    """Everything the static analysis proved (or refuted) for one config.

    ``ok`` is the pre-flight verdict: a campaign may simulate this
    design point only when it is ``True``.  Failures carry concrete
    witnesses — a cyclic channel chain, a named illegal turn, an
    unreached pair — so a misconfigured network is debuggable from the
    report alone.
    """

    #: Paper-style design-point name (``NetworkConfig.name``).
    config: str
    width: int
    height: int
    #: Routing algorithm class name.
    algorithm: str
    #: Dimension order (``"xy"`` / ``"yx"``).
    dor_order: str

    #: Reachable routing states enumerated: (node, input, dest, subnet/VC).
    states: int = 0
    #: Source/destination pairs proved delivered.
    pairs_checked: int = 0
    #: Distinct (turn) pairs the routing emitted.
    turns_used: int = 0

    # --- deadlock freedom -------------------------------------------------
    #: Whether CDG acyclicity is part of the verdict.  False for FBFC
    #: (deadlock freedom comes from bubble flow control, so ring CDG
    #: cycles are expected) and for fault-aware routing with live faults
    #: (the runtime watchdog is the documented backstop).
    cdg_required: bool = True
    cdg_acyclic: bool = True
    cdg_vertices: int = 0
    cdg_edges: int = 0
    #: A concrete cyclic channel chain (rendered), when one exists.
    cycle: Optional[List[str]] = None

    # --- turn legality ----------------------------------------------------
    #: Turns emitted by the routing but absent from the crossbar matrix.
    illegal_turns: List[str] = dataclasses.field(default_factory=list)

    # --- reachability / termination ---------------------------------------
    #: Pairs that never eject (routing livelock), rendered with the
    #: repeating state.
    unreached: List[str] = dataclasses.field(default_factory=list)
    #: Route computations that raised or ejected at the wrong tile.
    routing_errors: List[str] = dataclasses.field(default_factory=list)
    #: Pairs known-partitioned by faults (reported, not a failure).
    partitioned_pairs: int = 0
    #: Largest proven hop count over all delivered pairs.
    max_hops: int = 0

    # --- minimality -------------------------------------------------------
    #: Whether the minimality audit contributes to the verdict (off for
    #: fault-aware tables, whose BFS paths are shortest by construction).
    minimality_checked: bool = True
    #: True when non-minimal routes are expected (depopulated Ruche).
    non_minimal_expected: bool = False
    non_minimal_pairs: int = 0
    #: Largest excess over the minimal hop count.
    max_detour: int = 0
    #: One example non-minimal pair, rendered.
    non_minimal_example: Optional[str] = None

    #: Non-fatal notes (e.g. why a check was waived).
    warnings: List[str] = dataclasses.field(default_factory=list)

    @property
    def minimality_ok(self) -> bool:
        if not self.minimality_checked or self.non_minimal_expected:
            return True
        return self.non_minimal_pairs == 0

    @property
    def deadlock_free(self) -> bool:
        return self.cdg_acyclic or not self.cdg_required

    @property
    def ok(self) -> bool:
        return (
            self.deadlock_free
            and not self.illegal_turns
            and not self.unreached
            and not self.routing_errors
            and self.minimality_ok
        )

    def problems(self) -> List[str]:
        """Human-readable list of every failed property (empty when ok)."""
        out: List[str] = []
        if self.cdg_required and not self.cdg_acyclic:
            chain = " -> ".join(self.cycle or [])
            out.append(f"channel dependency cycle: {chain}")
        for turn in self.illegal_turns:
            out.append(f"illegal turn: {turn}")
        for pair in self.unreached:
            out.append(f"unreached: {pair}")
        for err in self.routing_errors:
            out.append(f"routing error: {err}")
        if not self.minimality_ok:
            out.append(
                f"unexpected non-minimal routes: {self.non_minimal_pairs} "
                f"pairs (worst detour +{self.max_detour} hops, e.g. "
                f"{self.non_minimal_example})"
            )
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable rendering (the CLI's machine output)."""
        data = dataclasses.asdict(self)
        data["ok"] = self.ok
        data["deadlock_free"] = self.deadlock_free
        data["minimality_ok"] = self.minimality_ok
        data["problems"] = self.problems()
        return data

    def summary(self) -> str:
        """One status line for the CLI's text output."""
        verdict = "ok" if self.ok else "FAIL"
        return (
            f"{self.config:16s} {self.width:>3d}x{self.height:<3d} "
            f"{self.dor_order} {self.algorithm:22s} "
            f"states={self.states:<7d} turns={self.turns_used:<3d} "
            f"cdg={self.cdg_vertices}v/{self.cdg_edges}e "
            f"max_hops={self.max_hops:<3d} {verdict}"
        )


@dataclasses.dataclass
class CertificationReport(VerificationReport):
    """A :class:`VerificationReport` proved from exported route tables.

    Produced by :mod:`repro.verify.certify`, which analyzes the flat
    next-hop tables of :func:`repro.core.routing.tabulate_next_hops`
    (the representation the compiled engine lowers to) instead of
    enumerating 2-D coordinates, and therefore also carries the
    table-specific evidence: the minimality basis actually used, any
    escapes through fault-masked ports, table entries that disagree with
    the reference routing function, and the engine-lowering diagnostics
    of :func:`repro.sim.fastsim.lowering_problems`.
    """

    #: Registered topology name the tables were exported from (a spec's
    #: ``topology`` field; the config's paper name for bare configs).
    topology: str = ""
    #: ``NetworkSpec.content_hash()`` when certified from a spec — the
    #: join key into campaign checkpoints and the future result store.
    spec_hash: Optional[str] = None
    #: How minimal hop counts were derived: ``"monotone-dor"`` (the
    #: closed form the builtin DOR algorithms are held to),
    #: ``"declared-minimal"`` (the routing's own exported
    #: ``minimal_hops`` bound — verdict-contributing, used by the 3-D
    #: pack), ``"graph-bfs"`` (channel-graph distances, informational,
    #: for plugin routings that declare no bound), or ``"bfs-tables"``
    #: (fault-aware tables are shortest-path by construction; audit
    #: skipped).
    minimality_basis: str = "monotone-dor"
    #: Table entries that route into a fault-masked link or dead router.
    masked_escapes: List[str] = dataclasses.field(default_factory=list)
    #: Table entries that disagree with re-invoking the reference
    #: routing function (a nondeterministic or inconsistent routing).
    table_mismatches: List[str] = dataclasses.field(default_factory=list)
    #: Structured engine-lowering diagnostics (``code`` / ``detail``
    #: dicts); empty when the design point compiles.
    lowering: List[Dict[str, str]] = dataclasses.field(default_factory=list)
    #: Whether the compiled engine accepts this design point; ``None``
    #: when lowering was not analyzed (bare config without a spec).
    compiles: Optional[bool] = None
    #: Structured batchability diagnostics
    #: (:func:`repro.sim.fastsim.batching_problems` ``code`` / ``detail``
    #: dicts, lowering codes included); empty when the design point can
    #: join a structure-of-arrays batch on the compiled engine.
    batching: List[Dict[str, str]] = dataclasses.field(default_factory=list)
    #: Whether the batched compiled engine accepts this design point;
    #: ``None`` when batchability was not analyzed (bare config).
    batchable: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return (
            super().ok
            and not self.masked_escapes
            and not self.table_mismatches
        )

    def problems(self) -> List[str]:
        out = super().problems()
        for escape in self.masked_escapes:
            out.append(f"masked-port escape: {escape}")
        for mismatch in self.table_mismatches:
            out.append(f"table/reference mismatch: {mismatch}")
        return out

    def summary(self) -> str:
        return super().summary() + f" basis={self.minimality_basis}"
