"""Static verification of routing correctness, pre-simulation.

The paper's central correctness claim — every routing variant is
deadlock-free and consistent with its crossbar connectivity matrix
(Figures 4–5) — is proved here *statically*, before a single cycle is
simulated.  For any :class:`~repro.core.params.NetworkConfig` the
verifier exhaustively enumerates the deterministic route computation
over every reachable ``(node, input port, destination, subnet/VC)``
state and checks:

* **Deadlock freedom** — the channel dependency graph (VC-extended for
  the torus dateline scheme) is acyclic; a violation is reported as a
  concrete cyclic channel chain.
* **Turn legality** — every turn the routing can emit exists in the
  crossbar connectivity matrix (the fault-tolerant matrix for
  :class:`~repro.core.routing.FaultAwareTableRouting`), so crossbar
  depopulation can never silently drop a needed connection.
* **Reachability and termination** — every source reaches every
  destination within a provable hop bound, with minimality audits that
  flag the expected non-minimal cases (depopulated Ruche) and nothing
  else.

The enumerator is complemented by a topology-agnostic **table
certifier** (:mod:`repro.verify.certify`): it tabulates every routing —
builtin DOR, fault-masked BFS tables, or third-party plugins — into
per-destination next-hop tables and proves route soundness (every entry
chain ejects, no masked-port escapes, tables agree with the reference
routing function), deadlock freedom via graph-walk CDG analysis with no
2-D coordinate assumptions, and engine-lowering safety (structured
diagnostics naming exactly why a spec would fall back to the reference
engine).  :func:`cross_validate_spec` checks both analyses reach the
same verdict on any config the enumerator can handle.

Stdlib-``ast`` lints (:mod:`repro.verify.determinism` and
:mod:`repro.verify.lints`) additionally forbid wall-clock / global-RNG
nondeterminism, unordered-set iteration, undisciplined RNG stream
names, slotless subclasses of slotted simulation classes, and
description-less registry entries in ``repro.core`` and ``repro.sim``.

Run ``python -m repro.verify --help`` for the command-line front end,
or use :func:`repro.verify.preflight.campaign_preflight` to gate long
checkpointed sweeps on a verified network.
"""

from repro.verify.certify import (
    certify_config,
    certify_problems,
    certify_spec,
    cross_validate_spec,
    enumerator_agrees,
)
from repro.verify.determinism import (
    DEFAULT_LINT_PACKAGES,
    LintFinding,
    lint_determinism,
    lint_file,
    lint_source,
)
from repro.verify.engine import verify_config, verify_spec
from repro.verify.lints import lint_conformance, lint_conformance_source
from repro.verify.matrix import (
    certify_matrix,
    paper_matrix,
    paper_spec_matrix,
    verify_matrix,
)
from repro.verify.preflight import campaign_preflight, engine_problems
from repro.verify.report import CertificationReport, VerificationReport
from repro.verify.turns import is_legal_turn, routing_matrix

__all__ = [
    "DEFAULT_LINT_PACKAGES",
    "CertificationReport",
    "LintFinding",
    "VerificationReport",
    "campaign_preflight",
    "certify_config",
    "certify_matrix",
    "certify_problems",
    "certify_spec",
    "cross_validate_spec",
    "engine_problems",
    "enumerator_agrees",
    "is_legal_turn",
    "lint_conformance",
    "lint_conformance_source",
    "lint_determinism",
    "lint_file",
    "lint_source",
    "paper_matrix",
    "paper_spec_matrix",
    "routing_matrix",
    "verify_config",
    "verify_matrix",
    "verify_spec",
]
