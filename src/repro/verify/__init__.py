"""Static verification of routing correctness, pre-simulation.

The paper's central correctness claim — every routing variant is
deadlock-free and consistent with its crossbar connectivity matrix
(Figures 4–5) — is proved here *statically*, before a single cycle is
simulated.  For any :class:`~repro.core.params.NetworkConfig` the
verifier exhaustively enumerates the deterministic route computation
over every reachable ``(node, input port, destination, subnet/VC)``
state and checks:

* **Deadlock freedom** — the channel dependency graph (VC-extended for
  the torus dateline scheme) is acyclic; a violation is reported as a
  concrete cyclic channel chain.
* **Turn legality** — every turn the routing can emit exists in the
  crossbar connectivity matrix (the fault-tolerant matrix for
  :class:`~repro.core.routing.FaultAwareTableRouting`), so crossbar
  depopulation can never silently drop a needed connection.
* **Reachability and termination** — every source reaches every
  destination within a provable hop bound, with minimality audits that
  flag the expected non-minimal cases (depopulated Ruche) and nothing
  else.

A stdlib-``ast`` determinism lint (:mod:`repro.verify.determinism`)
additionally forbids wall-clock / global-RNG nondeterminism and
unordered-set iteration in ``repro.core`` and ``repro.sim``.

Run ``python -m repro.verify --help`` for the command-line front end,
or use :func:`repro.verify.preflight.campaign_preflight` to gate long
checkpointed sweeps on a verified network.
"""

from repro.verify.determinism import (
    DEFAULT_LINT_PACKAGES,
    LintFinding,
    lint_determinism,
    lint_file,
    lint_source,
)
from repro.verify.engine import verify_config, verify_spec
from repro.verify.matrix import paper_matrix, verify_matrix
from repro.verify.preflight import campaign_preflight, engine_problems
from repro.verify.report import VerificationReport
from repro.verify.turns import is_legal_turn, routing_matrix

__all__ = [
    "DEFAULT_LINT_PACKAGES",
    "LintFinding",
    "VerificationReport",
    "campaign_preflight",
    "engine_problems",
    "is_legal_turn",
    "lint_determinism",
    "lint_file",
    "lint_source",
    "paper_matrix",
    "routing_matrix",
    "verify_config",
    "verify_matrix",
    "verify_spec",
]
