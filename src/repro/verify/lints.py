"""AST conformance lints: RNG-stream discipline and registry/slots rules.

Extends the determinism lint (:mod:`repro.verify.determinism`) with
rules that guard contracts the type checker cannot see, over the same
packages (``repro.core`` and ``repro.sim``):

* ``RNG-STREAM-LITERAL`` — the ``stream`` argument of
  :func:`repro.sim.rng.derive_rng` must be a string literal.  Stream
  names are part of the cross-engine equivalence contract (both engines
  must draw the same streams in the same order), so a computed name
  cannot be audited statically.
* ``RNG-STREAM-SHARED`` — a stream literal drawn in two or more modules
  is either the intentional engine-equivalence replication (the
  ``"timing"`` / ``"dest"`` draws mirrored between ``sim.simulator`` and
  ``sim.fastsim``) or exactly the commit-order bug class the
  ``faults:drops`` lowering depends on avoiding.  Every such site must
  carry the ``# rng: shared`` pragma to assert it is the former.
* ``CONF-SLOTS`` — a class whose same-module base declares
  ``__slots__`` must declare ``__slots__`` itself; otherwise every
  instance silently grows a ``__dict__`` and the base's memory
  discipline (routers, packets, compiled-model rows) is defeated.
* ``CONF-REG-DESC`` — every registry registration
  (``register_topology`` and friends, or ``SOME_REGISTRY.add`` /
  ``.register``) must pass a non-empty ``description`` string literal,
  so ``Registry.describe`` and the menu-on-miss error stay useful.

A finding is suppressed with the ``# lint: allow`` pragma on the
offending line.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.verify.determinism import DEFAULT_LINT_PACKAGES, LintFinding

#: In-line suppression pragma for conformance findings.
ALLOW_PRAGMA = "lint: allow"

#: Pragma asserting a cross-module stream duplication is intentional.
RNG_SHARED_PRAGMA = "rng: shared"

#: Registration wrappers whose calls must carry a description literal.
_REGISTER_FUNCS = frozenset({
    "register_allocator",
    "register_engine",
    "register_pattern",
    "register_router",
    "register_routing",
    "register_topology",
})

#: Files exempt from CONF-REG-DESC: the registry itself forwards
#: ``description`` variables through its wrappers.
_REG_EXEMPT_FILES = frozenset({"registry.py"})


@dataclasses.dataclass(frozen=True)
class StreamSite:
    """One ``derive_rng`` call with a literal stream name."""

    stream: str
    path: str
    line: int
    col: int
    #: Whether the site carries the ``# rng: shared`` pragma.
    shared_ok: bool


def _literal_description(node: ast.Call) -> Optional[str]:
    """The call's ``description`` keyword when it is a string literal."""
    for keyword in node.keywords:
        if keyword.arg == "description":
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                return value.value
            return None
    return None


class _ConformanceVisitor(ast.NodeVisitor):
    def __init__(self, path: str, check_registrations: bool) -> None:
        self.path = path
        self.check_registrations = check_registrations
        self.findings: List[LintFinding] = []
        self.stream_sites: List[Tuple[str, int, int]] = []
        #: Module-scope classes declaring ``__slots__`` in their body.
        self._slotted: Set[str] = set()

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    # -- derive_rng stream discipline ----------------------------------
    def _check_derive_rng(self, node: ast.Call) -> None:
        stream: Optional[ast.expr] = None
        if len(node.args) >= 2:
            stream = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "stream":
                stream = keyword.value
        if stream is None:
            return  # too few arguments; a TypeError, not a lint concern
        if isinstance(stream, ast.Constant) and isinstance(
            stream.value, str
        ):
            self.stream_sites.append(
                (stream.value, node.lineno, node.col_offset)
            )
            return
        self._flag(
            node,
            "RNG-STREAM-LITERAL",
            "derive_rng stream name must be a string literal so the "
            "draw order is statically auditable",
        )

    # -- registry description discipline -------------------------------
    def _check_registration(self, node: ast.Call, name: str) -> None:
        description = _literal_description(node)
        if description is None or not description.strip():
            self._flag(
                node,
                "CONF-REG-DESC",
                f"{name}(...) needs a non-empty description string "
                f"literal (it feeds Registry.describe and the "
                f"menu-on-miss error)",
            )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "derive_rng":
                self._check_derive_rng(node)
            elif (
                self.check_registrations and func.id in _REGISTER_FUNCS
            ):
                self._check_registration(node, func.id)
        elif isinstance(func, ast.Attribute):
            if func.attr == "derive_rng":
                self._check_derive_rng(node)
            elif (
                self.check_registrations
                and func.attr in ("add", "register")
                and isinstance(func.value, ast.Name)
                and func.value.id.isupper()
            ):
                # SOME_REGISTRY.add(...) / SOME_REGISTRY.register(...):
                # uppercase receivers are the registry constants.
                self._check_registration(
                    node, f"{func.value.id}.{func.attr}"
                )
        self.generic_visit(node)

    # -- __slots__ conformance -----------------------------------------
    @staticmethod
    def _declares_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "__slots__"
                ):
                    return True
        return False

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        declares = self._declares_slots(node)
        slotted_base = None
        for base in node.bases:
            if isinstance(base, ast.Name) and base.id in self._slotted:
                slotted_base = base.id
                break
        if slotted_base is not None and not declares:
            self._flag(
                node,
                "CONF-SLOTS",
                f"class {node.name} extends slotted {slotted_base} but "
                f"declares no __slots__; instances grow a __dict__ and "
                f"defeat the base's memory discipline",
            )
        if declares or slotted_base is not None:
            # Transitively slotted: subclasses must keep declaring.
            self._slotted.add(node.name)
        self.generic_visit(node)


def _pragma_lines(source: str, pragma: str) -> Set[int]:
    return {
        number
        for number, text in enumerate(source.splitlines(), start=1)
        if pragma in text
    }


def lint_conformance_source(
    source: str, path: str = "<string>"
) -> Tuple[List[LintFinding], List[StreamSite]]:
    """Per-file conformance rules plus the file's stream sites.

    Returns the pragma-filtered findings for the single-file rules and
    the literal ``derive_rng`` stream sites, which the caller feeds into
    the cross-file ``RNG-STREAM-SHARED`` analysis.
    """
    tree = ast.parse(source, filename=path)
    basename = Path(path).name
    visitor = _ConformanceVisitor(
        path, check_registrations=basename not in _REG_EXEMPT_FILES
    )
    visitor.visit(tree)
    allowed = _pragma_lines(source, ALLOW_PRAGMA)
    shared = _pragma_lines(source, RNG_SHARED_PRAGMA)
    findings = [
        finding
        for finding in visitor.findings
        if finding.line not in allowed
    ]
    sites = [
        StreamSite(
            stream=stream,
            path=path,
            line=line,
            col=col,
            shared_ok=line in shared or line in allowed,
        )
        for stream, line, col in visitor.stream_sites
    ]
    return findings, sites


def shared_stream_findings(
    sites: Sequence[StreamSite],
) -> List[LintFinding]:
    """The cross-file ``RNG-STREAM-SHARED`` rule over collected sites."""
    by_stream: Dict[str, List[StreamSite]] = {}
    for site in sites:
        by_stream.setdefault(site.stream, []).append(site)
    findings: List[LintFinding] = []
    for stream in sorted(by_stream):
        group = by_stream[stream]
        if len({site.path for site in group}) < 2:
            continue
        for site in group:
            if site.shared_ok:
                continue
            findings.append(
                LintFinding(
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    rule="RNG-STREAM-SHARED",
                    message=(
                        f'stream "{stream}" is drawn in multiple '
                        f'modules; add "# rng: shared" if the '
                        f"duplication is an intentional "
                        f"engine-equivalence mirror"
                    ),
                )
            )
    return findings


def lint_conformance(
    root: Optional[Path] = None,
    packages: Sequence[str] = DEFAULT_LINT_PACKAGES,
) -> List[LintFinding]:
    """Run every conformance rule over the lint-covered packages.

    ``root`` is the ``repro`` package directory (auto-detected by
    default); ``packages`` are subpackage names relative to it, the
    same default set the determinism lint covers.
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent
    findings: List[LintFinding] = []
    sites: List[StreamSite] = []
    for package in packages:
        for path in sorted((root / package).rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            file_findings, file_sites = lint_conformance_source(
                source, str(path)
            )
            findings.extend(file_findings)
            sites.extend(file_sites)
    findings.extend(shared_stream_findings(sites))
    return findings
