"""Exhaustive static enumeration of a deterministic routing function.

Every routing algorithm in :mod:`repro.core.routing` is a *deterministic*
per-hop function of ``(node, input port, destination)`` plus a small
injection-time class (the parity subnet, the current VC).  That makes the
set of states a packet can ever occupy finite and exactly enumerable: for
each destination, the verifier walks the one-successor state graph from
every injection state, visiting each reachable
``(node, input port, vc, subnet)`` tuple exactly once.

One walk yields every property the pre-flight gate needs:

* every emitted turn, checked against the crossbar connectivity matrix;
* every channel-to-channel dependency, accumulated into the (VC-extended)
  channel dependency graph whose acyclicity proves deadlock freedom;
* a proven hop count per source/destination pair (termination), compared
  against the minimal hop count for the minimality audit;
* any state cycle, i.e. a routing livelock, with the repeating states.

States the simulator can never create (e.g. a Y-input packet that still
needs X movement under X-Y DOR) are unreachable in this walk and hence —
correctly — never constrain the crossbar.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.connectivity import Matrix
from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig, TopologyKind
from repro.core.routing import FaultAwareTableRouting, RoutingAlgorithm
from repro.core.spec import (
    NetworkSpec,
    build_config,
    build_faults,
    build_routing,
    network_components,
    resolve_topology,
)
from repro.core.topology import Topology, make_topology
from repro.errors import RoutingError
from repro.verify.cdg import ChannelV, DepEdge, find_cycle, format_channel
from repro.verify.report import VerificationReport
from repro.verify.turns import format_turn, routing_matrix

#: A routing state: (node, input port, held VC, parity subnet).
State = Tuple[Coord, int, int, int]

_P = int(Direction.P)
#: Sentinel hop count for states that never reach their destination.
_INF = -1


def minimal_hops_fn(config: NetworkConfig) -> Callable[[Coord, Coord], int]:
    """Per-pair minimal channel traversals for this design point.

    Minimal means monotone (never moving away from the destination):
    per axis, ``d // RF`` Ruche hops plus ``d % RF`` local hops where
    Ruche channels exist, the shorter way around for ring axes, and
    ``d`` local hops otherwise.  This is the bound minimal
    dimension-ordered routing achieves; overshooting a Ruche channel
    past the destination is by definition non-minimal even where it
    would save hops.
    """
    rf = config.ruche_factor
    width, height = config.width, config.height
    x_ring = config.kind.is_torus
    y_ring = config.kind is TopologyKind.FOLDED_TORUS
    x_ruche = config.has_horizontal_ruche
    y_ruche = config.has_vertical_ruche

    def axis(delta: int, extent: int, ring: bool, ruche: bool) -> int:
        dist = abs(delta)
        if ring:
            dist = min(dist, extent - dist)
        if ruche and rf > 1:
            return dist // rf + dist % rf
        return dist

    def minimal(src: Coord, dest: Coord) -> int:
        return axis(dest.x - src.x, width, x_ring, x_ruche) + axis(
            dest.y - src.y, height, y_ring, y_ruche
        )

    return minimal


class _Enumerator:
    """One verification run: walks every destination's state graph."""

    def __init__(
        self,
        config: NetworkConfig,
        routing: RoutingAlgorithm,
        matrix: Matrix,
        report: VerificationReport,
        max_findings: int,
        topology: Optional[Topology] = None,
    ) -> None:
        self.config = config
        self.routing = routing
        self.matrix = matrix
        self.report = report
        self.max_findings = max_findings
        self.uses_vcs = config.uses_vcs
        self.topology = (
            topology if topology is not None else make_topology(config)
        )
        # A routing that declares its own minimal-hop bound (the 3-D
        # DOR pack, plugins) is audited against that declaration; the
        # builtin 2-D algorithms are held to the monotone closed form.
        declared = getattr(routing, "minimal_hops", None)
        self.minimal_hops: Callable[[Coord, Coord], int] = (
            declared if callable(declared) else minimal_hops_fn(config)
        )
        # Reverse channel lookup: (arrival tile, input port) -> channel.
        self.rev: Dict[Tuple[Coord, int], Tuple[Coord, Direction]] = {}
        for src, direction, dst in self.topology.channels:
            key = (dst, int(direction.opposite))
            if key in self.rev:  # pragma: no cover - topology invariant
                raise RoutingError(
                    f"ambiguous input: two channels arrive at {dst} on "
                    f"{direction.opposite.name}"
                )
            self.rev[key] = (src, direction)
        self.nodes: List[Coord] = list(self.topology.nodes)
        if isinstance(routing, FaultAwareTableRouting):
            self.nodes = [
                n for n in self.nodes if n not in routing.dead_nodes
            ]
        #: Turns emitted: (in_dir, out_dir) -> example (node, dest).
        self.turns: Dict[Tuple[int, int], Tuple[Coord, Coord]] = {}
        self.dep_edges: Set[DepEdge] = set()
        # Memo of the destination currently being walked (hop counts per
        # state; _INF marks livelocked/errored states).
        self._hops: Dict[State, int] = {}

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        report = self.report
        fault_aware = isinstance(self.routing, FaultAwareTableRouting)
        for dest in self.nodes:
            self._hops = {}
            for src in self.nodes:
                if fault_aware and not self.routing.reachable(src, dest):
                    report.partitioned_pairs += 1
                    continue
                subnet = self.routing.injection_subnet(src, dest)
                count = self._follow(dest, (src, _P, 0, subnet))
                if count == _INF:
                    self._note(
                        report.unreached,
                        f"{tuple(src)} -> {tuple(dest)} never ejects",
                    )
                    continue
                report.pairs_checked += 1
                if count > report.max_hops:
                    report.max_hops = count
                if report.minimality_checked:
                    excess = count - self.minimal_hops(src, dest)
                    if excess > 0:
                        report.non_minimal_pairs += 1
                        if excess > report.max_detour:
                            report.max_detour = excess
                            report.non_minimal_example = (
                                f"{tuple(src)} -> {tuple(dest)}: {count} "
                                f"hops, minimal {count - excess}"
                            )
            report.states += len(self._hops)
        report.turns_used = len(self.turns)

    # ------------------------------------------------------------------
    # State-graph walk
    # ------------------------------------------------------------------
    def _follow(self, dest: Coord, start: State) -> int:
        """Proven hop count from ``start`` to ejection (``_INF`` = never).

        Follows the deterministic successor chain, memoizing into the
        per-destination table; a state recurring within the current
        chain is a routing livelock and poisons the whole chain.
        """
        hops = self._hops
        chain: List[State] = []
        position: Dict[State, int] = {}
        state = start
        while True:
            cached = hops.get(state)
            if cached is not None:
                break
            if state in position:
                self._record_livelock(dest, chain[position[state]:])
                for pending in chain:
                    hops[pending] = _INF
                return _INF
            position[state] = len(chain)
            chain.append(state)
            nxt = self._transition(dest, state)
            if nxt is not None:
                state = nxt
                continue
            # Terminal: _transition stored 0 (clean ejection) or _INF
            # (routing error) for this state.
            cached = hops[state]
            chain.pop()
            break
        if cached == _INF:
            for pending in chain:
                hops[pending] = _INF
            return _INF
        value = cached
        for pending in reversed(chain):
            value += 1
            hops[pending] = value
        return value if chain else cached

    def _transition(self, dest: Coord, state: State) -> Optional[State]:
        """One route computation; records turns, CDG edges, and errors.

        Returns the successor state, or ``None`` for terminal states
        after storing their hop value (0 on clean ejection, ``_INF`` on
        any routing error) into the per-destination memo.
        """
        node, in_idx, in_vc, subnet = state
        report = self.report
        try:
            if self.uses_vcs:
                out, out_vc = self.routing.route_vc(
                    node, Direction(in_idx), in_vc, dest
                )
            else:
                out = self.routing.route(
                    node, Direction(in_idx), dest, subnet
                )
                out_vc = 0
        except RoutingError as exc:
            self._note(
                report.routing_errors,
                f"route({tuple(node)}, {Direction(in_idx).name}, "
                f"dest={tuple(dest)}) raised: {exc}",
            )
            self._hops[state] = _INF
            return None
        out_idx = int(out)
        turn = (in_idx, out_idx)
        if turn not in self.turns:
            self.turns[turn] = (node, dest)
            if out not in self.matrix.get(Direction(in_idx), frozenset()):
                self._note(
                    report.illegal_turns,
                    format_turn(node, Direction(in_idx), out)
                    + f" (dest {tuple(dest)})",
                )
        if out_idx == _P:
            if node == dest:
                self._hops[state] = 0
            else:
                self._note(
                    report.routing_errors,
                    f"ejected at {tuple(node)} but destination is "
                    f"{tuple(dest)}",
                )
                self._hops[state] = _INF
            return None
        if not 0 <= out_vc < max(1, self.config.num_vcs):
            self._note(
                report.routing_errors,
                f"route_vc at {tuple(node)} emitted invalid VC {out_vc}",
            )
            self._hops[state] = _INF
            return None
        nxt = self.topology.channel_map.get((node, out))
        if nxt is None:
            self._note(
                report.routing_errors,
                f"{tuple(node)} routed {out.name} but no such channel "
                f"is wired (dest {tuple(dest)})",
            )
            self._hops[state] = _INF
            return None
        if in_idx != _P:
            src_node, src_dir = self.rev[(node, in_idx)]
            held: ChannelV = (src_node, src_dir, in_vc)
            requested: ChannelV = (node, out, out_vc)
            self.dep_edges.add((held, requested))
        return (nxt, int(out.opposite), out_vc, subnet)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record_livelock(self, dest: Coord, cycle: List[State]) -> None:
        rendered = " -> ".join(
            f"({s[0].x},{s[0].y})@{Direction(s[1]).name}" for s in cycle[:8]
        )
        self._note(
            self.report.unreached,
            f"dest {tuple(dest)}: state cycle {rendered}"
            + (" ..." if len(cycle) > 8 else ""),
        )

    def _note(self, bucket: List[str], message: str) -> None:
        if len(bucket) < self.max_findings:
            bucket.append(message)
        elif len(bucket) == self.max_findings:
            bucket.append("... further findings suppressed")


def verify_config(
    config: NetworkConfig,
    routing: Optional[RoutingAlgorithm] = None,
    *,
    matrix: Optional[Matrix] = None,
    topology: Optional[Topology] = None,
    max_findings: int = 8,
) -> VerificationReport:
    """Statically verify one design point; see :mod:`repro.verify`.

    Parameters
    ----------
    config:
        The design point to verify.
    routing:
        Routing algorithm instance; defaults to the config's registered
        algorithm (:func:`~repro.core.spec.build_routing`).  Pass a
        :class:`~repro.core.routing.FaultAwareTableRouting` to verify
        degraded tables (checked against the fault-tolerant crossbar).
    matrix:
        Override the connectivity matrix the turns are checked against
        (used by tests to prove that a mutilated crossbar is rejected).
    topology:
        Override the channel set the walk runs on (plugin topologies;
        see :func:`verify_spec`).
    max_findings:
        Cap on recorded findings per category; counting continues for
        the numeric fields.
    """
    if routing is None:
        routing = build_routing(config)
    if matrix is None:
        matrix = routing_matrix(config, routing)
    report = VerificationReport(
        config=config.name,
        width=config.width,
        height=config.height,
        algorithm=type(routing).__name__,
        dor_order=config.dor_order.value,
    )
    if config.fbfc:
        report.cdg_required = False
        report.warnings.append(
            "FBFC: deadlock freedom comes from bubble flow control; ring "
            "CDG cycles are expected and not checked"
        )
    if isinstance(routing, FaultAwareTableRouting):
        report.minimality_checked = False
        if routing.dead_links or routing.dead_nodes:
            report.cdg_required = False
            report.warnings.append(
                "fault-aware routing with live faults is not provably "
                "deadlock-free; the runtime watchdog is the backstop"
            )
    if config.edge_memory:
        report.warnings.append(
            "edge-memory endpoints are exercised by runtime audits, not "
            "this static walk"
        )
    report.non_minimal_expected = (
        config.kind in (TopologyKind.FULL_RUCHE, TopologyKind.HALF_RUCHE)
        and config.depopulated
    )

    enumerator = _Enumerator(
        config, routing, matrix, report, max_findings, topology=topology
    )
    enumerator.run()

    cycle = find_cycle(enumerator.dep_edges)
    vertices: Set[ChannelV] = set()
    for held, requested in enumerator.dep_edges:
        vertices.add(held)
        vertices.add(requested)
    report.cdg_vertices = len(vertices)
    report.cdg_edges = len(enumerator.dep_edges)
    if cycle is not None:
        report.cdg_acyclic = False
        report.cycle = [format_channel(channel) for channel in cycle]
    return report


def verify_spec(
    spec: NetworkSpec,
    *,
    max_findings: int = 8,
    include_faults: bool = False,
) -> VerificationReport:
    """Statically verify the design point a spec describes.

    Resolves the spec's topology provider through the registry, so
    plugin topologies are verified with their own channels, routing, and
    crossbar matrix — the same components
    :func:`~repro.core.spec.build_network` simulates with.

    ``include_faults`` additionally materializes the spec's seeded
    :class:`~repro.sim.faults.FaultSchedule` and verifies the resulting
    fault-aware detour tables (the healthy routing is verified
    otherwise); the certifier's cross-validation pass uses this so the
    enumerator and the table certifier judge the same masked tables.
    """
    provider = resolve_topology(spec.topology)
    config = build_config(spec)
    faults = build_faults(spec, config) if include_faults else None
    components = network_components(
        config,
        faults=faults,
        provider=provider,
        routing_name=spec.routing,
    )
    matrix: Optional[Matrix] = None
    if provider.matrix_factory is not None or (
        faults is not None and faults.affects_routing
    ):
        matrix = components.matrix
    return verify_config(
        config,
        components.routing,
        matrix=matrix,
        topology=components.topology,
        max_findings=max_findings,
    )
