"""Channel dependency graph construction and acyclicity proof.

Deadlock freedom of a deterministic wormhole/VC network follows from
Dally & Seitz: if the *channel dependency graph* — one vertex per
(virtual) channel, one edge ``c1 -> c2`` whenever a packet holding
``c1`` can request ``c2`` next — is acyclic, no cyclic wait can form.

Vertices are ``(source tile, output direction, vc)`` triples.  Wormhole
networks use ``vc = 0`` throughout; the torus dateline scheme is
verified on the VC-extended graph, where the promotion to VC 1 at the
wrap link is what breaks each ring's cycle.

:func:`find_cycle` returns a concrete cyclic channel chain on failure so
a report can name the offending dependency loop instead of a bare
boolean.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.coords import Coord, Direction

#: One (virtual) channel: (source tile, output direction, virtual channel).
ChannelV = Tuple[Coord, Direction, int]

#: A dependency: the packet holds the first channel and requests the second.
DepEdge = Tuple[ChannelV, ChannelV]


def format_channel(channel: ChannelV) -> str:
    """Render one channel vertex, e.g. ``(3, 0) -E-> vc0``."""
    node, direction, vc = channel
    return f"{tuple(node)} -{direction.name}-> vc{vc}"


def find_cycle(edges: Iterable[DepEdge]) -> Optional[List[ChannelV]]:
    """A concrete dependency cycle, or ``None`` when the graph is acyclic.

    Iterative three-colour depth-first search; the returned list is the
    cyclic channel chain in dependency order (the last element depends
    back on the first).
    """
    adjacency: Dict[ChannelV, List[ChannelV]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
        adjacency.setdefault(dst, [])

    WHITE, GRAY, BLACK = 0, 1, 2
    colour: Dict[ChannelV, int] = {v: WHITE for v in adjacency}
    for root in adjacency:
        if colour[root] is not WHITE:
            continue
        # Stack entries are (vertex, iterator over its successors); the
        # gray path (the stack's vertices) is the candidate cycle prefix.
        path: List[ChannelV] = []
        stack: List[Tuple[ChannelV, Iterable[ChannelV]]] = [
            (root, iter(adjacency[root]))
        ]
        colour[root] = GRAY
        path.append(root)
        while stack:
            vertex, successors = stack[-1]
            advanced = False
            for nxt in successors:
                state = colour[nxt]
                if state is GRAY:
                    # Back edge: the cycle is the gray path from nxt on.
                    start = path.index(nxt)
                    return path[start:]
                if state is WHITE:
                    colour[nxt] = GRAY
                    path.append(nxt)
                    stack.append((nxt, iter(adjacency[nxt])))
                    advanced = True
                    break
            if not advanced:
                colour[vertex] = BLACK
                path.pop()
                stack.pop()
    return None


def graph_stats(edges: Set[DepEdge]) -> Tuple[int, int]:
    """``(vertex count, edge count)`` of the dependency graph."""
    vertices: Set[ChannelV] = set()
    for src, dst in edges:
        vertices.add(src)
        vertices.add(dst)
    return len(vertices), len(edges)
