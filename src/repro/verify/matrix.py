"""The paper's topology / Ruche-Factor verification grid.

:func:`paper_matrix` enumerates every routing variant the paper's
evaluation exercises — mesh X-Y and Y-X DOR, the VC and FBFC torus
flavours, multi-mesh, Ruche-One, and the Full/Half Ruche family in
fully-populated and depopulated forms across Ruche Factors — at the
array sizes the figures use.  :func:`verify_matrix` runs the static
verifier over a grid and returns every report; CI runs this as the
``verify-matrix`` job.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.params import DorOrder, NetworkConfig
from repro.core.routing import RoutingAlgorithm, make_fault_aware_routing
from repro.core.spec import NetworkSpec
from repro.verify.certify import certify_spec
from repro.verify.engine import verify_config
from repro.verify.report import CertificationReport, VerificationReport

#: Array sizes the paper's figures evaluate (Figures 6, 9, 11).
DEFAULT_SIZES: Tuple[Tuple[int, int], ...] = ((8, 8), (16, 8), (64, 8))

#: Ruche Factors swept by the paper (Figures 6–7).
DEFAULT_RUCHE_FACTORS: Tuple[int, ...] = (2, 3, 4)


#: The beyond-2-D pack's representative design points: the small 3-D
#: mesh CI certifies for CDG acyclicity and the paper-scale 8x8x4
#: torus (256 nodes, three FBFC rings per router).
TOPOLOGY_PACK_3D: Tuple[Tuple[str, int, int, int], ...] = (
    ("mesh3d", 4, 4, 4),
    ("torus3d", 8, 8, 4),
)


def paper_matrix(
    sizes: Sequence[Tuple[int, int]] = DEFAULT_SIZES,
    ruche_factors: Sequence[int] = DEFAULT_RUCHE_FACTORS,
    *,
    include_fault_aware: bool = True,
    include_3d: bool = True,
) -> List[Tuple[NetworkConfig, Optional[RoutingAlgorithm]]]:
    """Every (config, routing) pair of the paper's evaluation grid.

    ``routing`` is ``None`` for the deterministic DOR algorithms (the
    verifier builds them via :func:`~repro.core.routing.make_routing`)
    and an explicit healthy :class:`FaultAwareTableRouting` for the
    table-routed entries — included only at the smallest size, where
    table construction stays cheap (``include_fault_aware=False`` drops
    them entirely).  ``include_3d`` appends the 3-D topology pack's
    fixed design points (:data:`TOPOLOGY_PACK_3D`), independent of
    ``sizes``.
    """
    grid: List[Tuple[NetworkConfig, Optional[RoutingAlgorithm]]] = []
    for width, height in sizes:
        base_names = [
            "mesh",
            "torus",
            "half-torus",
            "torus-fbfc",
            "half-torus-fbfc",
            "multimesh",
            "ruche1",
        ]
        for name in base_names:
            grid.append((NetworkConfig.from_name(name, width, height), None))
        grid.append(
            (
                NetworkConfig.from_name(
                    "mesh", width, height, dor_order=DorOrder.YX
                ),
                None,
            )
        )
        for rf in ruche_factors:
            if rf >= max(width, height):
                continue
            for pop in ("depop", "pop"):
                grid.append(
                    (
                        NetworkConfig.from_name(
                            f"ruche{rf}-{pop}", width, height
                        ),
                        None,
                    )
                )
                grid.append(
                    (
                        NetworkConfig.from_name(
                            f"ruche{rf}-{pop}", width, height, half=True
                        ),
                        None,
                    )
                )
            # The response-network router: Half Ruche with Y-X DOR
            # (its crossbar is the special HALF_RUCHE_*_YX matrix).
            grid.append(
                (
                    NetworkConfig.from_name(
                        f"ruche{rf}-depop",
                        width,
                        height,
                        half=True,
                        dor_order=DorOrder.YX,
                    ),
                    None,
                )
            )
    if include_fault_aware:
        width, height = min(sizes, key=lambda wh: wh[0] * wh[1])
        for name in ("mesh", "ruche2-depop"):
            config = NetworkConfig.from_name(name, width, height)
            grid.append((config, make_fault_aware_routing(config)))
    if include_3d:
        for name, width, height, depth in TOPOLOGY_PACK_3D:
            grid.append(
                (
                    NetworkConfig.from_name(
                        name, width, height, depth=depth
                    ),
                    None,
                )
            )
    return grid


def paper_spec_matrix(
    sizes: Sequence[Tuple[int, int]] = DEFAULT_SIZES,
    ruche_factors: Sequence[int] = DEFAULT_RUCHE_FACTORS,
    *,
    include_fault_aware: bool = True,
    include_3d: bool = True,
) -> List[NetworkSpec]:
    """The paper's evaluation grid as :class:`NetworkSpec` entries.

    The certification counterpart of :func:`paper_matrix`: the same
    topology x size x Ruche-Factor sweep, but expressed as specs so
    each entry carries a content hash and an engine-lowering analysis.
    ``include_fault_aware`` adds seeded fault-injection entries at the
    smallest size — unlike :func:`paper_matrix`'s healthy table-routing
    rows, these materialize a live
    :class:`~repro.sim.faults.FaultSchedule`, so the certifier proves
    the actual masked detour tables a degraded campaign would route on.
    """
    specs: List[NetworkSpec] = []
    for width, height in sizes:
        for name in (
            "mesh",
            "torus",
            "half-torus",
            "torus-fbfc",
            "half-torus-fbfc",
            "multimesh",
            "ruche1",
        ):
            specs.append(NetworkSpec.for_network(name, width, height))
        specs.append(
            NetworkSpec.for_network("mesh", width, height, dor_order="yx")
        )
        for rf in ruche_factors:
            if rf >= max(width, height):
                continue
            for pop in ("depop", "pop"):
                specs.append(
                    NetworkSpec.for_network(
                        f"ruche{rf}-{pop}", width, height
                    )
                )
                specs.append(
                    NetworkSpec.for_network(
                        f"ruche{rf}-{pop}", width, height, half=True
                    )
                )
            specs.append(
                NetworkSpec.for_network(
                    f"ruche{rf}-depop",
                    width,
                    height,
                    half=True,
                    dor_order="yx",
                )
            )
    if include_fault_aware:
        width, height = min(sizes, key=lambda wh: wh[0] * wh[1])
        specs.append(
            NetworkSpec.for_network(
                "mesh",
                width,
                height,
                fault_links=4,
                fault_routers=1,
                fault_seed=7,
            )
        )
        specs.append(
            NetworkSpec.for_network(
                "ruche2-depop", width, height, fault_links=3, fault_seed=7
            )
        )
    if include_3d:
        # Certified natively on the port-graph IR: route soundness and
        # CDG acyclicity with the declared-minimal basis (the 3-D DORs
        # export their own minimal_hops bound), no 2-D closed form.
        for name, width, height, depth in TOPOLOGY_PACK_3D:
            specs.append(
                NetworkSpec.for_network(name, width, height, depth=depth)
            )
    return specs


def verify_matrix(
    grid: Optional[
        Iterable[Tuple[NetworkConfig, Optional[RoutingAlgorithm]]]
    ] = None,
) -> List[VerificationReport]:
    """Run :func:`verify_config` over a grid (default: paper matrix)."""
    if grid is None:
        grid = paper_matrix()
    return [
        verify_config(config, routing) for config, routing in grid
    ]


def certify_matrix(
    specs: Optional[Iterable[NetworkSpec]] = None,
) -> List[CertificationReport]:
    """Run :func:`certify_spec` over specs (default: spec matrix)."""
    if specs is None:
        specs = paper_spec_matrix()
    return [certify_spec(spec) for spec in specs]
