"""AST lint: forbid nondeterminism in the simulation core.

Bit-identical reruns from a seed are a documented guarantee
(``docs/methodology.md``, "Randomness and reproducibility").  This lint
statically enforces the coding rules that guarantee rests on, for
``repro.core`` and ``repro.sim`` (all stochastic draws must flow through
:mod:`repro.sim.rng`, which is exempt):

* ``DET-RANDOM`` — calls into the module-level :mod:`random` API (the
  global, unseeded RNG) or unseeded ``random.Random()`` /
  ``random.SystemRandom``;
* ``DET-TIME`` — wall-clock reads (``time.time``, ``time.monotonic``,
  ``perf_counter`` and friends);
* ``DET-DATE`` — ``datetime.now`` / ``utcnow`` / ``today`` style
  constructors;
* ``DET-ENTROPY`` — ``uuid.uuid1``/``uuid4``, ``secrets.*``,
  ``os.urandom`` / ``os.getrandom``;
* ``DET-SET-ITER`` — direct iteration over a set display or a bare
  ``set()`` / ``frozenset()`` call (``for``/comprehensions or
  ``list``/``tuple``/``enumerate``/``iter`` conversion).  Set iteration
  order depends on the per-process hash seed for strings; iterate a
  ``sorted()`` view instead.

A finding is suppressed by putting the pragma ``# det: allow`` on the
offending line — the two wall-clock budget reads in
:mod:`repro.sim.simulator` are the intended users.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

#: Packages under ``repro`` that the determinism contract covers.
DEFAULT_LINT_PACKAGES: Tuple[str, ...] = ("core", "sim")

#: In-line suppression pragma.
ALLOW_PRAGMA = "det: allow"

#: File basenames exempt from DET-RANDOM (the seeded-RNG factory).
_EXEMPT_FILES = frozenset({"rng.py"})

_RANDOM_GLOBALS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
})

_TIME_FUNCS = frozenset({
    "asctime", "clock_gettime", "clock_gettime_ns", "ctime", "gmtime",
    "localtime", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "strftime",
    "time", "time_ns",
})

_DATE_CTORS = frozenset({"now", "today", "utcnow"})

_ORDER_SENSITIVE_CONSUMERS = frozenset({"enumerate", "iter", "list", "tuple"})


@dataclasses.dataclass(frozen=True)
class LintFinding:
    """One determinism violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _is_set_expr(node: ast.AST) -> bool:
    """True for a set display, set comprehension, or set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str, exempt_random: bool) -> None:
        self.path = path
        self.exempt_random = exempt_random
        self.findings: List[LintFinding] = []

    # -- helpers -------------------------------------------------------
    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    def _flag_set_iter(self, node: ast.AST) -> None:
        self._flag(
            node,
            "DET-SET-ITER",
            "iteration over an unordered set; iterate sorted(...) instead",
        )

    # -- call-based rules ----------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module, attr = func.value.id, func.attr
            if module == "random" and not self.exempt_random:
                if attr in _RANDOM_GLOBALS:
                    self._flag(
                        node,
                        "DET-RANDOM",
                        f"random.{attr}() draws from the global unseeded "
                        f"RNG; use repro.sim.rng",
                    )
                elif attr == "SystemRandom" or (
                    attr == "Random" and not node.args and not node.keywords
                ):
                    self._flag(
                        node,
                        "DET-RANDOM",
                        f"unseeded random.{attr}(); use repro.sim.rng",
                    )
            elif module == "time" and attr in _TIME_FUNCS:
                self._flag(
                    node,
                    "DET-TIME",
                    f"time.{attr}() reads the wall clock",
                )
            elif module in ("datetime", "date") and attr in _DATE_CTORS:
                self._flag(
                    node,
                    "DET-DATE",
                    f"{module}.{attr}() depends on the wall clock",
                )
            elif module == "uuid" and attr in ("uuid1", "uuid4"):
                self._flag(
                    node, "DET-ENTROPY", f"uuid.{attr}() is nondeterministic"
                )
            elif module == "os" and attr in ("urandom", "getrandom"):
                self._flag(
                    node, "DET-ENTROPY", f"os.{attr}() reads system entropy"
                )
            elif module == "secrets":
                self._flag(
                    node, "DET-ENTROPY", f"secrets.{attr}() is nondeterministic"
                )
        elif isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Attribute
        ):
            # datetime.datetime.now() / datetime.date.today() style.
            inner = func.value
            if (
                isinstance(inner.value, ast.Name)
                and inner.value.id == "datetime"
                and inner.attr in ("datetime", "date")
                and func.attr in _DATE_CTORS
            ):
                self._flag(
                    node,
                    "DET-DATE",
                    f"datetime.{inner.attr}.{func.attr}() depends on the "
                    f"wall clock",
                )
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDER_SENSITIVE_CONSUMERS
            and node.args
            and _is_set_expr(node.args[0])
        ):
            self._flag_set_iter(node)
        self.generic_visit(node)

    # -- iteration-based rules -----------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._flag_set_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        if _is_set_expr(node.iter):
            self._flag_set_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in getattr(node, "generators", ()):
            if _is_set_expr(generator.iter):
                self._flag_set_iter(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def lint_source(
    source: str, path: str = "<string>", *, exempt_random: bool = False
) -> List[LintFinding]:
    """Lint one module's source text; see module docstring for rules."""
    tree = ast.parse(source, filename=path)
    visitor = _DeterminismVisitor(path, exempt_random)
    visitor.visit(tree)
    lines = source.splitlines()
    kept = []
    for finding in visitor.findings:
        line_text = lines[finding.line - 1] if finding.line <= len(lines) else ""
        if ALLOW_PRAGMA not in line_text:
            kept.append(finding)
    return kept


def lint_file(path: Path) -> List[LintFinding]:
    """Lint one file, honouring the :data:`_EXEMPT_FILES` RNG exemption."""
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source, str(path), exempt_random=path.name in _EXEMPT_FILES
    )


def lint_determinism(
    root: Optional[Path] = None,
    packages: Sequence[str] = DEFAULT_LINT_PACKAGES,
) -> List[LintFinding]:
    """Lint the determinism-critical packages of an installed tree.

    ``root`` is the ``repro`` package directory (auto-detected from this
    module's location by default); ``packages`` are subpackage names
    relative to it.
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent
    findings: List[LintFinding] = []
    for package in packages:
        for path in sorted((root / package).rglob("*.py")):
            findings.extend(lint_file(path))
    return findings


def render_findings(findings: Iterable[LintFinding]) -> str:
    return "\n".join(finding.render() for finding in findings)
