"""Topology-agnostic static certification of exported route tables.

:mod:`repro.verify.engine` proves its properties by enumerating the
deterministic route *function* over 2-D coordinates.  This module proves
the same properties — and three more — from the flat next-hop tables of
:func:`repro.core.routing.tabulate_next_hops`, the representation the
compiled engine (:mod:`repro.sim.fastsim`) lowers to.  The walk consults
only the topology's channel graph and the exported table, never
coordinate arithmetic, so any registered topology — builtin grid,
fault-masked BFS tables, or an out-of-tree plugin — certifies through
the identical code path:

* **Route soundness** — every ``(node, dest)`` entry reaches ``dest`` in
  finitely many hops; dead ends, wrong-tile ejections, livelock cycles,
  and escapes through fault-masked ports are concrete findings, and each
  table entry is re-checked against the reference routing function (a
  nondeterministic routing cannot certify).
* **Deadlock freedom** — the VC-extended channel dependency graph is
  built from table-induced turns and checked for acyclicity by graph
  traversal (:mod:`repro.verify.cdg`), with the same FBFC and live-fault
  waivers the enumerator applies.
* **Minimality** — audited against the monotone closed form for the
  builtin DOR algorithms (so verdicts agree with the enumerator),
  against a routing's own declared ``minimal_hops`` bound when it
  exports one (the 3-D packs do — verdict-contributing),
  informationally against channel-graph BFS distances for plugin
  routings that declare no bound, and skipped for fault-aware tables
  (BFS-shortest by construction).
* **Lowering safety** — :func:`certify_spec` attaches the structured
  compilability diagnostics of
  :func:`repro.sim.fastsim.lowering_problems`, naming exactly why a
  design point would fall back to the reference engine.

``python -m repro.verify --certify`` runs this over the paper matrix
(plus seeded fault-masked entries and any ``--spec`` extras) and
cross-validates every verdict against the exhaustive enumerator.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Union,
    cast,
)

from repro.core.connectivity import Matrix, port_turns
from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig, TopologyKind
from repro.core.portgraph import PortGraph, minimal_distances
from repro.core.routing import (
    FaultAwareTableRouting,
    MeshDOR,
    MultiMeshRouting,
    RoutingAlgorithm,
    RucheDOR,
    RucheOneRouting,
    TableState,
    TorusDOR,
    tabulate_next_hops,
)
from repro.core.spec import (
    NetworkSpec,
    build_config,
    build_faults,
    build_routing,
    network_components,
    resolve_topology,
)
from repro.core.topology import Topology, make_topology
from repro.errors import RoutingError
from repro.verify.cdg import ChannelV, DepEdge, find_cycle, format_channel
from repro.verify.engine import minimal_hops_fn, verify_spec
from repro.verify.report import CertificationReport, VerificationReport
from repro.verify.turns import routing_matrix

#: Sentinel hop count for states that never reach their destination.
_INF = -1

#: Routing classes whose minimal hop count is the monotone closed form
#: of :func:`repro.verify.engine.minimal_hops_fn`.  Matched by exact
#: type — a plugin subclass with different movement rules must not be
#: held to a bound it never promised.
_MONOTONE_ROUTINGS = (
    MeshDOR,
    RucheDOR,
    RucheOneRouting,
    MultiMeshRouting,
    TorusDOR,
)


class _TableCertifier:
    """One certification run: analyzes every destination's table."""

    def __init__(
        self,
        config: NetworkConfig,
        routing: RoutingAlgorithm,
        matrix: Matrix,
        topology: Topology,
        report: CertificationReport,
        max_findings: int,
        minimal_hops: Optional[Callable[[Coord, Coord], int]],
    ) -> None:
        self.config = config
        self.routing = routing
        #: The port-graph IR the walk runs on: the certifier never
        #: consults coordinates, only node ids, port ids, and channels.
        self.graph: PortGraph = topology.port_graph()
        #: Crossbar legality as integer port-id turn sets.
        self.allowed = port_turns(matrix)
        self.report = report
        self.max_findings = max_findings
        # Same discipline selection as tabulate_next_hops: the config
        # (router choice) wins over the routing-class flag, so FBFC
        # tables are rechecked against single-VC route(), not the
        # dateline route_vc the FbfcRouter never calls.
        self.uses_vcs = config.uses_vcs
        # Reverse channel lookup: (arrival node, input port) -> feeder.
        self.rev: Dict[Tuple[Coord, int], Tuple[Coord, Direction]] = {}
        for channel in self.graph.channels:
            key = (cast(Coord, channel.dst), channel.in_port)
            if key in self.rev:  # pragma: no cover - emitter invariant
                raise RoutingError(
                    "ambiguous input: two channels arrive at "
                    f"{self.graph.render_node(channel.dst)} on "
                    f"{self.graph.port_name(channel.in_port)}"
                )
            self.rev[key] = (
                cast(Coord, channel.src),
                Direction(channel.out_port),
            )
        self.nodes: List[Coord] = list(
            cast("Tuple[Coord, ...]", self.graph.nodes)
        )
        self.fault_aware = isinstance(routing, FaultAwareTableRouting)
        if isinstance(routing, FaultAwareTableRouting):
            self.nodes = [
                n for n in self.nodes if n not in routing.dead_nodes
            ]
        #: Per-pair minimal bound for verdict-contributing bases;
        #: ``None`` selects the informational channel-graph distances.
        self.minimal_hops = minimal_hops
        #: Turns emitted: (in_idx, out_idx) -> example (node, dest).
        self.turns: Dict[Tuple[int, int], Tuple[Coord, Coord]] = {}
        self.dep_edges: Set[DepEdge] = set()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        report = self.report
        routing = self.routing
        graph = self.graph
        graph_basis = report.minimality_basis == "graph-bfs"
        minimal_fn = self.minimal_hops
        for dest in self.nodes:
            sources = self.nodes
            if self.fault_aware:
                assert isinstance(routing, FaultAwareTableRouting)
                live = []
                for src in self.nodes:
                    if routing.reachable(src, dest):
                        live.append(src)
                    else:
                        report.partitioned_pairs += 1
                sources = live
            table = tabulate_next_hops(
                routing,
                graph,
                dest,
                sources=sources,
                on_error=lambda s, e, d=dest: self._table_error(d, s, e),
            )
            report.states += len(table)
            # Per-entry static checks seed `hops` with terminal values.
            hops: Dict[TableState, int] = {}
            self._scan_entries(dest, table, hops)
            dist = minimal_distances(graph, dest) if graph_basis else None
            for src in sources:
                start: TableState = (
                    src,
                    graph.ejection_port,
                    0,
                    routing.injection_subnet(src, dest),
                )
                count = self._follow(dest, start, table, hops)
                if count == _INF:
                    self._note(
                        report.unreached,
                        f"{graph.render_node(src)} -> "
                        f"{graph.render_node(dest)} never ejects",
                    )
                    continue
                report.pairs_checked += 1
                if count > report.max_hops:
                    report.max_hops = count
                minimal: Optional[int] = None
                if dist is not None:
                    minimal = dist.get(src, count)
                elif minimal_fn is not None:
                    minimal = minimal_fn(src, dest)
                if minimal is not None:
                    excess = count - minimal
                    if excess > 0:
                        report.non_minimal_pairs += 1
                        if excess > report.max_detour:
                            report.max_detour = excess
                            report.non_minimal_example = (
                                f"{graph.render_node(src)} -> "
                                f"{graph.render_node(dest)}: {count} "
                                f"hops, minimal {count - excess}"
                            )
        report.turns_used = len(self.turns)

    def _table_error(
        self, dest: Coord, state: TableState, exc: RoutingError
    ) -> None:
        """Record a route computation that failed during table export."""
        node, in_idx = state[0], state[1]
        self._note(
            self.report.routing_errors,
            f"route({self.graph.render_node(node)}, "
            f"{self.graph.port_name(in_idx)}, "
            f"dest={self.graph.render_node(dest)}) failed: {exc}",
        )

    # ------------------------------------------------------------------
    # Per-entry static checks
    # ------------------------------------------------------------------
    def _scan_entries(
        self,
        dest: Coord,
        table: Dict[TableState, Tuple[int, int]],
        hops: Dict[TableState, int],
    ) -> None:
        """Check every table entry once; seed terminal hop values.

        Records turn legality, CDG dependencies, wrong-tile ejections,
        invalid VCs, masked-port escapes, and table/reference agreement.
        Terminal states (ejections, errors) land in ``hops`` so the
        chain walk of :meth:`_follow` needs nothing beyond the port
        graph.
        """
        report = self.report
        routing = self.routing
        graph = self.graph
        num_vcs = max(1, self.config.num_vcs)
        p_idx = graph.ejection_port
        dead_links = (
            routing.dead_links
            if isinstance(routing, FaultAwareTableRouting)
            else frozenset()
        )
        dead_nodes = (
            routing.dead_nodes
            if isinstance(routing, FaultAwareTableRouting)
            else frozenset()
        )
        for state, (out_idx, out_vc) in table.items():
            node, in_idx, in_vc, subnet = state
            self._recheck(dest, state, out_idx, out_vc)
            turn = (in_idx, out_idx)
            if turn not in self.turns:
                self.turns[turn] = (cast(Coord, node), dest)
                if out_idx not in self.allowed.get(in_idx, frozenset()):
                    self._note(
                        report.illegal_turns,
                        f"{graph.render_node(node)}: "
                        f"{graph.port_name(in_idx)} -> "
                        f"{graph.port_name(out_idx)}"
                        f" (dest {graph.render_node(dest)})",
                    )
            if out_idx == p_idx:
                if node == dest:
                    hops[state] = 0
                else:
                    self._note(
                        report.routing_errors,
                        f"ejected at {graph.render_node(node)} but "
                        f"destination is {graph.render_node(dest)}",
                    )
                    hops[state] = _INF
                continue
            if not 0 <= out_vc < num_vcs:
                self._note(
                    report.routing_errors,
                    f"route_vc at {graph.render_node(node)} emitted "
                    f"invalid VC {out_vc}",
                )
                hops[state] = _INF
                continue
            hop = graph.out_map.get((node, out_idx))
            if hop is None:
                # tabulate_next_hops already reported the unwired
                # output through on_error; the state is a dead end.
                hops[state] = _INF
                continue
            nxt = hop[0]
            link = f"-{graph.port_name(out_idx)}->"
            # Dead-router check first: node faults also mask every
            # touching link, and the more specific finding should win.
            if nxt in dead_nodes:
                self._note(
                    report.masked_escapes,
                    f"{graph.render_node(node)} {link} "
                    f"{graph.render_node(nxt)} enters a dead router "
                    f"(dest {graph.render_node(dest)})",
                )
            elif (node, out_idx) in dead_links:
                self._note(
                    report.masked_escapes,
                    f"{graph.render_node(node)} {link} "
                    f"{graph.render_node(nxt)} crosses a masked link "
                    f"(dest {graph.render_node(dest)})",
                )
            if in_idx != p_idx:
                src_node, src_dir = self.rev[(cast(Coord, node), in_idx)]
                held: ChannelV = (src_node, src_dir, in_vc)
                requested: ChannelV = (
                    cast(Coord, node),
                    Direction(out_idx),
                    out_vc,
                )
                self.dep_edges.add((held, requested))

    def _recheck(
        self, dest: Coord, state: TableState, out_idx: int, out_vc: int
    ) -> None:
        """Re-invoke the reference routing function for one entry.

        The table was exported by calling that function once per state;
        a second call that answers differently (or raises) means the
        routing is nondeterministic or its table accessor diverges from
        its route computation — either way the table proves nothing
        about what the simulator will do, so it is a finding.
        """
        node, in_idx, in_vc, subnet = state
        coord = cast(Coord, node)
        try:
            if self.uses_vcs:
                again_dir, again_vc = self.routing.route_vc(
                    coord, Direction(in_idx), in_vc, dest
                )
            else:
                again_dir = self.routing.route(
                    coord, Direction(in_idx), dest, subnet
                )
                again_vc = 0
            answer: Optional[Tuple[int, int]] = (int(again_dir), again_vc)
        except RoutingError:
            answer = None
        if answer != (out_idx, out_vc):
            got = (
                f"{self.graph.port_name(answer[0])}/vc{answer[1]}"
                if answer is not None
                else "a RoutingError"
            )
            self._note(
                self.report.table_mismatches,
                f"{self.graph.render_node(node)} in="
                f"{self.graph.port_name(in_idx)} dest="
                f"{self.graph.render_node(dest)}: table says "
                f"{self.graph.port_name(out_idx)}/vc{out_vc}, reference "
                f"returned {got}",
            )

    # ------------------------------------------------------------------
    # Table-graph walk (termination proof)
    # ------------------------------------------------------------------
    def _follow(
        self,
        dest: Coord,
        start: TableState,
        table: Dict[TableState, Tuple[int, int]],
        hops: Dict[TableState, int],
    ) -> int:
        """Proven hop count from ``start`` to ejection (``_INF`` = never).

        Follows the table's successor chain, memoizing per destination;
        a state recurring within the current chain is a routing livelock
        and poisons the whole chain.  Terminal states were pre-seeded by
        :meth:`_scan_entries`; a state missing from the table raised
        during export and counts as a dead end.
        """
        chain: List[TableState] = []
        position: Dict[TableState, int] = {}
        state = start
        while True:
            cached = hops.get(state)
            if cached is not None:
                break
            if state in position:
                self._record_livelock(dest, chain[position[state]:])
                for pending in chain:
                    hops[pending] = _INF
                return _INF
            entry = table.get(state)
            if entry is None:
                hops[state] = _INF
                cached = _INF
                break
            position[state] = len(chain)
            chain.append(state)
            out_idx, out_vc = entry
            nxt, in_port, _latency = self.graph.out_map[
                (state[0], out_idx)
            ]
            state = (nxt, in_port, out_vc, state[3])
        if cached == _INF:
            for pending in chain:
                hops[pending] = _INF
            return _INF
        value = cached
        for pending in reversed(chain):
            value += 1
            hops[pending] = value
        return value if chain else cached

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record_livelock(
        self, dest: Coord, cycle: List[TableState]
    ) -> None:
        rendered = " -> ".join(
            f"{self.graph.render_node(s[0])}@{self.graph.port_name(s[1])}"
            for s in cycle[:8]
        )
        self._note(
            self.report.unreached,
            f"dest {self.graph.render_node(dest)}: state cycle "
            f"{rendered}" + (" ..." if len(cycle) > 8 else ""),
        )

    def _note(self, bucket: List[str], message: str) -> None:
        if len(bucket) < self.max_findings:
            bucket.append(message)
        elif len(bucket) == self.max_findings:
            bucket.append("... further findings suppressed")


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def certify_config(
    config: NetworkConfig,
    routing: Optional[RoutingAlgorithm] = None,
    *,
    matrix: Optional[Matrix] = None,
    topology: Optional[Topology] = None,
    max_findings: int = 8,
    topology_name: Optional[str] = None,
) -> CertificationReport:
    """Certify one design point from its exported route tables.

    Mirrors :func:`repro.verify.engine.verify_config`'s parameters and
    waivers (FBFC rings, live-fault tables, depopulated-Ruche detours)
    so the two analyses return comparable verdicts; see
    :class:`~repro.verify.report.CertificationReport` for the extra
    evidence this pass produces.
    """
    if routing is None:
        routing = build_routing(config)
    if matrix is None:
        matrix = routing_matrix(config, routing)
    topo = topology if topology is not None else make_topology(config)
    report = CertificationReport(
        config=config.name,
        width=config.width,
        height=config.height,
        algorithm=type(routing).__name__,
        dor_order=config.dor_order.value,
        topology=topology_name or config.name,
    )
    if config.fbfc:
        report.cdg_required = False
        report.warnings.append(
            "FBFC: deadlock freedom comes from bubble flow control; ring "
            "CDG cycles are expected and not checked"
        )
    declared = getattr(routing, "minimal_hops", None)
    minimal_fn: Optional[Callable[[Coord, Coord], int]] = None
    if isinstance(routing, FaultAwareTableRouting):
        report.minimality_checked = False
        report.minimality_basis = "bfs-tables"
        if routing.dead_links or routing.dead_nodes:
            report.cdg_required = False
            report.warnings.append(
                "fault-aware routing with live faults is not provably "
                "deadlock-free; the runtime watchdog is the backstop"
            )
    elif type(routing) in _MONOTONE_ROUTINGS:
        minimal_fn = minimal_hops_fn(config)
    elif callable(declared):
        # Verdict-contributing: the routing promised this bound itself
        # (the 3-D DOR pack, any plugin exporting ``minimal_hops``).
        report.minimality_basis = "declared-minimal"
        minimal_fn = declared
    else:
        report.minimality_checked = False
        report.minimality_basis = "graph-bfs"
        report.warnings.append(
            "no closed-form minimal-hop bound for "
            f"{type(routing).__name__}; minimality audited against "
            "channel-graph BFS distances (informational, not part of "
            "the verdict)"
        )
    if config.edge_memory:
        report.warnings.append(
            "edge-memory endpoints are exercised by runtime audits, not "
            "this static walk"
        )
    report.non_minimal_expected = (
        config.kind in (TopologyKind.FULL_RUCHE, TopologyKind.HALF_RUCHE)
        and config.depopulated
    )

    certifier = _TableCertifier(
        config, routing, matrix, topo, report, max_findings, minimal_fn
    )
    certifier.run()

    cycle = find_cycle(certifier.dep_edges)
    vertices: Set[ChannelV] = set()
    for held, requested in certifier.dep_edges:
        vertices.add(held)
        vertices.add(requested)
    report.cdg_vertices = len(vertices)
    report.cdg_edges = len(certifier.dep_edges)
    if cycle is not None:
        report.cdg_acyclic = False
        report.cycle = [format_channel(channel) for channel in cycle]
    return report


def certify_spec(
    spec: NetworkSpec, *, max_findings: int = 8
) -> CertificationReport:
    """Certify the design point a spec describes, faults included.

    Resolves the spec's topology provider, materializes its seeded
    :class:`~repro.sim.faults.FaultSchedule` (so fault-masked detour
    tables are certified, not the healthy routing they replaced), and
    attaches the spec's content hash plus the compiled engine's
    lowering diagnostics to the report.
    """
    provider = resolve_topology(spec.topology)
    config = build_config(spec)
    faults = build_faults(spec, config)
    components = network_components(
        config,
        faults=faults,
        provider=provider,
        routing_name=spec.routing,
    )
    matrix: Optional[Matrix] = None
    if provider.matrix_factory is not None or (
        faults is not None and faults.affects_routing
    ):
        matrix = components.matrix
    report = certify_config(
        config,
        components.routing,
        matrix=matrix,
        topology=components.topology,
        max_findings=max_findings,
        topology_name=spec.topology,
    )
    report.spec_hash = spec.content_hash()
    # Lazy: keep `import repro.verify` free of the sim layer.
    from repro.sim.fastsim import batching_problems, lowering_problems

    diagnostics = lowering_problems(spec, faults=faults)
    report.lowering = [
        {"code": d.code, "detail": d.detail} for d in diagnostics
    ]
    report.compiles = not diagnostics
    # Batchability is judged on the compiled engine regardless of the
    # spec's own engine choice: the question the report answers is "may
    # this design point join a structure-of-arrays batch", not "was it
    # asked to".
    batch_diagnostics = batching_problems(
        spec.replace(engine="compiled"), faults=faults
    )
    report.batching = [
        {"code": d.code, "detail": d.detail} for d in batch_diagnostics
    ]
    report.batchable = not batch_diagnostics
    return report


def certify_problems(
    targets: Iterable[Union[NetworkConfig, NetworkSpec]],
) -> List[str]:
    """Certify ``targets``; one message per failed property.

    The certification counterpart of
    :func:`repro.verify.preflight.preflight_problems`, accepting specs
    (certified with their faults and provider components) as well as
    bare configs.
    """
    problems: List[str] = []
    seen: Set[Union[NetworkConfig, NetworkSpec]] = set()
    for target in targets:
        if target in seen:
            continue
        seen.add(target)
        if isinstance(target, NetworkSpec):
            report: CertificationReport = certify_spec(target)
            label = f"{target.topology} {target.width}x{target.height}"
        else:
            report = certify_config(target)
            label = f"{target.name} {target.shape}"
        for problem in report.problems():
            problems.append(f"certify {label}: {problem}")
    return problems


def enumerator_agrees(
    certified: CertificationReport, enumerated: VerificationReport
) -> bool:
    """Do the table certifier and the 2-D enumerator concur?

    Compares the verdict and the load-bearing evidence the two analyses
    derive independently: overall ``ok``, deadlock freedom, raw CDG
    acyclicity, the number of delivered pairs, and the proven hop bound.
    (Minimality bookkeeping is basis-dependent and compared only for
    the verdict-contributing bases, monotone-dor and declared-minimal.)
    """
    agree = (
        certified.ok == enumerated.ok
        and certified.deadlock_free == enumerated.deadlock_free
        and certified.cdg_acyclic == enumerated.cdg_acyclic
        and certified.pairs_checked == enumerated.pairs_checked
        and certified.max_hops == enumerated.max_hops
    )
    if agree and certified.minimality_basis in (
        "monotone-dor",
        "declared-minimal",
    ):
        agree = (
            certified.non_minimal_pairs == enumerated.non_minimal_pairs
            and certified.max_detour == enumerated.max_detour
        )
    return agree


def cross_validate_spec(
    spec: NetworkSpec, *, max_findings: int = 8
) -> Tuple[CertificationReport, bool]:
    """Certify a spec and check the enumerator reaches the same verdict.

    Returns ``(report, agrees)``; the CLI fails the run when any design
    point's two independent analyses disagree.
    """
    certified = certify_spec(spec, max_findings=max_findings)
    enumerated = verify_spec(
        spec, max_findings=max_findings, include_faults=True
    )
    return certified, enumerator_agrees(certified, enumerated)
