"""Command-line front end for the static verifier and certifier.

Examples::

    python -m repro.verify                       # full paper matrix + lint
    python -m repro.verify --config ruche2-depop --size 16x8
    python -m repro.verify --sizes 8x8,16x8 --rf 2,3
    python -m repro.verify --certify             # table certifier matrix
    python -m repro.verify --certify --load my_plugin.py \
        --spec '{"topology": "my-topology", "width": 16, "height": 8}'
    python -m repro.verify --lint-only
    python -m repro.verify --json report.json    # machine-readable output

``--certify`` switches from the exhaustive 2-D enumerator to the
topology-agnostic table certifier (:mod:`repro.verify.certify`), runs it
over the spec-based paper matrix (including seeded fault-masked
entries), cross-validates every verdict against the enumerator, and
reports engine-lowering diagnostics per design point.  JSON output
always carries the spec content hash and a provenance block, so results
are joinable with campaign checkpoints and the result store.

Exit codes: 0 = everything verified, 1 = a property failed (the report
names the cycle / illegal turn / unreached pair / disagreement), 2 =
bad invocation or configuration.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import platform
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import repro
from repro.core.params import DorOrder, NetworkConfig
from repro.core.routing import RoutingAlgorithm
from repro.core.spec import NetworkSpec, spec_for_config
from repro.errors import ConfigError
from repro.verify.determinism import (
    LintFinding,
    lint_determinism,
    render_findings,
)
from repro.verify.engine import verify_config
from repro.verify.lints import lint_conformance
from repro.verify.matrix import (
    DEFAULT_RUCHE_FACTORS,
    DEFAULT_SIZES,
    paper_matrix,
    paper_spec_matrix,
)


def _parse_sizes(text: str) -> List[Tuple[int, int]]:
    sizes = []
    for token in text.split(","):
        width, _, height = token.strip().partition("x")
        try:
            sizes.append((int(width), int(height)))
        except ValueError as exc:
            raise ConfigError(
                f"bad size {token!r}; expected WxH like 16x8"
            ) from exc
    return sizes


def _load_plugin(path: str) -> None:
    """Import a plugin file so its topology registrations run.

    Keyed on the resolved path in ``sys.modules``, so naming the same
    file twice does not attempt a duplicate registration.
    """
    location = Path(path)
    if not location.is_file():
        raise ConfigError(f"--load {path!r}: no such file")
    name = f"_repro_plugin_{location.resolve().stem}"
    if name in sys.modules:
        return
    module_spec = importlib.util.spec_from_file_location(name, location)
    if module_spec is None or module_spec.loader is None:
        raise ConfigError(f"--load {path!r}: not an importable module")
    module = importlib.util.module_from_spec(module_spec)
    sys.modules[name] = module
    module_spec.loader.exec_module(module)


def _parse_spec(text: str) -> NetworkSpec:
    """One ``--spec`` JSON object -> :class:`NetworkSpec`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"--spec is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ConfigError("--spec must be a JSON object")
    try:
        topology = payload.pop("topology")
        width = payload.pop("width")
        height = payload.pop("height")
    except KeyError as exc:
        raise ConfigError(f"--spec is missing {exc.args[0]!r}") from exc
    return NetworkSpec.for_network(topology, width, height, **payload)


def _provenance(mode: str) -> Dict[str, Any]:
    """The joinable identity block of a verification run."""
    from repro.core.registry import ENGINES

    return {
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "mode": mode,
        "engines": list(ENGINES.available()),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Statically prove deadlock freedom (CDG acyclicity), turn "
            "legality, and bounded reachability for Ruche-network routing."
        ),
    )
    parser.add_argument(
        "--config",
        metavar="NAME",
        help="verify one design point by paper-style name "
        "(mesh, torus, ruche3-depop, ...) instead of the full matrix",
    )
    parser.add_argument(
        "--size", metavar="WxH", default="8x8",
        help="array size for --config (default 8x8)",
    )
    parser.add_argument(
        "--dor", choices=("xy", "yx"), default="xy",
        help="dimension order for --config",
    )
    parser.add_argument(
        "--half", action="store_true",
        help="build Half Ruche variants for --config ruche* names",
    )
    parser.add_argument(
        "--sizes", metavar="W1xH1,W2xH2,...",
        default=",".join(f"{w}x{h}" for w, h in DEFAULT_SIZES),
        help="matrix sizes (default: the paper's 8x8,16x8,64x8)",
    )
    parser.add_argument(
        "--rf", metavar="RF1,RF2,...",
        default=",".join(str(rf) for rf in DEFAULT_RUCHE_FACTORS),
        help="Ruche Factors for the matrix (default 2,3,4)",
    )
    parser.add_argument(
        "--no-fault-aware", action="store_true",
        help="skip the fault-aware table-routing entries of the matrix",
    )
    parser.add_argument(
        "--certify", action="store_true",
        help="run the topology-agnostic table certifier (route-table "
        "soundness, CDG acyclicity, lowering diagnostics) instead of "
        "the coordinate enumerator, cross-validated against it",
    )
    parser.add_argument(
        "--no-cross-validate", action="store_true",
        help="with --certify: skip the enumerator agreement check",
    )
    parser.add_argument(
        "--load", metavar="FILE", action="append", default=[],
        help="import a plugin module (e.g. examples/plugin_topology.py) "
        "before building the matrix, so --spec can name its topologies",
    )
    parser.add_argument(
        "--spec", metavar="JSON", action="append", default=[],
        help="certify an extra design point given as a NetworkSpec JSON "
        'object, e.g. \'{"topology": "my-topology", "width": 16, '
        '"height": 8}\'',
    )
    parser.add_argument(
        "--no-matrix", action="store_true",
        help="with --certify: certify only the --spec design points, "
        "skipping the paper matrix (focused smoke checks)",
    )
    parser.add_argument(
        "--skip-lint", action="store_true",
        help="skip the determinism and conformance lints",
    )
    parser.add_argument(
        "--lint-only", action="store_true",
        help="run only the determinism and conformance lints",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="write the machine-readable JSON report to FILE ('-' = stdout)",
    )
    args = parser.parse_args(argv)

    lint_findings: List[LintFinding] = []
    if not args.skip_lint:
        lint_findings = lint_determinism() + lint_conformance()

    report_dicts: List[Dict[str, Any]] = []
    summaries: List[str] = []
    failed = 0
    disagreements = 0
    if not args.lint_only:
        try:
            for path in args.load:
                _load_plugin(path)
            if args.certify:
                failed, disagreements = _run_certify(
                    args, report_dicts, summaries
                )
            else:
                failed = _run_verify(args, report_dicts, summaries)
        except (ConfigError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    mode = (
        "lint" if args.lint_only
        else "certify" if args.certify
        else "verify"
    )
    payload = {
        "ok": not failed and not disagreements and not lint_findings,
        "verified": len(report_dicts),
        "failed": failed,
        "disagreements": disagreements,
        "lint_findings": [f.render() for f in lint_findings],
        "provenance": _provenance(mode),
        "reports": report_dicts,
    }
    if args.json == "-":
        json.dump(payload, sys.stdout, indent=1, sort_keys=True)
        print()
    else:
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
        for line in summaries:
            print(line)
        if lint_findings:
            print("lint findings:")
            print(render_findings(lint_findings))
        verdict = "ok" if payload["ok"] else "FAILED"
        tail = (
            f", {disagreements} enumerator disagreement(s)"
            if args.certify
            else ""
        )
        print(
            f"{mode}: {len(report_dicts)} design point(s), {failed} "
            f"failure(s){tail}, {len(lint_findings)} lint finding(s): "
            f"{verdict}"
        )
        if args.json:
            print(f"wrote {args.json}")
    return 0 if payload["ok"] else 1


def _describe(
    report_dict: Dict[str, Any], summary: str, summaries: List[str]
) -> None:
    summaries.append(summary)
    for problem in report_dict["problems"]:
        summaries.append(f"    {problem}")
    for warning in report_dict["warnings"]:
        summaries.append(f"    note: {warning}")
    for diagnostic in report_dict.get("lowering", []):
        summaries.append(
            f"    falls back to reference engine: "
            f"{diagnostic['code']}: {diagnostic['detail']}"
        )
    lowering_codes = {
        diagnostic["code"]
        for diagnostic in report_dict.get("lowering", [])
    }
    for diagnostic in report_dict.get("batching", []):
        if diagnostic["code"] in lowering_codes:
            continue  # already reported as a lowering fallback above
        summaries.append(
            f"    excluded from batched execution: "
            f"{diagnostic['code']}: {diagnostic['detail']}"
        )


def _run_verify(
    args: argparse.Namespace,
    report_dicts: List[Dict[str, Any]],
    summaries: List[str],
) -> int:
    """Enumerator mode; returns the failure count."""
    grid: List[Tuple[NetworkConfig, Optional[RoutingAlgorithm]]]
    if args.config:
        (width, height), = _parse_sizes(args.size)
        config = NetworkConfig.from_name(
            args.config,
            width,
            height,
            half=args.half,
            dor_order=DorOrder(args.dor),
        )
        grid = [(config, None)]
    else:
        grid = paper_matrix(
            sizes=_parse_sizes(args.sizes),
            ruche_factors=[
                int(rf) for rf in args.rf.split(",") if rf.strip()
            ],
            include_fault_aware=not args.no_fault_aware,
        )
    failed = 0
    for config, routing in grid:
        report = verify_config(config, routing)
        if not report.ok:
            failed += 1
        report_dict = report.to_dict()
        # The join key into spec-driven results (certify, campaigns).
        report_dict["spec_hash"] = spec_for_config(config).content_hash()
        report_dicts.append(report_dict)
        _describe(report_dict, report.summary(), summaries)
    return failed


def _run_certify(
    args: argparse.Namespace,
    report_dicts: List[Dict[str, Any]],
    summaries: List[str],
) -> Tuple[int, int]:
    """Certifier mode; returns (failures, enumerator disagreements)."""
    from repro.verify.certify import certify_spec, cross_validate_spec

    if args.config:
        (width, height), = _parse_sizes(args.size)
        options: Dict[str, Any] = {}
        if args.half:
            options["half"] = True
        if args.dor != "xy":
            options["dor_order"] = args.dor
        specs = [
            NetworkSpec.for_network(args.config, width, height, **options)
        ]
    elif args.no_matrix:
        if not args.spec:
            raise ConfigError("--no-matrix needs at least one --spec")
        specs = []
    else:
        specs = paper_spec_matrix(
            sizes=_parse_sizes(args.sizes),
            ruche_factors=[
                int(rf) for rf in args.rf.split(",") if rf.strip()
            ],
            include_fault_aware=not args.no_fault_aware,
        )
    specs.extend(_parse_spec(text) for text in args.spec)
    failed = 0
    disagreements = 0
    for spec in specs:
        if args.no_cross_validate:
            report = certify_spec(spec)
            agrees: Optional[bool] = None
        else:
            report, agrees = cross_validate_spec(spec)
        if not report.ok:
            failed += 1
        report_dict = report.to_dict()
        report_dict["enumerator_agrees"] = agrees
        report_dicts.append(report_dict)
        _describe(report_dict, report.summary(), summaries)
        if agrees is False:
            disagreements += 1
            summaries.append(
                "    DISAGREEMENT: table certifier and exhaustive "
                "enumerator reached different verdicts"
            )
    return failed, disagreements


if __name__ == "__main__":
    sys.exit(main())
