"""Command-line front end for the static verifier.

Examples::

    python -m repro.verify                       # full paper matrix + lint
    python -m repro.verify --config ruche2-depop --size 16x8
    python -m repro.verify --sizes 8x8,16x8 --rf 2,3
    python -m repro.verify --lint-only
    python -m repro.verify --json report.json    # machine-readable output

Exit codes: 0 = everything verified, 1 = a property failed (the report
names the cycle / illegal turn / unreached pair), 2 = bad invocation or
configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from repro.core.params import DorOrder, NetworkConfig
from repro.errors import ConfigError
from repro.verify.determinism import lint_determinism, render_findings
from repro.verify.engine import verify_config
from repro.verify.matrix import (
    DEFAULT_RUCHE_FACTORS,
    DEFAULT_SIZES,
    paper_matrix,
)


def _parse_sizes(text: str) -> List[Tuple[int, int]]:
    sizes = []
    for token in text.split(","):
        width, _, height = token.strip().partition("x")
        try:
            sizes.append((int(width), int(height)))
        except ValueError as exc:
            raise ConfigError(
                f"bad size {token!r}; expected WxH like 16x8"
            ) from exc
    return sizes


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Statically prove deadlock freedom (CDG acyclicity), turn "
            "legality, and bounded reachability for Ruche-network routing."
        ),
    )
    parser.add_argument(
        "--config",
        metavar="NAME",
        help="verify one design point by paper-style name "
        "(mesh, torus, ruche3-depop, ...) instead of the full matrix",
    )
    parser.add_argument(
        "--size", metavar="WxH", default="8x8",
        help="array size for --config (default 8x8)",
    )
    parser.add_argument(
        "--dor", choices=("xy", "yx"), default="xy",
        help="dimension order for --config",
    )
    parser.add_argument(
        "--half", action="store_true",
        help="build Half Ruche variants for --config ruche* names",
    )
    parser.add_argument(
        "--sizes", metavar="W1xH1,W2xH2,...",
        default=",".join(f"{w}x{h}" for w, h in DEFAULT_SIZES),
        help="matrix sizes (default: the paper's 8x8,16x8,64x8)",
    )
    parser.add_argument(
        "--rf", metavar="RF1,RF2,...",
        default=",".join(str(rf) for rf in DEFAULT_RUCHE_FACTORS),
        help="Ruche Factors for the matrix (default 2,3,4)",
    )
    parser.add_argument(
        "--no-fault-aware", action="store_true",
        help="skip the fault-aware table-routing entries of the matrix",
    )
    parser.add_argument(
        "--skip-lint", action="store_true",
        help="skip the determinism lint",
    )
    parser.add_argument(
        "--lint-only", action="store_true",
        help="run only the determinism lint",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="write the machine-readable JSON report to FILE ('-' = stdout)",
    )
    args = parser.parse_args(argv)

    lint_findings = []
    if not args.skip_lint:
        lint_findings = lint_determinism()

    reports = []
    if not args.lint_only:
        try:
            if args.config:
                (width, height), = _parse_sizes(args.size)
                config = NetworkConfig.from_name(
                    args.config,
                    width,
                    height,
                    half=args.half,
                    dor_order=DorOrder(args.dor),
                )
                reports = [verify_config(config)]
            else:
                grid = paper_matrix(
                    sizes=_parse_sizes(args.sizes),
                    ruche_factors=[
                        int(rf) for rf in args.rf.split(",") if rf.strip()
                    ],
                    include_fault_aware=not args.no_fault_aware,
                )
                reports = [
                    verify_config(config, routing) for config, routing in grid
                ]
        except (ConfigError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    failed = [report for report in reports if not report.ok]
    payload = {
        "ok": not failed and not lint_findings,
        "verified": len(reports),
        "failed": len(failed),
        "lint_findings": [f.render() for f in lint_findings],
        "reports": [report.to_dict() for report in reports],
    }
    if args.json == "-":
        json.dump(payload, sys.stdout, indent=1, sort_keys=True)
        print()
    else:
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
        for report in reports:
            print(report.summary())
            for problem in report.problems():
                print(f"    {problem}")
            for warning in report.warnings:
                print(f"    note: {warning}")
        if lint_findings:
            print("determinism lint findings:")
            print(render_findings(lint_findings))
        verdict = "ok" if payload["ok"] else "FAILED"
        print(
            f"verified {len(reports)} design point(s), {len(failed)} "
            f"failure(s), {len(lint_findings)} lint finding(s): {verdict}"
        )
        if args.json:
            print(f"wrote {args.json}")
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
