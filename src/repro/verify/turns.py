"""The turn-legality predicate shared by static and runtime checks.

A *turn* is an ``(input port, output port)`` pair inside one router.  A
turn is legal exactly when the crossbar connectivity matrix wires that
input to that output — :func:`repro.core.connectivity.connectivity_matrix`
for the healthy dimension-ordered routers, or
:func:`repro.core.connectivity.fault_tolerant_matrix` once fault-aware
table routing takes over and detours need the fully-connected switch.

Both the static verifier (:mod:`repro.verify.engine`) and the runtime
invariant audit (:func:`repro.sim.validate.audit_network`) call
:func:`is_legal_turn` against the matrix picked by
:func:`routing_matrix`, so the two layers cannot disagree about which
moves a crossbar admits.
"""

from __future__ import annotations

from typing import Optional

from repro.core.connectivity import (
    Matrix,
    connectivity_matrix,
    fault_tolerant_matrix,
)
from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig
from repro.core.routing import FaultAwareTableRouting, RoutingAlgorithm


def routing_matrix(
    config: NetworkConfig, routing: Optional[RoutingAlgorithm] = None
) -> Matrix:
    """The connectivity matrix the given routing is checked against.

    Healthy deterministic algorithms must respect the (possibly
    depopulated) crossbar of :func:`connectivity_matrix`; fault-aware
    table routing runs on routers provisioned with the fully-connected
    :func:`fault_tolerant_matrix` (mirroring
    :class:`repro.sim.network.Network`'s construction).
    """
    if isinstance(routing, FaultAwareTableRouting):
        return fault_tolerant_matrix(config)
    return connectivity_matrix(config)


def is_legal_turn(matrix: Matrix, in_dir: Direction, out_dir: Direction) -> bool:
    """True when the crossbar wires input ``in_dir`` to output ``out_dir``."""
    return out_dir in matrix.get(in_dir, frozenset())


def format_turn(node: Coord, in_dir: Direction, out_dir: Direction) -> str:
    """Human-readable rendering of one turn, used in reports."""
    return f"{tuple(node)}: {in_dir.name} -> {out_dir.name}"
