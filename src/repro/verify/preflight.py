"""Campaign pre-flight: verify every design point before simulating.

A hardened sweep (:func:`repro.experiments.campaign.run_campaign`) can
burn hours on a misconfigured network before the runtime watchdog
notices.  :func:`campaign_preflight` packages the static verifier as the
campaign's opt-in ``preflight`` callable: it verifies each distinct
design point once, and a single failing config aborts the whole campaign
with concrete witnesses before the first row is simulated.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.core.params import NetworkConfig
from repro.verify.engine import verify_config


def preflight_problems(configs: Iterable[NetworkConfig]) -> List[str]:
    """Statically verify ``configs``; one message per failed property."""
    problems: List[str] = []
    seen = set()
    for config in configs:
        if config in seen:
            continue
        seen.add(config)
        report = verify_config(config)
        if not report.ok:
            for problem in report.problems():
                problems.append(f"{config.name} {config.shape}: {problem}")
    return problems


def engine_problems(engines: Iterable[Optional[str]]) -> List[str]:
    """Validate engine names against the ``ENGINES`` registry.

    ``None`` entries (rows that default to the reference engine) are
    skipped; each unknown name is reported once with the registry menu,
    so a typo'd ``--engine compield`` dies before the first row instead
    of hours into a checkpointed campaign.
    """
    # ENGINES lazily imports repro.sim.simulator on first lookup, so a
    # preflight-only process still sees the full engine menu.
    from repro.core.registry import ENGINES

    problems: List[str] = []
    for name in dict.fromkeys(engines):
        if name is None or name in ENGINES:
            continue
        known = ", ".join(ENGINES.available())
        problems.append(
            f"unknown simulation engine {name!r}; known engines: {known}"
        )
    return problems


def campaign_preflight(
    configs: Iterable[NetworkConfig],
    engines: Iterable[Optional[str]] = (),
    *,
    certify: bool = False,
) -> Callable[[], List[str]]:
    """A ``preflight`` callable for :func:`run_campaign`.

    The returned thunk runs the static verifier lazily (at campaign
    start, not at construction) and returns the list of problems;
    ``run_campaign`` raises :class:`~repro.errors.ConfigError` when it
    is non-empty.  ``engines`` optionally carries the simulation-engine
    name of each row (``None`` = reference); unknown names are reported
    as problems alongside the verifier's findings.  ``certify``
    additionally runs the table certifier
    (:func:`repro.verify.certify.certify_problems`) over the same
    configs, so masked-port escapes and table/reference mismatches also
    gate the campaign.
    """
    frozen = list(configs)
    frozen_engines = list(engines)

    def preflight() -> List[str]:
        problems = engine_problems(frozen_engines) + preflight_problems(
            frozen
        )
        if certify:
            from repro.verify.certify import certify_problems

            problems += certify_problems(frozen)
        return problems

    return preflight
