"""Campaign pre-flight: verify every design point before simulating.

A hardened sweep (:func:`repro.experiments.campaign.run_campaign`) can
burn hours on a misconfigured network before the runtime watchdog
notices.  :func:`campaign_preflight` packages the static verifier as the
campaign's opt-in ``preflight`` callable: it verifies each distinct
design point once, and a single failing config aborts the whole campaign
with concrete witnesses before the first row is simulated.
"""

from __future__ import annotations

from typing import Callable, Iterable, List

from repro.core.params import NetworkConfig
from repro.verify.engine import verify_config


def preflight_problems(configs: Iterable[NetworkConfig]) -> List[str]:
    """Statically verify ``configs``; one message per failed property."""
    problems: List[str] = []
    seen = set()
    for config in configs:
        if config in seen:
            continue
        seen.add(config)
        report = verify_config(config)
        if not report.ok:
            for problem in report.problems():
                problems.append(f"{config.name} {config.shape}: {problem}")
    return problems


def campaign_preflight(
    configs: Iterable[NetworkConfig],
) -> Callable[[], List[str]]:
    """A ``preflight`` callable for :func:`run_campaign`.

    The returned thunk runs the static verifier lazily (at campaign
    start, not at construction) and returns the list of problems;
    ``run_campaign`` raises :class:`~repro.errors.ConfigError` when it
    is non-empty.
    """
    frozen = list(configs)

    def preflight() -> List[str]:
        return preflight_problems(frozen)

    return preflight
