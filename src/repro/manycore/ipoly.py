"""IPOLY pseudo-random polynomial memory interleaving (Rau, ISCA 1991).

The cellular manycore hashes the address space across its LLC banks with
irreducible-polynomial interleaving, which the paper credits for the
balanced intrinsic load latencies of Figure 12 ("the IPOLY hashing that is
used to hash the address space to interleave among the LLC banks
effectively balances the traffics").

The hash treats the address as a polynomial over GF(2) and reduces it
modulo an irreducible polynomial of degree ``k``; the ``k``-bit remainder
selects one of ``2^k`` banks.  Unlike plain modulo interleaving, strided
access sequences (with any stride that is not a multiple of the bank
count's characteristic polynomial) spread uniformly.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError

#: Irreducible polynomials over GF(2), degree -> full polynomial bits
#: (including the leading x^k term).  Standard primitive trinomials /
#: pentanomials.
IRREDUCIBLE_POLYS: Dict[int, int] = {
    1: 0b11,          # x + 1
    2: 0b111,         # x^2 + x + 1
    3: 0b1011,        # x^3 + x + 1
    4: 0b10011,       # x^4 + x + 1
    5: 0b100101,      # x^5 + x^2 + 1
    6: 0b1000011,     # x^6 + x + 1
    7: 0b10000011,    # x^7 + x + 1
    8: 0b100011011,   # x^8 + x^4 + x^3 + x + 1
}


def ipoly_hash(addr: int, num_banks: int) -> int:
    """Bank index for ``addr`` under IPOLY interleaving.

    ``num_banks`` must be a power of two with a supported polynomial
    degree.  Equivalent to ``addr(x) mod p(x)`` over GF(2).
    """
    if addr < 0:
        raise ConfigError("addresses must be non-negative")
    k = num_banks.bit_length() - 1
    if num_banks != 1 << k:
        raise ConfigError(f"num_banks must be a power of two, got {num_banks}")
    if num_banks == 1:
        return 0
    try:
        poly = IRREDUCIBLE_POLYS[k]
    except KeyError as exc:
        raise ConfigError(
            f"no irreducible polynomial for degree {k}"
        ) from exc
    rem = 0
    for bit_pos in range(addr.bit_length() - 1, -1, -1):
        rem = (rem << 1) | ((addr >> bit_pos) & 1)
        if rem >> k:
            rem ^= poly
    return rem


def modulo_hash(addr: int, num_banks: int) -> int:
    """Plain low-order-bit interleaving (the ablation baseline)."""
    if addr < 0:
        raise ConfigError("addresses must be non-negative")
    return addr % num_banks
