"""System energy accounting (paper Figure 13, Section 4.9).

Splits total energy into the paper's four categories:

* **core** — dynamic energy of executed instructions (per-instruction
  energy from the HammerBlade measurements the paper cites);
* **stall** — leakage and ungated clock energy of idle cores and routers
  while a core waits (remote loads, barriers, network backpressure);
* **router** — dynamic NoC energy: every channel traversal costs the
  direction's per-packet router energy from the Table 3 model;
* **wire** — dynamic energy of the long-range (Ruche / folded-torus)
  wires, from the first-order repeater model.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.core.coords import Direction
from repro.core.params import NetworkConfig
from repro.manycore.config import MachineConfig
from repro.manycore.machine import MachineStats
from repro.phys.energy import router_energy_per_packet
from repro.phys.technology import TECH_12NM, Technology
from repro.phys.wires import wire_energy_per_packet

#: Dynamic energy per executed instruction (pJ); the dense RISC-V cores
#: of the manycore the paper instruments.
ENERGY_PER_INSTRUCTION_PJ = 5.0
#: Leakage + ungated clock energy per stalled core-cycle (pJ); "stall
#: energy per cycle is relatively small compared to energy per
#: instruction" (Section 4.9).
ENERGY_PER_STALL_CYCLE_PJ = 1.0


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Figure 13 bar for one run, in µJ."""

    core: float
    stall: float
    router: float
    wire: float

    @property
    def total(self) -> float:
        return self.core + self.stall + self.router + self.wire

    @property
    def noc(self) -> float:
        """NoC energy: router + wire (Table 6's 'NoC' category)."""
        return self.router + self.wire

    def normalized_to(self, baseline: "EnergyBreakdown") -> Dict[str, float]:
        """Component shares normalized to another run's total."""
        return {
            "core": self.core / baseline.total,
            "stall": self.stall / baseline.total,
            "router": self.router / baseline.total,
            "wire": self.wire / baseline.total,
            "total": self.total / baseline.total,
        }


def _network_energy_pj(
    hop_counts, config: NetworkConfig, tech: Technology
) -> Dict[str, float]:
    router = 0.0
    wire = 0.0
    for direction in Direction:
        hops = hop_counts[int(direction)]
        if not hops:
            continue
        router += hops * router_energy_per_packet(config, direction, tech)
        wire += hops * wire_energy_per_packet(config, direction, tech)
    return {"router": router, "wire": wire}


def system_energy(
    stats: MachineStats,
    mcfg: MachineConfig,
    tech: Technology = TECH_12NM,
) -> EnergyBreakdown:
    """Total energy of one manycore run, split per Figure 13."""
    core_pj = stats.instructions * ENERGY_PER_INSTRUCTION_PJ
    stall_pj = stats.stall_cycles * ENERGY_PER_STALL_CYCLE_PJ
    fwd = _network_energy_pj(
        stats.fwd_hop_counts, mcfg.forward_config, tech
    )
    rev = _network_energy_pj(
        stats.rev_hop_counts, mcfg.reverse_config, tech
    )
    to_uj = 1e-6
    return EnergyBreakdown(
        core=core_pj * to_uj,
        stall=stall_pj * to_uj,
        router=(fwd["router"] + rev["router"]) * to_uj,
        wire=(fwd["wire"] + rev["wire"]) * to_uj,
    )
