"""Abstract in-order core executing a remote-memory operation stream.

This is the execution-driven substitution for the paper's RTL RISC-V
cores: each core consumes a kernel-generated stream of operations and
interacts with the *real* simulated networks.  What the substitution
preserves — and what the paper's methodology section argues matters — is
the feedback loop: network congestion delays responses, delayed responses
fill the core's outstanding-request window, a full window stalls the
core, and a stalled core injects nothing, reshaping the traffic.

Operation vocabulary (produced by :mod:`repro.manycore.kernels`):

``("compute", n)``
    Execute ``n`` single-cycle instructions locally.
``("load", addr)`` / ``("store", addr)`` / ``("amo", addr)``
    Remote access to the LLC bank selected by IPOLY hashing of ``addr``.
    All three occupy a window slot until their response (data or ack)
    returns on the response network; atomics additionally serialize at
    the bank.
``("tload", (x, y), addr)`` / ``("tstore", (x, y), addr)``
    Remote access to another tile's scratchpad (Jacobi halo exchange,
    FFT transpose).
``("fence",)``
    Wait until the window is empty.
``("barrier",)``
    Global sense-reversing barrier across all cores.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.core.coords import Coord


class Request:
    """An in-flight remote request (rides the packet payload)."""

    __slots__ = ("kind", "src", "issue_cycle", "intrinsic")

    def __init__(self, kind: str, src: Coord, issue_cycle: int,
                 intrinsic: int) -> None:
        self.kind = kind
        self.src = src
        self.issue_cycle = issue_cycle
        self.intrinsic = intrinsic

    @property
    def is_amo(self) -> bool:
        return self.kind == "amo"


class CoreStats:
    """Per-core cycle and latency accounting (Figures 12 and 13 inputs)."""

    __slots__ = (
        "instructions",
        "compute_cycles",
        "stall_mem",
        "stall_net",
        "stall_barrier",
        "loads_completed",
        "latency_total",
        "intrinsic_total",
        "finish_cycle",
    )

    def __init__(self) -> None:
        self.instructions = 0
        self.compute_cycles = 0
        self.stall_mem = 0
        self.stall_net = 0
        self.stall_barrier = 0
        self.loads_completed = 0
        self.latency_total = 0
        self.intrinsic_total = 0
        self.finish_cycle = 0

    @property
    def stall_cycles(self) -> int:
        return self.stall_mem + self.stall_net + self.stall_barrier


class Core:
    """One in-order core with a bounded remote-request window."""

    __slots__ = (
        "coord",
        "machine",
        "_ops",
        "_current",
        "busy_until",
        "outstanding",
        "_at_barrier",
        "done",
        "stats",
    )

    def __init__(self, coord: Coord, ops: Iterator[Tuple],
                 machine) -> None:
        self.coord = coord
        self.machine = machine
        self._ops = ops
        self._current: Optional[Tuple] = None
        self.busy_until = 0
        self.outstanding = 0
        self._at_barrier = False
        self.done = False
        self.stats = CoreStats()

    # ------------------------------------------------------------------
    def receive(self, request: Request, cycle: int) -> None:
        """A response arrived on the response network."""
        self.outstanding -= 1
        self.stats.loads_completed += 1
        self.stats.latency_total += cycle - request.issue_cycle
        self.stats.intrinsic_total += request.intrinsic

    def _fetch(self) -> Optional[Tuple]:
        if self._current is None:
            self._current = next(self._ops, None)
        return self._current

    def _retire(self) -> None:
        self._current = None

    def step(self, cycle: int) -> None:
        """Advance one cycle."""
        if self.done:
            return
        if cycle < self.busy_until:
            self.stats.compute_cycles += 1
            self.stats.instructions += 1
            return
        if self._at_barrier:
            if self.machine.barrier_released(self):
                self._at_barrier = False
                self._retire()
            else:
                self.stats.stall_barrier += 1
                return
        op = self._fetch()
        if op is None:
            if self.outstanding:
                self.stats.stall_mem += 1  # drain before finishing
                return
            self.done = True
            self.stats.finish_cycle = cycle
            self.machine.core_finished()
            return
        kind = op[0]
        if kind == "compute":
            self.busy_until = cycle + op[1]
            self.stats.compute_cycles += 1
            self.stats.instructions += 1
            self._retire()
        elif kind in ("load", "store", "amo"):
            self._issue(cycle, kind, self.machine.llc_coord(op[1]))
        elif kind in ("tload", "tstore"):
            base = "load" if kind == "tload" else "store"
            self._issue(cycle, base, Coord(*op[1]))
        elif kind == "fence":
            if self.outstanding:
                self.stats.stall_mem += 1
            else:
                # A satisfied fence retires for free; the next operation
                # executes in the same cycle (mirrors barrier release).
                self._retire()
                self.step(cycle)
        elif kind == "barrier":
            self.machine.barrier_arrive(self)
            self._at_barrier = True
            self.stats.stall_barrier += 1
        else:  # pragma: no cover - kernel bug guard
            raise ValueError(f"unknown core op: {op!r}")

    def _issue(self, cycle: int, kind: str, dest: Coord) -> None:
        if self.outstanding >= self.machine.config.window:
            self.stats.stall_mem += 1
            return
        if not self.machine.try_issue(self, kind, dest, cycle):
            self.stats.stall_net += 1
            return
        self.outstanding += 1
        self.stats.instructions += 1
        self._retire()
