"""Parallel workload kernels (paper Table 5).

Benchmarks are addressed by paper-style names: plain kernel names for the
dense workloads (``jacobi``, ``sgemm``, ``fft``, ``bh``) and
``<kernel>-<GRAPH>`` for the graph workloads (``bfs-CA``, ``pr-HW``,
``spgemm-US``, …) using the Table 5 graph abbreviations.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import WorkloadError
from repro.manycore.config import MachineConfig
from repro.manycore.kernels import (  # noqa: F401 - re-exported modules
    barneshut,
    bfs,
    fft,
    jacobi,
    pagerank,
    sgemm,
    spgemm,
)
from repro.manycore.kernels.base import Workload

_PLAIN = {
    "jacobi": jacobi.build,
    "sgemm": sgemm.build,
    "fft": fft.build,
    "bh": barneshut.build,
}

_GRAPH = {
    "bfs": bfs.build,
    "pr": pagerank.build,
    "spgemm": spgemm.build,
}


def build_workload(name: str, mcfg: MachineConfig, **params) -> Workload:
    """Instantiate a benchmark by its paper-style name."""
    lowered = name.strip().lower()
    if lowered in _PLAIN:
        return _PLAIN[lowered](mcfg, **params)
    if "-" in lowered:
        kernel, _, graph = lowered.partition("-")
        if kernel in _GRAPH:
            return _GRAPH[kernel](mcfg, graph=graph.upper(), **params)
    raise WorkloadError(
        f"unknown benchmark {name!r}; use one of {benchmark_names()}"
    )


def benchmark_names() -> Tuple[str, ...]:
    """The full Figure 10 benchmark suite."""
    return (
        "jacobi",
        "sgemm",
        "fft",
        "bh",
        "bfs-CA",
        "bfs-HW",
        "bfs-LJ",
        "pr-PK",
        "pr-HW",
        "spgemm-CA",
        "spgemm-RC",
        "spgemm-US",
    )


def quick_suite() -> Tuple[str, ...]:
    """A four-benchmark subset covering the paper's traffic classes:
    nearest-neighbour (jacobi), streaming (sgemm), irregular-imbalanced
    (bfs-HW), and hotspot/pointer-chasing (spgemm-CA)."""
    return ("jacobi", "sgemm", "bfs-HW", "spgemm-CA")


def workload_classes() -> Dict[str, str]:
    """Traffic character of each benchmark (used in docs and reports)."""
    return {
        "jacobi": "nearest-neighbour scratchpad",
        "sgemm": "streaming LLC reads",
        "fft": "streaming + all-to-all transpose",
        "bh": "dependent pointer chasing",
        "bfs-CA": "irregular, high diameter",
        "bfs-HW": "irregular, hub imbalance",
        "bfs-LJ": "irregular, hub imbalance",
        "pr-PK": "high-injection gather",
        "pr-HW": "high-injection gather",
        "spgemm-CA": "atomic hotspot + chasing",
        "spgemm-RC": "atomic hotspot + chasing",
        "spgemm-US": "atomic hotspot + chasing",
    }
