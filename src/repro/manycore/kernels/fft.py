"""2-D FFT (paper Table 5: 16K/32K FP32, scaled).

Butterfly stages stream strided panels from the LLC; between the two
dimension passes, cores exchange their panels through a tile-to-tile
transpose (remote scratchpad stores to the transpose partner) — the
all-to-all phase that stresses the bisection.
"""

from __future__ import annotations

from repro.core.coords import Coord
from repro.manycore.config import MachineConfig
from repro.manycore.kernels.base import (
    OpStream,
    Workload,
    build_workload,
    physical_to_network,
)


def build(
    mcfg: MachineConfig,
    *,
    points_per_core: int = 16,
    stages: int = 3,
    flops_per_point: int = 3,
) -> Workload:
    def per_core(phys: Coord, core_id: int) -> OpStream:
        return _core_ops(phys, core_id, mcfg, points_per_core, stages,
                         flops_per_point)

    return build_workload(mcfg, per_core)


def _transpose_partner(phys: Coord, mcfg: MachineConfig) -> Coord:
    """Blocked transpose partner, folded into the array's aspect ratio."""
    px = phys.y * mcfg.width // mcfg.height
    py = phys.x * mcfg.height // mcfg.width
    return Coord(min(px, mcfg.width - 1), min(py, mcfg.height - 1))


def _core_ops(
    phys: Coord,
    core_id: int,
    mcfg: MachineConfig,
    points: int,
    stages: int,
    flops: int,
) -> OpStream:
    base = core_id * points
    for stage in range(stages):
        stride = 1 << stage
        for i in range(points):
            yield ("load", base + (i * stride) % (points * stages))
        yield ("fence",)
        yield ("compute", points * flops)
        for i in range(points):
            yield ("store", base + i)
        yield ("fence",)
        yield ("barrier",)
    # Transpose between dimension passes: scatter the panel to the
    # partner tile's scratchpad.
    partner = physical_to_network(mcfg, _transpose_partner(phys, mcfg))
    for i in range(points):
        yield ("tstore", (partner.x, partner.y), base + i)
    yield ("fence",)
    yield ("barrier",)
    # Second dimension pass (same stage structure, fewer stages).
    for i in range(points):
        yield ("load", base + i)
    yield ("fence",)
    yield ("compute", points * flops)
    yield ("barrier",)
