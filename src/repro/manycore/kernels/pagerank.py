"""PageRank (one push iteration) over the Table 5 graphs.

Pure streaming gather: for each owned vertex, load every in-neighbour's
rank from the LLC (random-looking addresses after IPOLY interleaving),
accumulate, and store the new rank.  Very high injection rate with few
dependences — the congestion-dominated profile of Figure 12's
"PageRank with social networks".
"""

from __future__ import annotations

from repro.core.coords import Coord
from repro.manycore.config import MachineConfig
from repro.manycore.datasets import load_graph
from repro.manycore.kernels.base import OpStream, Workload, build_workload


def build(
    mcfg: MachineConfig,
    *,
    graph: str = "PK",
    max_edges_per_core: int = 400,
) -> Workload:
    g = load_graph(graph)
    n_cores = mcfg.num_cores

    def per_core(phys: Coord, core_id: int) -> OpStream:
        vertices = range(core_id, g.num_vertices, n_cores)
        return _core_ops(g, vertices, max_edges_per_core)

    return build_workload(mcfg, per_core)


def _core_ops(g, vertices, max_edges: int) -> OpStream:
    rank_base = 1 << 21
    budget = max_edges
    for v in vertices:
        if budget <= 0:
            break
        for u in g.adjacency[v]:
            yield ("load", rank_base + u)
            budget -= 1
            if budget <= 0:
                break
        yield ("compute", max(1, len(g.adjacency[v]) // 4))
        yield ("store", rank_base + (1 << 19) + v)
    yield ("fence",)
    yield ("barrier",)
