"""Blocked SGEMM (paper Table 5: 512³ FP32, scaled).

Each core computes a ``block × block`` tile of C: for every K-panel it
streams an A-block and a B-block out of the LLC (sequential addresses —
the streaming pattern the paper notes suffers most mesh congestion),
multiplies, and finally writes its C-block back.
"""

from __future__ import annotations

from repro.core.coords import Coord
from repro.manycore.config import MachineConfig
from repro.manycore.kernels.base import OpStream, Workload, build_workload


def build(
    mcfg: MachineConfig,
    *,
    block: int = 4,
    k_panels: int = 4,
    macs_per_cycle: int = 1,
) -> Workload:
    def per_core(phys: Coord, core_id: int) -> OpStream:
        return _core_ops(phys, core_id, mcfg, block, k_panels,
                         macs_per_cycle)

    return build_workload(mcfg, per_core)


def _core_ops(
    phys: Coord,
    core_id: int,
    mcfg: MachineConfig,
    block: int,
    k_panels: int,
    macs_per_cycle: int,
) -> OpStream:
    words = block * block
    a_base = core_id * k_panels * words
    b_base = (mcfg.num_cores + core_id) * k_panels * words
    c_base = (2 * mcfg.num_cores + core_id) * words
    for k in range(k_panels):
        # Stream both operand blocks (sequential LLC addresses).
        for i in range(words):
            yield ("load", a_base + k * words + i)
            yield ("load", b_base + k * words + i)
        yield ("fence",)
        # block^3 MACs on the fetched panels.
        yield ("compute", max(1, block * words // macs_per_cycle))
    for i in range(words):
        yield ("store", c_base + i)
    yield ("fence",)
    yield ("barrier",)
