"""Jacobi 2-D stencil (paper Table 5: 512×512×64 FP32, scaled).

Each core owns a block of the grid in its scratchpad.  Every iteration it
loads the halo rows/columns from the scratchpads of its four *physically*
adjacent tiles, relaxes its block, and synchronizes.  The traffic is pure
nearest-neighbour remote-scratchpad reads — the pattern that regresses on
a folded torus, whose ring bypasses physically adjacent tiles.
"""

from __future__ import annotations

from repro.core.coords import Coord
from repro.manycore.config import MachineConfig
from repro.manycore.kernels.base import (
    OpStream,
    Workload,
    build_workload,
    clamp_neighbor,
    physical_to_network,
)


def build(
    mcfg: MachineConfig,
    *,
    block: int = 4,
    iterations: int = 4,
    compute_per_point: int = 1,
) -> Workload:
    """Workload: ``block × block`` grid points per core."""

    def per_core(phys: Coord, core_id: int) -> OpStream:
        return _core_ops(
            mcfg, phys, core_id, block, iterations, compute_per_point
        )

    return build_workload(mcfg, per_core)


def _core_ops(
    mcfg: MachineConfig,
    phys: Coord,
    core_id: int,
    block: int,
    iterations: int,
    compute_per_point: int,
) -> OpStream:
    neighbors = [
        physical_to_network(mcfg, clamp_neighbor(phys, dx, dy, mcfg))
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1))
    ]
    halo_base = (phys.y * mcfg.width + phys.x) * 4 * block
    grid_base = core_id * 2 * block * block
    for it in range(iterations):
        # Stream this iteration's coefficient plane out of the LLC (the
        # 512×512×64 grid does not fit in scratchpads; planes are
        # re-fetched each sweep).
        for i in range(block * block):
            yield ("load", grid_base + (it % 2) * block * block + i)
        # Halo exchange: one word per boundary point from each neighbour,
        # interleaved with a little address arithmetic.
        for i in range(block):
            for n_idx, neighbor in enumerate(neighbors):
                yield ("tload", (neighbor.x, neighbor.y),
                       halo_base + n_idx * block + i)
            yield ("compute", 1)
        yield ("fence",)
        # Relax the interior block.
        yield ("compute", block * block * compute_per_point)
        yield ("barrier",)
