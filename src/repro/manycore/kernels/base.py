"""Shared machinery for manycore kernels.

Kernels express per-core work as iterators of core operations (see
:mod:`repro.manycore.core_model`).  They reason in **physical** tile
coordinates — which tile is bolted next to which — because data placement
(Jacobi halos, FFT transpose partners) follows the floorplan.

On mesh and Ruche fabrics, physical and network coordinates coincide.  On
a **folded torus** they do not: the folding interleaves the ring through
the physical row, so the ring neighbour of a tile is two tiles away and
*physically adjacent* tiles can be ring-distant.  This is exactly the
effect behind the paper's Jacobi observation ("since folded torus
topology skips every other tile, packets must take the longest route
around the network to reach the nearest tiles", Section 4.6), and it
falls out of the coordinate mapping below.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, List, Tuple

from repro.core.coords import Coord
from repro.core.params import TopologyKind
from repro.manycore.config import MachineConfig

Op = Tuple
OpStream = Iterator[Op]
Workload = Dict[Coord, OpStream]


def ring_index(physical_x: int, width: int) -> int:
    """Ring position of a physical column in a folded torus row.

    The folded layout routes the ring 0, 2, 4, …, W-1, W-3, …, 1 through
    the physical row; tiles at even physical positions occupy the first
    half of the ring, odd positions the second half reversed.
    """
    if physical_x % 2 == 0:
        return physical_x // 2
    return width - 1 - (physical_x - 1) // 2


def physical_to_network(mcfg: MachineConfig, phys: Coord) -> Coord:
    """Network coordinate of the tile at physical position ``phys``."""
    if mcfg.forward_config.kind is TopologyKind.HALF_TORUS:
        return Coord(ring_index(phys.x, mcfg.width), phys.y)
    return phys


def clamp_neighbor(phys: Coord, dx: int, dy: int,
                   mcfg: MachineConfig) -> Coord:
    """Physically adjacent tile, clamped at the array boundary."""
    x = min(max(phys.x + dx, 0), mcfg.width - 1)
    y = min(max(phys.y + dy, 0), mcfg.height - 1)
    return Coord(x, y)


def core_rng(phys: Coord, seed: int) -> random.Random:
    """Deterministic per-core RNG stream."""
    return random.Random(f"{seed}:{phys.x}:{phys.y}")


def physical_coords(mcfg: MachineConfig) -> List[Coord]:
    """All physical tile positions, row-major."""
    return [
        Coord(x, y)
        for y in range(mcfg.height)
        for x in range(mcfg.width)
    ]


def build_workload(
    mcfg: MachineConfig,
    per_core: Callable[[Coord, int], OpStream],
) -> Workload:
    """Assemble a workload dict keyed by *network* coordinates.

    ``per_core(phys, core_id)`` yields the op stream for the core at
    physical position ``phys``; ``core_id`` is its row-major index.
    """
    workload: Workload = {}
    for core_id, phys in enumerate(physical_coords(mcfg)):
        workload[physical_to_network(mcfg, phys)] = per_core(phys, core_id)
    return workload


def interleave_loads(addresses, compute_per_load: int = 0) -> OpStream:
    """Yield loads with optional compute between them (software pipelining)."""
    for addr in addresses:
        yield ("load", addr)
        if compute_per_load:
            yield ("compute", compute_per_load)
