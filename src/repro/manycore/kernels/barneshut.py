"""Barnes-Hut N-body tree walk (paper Table 5: 16K–64K bodies, scaled).

Each body's force evaluation walks the oct-tree: a chain of *dependent*
LLC loads (each next node address comes from the previous read), modelled
as load→fence pairs — the latency-bound, irregular pattern the paper
groups with the pointer-chasing workloads.
"""

from __future__ import annotations

from repro.core.coords import Coord
from repro.manycore.config import MachineConfig
from repro.manycore.kernels.base import OpStream, Workload, build_workload, core_rng


def build(
    mcfg: MachineConfig,
    *,
    bodies_per_core: int = 5,
    walk_depth: int = 8,
    compute_per_node: int = 2,
    seed: int = 11,
) -> Workload:
    def per_core(phys: Coord, core_id: int) -> OpStream:
        return _core_ops(phys, core_id, bodies_per_core, walk_depth,
                         compute_per_node, seed)

    return build_workload(mcfg, per_core)


def _core_ops(
    phys: Coord,
    core_id: int,
    bodies: int,
    depth: int,
    compute_per_node: int,
    seed: int,
) -> OpStream:
    rng = core_rng(phys, seed)
    tree_size = 1 << 16
    for _body in range(bodies):
        node = rng.randrange(tree_size)
        for _level in range(depth):
            yield ("load", node)
            yield ("fence",)  # the next address depends on this read
            yield ("compute", compute_per_node)
            node = (node * 2654435761 + 17) % tree_size
        yield ("compute", 4)  # force accumulation
    yield ("barrier",)
