"""SpGEMM (C = A·A) over the Table 5 road graphs.

The paper's SpGEMM builds output lists with dynamically allocated linked
lists: every produced non-zero performs a fetch-and-add on a **single
global allocator variable** — a one-bank hotspot that Ruche channels
cannot relieve (Section 4.6: "SpGEMM (US, RC) did not show much
improvement, because of its heavy use of an atomic add variable…") —
followed by a pointer chase down the output row's current list.
"""

from __future__ import annotations

from typing import Dict

from repro.core.coords import Coord
from repro.manycore.config import MachineConfig
from repro.manycore.datasets import load_graph
from repro.manycore.kernels.base import OpStream, Workload, build_workload

#: The single global allocator word (the hotspot address).
ALLOC_ADDR = (1 << 23) + 5


def build(
    mcfg: MachineConfig,
    *,
    graph: str = "CA",
    rows_per_core: int = 3,
    max_chain: int = 6,
) -> Workload:
    g = load_graph(graph)
    n_cores = mcfg.num_cores

    def per_core(phys: Coord, core_id: int) -> OpStream:
        rows = [
            core_id + k * n_cores
            for k in range(rows_per_core)
            if core_id + k * n_cores < g.num_vertices
        ]
        return _core_ops(g, rows, max_chain)

    return build_workload(mcfg, per_core)


def _core_ops(g, rows, max_chain: int) -> OpStream:
    list_base = 1 << 24
    list_lengths: Dict[int, int] = {}
    for i in rows:
        for j in g.adjacency[i]:
            for k in g.adjacency[j]:
                # Allocate a list node: global fetch-and-add (hotspot).
                yield ("amo", ALLOC_ADDR)
                yield ("fence",)
                # Chase the output row's list to its tail.
                chain = min(list_lengths.get(k, 0), max_chain)
                for step in range(chain):
                    yield ("load", list_base + k * 64 + step)
                    yield ("fence",)  # next pointer depends on this read
                list_lengths[k] = list_lengths.get(k, 0) + 1
                yield ("compute", 2)
    yield ("fence",)
    yield ("barrier",)
