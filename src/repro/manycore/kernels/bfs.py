"""Level-synchronous BFS over the Table 5 graphs.

Vertices are assigned to cores round-robin.  For each level, a core loads
the adjacency of its frontier vertices (one LLC word per four edges — a
cache-line granule) and issues one atomic per newly discovered vertex to
claim it; a barrier separates levels.  Social graphs concentrate whole
levels on few hub-owning cores — the load imbalance the paper blames for
BFS's limited scalability (Section 4.7).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.coords import Coord
from repro.manycore.config import MachineConfig
from repro.manycore.datasets import Graph, load_graph
from repro.manycore.kernels.base import OpStream, Workload, build_workload

#: Edges fetched per LLC word (cache-line granularity).
_EDGES_PER_WORD = 4


def build(
    mcfg: MachineConfig,
    *,
    graph: str = "CA",
    max_levels: int = 6,
    root: int = 0,
) -> Workload:
    """Workload over the graph with paper abbreviation ``graph``."""
    g = load_graph(graph)
    levels = g.bfs_levels(root)[:max_levels]
    # Precompute, per level, each core's frontier share and the set of
    # vertices it newly discovers (round-robin vertex ownership).
    n_cores = mcfg.num_cores
    per_core_levels: List[Dict[int, List[int]]] = []
    for frontier in levels:
        shares: Dict[int, List[int]] = {}
        for v in frontier:
            shares.setdefault(v % n_cores, []).append(v)
        per_core_levels.append(shares)

    def per_core(phys: Coord, core_id: int) -> OpStream:
        return _core_ops(core_id, g, per_core_levels)

    return build_workload(mcfg, per_core)


def _core_ops(
    core_id: int,
    g: Graph,
    per_core_levels: List[Dict[int, List[int]]],
) -> OpStream:
    adj_base = 1 << 20
    visited_base = 1 << 22
    for shares in per_core_levels:
        for v in shares.get(core_id, ()):  # this core's frontier slice
            degree = len(g.adjacency[v])
            words = max(1, (degree + _EDGES_PER_WORD - 1) // _EDGES_PER_WORD)
            for w in range(words):
                yield ("load", adj_base + v * 64 + w)
            yield ("compute", max(1, degree // 4))
            # Claim newly discovered neighbours (visited-bit atomics).
            for u in g.adjacency[v][: max(1, degree // 2)]:
                yield ("amo", visited_base + u)
        yield ("fence",)
        yield ("barrier",)
