"""Synthetic graph datasets matching the paper's Table 5 input classes.

The paper's graph workloads use SuiteSparse graphs of three characters:

* **road** networks (roadNet-CA, road-central, road-usa): very low average
  degree (~2–3), near-planar, enormous diameter — these make BFS and
  SpGEMM latency-bound and pointer-chasing (Section 4.8).
* **social** networks (ljournal, hollywood, soc-Pokec): power-law degree
  distributions with heavy hubs — these create load imbalance and high
  injection rates.
* **scientific** meshes (offshore): regular, moderate constant degree.

We cannot ship the SuiteSparse inputs, so this module generates synthetic
graphs with the same class statistics, scaled to simulator-feasible sizes
(thousands of vertices).  The network-relevant properties — degree skew,
frontier growth shape, and diameter class — drive the manycore traffic,
and the generators reproduce them per class (verified by tests).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Tuple


@dataclasses.dataclass
class Graph:
    """An undirected graph in adjacency-list form."""

    name: str
    kind: str  # "road" | "social" | "scientific"
    adjacency: List[List[int]]

    @property
    def num_vertices(self) -> int:
        return len(self.adjacency)

    @property
    def num_edges(self) -> int:
        return sum(len(a) for a in self.adjacency) // 2

    @property
    def degrees(self) -> List[int]:
        return [len(a) for a in self.adjacency]

    def average_degree(self) -> float:
        return 2.0 * self.num_edges / self.num_vertices

    def max_degree(self) -> int:
        return max(self.degrees)

    def bfs_levels(self, root: int = 0) -> List[List[int]]:
        """Level-synchronous BFS frontiers from ``root``.

        Used by the BFS kernel to derive each level's per-core work, and
        by tests to check diameter class.
        """
        seen = [False] * self.num_vertices
        seen[root] = True
        frontier = [root]
        levels = [frontier]
        while frontier:
            nxt = []
            for v in frontier:
                for u in self.adjacency[v]:
                    if not seen[u]:
                        seen[u] = True
                        nxt.append(u)
            if not nxt:
                break
            levels.append(nxt)
            frontier = nxt
        return levels


def _dedup(adjacency: List[List[int]]) -> List[List[int]]:
    return [sorted(set(a)) for a in adjacency]


def road_graph(n: int = 4096, seed: int = 1) -> Graph:
    """A road-network-like graph: avg degree ~2.5, huge diameter.

    Built as a sparse 2-D lattice with a fraction of the grid edges
    removed and a few local shortcuts — matching the low-degree,
    high-diameter character of roadNet-CA / road-usa.
    """
    rng = random.Random(seed)
    side = max(2, int(n**0.5))
    n = side * side
    adjacency: List[List[int]] = [[] for _ in range(n)]

    def add(u: int, v: int) -> None:
        adjacency[u].append(v)
        adjacency[v].append(u)

    for y in range(side):
        for x in range(side):
            v = y * side + x
            if x + 1 < side and rng.random() < 0.70:
                add(v, v + 1)
            if y + 1 < side and rng.random() < 0.70:
                add(v, v + side)
    # Ensure connectivity with a Hamiltonian-ish spine.
    for v in range(n - 1):
        if (v + 1) % side != 0 and (v + 1) not in adjacency[v]:
            if not set(adjacency[v]) & set(adjacency[v + 1]):
                add(v, v + 1)
    return Graph(f"road-{n}", "road", _dedup(adjacency))


def social_graph(n: int = 2048, seed: int = 2, m: int = 8) -> Graph:
    """A social-network-like graph: power-law degrees, small diameter.

    Barabási–Albert preferential attachment with ``m`` edges per new
    vertex, matching the hub-heavy character of hollywood-2009 /
    ljournal-2008 (average degree tens, max degree hundreds).
    """
    rng = random.Random(seed)
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            adjacency[u].append(v)
            adjacency[v].append(u)
    # Repeated-endpoint list implements preferential attachment.
    endpoint_pool: List[int] = [
        v for v in range(m + 1) for _ in adjacency[v]
    ]
    for u in range(m + 1, n):
        chosen = set()
        while len(chosen) < m:
            chosen.add(endpoint_pool[rng.randrange(len(endpoint_pool))])
        for v in chosen:
            adjacency[u].append(v)
            adjacency[v].append(u)
            endpoint_pool.extend((u, v))
    return Graph(f"social-{n}", "social", _dedup(adjacency))


def scientific_graph(n: int = 3375, seed: int = 3) -> Graph:
    """A scientific-mesh-like graph: regular moderate degree (~6–16).

    A 3-D lattice with face neighbours, matching the 'offshore' FEM mesh
    character (constant degree, moderate diameter).
    """
    side = max(2, round(n ** (1 / 3)))
    n = side**3
    adjacency: List[List[int]] = [[] for _ in range(n)]

    def idx(x: int, y: int, z: int) -> int:
        return (z * side + y) * side + x

    for z in range(side):
        for y in range(side):
            for x in range(side):
                v = idx(x, y, z)
                for dx, dy, dz in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
                    nx, ny, nz = x + dx, y + dy, z + dz
                    if nx < side and ny < side and nz < side:
                        u = idx(nx, ny, nz)
                        adjacency[v].append(u)
                        adjacency[u].append(v)
    return Graph(f"scientific-{n}", "scientific", _dedup(adjacency))


#: The paper's Table 5 graph shorthand, scaled to simulator-feasible
#: sizes.  Keys mirror the paper's abbreviations.
_REGISTRY = {
    "OS": ("scientific", scientific_graph, {"n": 3375}),
    "CA": ("road", road_graph, {"n": 4096}),
    "RC": ("road", road_graph, {"n": 6400, "seed": 4}),
    "US": ("road", road_graph, {"n": 9216, "seed": 5}),
    "LJ": ("social", social_graph, {"n": 3000, "m": 12, "seed": 6}),
    "HW": ("social", social_graph, {"n": 2000, "m": 24, "seed": 7}),
    "PK": ("social", social_graph, {"n": 2500, "m": 10, "seed": 8}),
}

_CACHE: Dict[str, Graph] = {}


def load_graph(code: str) -> Graph:
    """Fetch a Table 5 graph by its paper abbreviation (cached)."""
    key = code.upper()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown graph {code!r}; choose from {sorted(_REGISTRY)}"
        )
    if key not in _CACHE:
        _kind, fn, kwargs = _REGISTRY[key]
        _CACHE[key] = fn(**kwargs)
    return _CACHE[key]


def graph_codes() -> Tuple[str, ...]:
    """All Table 5 graph abbreviations."""
    return tuple(sorted(_REGISTRY))
