"""Machine configuration for the cellular manycore.

The machine follows the HammerBlade arrangement the paper evaluates
(Sections 4.5–4.10): a ``width × height`` array of compute tiles, LLC
memory tiles on the northern and southern edges (one per column per
edge), and **two** physical networks — requests route X-Y, responses
route Y-X (after Abts et al.), which is also why the two networks carry
different crossbar connectivity.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.core.coords import Coord
from repro.core.params import DorOrder, NetworkConfig, TopologyKind
from repro.errors import ConfigError

#: Network families usable as a manycore fabric (edge memory constraint).
_FABRIC_KINDS = (
    TopologyKind.MESH,
    TopologyKind.HALF_TORUS,
    TopologyKind.HALF_RUCHE,
)


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """One manycore design point.

    Parameters
    ----------
    network:
        Fabric short name: ``mesh``, ``half-torus``, or
        ``ruche<RF>[-pop|-depop]`` (Half Ruche — horizontal channels only,
        matching the paper's all-to-edge scenario).
    width, height:
        Compute array dimensions (the paper evaluates 16×8, 32×16, 64×8).
    window:
        Maximum outstanding remote requests per core (non-blocking loads
        until the window fills; the cores then stall, which is the
        execution-driven feedback loop the paper emphasizes).
    mem_latency:
        LLC bank access pipeline latency in cycles.
    amo_service:
        Bank occupancy of an atomic operation (serializes at the bank and
        produces the SpGEMM hotspot of Section 4.6).
    inbox_capacity:
        Request-queue depth at memory banks and scratchpad servers; a full
        inbox backpressures the network's ejection port.
    """

    network: str = "mesh"
    width: int = 16
    height: int = 8
    window: int = 4
    mem_latency: int = 2
    amo_service: int = 4
    inbox_capacity: int = 4
    fifo_depth: int = 2
    channel_width_bits: int = 128

    def __post_init__(self) -> None:
        # Validate eagerly so bad fabric names fail at construction.
        kind = self.network_config(DorOrder.XY).kind
        if kind not in _FABRIC_KINDS:
            raise ConfigError(
                f"{self.network!r} cannot host edge memory; use mesh, "
                "half-torus, or a Half Ruche network"
            )

    def network_config(self, dor_order: DorOrder) -> NetworkConfig:
        half = self.network.lower().startswith("ruche")
        return NetworkConfig.from_name(
            self.network,
            self.width,
            self.height,
            half=half,
            edge_memory=True,
            dor_order=dor_order,
            fifo_depth=self.fifo_depth,
            channel_width_bits=self.channel_width_bits,
        )

    @property
    def forward_config(self) -> NetworkConfig:
        """The request network (X-Y DOR)."""
        return self.network_config(DorOrder.XY)

    @property
    def reverse_config(self) -> NetworkConfig:
        """The response network (Y-X DOR)."""
        return self.network_config(DorOrder.YX)

    @property
    def num_cores(self) -> int:
        return self.width * self.height

    @property
    def num_memory_tiles(self) -> int:
        return 2 * self.width

    def memory_coords(self) -> List[Coord]:
        """All LLC endpoints: northern edge first, then southern."""
        return [Coord(x, -1) for x in range(self.width)] + [
            Coord(x, self.height) for x in range(self.width)
        ]

    def compute_coords(self) -> List[Coord]:
        return [
            Coord(x, y)
            for y in range(self.height)
            for x in range(self.width)
        ]

    def compute_to_memory_ratio(self) -> float:
        """Table 4's compute:memory tile ratio (e.g. 4:1 for 16×8)."""
        return self.num_cores / self.num_memory_tiles
