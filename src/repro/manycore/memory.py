"""Memory-side endpoints: LLC banks and tile scratchpad servers.

Both endpoint types follow the same pattern: a bounded inbox fed by the
request network's ejection port (a full inbox backpressures the network),
a service pipeline, and an outbox drained into the response network
(which can itself backpressure).  LLC banks additionally serialize
atomics — the mechanism behind the paper's SpGEMM hotspot observation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.core.coords import Coord
from repro.sim.packet import Packet
from repro.sim.router import Sink


class ServicePoint(Sink):
    """Shared inbox/service/outbox machinery for memory-side endpoints."""

    __slots__ = ("coord", "capacity", "inbox", "outbox", "busy_until",
                 "served")

    def __init__(self, coord: Coord, capacity: int) -> None:
        self.coord = coord
        self.capacity = capacity
        self.inbox: Deque[Packet] = deque()
        self.outbox: Deque[Tuple[int, Packet]] = deque()
        self.busy_until = 0
        self.served = 0

    # Sink interface (request-network ejection).
    def ready(self) -> bool:
        return len(self.inbox) < self.capacity

    def deliver(self, pkt: Packet, cycle: int) -> None:
        self.inbox.append(pkt)

    def _service_time(self, pkt: Packet) -> Tuple[int, int]:
        """(bank occupancy cycles, response-ready latency)."""
        raise NotImplementedError

    def serve(self, cycle: int) -> None:
        """Dequeue at most one request into the response outbox."""
        if not self.inbox or cycle < self.busy_until:
            return
        pkt = self.inbox.popleft()
        occupancy, latency = self._service_time(pkt)
        self.busy_until = cycle + occupancy
        self.outbox.append((cycle + latency, pkt))
        self.served += 1

    def pending_response(self, cycle: int):
        """The response due for injection this cycle, if any."""
        if self.outbox and self.outbox[0][0] <= cycle:
            return self.outbox[0][1]
        return None

    def pop_response(self) -> Packet:
        return self.outbox.popleft()[1]


class MemoryTile(ServicePoint):
    """One LLC bank on the array's northern or southern edge.

    Serves one request per cycle at a fixed pipeline latency; atomic
    operations occupy the bank for ``amo_service`` cycles, so a stream of
    atomics to one bank queues up — the execution-driven hotspot.
    """

    __slots__ = ("mem_latency", "amo_service")

    def __init__(self, coord: Coord, capacity: int, mem_latency: int,
                 amo_service: int) -> None:
        super().__init__(coord, capacity)
        self.mem_latency = mem_latency
        self.amo_service = amo_service

    def _service_time(self, pkt: Packet) -> Tuple[int, int]:
        request = pkt.payload
        if request is not None and request.is_amo:
            return self.amo_service, self.amo_service + self.mem_latency
        return 1, self.mem_latency


class ScratchpadServer(ServicePoint):
    """The remote-access port of a compute tile's scratchpad.

    One word per cycle at single-cycle latency (the paper's tiles serve
    neighbour scratchpad accesses at SRAM speed).
    """

    def _service_time(self, pkt: Packet) -> Tuple[int, int]:
        return 1, 1
