"""Cross-run statistics: speedup, scalability, efficiency (Figures 10–11,
Table 6)."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping

from repro.manycore.energy import EnergyBreakdown
from repro.manycore.machine import MachineStats


def speedup(baseline: MachineStats, candidate: MachineStats) -> float:
    """Runtime speedup of ``candidate`` over ``baseline`` (same work)."""
    return baseline.cycles / candidate.cycles


def scalability(
    small_mesh: MachineStats, large: MachineStats, work_ratio: float
) -> float:
    """Paper Figure 11's 'scalability': speedup of a scaled machine over
    the 16×8 mesh, for a machine doing ``work_ratio`` times the work.

    With 4× the cores running 4× the problem, ideal scaling keeps the
    runtime constant, so scalability = ``work_ratio × (t_small / t_large)``
    and the ceiling is ``work_ratio`` (4×).
    """
    return work_ratio * small_mesh.cycles / large.cycles


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0 and not math.isnan(v)]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def geomean_speedups(
    baselines: Mapping[str, MachineStats],
    candidates: Mapping[str, MachineStats],
) -> float:
    """Geomean speedup across a benchmark suite (Table 6 rows)."""
    return geomean(
        speedup(baselines[name], candidates[name])
        for name in baselines
        if name in candidates
    )


def latency_reduction(
    baseline: MachineStats, candidate: MachineStats, component: str = "total"
) -> float:
    """Remote-load latency reduction factor (Table 6: >1 is better)."""
    pick = {
        "total": lambda s: s.avg_load_latency,
        "intrinsic": lambda s: s.avg_intrinsic_latency,
        "congestion": lambda s: s.avg_congestion_latency,
    }[component]
    denom = pick(candidate)
    if denom <= 0:
        return float("inf")
    return pick(baseline) / denom


def energy_efficiency(
    baseline_energy: EnergyBreakdown,
    candidate_energy: EnergyBreakdown,
    component: str = "total",
) -> float:
    """Energy-efficiency factor vs. a baseline (Table 6: >1 is better)."""
    pick = {
        "total": lambda e: e.total,
        "noc": lambda e: e.noc,
        "compute": lambda e: e.core + e.stall,
    }[component]
    return pick(baseline_energy) / pick(candidate_energy)


def area_normalized_speedup(
    speedup_value: float, tile_area_ratio: float
) -> float:
    """Speedup per unit tile area (Table 6, bottom row)."""
    return speedup_value / tile_area_ratio


def stall_breakdown(stats: MachineStats) -> Dict[str, float]:
    """Fractions of stall cycles by cause."""
    total = max(1, stats.stall_cycles)
    return {
        "memory": stats.stall_mem / total,
        "network": stats.stall_net / total,
        "barrier": stats.stall_barrier / total,
    }
