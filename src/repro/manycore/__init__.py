"""Execution-driven cellular manycore simulator (paper Sections 4.5–4.10).

The substrate for the Half Ruche evaluation: in-order cores with bounded
remote-request windows, edge LLC banks with IPOLY interleaving, and dual
request/response networks, all simulated cycle by cycle with full
backpressure feedback.
"""

from repro.manycore.config import MachineConfig
from repro.manycore.core_model import Core, CoreStats, Request
from repro.manycore.datasets import (
    Graph,
    graph_codes,
    load_graph,
    road_graph,
    scientific_graph,
    social_graph,
)
from repro.manycore.energy import (
    ENERGY_PER_INSTRUCTION_PJ,
    ENERGY_PER_STALL_CYCLE_PJ,
    EnergyBreakdown,
    system_energy,
)
from repro.manycore.ipoly import ipoly_hash, modulo_hash
from repro.manycore.kernels import (
    benchmark_names,
    build_workload,
    quick_suite,
    workload_classes,
)
from repro.manycore.machine import Machine, MachineStats
from repro.manycore.memory import MemoryTile, ScratchpadServer
from repro.manycore.stats import (
    area_normalized_speedup,
    energy_efficiency,
    geomean,
    geomean_speedups,
    latency_reduction,
    scalability,
    speedup,
    stall_breakdown,
)

__all__ = [
    "MachineConfig",
    "Machine",
    "MachineStats",
    "Core",
    "CoreStats",
    "Request",
    "MemoryTile",
    "ScratchpadServer",
    "Graph",
    "load_graph",
    "graph_codes",
    "road_graph",
    "social_graph",
    "scientific_graph",
    "ipoly_hash",
    "modulo_hash",
    "build_workload",
    "benchmark_names",
    "quick_suite",
    "workload_classes",
    "EnergyBreakdown",
    "system_energy",
    "ENERGY_PER_INSTRUCTION_PJ",
    "ENERGY_PER_STALL_CYCLE_PJ",
    "speedup",
    "scalability",
    "geomean",
    "geomean_speedups",
    "latency_reduction",
    "energy_efficiency",
    "area_normalized_speedup",
    "stall_breakdown",
]


def run_benchmark(
    benchmark: str,
    network: str = "mesh",
    width: int = 16,
    height: int = 8,
    *,
    hash_fn: str = "ipoly",
    max_cycles: int = 2_000_000,
    **kernel_params,
):
    """One-call convenience: build a machine, run a benchmark, return stats.

    >>> stats = run_benchmark("jacobi", "ruche2-depop", 16, 8)
    >>> stats.completed
    True
    """
    mcfg = MachineConfig(network=network, width=width, height=height)
    workload = build_workload(benchmark, mcfg, **kernel_params)
    machine = Machine(mcfg, workload, hash_fn=hash_fn)
    return machine.run(max_cycles=max_cycles)
