"""The cellular manycore machine: cores + dual NoCs + edge memory.

Assembles the full system of the paper's Sections 4.6–4.10:

* a ``width × height`` array of compute tiles, each with an in-order core
  (:class:`~repro.manycore.core_model.Core`) and a scratchpad server;
* LLC memory tiles on the northern and southern edges, addressed through
  IPOLY interleaving;
* a **request network** (X-Y DOR) and a **response network** (Y-X DOR) of
  the chosen fabric (mesh, half-torus, or Half Ruche).

The simulation is execution-driven end to end: cores stall on window
pressure and network backpressure, memory banks backpressure the request
network, and response injection contends with the response network — the
feedback effects the paper contrasts against trace-driven methodology.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.coords import Coord
from repro.errors import SimulationError
from repro.manycore.config import MachineConfig
from repro.manycore.core_model import Core, Request
from repro.manycore.ipoly import ipoly_hash, modulo_hash
from repro.manycore.memory import MemoryTile, ScratchpadServer
from repro.sim.network import Network
from repro.sim.packet import Packet
from repro.sim.router import Sink
from repro.sim.trace import Trace, TraceRecorder


class _CoreSink(Sink):
    """Response-network ejection port of a compute tile."""

    __slots__ = ("core",)

    def __init__(self, core: Core) -> None:
        self.core = core

    def deliver(self, pkt: Packet, cycle: int) -> None:
        self.core.receive(pkt.payload, cycle)


class _UnexpectedSink(Sink):
    """Guard: the response network must never eject at a memory tile."""

    __slots__ = ("coord",)

    def __init__(self, coord: Coord) -> None:
        self.coord = coord

    def deliver(self, pkt: Packet, cycle: int) -> None:
        raise SimulationError(
            f"response network delivered a packet to memory tile "
            f"{tuple(self.coord)}"
        )


@dataclasses.dataclass
class MachineStats:
    """Aggregate outcome of one manycore run."""

    cycles: int
    completed: bool
    instructions: int
    compute_cycles: int
    stall_mem: int
    stall_net: int
    stall_barrier: int
    loads_completed: int
    latency_total: int
    intrinsic_total: int
    fwd_hop_counts: List[int]
    rev_hop_counts: List[int]
    requests_served: int

    @property
    def stall_cycles(self) -> int:
        return self.stall_mem + self.stall_net + self.stall_barrier

    @property
    def avg_load_latency(self) -> float:
        """Mean remote round-trip latency (Figure 12's total)."""
        if not self.loads_completed:
            return float("nan")
        return self.latency_total / self.loads_completed

    @property
    def avg_intrinsic_latency(self) -> float:
        """Zero-load component of the round trip (Figure 12)."""
        if not self.loads_completed:
            return float("nan")
        return self.intrinsic_total / self.loads_completed

    @property
    def avg_congestion_latency(self) -> float:
        """Congestion-induced extra latency (Figure 12)."""
        return self.avg_load_latency - self.avg_intrinsic_latency


class Machine:
    """One manycore instance bound to a workload.

    ``workload`` maps each compute coordinate to an operation iterator
    (see :mod:`repro.manycore.kernels`).  ``hash_fn`` selects the LLC
    interleaving ("ipoly" per the paper, "modulo" for the ablation).
    """

    def __init__(
        self,
        config: MachineConfig,
        workload: Dict[Coord, Iterator[Tuple]],
        hash_fn: str = "ipoly",
        recorder: Optional["TraceRecorder"] = None,
    ) -> None:
        self.config = config
        self.cycle = 0
        #: Optional injection-trace capture (see :mod:`repro.sim.trace`):
        #: when set, every accepted injection on either network is
        #: recorded, at a cost of one method call per injection.
        self.recorder = recorder
        self._hash = ipoly_hash if hash_fn == "ipoly" else modulo_hash
        self._mem_coords = config.memory_coords()
        self._intrinsic_cache: Dict[Tuple[Coord, Coord], int] = {}

        # Endpoints.
        self.cores: Dict[Coord, Core] = {}
        self.servers: Dict[Coord, ScratchpadServer] = {}
        self.memories: Dict[Coord, MemoryTile] = {}
        for coord in config.compute_coords():
            ops = workload.get(coord, iter(()))
            self.cores[coord] = Core(coord, ops, self)
            self.servers[coord] = ScratchpadServer(
                coord, config.inbox_capacity
            )
        for coord in self._mem_coords:
            self.memories[coord] = MemoryTile(
                coord,
                config.inbox_capacity,
                config.mem_latency,
                config.amo_service,
            )

        # Networks: requests X-Y, responses Y-X.
        self.fwd = Network(
            config.forward_config,
            sink_factory=lambda c: self.servers[c],
            memory_sink_factory=lambda c: self.memories[c],
        )
        self.rev = Network(
            config.reverse_config,
            sink_factory=lambda c: _CoreSink(self.cores[c]),
            memory_sink_factory=_UnexpectedSink,
        )
        self._fwd_routing = self.fwd.routing
        self._rev_routing = self.rev.routing

        # Barrier state (sense-reversing).
        self._barrier_generation = 0
        self._barrier_arrivals = 0
        self._barrier_sense: Dict[Coord, int] = {}
        self._cores_remaining = len(self.cores)
        self._core_list = list(self.cores.values())
        self._server_list = list(self.servers.values())
        self._memory_list = list(self.memories.values())

    # ------------------------------------------------------------------
    # Services used by cores
    # ------------------------------------------------------------------
    def llc_coord(self, addr: int) -> Coord:
        """The LLC bank owning ``addr`` under the configured hashing."""
        bank = self._hash(addr, len(self._mem_coords))
        return self._mem_coords[bank]

    def intrinsic_latency(self, src: Coord, dest: Coord) -> int:
        """Zero-load round-trip hop latency src → dest → src."""
        key = (src, dest)
        cached = self._intrinsic_cache.get(key)
        if cached is None:
            cached = self._fwd_routing.hop_count(src, dest)
            cached += self._rev_routing.hop_count(dest, src)
            self._intrinsic_cache[key] = cached
        return cached

    def try_issue(self, core: Core, kind: str, dest: Coord,
                  cycle: int) -> bool:
        """Inject a request if the core's network outbox has room."""
        src = core.coord
        if self.fwd.source_queue_len(src) >= self.config.fifo_depth:
            return False
        service = self._service_latency(kind, dest)
        intrinsic = self.intrinsic_latency(src, dest) + service
        request = Request(kind, src, cycle, intrinsic)
        self.fwd.inject(src, dest, payload=request)
        if self.recorder is not None:
            self.recorder.record("fwd", cycle, src, dest)
        return True

    def _service_latency(self, kind: str, dest: Coord) -> int:
        if dest.y in (-1, self.config.height):  # LLC bank
            if kind == "amo":
                return self.config.amo_service + self.config.mem_latency
            return self.config.mem_latency
        return 1  # scratchpad

    # Barrier protocol -------------------------------------------------
    def barrier_arrive(self, core: Core) -> None:
        self._barrier_sense[core.coord] = self._barrier_generation
        self._barrier_arrivals += 1
        if self._barrier_arrivals == self._cores_remaining:
            self._barrier_generation += 1
            self._barrier_arrivals = 0

    def barrier_released(self, core: Core) -> bool:
        return self._barrier_sense[core.coord] < self._barrier_generation

    def core_finished(self) -> None:
        self._cores_remaining -= 1
        # A finished core must not block others at a barrier.
        if (
            self._cores_remaining
            and self._barrier_arrivals == self._cores_remaining
        ):
            self._barrier_generation += 1
            self._barrier_arrivals = 0

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        cycle = self.cycle
        self.fwd.step()
        self.rev.step()
        for mem in self._memory_list:
            response = mem.pending_response(cycle)
            if response is not None and self.rev.try_inject_from_memory(
                mem.coord, response.payload.src, payload=response.payload
            ):
                if self.recorder is not None:
                    self.recorder.record(
                        "rev", cycle, mem.coord, response.payload.src
                    )
                mem.pop_response()
            mem.serve(cycle)
        rev = self.rev
        depth = self.config.fifo_depth
        for server in self._server_list:
            if server.inbox or server.outbox:
                response = server.pending_response(cycle)
                if response is not None and (
                    rev.source_queue_len(server.coord) < depth
                ):
                    rev.inject(
                        server.coord,
                        response.payload.src,
                        payload=response.payload,
                    )
                    if self.recorder is not None:
                        self.recorder.record(
                            "rev",
                            cycle,
                            server.coord,
                            response.payload.src,
                        )
                    server.pop_response()
                server.serve(cycle)
        for core in self._core_list:
            core.step(cycle)
        self.cycle += 1

    def run(self, max_cycles: int = 2_000_000,
            progress_window: int = 200_000) -> MachineStats:
        """Run to completion (all cores done) or ``max_cycles``.

        Raises :class:`SimulationError` if no core makes progress for
        ``progress_window`` cycles — the livelock/deadlock guard.
        """
        last_progress_mark = self._progress_fingerprint()
        last_check = 0
        while self._cores_remaining and self.cycle < max_cycles:
            self.step()
            if self.cycle - last_check >= progress_window:
                mark = self._progress_fingerprint()
                if mark == last_progress_mark:
                    raise SimulationError(
                        f"no core progress for {progress_window} cycles "
                        f"at cycle {self.cycle}"
                    )
                last_progress_mark = mark
                last_check = self.cycle
        return self.stats(completed=self._cores_remaining == 0)

    def finalize_traces(
        self, provenance: Optional[Dict[str, object]] = None
    ) -> Dict[str, Trace]:
        """The captured ``fwd`` / ``rev`` injection traces of this run.

        Requires a :class:`~repro.sim.trace.TraceRecorder` passed at
        construction.  The replay geometry mirrors the machine's two
        networks — same fabric, DOR order, FIFO depth, and channel
        width — minus the edge-memory endpoints, which capture remaps
        onto the adjacent edge tiles so the trace replays on a fabric
        the compiled engine lowers.
        """
        if self.recorder is None:
            raise SimulationError(
                "this machine was built without a TraceRecorder; pass "
                "recorder=TraceRecorder() to capture traces"
            )
        cfg = self.config
        base: Dict[str, object] = {
            "fifo_depth": cfg.fifo_depth,
            "channel_width_bits": cfg.channel_width_bits,
        }
        if cfg.network.lower().startswith("ruche"):
            base["half"] = True
        return self.recorder.finalize(
            width=cfg.width,
            height=cfg.height,
            duration=self.cycle,
            networks={
                "fwd": (cfg.network, {**base, "dor_order": "xy"}),
                "rev": (cfg.network, {**base, "dor_order": "yx"}),
            },
            provenance=provenance,
        )

    def _progress_fingerprint(self) -> Tuple[int, int]:
        return (
            sum(c.stats.instructions for c in self._core_list),
            sum(c.stats.loads_completed for c in self._core_list),
        )

    def stats(self, completed: Optional[bool] = None) -> MachineStats:
        if completed is None:
            completed = self._cores_remaining == 0
        cores = self._core_list
        return MachineStats(
            cycles=self.cycle,
            completed=completed,
            instructions=sum(c.stats.instructions for c in cores),
            compute_cycles=sum(c.stats.compute_cycles for c in cores),
            stall_mem=sum(c.stats.stall_mem for c in cores),
            stall_net=sum(c.stats.stall_net for c in cores),
            stall_barrier=sum(c.stats.stall_barrier for c in cores),
            loads_completed=sum(c.stats.loads_completed for c in cores),
            latency_total=sum(c.stats.latency_total for c in cores),
            intrinsic_total=sum(c.stats.intrinsic_total for c in cores),
            fwd_hop_counts=list(self.fwd.metrics.hop_counts),
            rev_hop_counts=list(self.rev.metrics.hop_counts),
            requests_served=(
                sum(m.served for m in self._memory_list)
                + sum(s.served for s in self._server_list)
            ),
        )
