"""Per-tile latency fairness analysis (paper Figure 8).

In a mesh, a tile's average latency depends strongly on its position —
edge and corner tiles see longer paths — whereas a torus is perfectly
symmetric.  The paper quantifies this as the mean and standard deviation
of per-tile average latencies under low-load uniform random traffic.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Mapping

from repro.core.coords import Coord
from repro.core.params import NetworkConfig
from repro.sim.simulator import run_synthetic


@dataclasses.dataclass(frozen=True)
class FairnessSummary:
    """Figure 8 statistics for one network."""

    config_name: str
    mean: float
    stddev: float
    min_tile: float
    max_tile: float

    @property
    def spread(self) -> float:
        return self.max_tile - self.min_tile


def summarize_per_tile(
    config_name: str, per_tile_means: Mapping[Coord, float]
) -> FairnessSummary:
    values = list(per_tile_means.values())
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return FairnessSummary(
        config_name=config_name,
        mean=mean,
        stddev=math.sqrt(var),
        min_tile=min(values),
        max_tile=max(values),
    )


def measure_fairness(
    config: NetworkConfig,
    *,
    rate: float = 0.02,
    warmup: int = 300,
    measure: int = 2000,
    seed: int = 5,
) -> FairnessSummary:
    """Run the Figure 8 experiment: low-load UR, per-source-tile stats."""
    result = run_synthetic(
        config,
        "uniform_random",
        rate,
        warmup=warmup,
        measure=measure,
        drain_limit=5000,
        seed=seed,
        track_per_source=True,
    )
    return summarize_per_tile(
        config.name, result.metrics.per_source_means()
    )


def fairness_comparison(
    summaries: Mapping[str, FairnessSummary], mesh_key: str = "mesh"
) -> Dict[str, Dict[str, float]]:
    """Stddev/mean reduction factors vs. mesh (the Figure 8 claims)."""
    mesh = summaries[mesh_key]
    return {
        name: {
            "stddev_reduction_vs_mesh": mesh.stddev / s.stddev
            if s.stddev
            else float("inf"),
            "mean_ratio_vs_mesh": s.mean / mesh.mean,
        }
        for name, s in summaries.items()
    }
