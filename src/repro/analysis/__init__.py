"""Analysis layer: curve post-processing, fairness, bandwidth, tables."""

from repro.analysis.bandwidth import (
    BandwidthRow,
    bandwidth_row,
    minimum_rf_to_match_memory,
    table4,
)
from repro.analysis.degradation import (
    degradation_curves,
    degradation_rows,
    worst_case_retention,
)
from repro.analysis.fairness import (
    FairnessSummary,
    fairness_comparison,
    measure_fairness,
    summarize_per_tile,
)
from repro.analysis.plots import ascii_curve, link_heatmap
from repro.analysis.sweeps import (
    compare_saturation,
    curve_summary,
    saturation_offered_load,
    saturation_throughput,
    zero_load_point,
)
from repro.analysis.tables import format_value, render_table

__all__ = [
    "BandwidthRow",
    "bandwidth_row",
    "table4",
    "minimum_rf_to_match_memory",
    "FairnessSummary",
    "measure_fairness",
    "summarize_per_tile",
    "fairness_comparison",
    "saturation_throughput",
    "saturation_offered_load",
    "zero_load_point",
    "curve_summary",
    "compare_saturation",
    "render_table",
    "format_value",
    "ascii_curve",
    "link_heatmap",
    "degradation_curves",
    "degradation_rows",
    "worst_case_retention",
]
