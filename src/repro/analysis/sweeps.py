"""Load–latency curve analysis (Figures 6 and 9 post-processing)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.simulator import RunResult


def saturation_throughput(curve: Sequence[RunResult]) -> float:
    """Saturation throughput of a load–latency sweep.

    Defined as the highest *accepted* throughput observed across the
    sweep — accepted traffic plateaus at the saturation point while
    offered load keeps rising (the standard open-loop definition).
    """
    if not curve:
        raise ValueError("empty sweep")
    return max(point.accepted_throughput for point in curve)


def zero_load_point(curve: Sequence[RunResult]) -> RunResult:
    """The lowest-load point of a sweep (the zero-load latency proxy)."""
    return min(curve, key=lambda p: p.offered_load)


def saturation_offered_load(
    curve: Sequence[RunResult], latency_factor: float = 3.0
) -> Optional[float]:
    """The offered load at which latency exceeds ``latency_factor`` times
    the lowest-load latency — the knee of the curve.  ``None`` when the
    sweep never saturates."""
    base = zero_load_point(curve).avg_latency
    for point in sorted(curve, key=lambda p: p.offered_load):
        if point.avg_latency > latency_factor * base or point.saturated:
            return point.offered_load
    return None


def curve_summary(curve: Sequence[RunResult]) -> dict:
    """Compact description of one sweep (used by experiment drivers)."""
    zero = zero_load_point(curve)
    return {
        "config": zero.config_name,
        "pattern": zero.pattern,
        "zero_load_latency": zero.avg_latency,
        "saturation_throughput": saturation_throughput(curve),
        "knee_offered_load": saturation_offered_load(curve),
        "points": [
            (p.offered_load, p.accepted_throughput, p.avg_latency)
            for p in curve
        ],
    }


def compare_saturation(
    curves: dict, baseline: str
) -> List[dict]:
    """Saturation throughput of each config relative to ``baseline``."""
    base = saturation_throughput(curves[baseline])
    rows = []
    for name, curve in curves.items():
        sat = saturation_throughput(curve)
        rows.append({
            "config": name,
            "saturation": sat,
            "vs_baseline": sat / base if base else float("nan"),
        })
    return rows
