"""Graceful-degradation curves: performance vs. injected fault count.

Post-processing for fault-injection campaigns.  Each campaign row is a
dict carrying at least a grouping key (``config``), an x-axis key
(``fault_count``), and absolute metrics (saturation throughput,
zero-load latency).  This module normalises those against each group's
healthy (zero-fault) row, yielding the fraction of fault-free
performance retained at each fault count — the graceful-degradation
story: a mesh loses its only minimal path when a link dies, while Ruche
channels give the fault-aware tables detour diversity, so Ruche curves
stay near 1.0 where mesh curves dive.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def degradation_curves(
    rows: Sequence[Dict[str, Any]],
    *,
    group_key: str = "config",
    x_key: str = "fault_count",
    throughput_key: str = "saturation_throughput",
    latency_key: str = "zero_load_latency",
) -> Dict[str, List[Dict[str, Any]]]:
    """Group campaign rows and normalise against each group's baseline.

    Returns ``{group: [point, ...]}`` with points sorted by ``x_key``.
    Each point copies the input row plus two derived fields:

    * ``throughput_frac`` — saturation throughput relative to the
      group's ``x_key == 0`` row;
    * ``latency_frac`` — zero-load latency relative to the same row
      (>1.0 means fault detours lengthened paths).

    Rows marked ``failed`` are skipped.  A group without a zero-fault
    baseline raises ``ValueError`` — a degradation fraction without a
    healthy reference is meaningless.
    """
    groups: Dict[str, List[Dict[str, Any]]] = {}
    for row in rows:
        if row.get("failed"):
            continue
        groups.setdefault(row[group_key], []).append(row)

    curves: Dict[str, List[Dict[str, Any]]] = {}
    for group, members in groups.items():
        members = sorted(members, key=lambda r: r[x_key])
        baselines = [r for r in members if r[x_key] == 0]
        if not baselines:
            raise ValueError(
                f"group {group!r} has no zero-{x_key} baseline row"
            )
        base = baselines[0]
        base_tp = base[throughput_key]
        base_lat = base[latency_key]
        points = []
        for row in members:
            point = dict(row)
            point["throughput_frac"] = (
                row[throughput_key] / base_tp if base_tp else float("nan")
            )
            point["latency_frac"] = (
                row[latency_key] / base_lat if base_lat else float("nan")
            )
            points.append(point)
        curves[group] = points
    return curves


def worst_case_retention(
    curves: Dict[str, List[Dict[str, Any]]],
) -> Dict[str, float]:
    """Lowest ``throughput_frac`` per group — a one-number resilience
    summary (1.0 means no measured degradation at any fault count)."""
    return {
        group: min(p["throughput_frac"] for p in points)
        for group, points in curves.items()
    }


def degradation_rows(
    curves: Dict[str, List[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Flatten curves back to a row list (for ``render_table``), keeping
    the derived fraction columns and group-then-x ordering."""
    flat: List[Dict[str, Any]] = []
    for group in sorted(curves):
        flat.extend(curves[group])
    return flat
