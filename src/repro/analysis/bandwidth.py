"""Analytic bandwidth-ratio analysis (paper Table 4 and Section 4.5).

Compares each design point's vertical-cut bisection bandwidth against its
memory-tile bandwidth.  The paper's design guideline: *the bisection
bandwidth should be greater than or equal to the memory-tile bandwidth*,
and the Ruche Factor is the knob that gets it there without widening
channels.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.core.params import NetworkConfig
from repro.core.topology import make_topology


@dataclasses.dataclass(frozen=True)
class BandwidthRow:
    """One row of Table 4."""

    network_size: str
    aspect_ratio: str
    noc: str
    bisection_bw: int
    memory_tile_bw: int
    compute_memory_ratio: str

    @property
    def meets_guideline(self) -> bool:
        """Highlighted rows: bisection BW >= memory-tile BW."""
        return self.bisection_bw >= self.memory_tile_bw


def _ratio(a: int, b: int) -> str:
    from math import gcd

    g = gcd(a, b)
    return f"{a // g}:{b // g}"


def bandwidth_row(config: NetworkConfig) -> BandwidthRow:
    """Table 4 row for one design point (Half Ruche / mesh / half-torus)."""
    topo = make_topology(config)
    width, height = config.width, config.height
    return BandwidthRow(
        network_size=f"{width}x{height}",
        aspect_ratio=_ratio(width, height),
        noc=config.name,
        bisection_bw=topo.bisection_channels("vertical"),
        memory_tile_bw=topo.memory_tile_bandwidth(),
        compute_memory_ratio=_ratio(width * height, 2 * width),
    )


def table4(
    sizes: Optional[List[Tuple[int, int]]] = None,
    nocs: Optional[List[str]] = None,
) -> List[BandwidthRow]:
    """The full Table 4 (paper sizes and NoCs by default)."""
    if sizes is None:
        sizes = [(16, 8), (32, 16), (64, 8), (32, 8)]
    if nocs is None:
        nocs = ["mesh", "ruche2", "ruche3"]
    rows = []
    for width, height in sizes:
        for noc in nocs:
            config = NetworkConfig.from_name(
                noc, width, height, half=noc.startswith("ruche")
            )
            rows.append(bandwidth_row(config))
    return rows


def minimum_rf_to_match_memory(width: int, height: int,
                               max_rf: int = 16) -> Optional[int]:
    """Smallest Ruche Factor whose bisection matches memory bandwidth.

    Reproduces the paper's observations that 32x8 needs RF=3 for a 1:1
    match while 64x8 'would require as high as Ruche7'.
    """
    for rf in range(1, min(max_rf, width - 1) + 1):
        name = f"ruche{rf}"
        config = NetworkConfig.from_name(name, width, height, half=True)
        row = bandwidth_row(config)
        if row.meets_guideline:
            return rf
    return None
