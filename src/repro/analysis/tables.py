"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence


def format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
    if value is None:
        return "-"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        table.append([format_value(row.get(c)) for c in columns])
    widths = [
        max(len(line[i]) for line in table) for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header, *body = table
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
    return "\n".join(lines)
