"""Text-mode figures for experiment reports.

The paper's figures are curves (load–latency) and heatmaps (per-link
utilization).  These renderers produce terminal-friendly versions so the
experiment drivers can emit the *figure*, not just its underlying rows.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.coords import Direction


def ascii_curve(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 16,
    x_label: str = "offered load",
    y_label: str = "latency",
    y_cap: float = None,
) -> str:
    """Plot one or more (x, y) series as an ASCII scatter.

    Each series gets a marker letter; points beyond ``y_cap`` clamp to
    the top row (how saturated points usually render in NoC papers).
    """
    points = [
        (x, y) for pts in series.values() for x, y in pts
        if y == y
    ]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [min(p[1], y_cap) if y_cap else p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]
    markers = "ox+*#@%&"
    legend = []
    for marker, (name, pts) in zip(markers, series.items()):
        legend.append(f"{marker}={name}")
        for x, y in pts:
            if y != y:
                continue
            if y_cap:
                y = min(y, y_cap)
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker
    lines = [f"{y_label} (max {y_hi:.3g})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {x_lo:.3g} .. {x_hi:.3g}    " + "  ".join(legend)
    )
    return "\n".join(lines)


def link_heatmap(
    link_counts: Mapping, width: int, height: int,
    direction: Direction = Direction.E,
) -> str:
    """Render per-tile utilization of one channel direction as a grid.

    Intensity scale: ``.:-=+*#%@`` from idle to the hottest link.  Makes
    the mesh's bisection bottleneck visible at a glance.
    """
    counts: Dict[Tuple[int, int], float] = {}
    for (coord, out_idx), count in link_counts.items():
        if out_idx == int(direction):
            counts[(coord.x, coord.y)] = count
    if not counts:
        return "(no traffic in that direction)"
    peak = max(counts.values())
    scale = " .:-=+*#%@"
    lines = [f"{direction.name}-channel traffic (peak {peak})"]
    for y in range(height):
        row = []
        for x in range(width):
            value = counts.get((x, y), 0)
            idx = round(value / peak * (len(scale) - 1)) if peak else 0
            row.append(scale[idx])
        lines.append("|" + "".join(row) + "|")
    return "\n".join(lines)
