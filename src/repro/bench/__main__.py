"""Command-line bench runner.

Examples::

    python -m repro.bench --json BENCH_noc.json        # refresh baseline
    python -m repro.bench --quick --json report.json \\
        --baseline BENCH_noc.json                      # CI regression gate
    python -m repro.bench --engine compiled            # one engine only
    python -m repro.bench --profile torus-64x8-ur      # cProfile a case
    python -m repro.bench --markdown report.json       # render a report
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import (
    BENCH_ENGINES,
    CASES,
    compare_to_baseline,
    load_report,
    profile_case,
    render_markdown,
    run_bench,
    write_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Measure simulator cycles/sec on canonical configs.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer repeats and no campaign-scaling timing (CI mode); "
             "cycles/sec stays comparable to full-mode baselines",
    )
    parser.add_argument("--json", metavar="FILE",
                        help="write the report as JSON to FILE")
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="compare against a committed baseline report; exit 1 on "
             "regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20, metavar="FRAC",
        help="allowed fractional slowdown vs the baseline "
             "(default 0.20 = 20%%)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--engine", choices=BENCH_ENGINES + ("both",), default="both",
        help="simulation engine(s) to measure (default: both)",
    )
    parser.add_argument(
        "--profile", metavar="CASE", choices=tuple(CASES),
        help="cProfile one canonical case (top 20 by cumulative time) "
             "instead of benchmarking; honours --engine",
    )
    parser.add_argument(
        "--markdown", metavar="FILE",
        help="render FILE (a bench report JSON written by --json) as a "
             "GitHub-flavoured markdown summary on stdout and exit; "
             "no benchmarks are run",
    )
    args = parser.parse_args(argv)

    if args.markdown:
        print(render_markdown(load_report(args.markdown)), end="")
        return 0

    engines = (
        BENCH_ENGINES if args.engine == "both" else (args.engine,)
    )

    if args.profile:
        for engine in engines:
            print(f"== {args.profile} [{engine}] ==")
            print(profile_case(args.profile, seed=args.seed,
                               engine=engine))
        return 0

    mode = "quick" if args.quick else "full"
    report = run_bench(mode=mode, seed=args.seed, engines=engines)

    for case in report["cases"]:
        speedup = case.get("speedup_vs_reference")
        suffix = f" ({speedup:.2f}x vs reference)" if speedup else ""
        print(
            f"{case['name']:24s} [{case['engine']:9s}] "
            f"cycles={case['total_cycles']:6d} "
            f"best={case['best_seconds']:.3f}s "
            f"cps={case['cycles_per_sec']:,.0f}{suffix}"
        )
    campaign = report.get("campaign")
    if campaign is not None:
        timings = campaign["wall_seconds_by_jobs"]
        per_jobs = ", ".join(
            f"jobs={j}: {t:.2f}s" for j, t in timings.items()
        )
        speedup = campaign.get("speedup")
        suffix = f"; speedup {speedup:.2f}x" if speedup else ""
        print(
            f"campaign ({campaign['grid_rows']} rows): {per_jobs}; "
            f"rows identical: {campaign['rows_identical']}{suffix}"
        )
    batched = report.get("campaign_batched")
    if batched is not None:
        per_mode = ", ".join(
            f"{label}: {t:.2f}s"
            for label, t in batched["wall_seconds"].items()
        )
        speedup = batched.get("speedup_vs_unbatched")
        suffix = f"; speedup {speedup:.2f}x" if speedup else ""
        print(
            f"campaign batched ({batched['grid_rows']} rows): "
            f"{per_mode}; rows identical: "
            f"{batched['rows_identical']}{suffix}"
        )

    if args.json:
        write_report(report, args.json)
        print(f"wrote {args.json}")

    if args.baseline:
        baseline = load_report(args.baseline)
        regressions, notes = compare_to_baseline(
            report, baseline, tolerance=args.tolerance
        )
        for note in notes:
            print(f"NOTE: {note}")
        if regressions:
            for regression in regressions:
                print(f"REGRESSION: {regression}", file=sys.stderr)
            return 1
        print(
            f"bench OK: within {args.tolerance * 100:.0f}% of "
            f"{args.baseline}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
