"""Microbenchmark harness: cycles/sec on canonical design points.

The repo's performance trajectory is tracked by ``BENCH_noc.json`` at
the repo root — the committed baseline this harness regenerates and CI
regresses against (the ``bench-regression`` job runs ``python -m
repro.bench --quick`` and fails when any case slows past the tolerance
gate).  Three canonical configs cover the simulator's three router
models:

* ``mesh-8x8-ur`` — wormhole router, the smallest paper array;
* ``halfruche2-16x8-ur`` — the paper's flagship Half Ruche RF=2 point
  (and the acceptance config for hot-path optimizations);
* ``torus-64x8-ur`` — VC router with wavefront allocation at the
  manycore aspect ratio.

Further cases pin fault-schedule compilation (``torus-64x8-ur-faults``),
the port-graph 3-D lowering (``torus3d-8x8x4-ur``), and the
trace-replay fast path (``manycore-replay`` — a captured manycore
workload replayed at compiled speed, gated >= 4x over reference).

Each case is measured once per registered simulation engine
(``reference`` and ``compiled`` — see :data:`repro.core.registry.ENGINES`),
so the baseline pins both the object-per-flit simulator and the
flat-array engine, and the compiled entries carry their speedup over
the same-run reference measurement.

Simulations are fully deterministic, so wall-clock is the only noisy
input; each case reports the **best of N repeats** (the repeat least
disturbed by the host), which is the standard way to stabilize
microbenchmarks without statistics over noise you cannot control.

The full mode also times a small fig6 campaign slice at ``--jobs 1``
vs ``--jobs 4`` and checks the row sets are identical — the equality
check is a hard contract; the speedup must stay above 1.0 (parallel
mode must never cost wall-clock) but its magnitude depends on host
cores and is otherwise informational.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.spec import NetworkSpec, build_run

SCHEMA = "repro-bench-v2"
#: Schemas :func:`load_report` accepts.  v1 baselines predate per-engine
#: entries; their cases compare as ``engine == "reference"`` and they
#: may lack the ``campaign`` section.
COMPATIBLE_SCHEMAS = ("repro-bench-v1", SCHEMA)

#: Engines every bench run measures, reference first so the compiled
#: entry can report its speedup against the same report.
BENCH_ENGINES = ("reference", "compiled")

#: name -> (config factory args, pattern, rate).  Workload windows are
#: fixed across modes so cycles/sec stays comparable between ``--quick``
#: CI runs and the committed full-mode baseline.
CASES: Dict[str, Dict[str, Any]] = {
    "mesh-8x8-ur": dict(
        config=("mesh", 8, 8, {}),
        pattern="uniform_random", rate=0.25,
        warmup=200, measure=400, drain_limit=800,
    ),
    "halfruche2-16x8-ur": dict(
        config=("ruche2-depop", 16, 8, {"half": True}),
        pattern="uniform_random", rate=0.20,
        warmup=200, measure=400, drain_limit=800,
    ),
    "torus-64x8-ur": dict(
        config=("torus", 64, 8, {}),
        pattern="uniform_random", rate=0.10,
        warmup=200, measure=400, drain_limit=800,
    ),
    # Fault schedules now compile (this PR's tentpole); this case pins
    # the compiled engine's advantage *with* an active fault schedule.
    # Transient-only: VC routers reject permanent-fault rerouting in
    # both engines, and transient drops force the compiled engine onto
    # its pure-Python loops — so this is also the canonical pure-Python
    # compiled measurement.
    "torus-64x8-ur-faults": dict(
        config=("torus", 64, 8,
                {"fault_transient": 4, "fault_drop_prob": 0.01}),
        pattern="uniform_random", rate=0.10,
        warmup=200, measure=400, drain_limit=800,
    ),
    # Beyond-2-D pack: 256 nodes across 4 stacked layers, lowered from
    # the port-graph IR through the generic route tabulation (no 2-D
    # closed form anywhere on this path).
    "torus3d-8x8x4-ur": dict(
        config=("torus3d", 8, 8, {"depth": 4}),
        pattern="uniform_random", rate=0.10,
        warmup=200, measure=400, drain_limit=800,
    ),
    # Trace capture/replay: a fig10-class manycore workload captured
    # once from the execution-driven machine (untimed, at spec-build
    # time via the manycore run cache), then replayed as a pure
    # injection schedule.  The compiled leg runs through
    # run_compiled_batch — the figure drivers' submission path, where
    # the C kernel consumes the trace natively — and must stay >= 4x
    # the reference replay (SPEEDUP_FLOORS).
    "manycore-replay": dict(
        trace=("jacobi", "ruche2-depop", 16, 8, "quick"),
        stream="fwd",
        pattern="trace_replay", rate=1.0,
    ),
}

#: Repeats per case: quick keeps CI fast, full feeds the baseline.
REPEATS = {"quick": 2, "full": 4}

#: Hard floors on ``speedup_vs_reference`` per ``(case, engine)``.  These
#: pin engine-level wins that must never silently erode: the VC/torus C
#: kernel (this PR) took torus-64x8-ur from the pure-Python outlier
#: (~3x) to parity with the other C-kernel cases, and the gate keeps it
#: there.  Applied only when the report actually carries the speedup
#: (i.e. both engines were measured).
SPEEDUP_FLOORS: Dict[Tuple[str, str], float] = {
    ("torus-64x8-ur", "compiled"): 5.0,
    ("manycore-replay", "compiled"): 4.0,
}

#: Floor on the batched campaign's speedup over the per-row compiled
#: campaign (same host, same run — not a cross-host comparison).
BATCHED_SPEEDUP_FLOOR = 2.0

#: Floor on the ``--jobs 4`` campaign speedup, applied only when the
#: measuring host actually had >= 4 schedulable CPUs.
CAMPAIGN_JOBS_SPEEDUP_FLOOR = 2.5


def _case_spec(
    name: str, seed: int = 1, engine: Optional[str] = None
) -> NetworkSpec:
    """The declarative design point behind one canonical case."""
    case = CASES[name]
    if "trace" in case:
        from repro.experiments.manycore_runs import write_traces
        from repro.sim.trace import replay_spec

        paths = write_traces(case["trace"])
        return replay_spec(
            paths[case.get("stream", "fwd")],
            engine=engine or "compiled",
            seed=seed,
        )
    config_name, width, height, kwargs = case["config"]
    return NetworkSpec.for_network(
        config_name,
        width,
        height,
        pattern=case["pattern"],
        rate=case["rate"],
        warmup=case["warmup"],
        measure=case["measure"],
        drain_limit=case["drain_limit"],
        seed=seed,
        engine=engine,
        **kwargs,
    )


def measure_case(
    name: str,
    repeats: int,
    seed: int = 1,
    engine: str = "reference",
) -> Dict[str, Any]:
    """Best-of-``repeats`` cycles/sec for one canonical case/engine."""
    case = CASES[name]
    spec = _case_spec(name, seed=seed, engine=engine)
    if "trace" in case and engine == "compiled":
        # Replay rides the batch submission path the figure drivers
        # use, where the C kernel consumes the trace natively.
        from repro.sim.fastsim import run_compiled_batch

        def runner(s: NetworkSpec) -> Any:
            outcome = run_compiled_batch([s])[0]
            if isinstance(outcome, Exception):
                raise outcome
            return outcome
    else:
        runner = build_run
    best_seconds = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = runner(spec)
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return {
        "name": name,
        "engine": engine,
        "pattern": case["pattern"],
        "rate": case["rate"],
        "total_cycles": result.total_cycles,
        "best_seconds": round(best_seconds, 6),
        "cycles_per_sec": round(result.total_cycles / best_seconds, 1),
    }


def profile_case(
    name: str,
    seed: int = 1,
    engine: str = "reference",
    limit: int = 20,
) -> str:
    """cProfile one canonical case; returns the top-``limit`` report.

    Sorted by cumulative time, which surfaces the phase structure
    (stepping vs injection vs stats) rather than leaf churn.
    """
    import cProfile
    import io
    import pstats

    spec = _case_spec(name, seed=seed, engine=engine)
    build_run(spec)  # warm route tables / native kernel out of the profile
    profiler = cProfile.Profile()
    profiler.enable()
    build_run(spec)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(limit)
    return stream.getvalue()


def measure_campaign_scaling(
    jobs_list: Tuple[int, ...] = (1, 4),
    engine: Optional[str] = "compiled",
    repeats: int = 3,
) -> Dict[str, Any]:
    """Wall-clock a small fig6 slice at each worker count.

    The row sets must be identical across worker counts (the campaign's
    determinism contract).  Every leg is measured with the same
    protocol — caches warmed by one untimed campaign, then best of
    ``repeats`` — so the speedup isolates pure worker scheduling
    instead of conflating it with one-time cache fills (the old
    cold-first-leg protocol systematically flattered the multi-worker
    leg).  Campaigns run batched, exactly as the figure drivers submit
    them.  The report records ``usable_cpus`` so the regression gate
    can tell "parallel mode broke" from "the host had one CPU":
    anything below 1.0 on a multi-CPU host is gated by
    :func:`compare_to_baseline`, and on a host with >= 4 schedulable
    CPUs the ``--jobs 4`` speedup must clear
    :data:`CAMPAIGN_JOBS_SPEEDUP_FLOOR`.
    """
    from repro.core.routing import clear_routing_caches
    from repro.experiments.campaign import _usable_cpus, run_campaign
    from repro.experiments.fig6_synthetic_full import _run_row, make_grid
    from repro.experiments.sweeps import run_rate_sweep_rows
    from repro.sim.fastsim import clear_compile_caches

    grid = make_grid("smoke", seed=1, engine=engine)
    clear_routing_caches()
    clear_compile_caches()
    run_campaign(grid, _run_row, batch_runner=run_rate_sweep_rows)
    timings: Dict[str, float] = {}
    row_sets: List[List[dict]] = []
    for jobs in jobs_list:
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            outcome = run_campaign(
                grid, _run_row, jobs=jobs,
                batch_runner=run_rate_sweep_rows,
            )
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        timings[str(jobs)] = round(best, 6)
        row_sets.append(outcome.rows)
    identical = all(rows == row_sets[0] for rows in row_sets[1:])
    report: Dict[str, Any] = {
        "grid_rows": len(grid),
        "engine": engine,
        "repeats": repeats,
        "usable_cpus": _usable_cpus(),
        "wall_seconds_by_jobs": timings,
        "rows_identical": identical,
    }
    first, last = str(jobs_list[0]), str(jobs_list[-1])
    if timings[last] > 0:
        report["speedup"] = round(timings[first] / timings[last], 3)
    return report


def measure_campaign_batched(
    engine: Optional[str] = "compiled",
    repeats: int = 3,
) -> Dict[str, Any]:
    """Batched vs per-row campaign wall-clock on the fig6 smoke slice.

    Both modes run the identical grid through :func:`run_campaign` —
    per-row submits one :func:`build_run` per spec; batched stacks every
    row's specs into structure-of-arrays
    :func:`~repro.sim.fastsim.run_compiled_batch` invocations via
    ``batch_runner`` (exactly as the figure drivers do).  Caches are
    warmed by one untimed campaign first, then each mode reports best
    of ``repeats``.  ``rows_identical`` is the bit-identity contract
    (hard-gated); ``speedup_vs_unbatched`` must clear
    :data:`BATCHED_SPEEDUP_FLOOR` — both are same-host relative
    measurements, so the gate is host-independent.
    """
    from repro.core.routing import clear_routing_caches
    from repro.experiments.campaign import run_campaign
    from repro.experiments.fig6_synthetic_full import _run_row, make_grid
    from repro.experiments.sweeps import run_rate_sweep_rows
    from repro.sim.fastsim import clear_compile_caches

    grid = make_grid("smoke", seed=1, engine=engine)
    clear_routing_caches()
    clear_compile_caches()
    run_campaign(grid, _run_row, batch_runner=run_rate_sweep_rows)
    timings: Dict[str, float] = {}
    rows_by_mode: Dict[str, List[dict]] = {}
    for label, kwargs in (
        ("per_row", {}),
        ("batched", {"batch_runner": run_rate_sweep_rows}),
    ):
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            outcome = run_campaign(grid, _run_row, **kwargs)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        timings[label] = round(best, 6)
        rows_by_mode[label] = outcome.rows
    report: Dict[str, Any] = {
        "grid_rows": len(grid),
        "engine": engine,
        "repeats": repeats,
        "wall_seconds": timings,
        "rows_identical": (
            rows_by_mode["per_row"] == rows_by_mode["batched"]
        ),
    }
    if timings["batched"] > 0:
        report["speedup_vs_unbatched"] = round(
            timings["per_row"] / timings["batched"], 3
        )
    return report


def run_bench(
    mode: str = "full",
    include_campaign: Optional[bool] = None,
    seed: int = 1,
    engines: Sequence[str] = BENCH_ENGINES,
) -> Dict[str, Any]:
    """Measure every canonical case per engine; returns the report dict.

    Cases are ordered case-major, reference engine first, so each
    compiled entry can carry ``speedup_vs_reference`` against the
    measurement taken moments earlier on the same host.
    """
    if mode not in REPEATS:
        raise ValueError(f"mode must be one of {sorted(REPEATS)}")
    if include_campaign is None:
        # Both modes: the campaign sections are same-host relative
        # measurements on a smoke grid (seconds, not minutes), and the
        # batched-vs-per-row contract is exactly what CI must gate.
        include_campaign = True
    cases: List[Dict[str, Any]] = []
    for name in CASES:
        reference_cps: Optional[float] = None
        for engine in engines:
            case = measure_case(
                name, REPEATS[mode], seed=seed, engine=engine
            )
            if engine == "reference":
                reference_cps = case["cycles_per_sec"]
            elif reference_cps:
                case["speedup_vs_reference"] = round(
                    case["cycles_per_sec"] / reference_cps, 2
                )
            cases.append(case)
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "mode": mode,
        "cases": cases,
    }
    if include_campaign:
        report["campaign"] = measure_campaign_scaling()
        report["campaign_batched"] = measure_campaign_batched()
    return report


def compare_to_baseline(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.20,
) -> Tuple[List[str], List[str]]:
    """Gate a report against a committed baseline.

    Returns ``(regressions, notes)``: a case regresses when its
    cycles/sec falls more than ``tolerance`` below the baseline entry
    for the same ``(name, engine)`` pair (a v1 baseline entry without
    an ``engine`` field compares as ``"reference"``); a case that
    *improved* past the tolerance is reported as a note suggesting a
    baseline refresh (never a failure).  A case present in the baseline
    but missing from the report is a regression — a silently dropped
    benchmark must not pass the gate.  Compiled entries additionally
    must clear their :data:`SPEEDUP_FLOORS` (when the report carries
    ``speedup_vs_reference``).  The report's campaign section, when
    present, must have identical rows across ``--jobs`` values and a
    speedup of at least 1.0 (only judged when the measuring host had
    more than one schedulable CPU — a 1-CPU host legitimately runs
    every ``--jobs`` value inline); on a host with >= 4 CPUs the
    speedup must also clear :data:`CAMPAIGN_JOBS_SPEEDUP_FLOOR`.  The
    ``campaign_batched`` section must have batched rows bit-identical
    to per-row rows and a ``speedup_vs_unbatched`` of at least
    :data:`BATCHED_SPEEDUP_FLOOR`; dropping the section while the
    baseline carries one is a regression.  A baseline without either
    campaign section (v1, or an old quick report) is tolerated.
    """

    def case_key(case: Dict[str, Any]) -> Tuple[str, str]:
        return case["name"], case.get("engine", "reference")

    measured = {case_key(c): c for c in report.get("cases", ())}
    regressions: List[str] = []
    notes: List[str] = []
    for base_case in baseline.get("cases", ()):
        name, engine = case_key(base_case)
        label = f"{name}[{engine}]"
        base_cps = base_case["cycles_per_sec"]
        case = measured.get((name, engine))
        if case is None:
            regressions.append(f"{label}: missing from report")
            continue
        cps = case["cycles_per_sec"]
        floor = base_cps * (1.0 - tolerance)
        if cps < floor:
            regressions.append(
                f"{label}: {cps:,.0f} cycles/s is below the tolerance "
                f"floor {floor:,.0f} (baseline {base_cps:,.0f}, "
                f"-{(1 - cps / base_cps) * 100:.1f}%)"
            )
        elif cps > base_cps * (1.0 + tolerance):
            notes.append(
                f"{label}: {cps:,.0f} cycles/s beats the baseline "
                f"{base_cps:,.0f} by more than {tolerance * 100:.0f}% — "
                "consider refreshing BENCH_noc.json"
            )
    for case in report.get("cases", ()):
        key = case_key(case)
        floor = SPEEDUP_FLOORS.get(key)
        speedup = case.get("speedup_vs_reference")
        if floor is not None and speedup is not None and speedup < floor:
            regressions.append(
                f"{key[0]}[{key[1]}]: speedup {speedup}x vs reference "
                f"is below the pinned floor {floor}x"
            )
    campaign = report.get("campaign")
    if campaign is not None:
        if not campaign.get("rows_identical", True):
            regressions.append(
                "campaign rows differ across --jobs values "
                "(determinism contract broken)"
            )
        speedup = campaign.get("speedup")
        usable = campaign.get("usable_cpus")  # absent in old reports
        multi_cpu = usable is None or usable > 1
        if speedup is not None and speedup < 1.0 and multi_cpu:
            regressions.append(
                f"campaign speedup {speedup} < 1.0 — parallel mode "
                "costs wall-clock over a serial rerun"
            )
        if (
            speedup is not None
            and usable is not None
            and usable >= 4
            and speedup < CAMPAIGN_JOBS_SPEEDUP_FLOOR
        ):
            regressions.append(
                f"campaign --jobs 4 speedup {speedup}x is below the "
                f"floor {CAMPAIGN_JOBS_SPEEDUP_FLOOR}x on a "
                f"{usable}-CPU host"
            )
        base_campaign = baseline.get("campaign")  # absent in v1/quick
        if (
            base_campaign is not None
            and speedup is not None
            and base_campaign.get("speedup") is not None
            and speedup < base_campaign["speedup"] * (1.0 - tolerance)
        ):
            notes.append(
                f"campaign speedup {speedup} fell more than "
                f"{tolerance * 100:.0f}% below the baseline "
                f"{base_campaign['speedup']} (host-dependent, not gated)"
            )
    batched = report.get("campaign_batched")
    if batched is None:
        if baseline.get("campaign_batched") is not None:
            regressions.append(
                "campaign_batched section missing from report while "
                "the baseline carries one"
            )
    else:
        if not batched.get("rows_identical", True):
            regressions.append(
                "batched campaign rows differ from per-row rows "
                "(bit-identity contract broken)"
            )
        speedup = batched.get("speedup_vs_unbatched")
        if speedup is not None and speedup < BATCHED_SPEEDUP_FLOOR:
            regressions.append(
                f"batched campaign speedup {speedup}x vs per-row is "
                f"below the floor {BATCHED_SPEEDUP_FLOOR}x"
            )
    return regressions, notes


def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    if report.get("schema") not in COMPATIBLE_SCHEMAS:
        raise ValueError(
            f"{path}: unknown bench schema {report.get('schema')!r} "
            f"(expected one of {', '.join(COMPATIBLE_SCHEMAS)})"
        )
    return report


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")


def render_markdown(report: Dict[str, Any]) -> str:
    """A bench report as a compact GitHub-flavoured markdown summary.

    The CI bench job appends this to ``$GITHUB_STEP_SUMMARY`` so the
    cycles/sec and speedup trend is readable per commit without
    downloading the JSON artifact.
    """
    lines = [
        f"### Bench ({report.get('mode', 'unknown')} mode)",
        "",
        "| case | engine | cycles | best (s) | cycles/sec | vs reference |",
        "| --- | --- | ---: | ---: | ---: | ---: |",
    ]
    for case in report.get("cases", ()):
        speedup = case.get("speedup_vs_reference")
        lines.append(
            "| {name} | {engine} | {cycles:,} | {secs:.3f} "
            "| {cps:,.0f} | {sp} |".format(
                name=case["name"],
                engine=case.get("engine", "reference"),
                cycles=case["total_cycles"],
                secs=case["best_seconds"],
                cps=case["cycles_per_sec"],
                sp=f"{speedup:.2f}x" if speedup else "—",
            )
        )
    campaign = report.get("campaign")
    if campaign is not None:
        timings = ", ".join(
            f"jobs={j}: {t:.2f}s"
            for j, t in campaign["wall_seconds_by_jobs"].items()
        )
        speedup = campaign.get("speedup")
        lines += [
            "",
            f"**Campaign scaling** ({campaign['grid_rows']} rows, "
            f"{campaign.get('usable_cpus', '?')} usable CPUs): "
            f"{timings}; rows identical: "
            f"{campaign['rows_identical']}"
            + (f"; speedup {speedup:.2f}x" if speedup else ""),
        ]
    batched = report.get("campaign_batched")
    if batched is not None:
        timings = ", ".join(
            f"{label}: {t:.2f}s"
            for label, t in batched["wall_seconds"].items()
        )
        speedup = batched.get("speedup_vs_unbatched")
        lines += [
            "",
            f"**Batched campaign** ({batched['grid_rows']} rows): "
            f"{timings}; rows identical: {batched['rows_identical']}"
            + (f"; speedup {speedup:.2f}x vs per-row" if speedup else ""),
        ]
    return "\n".join(lines) + "\n"
