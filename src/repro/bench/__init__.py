"""Microbenchmark harness: cycles/sec on canonical design points.

The repo's performance trajectory is tracked by ``BENCH_noc.json`` at
the repo root — the committed baseline this harness regenerates and CI
regresses against (the ``bench-regression`` job runs ``python -m
repro.bench --quick`` and fails when any case slows past the tolerance
gate).  Three canonical configs cover the simulator's three router
models:

* ``mesh-8x8-ur`` — wormhole router, the smallest paper array;
* ``halfruche2-16x8-ur`` — the paper's flagship Half Ruche RF=2 point
  (and the acceptance config for hot-path optimizations);
* ``torus-64x8-ur`` — VC router with wavefront allocation at the
  manycore aspect ratio.

Simulations are fully deterministic, so wall-clock is the only noisy
input; each case reports the **best of N repeats** (the repeat least
disturbed by the host), which is the standard way to stabilize
microbenchmarks without statistics over noise you cannot control.

The full mode also times a small fig6 campaign slice at ``--jobs 1``
vs ``--jobs 4`` and checks the row sets are identical — wall-clock
speedup is informational (it depends on host cores), the equality
check is not.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.spec import NetworkSpec, build_run

SCHEMA = "repro-bench-v1"

#: name -> (config factory args, pattern, rate).  Workload windows are
#: fixed across modes so cycles/sec stays comparable between ``--quick``
#: CI runs and the committed full-mode baseline.
CASES: Dict[str, Dict[str, Any]] = {
    "mesh-8x8-ur": dict(
        config=("mesh", 8, 8, {}),
        pattern="uniform_random", rate=0.25,
        warmup=200, measure=400, drain_limit=800,
    ),
    "halfruche2-16x8-ur": dict(
        config=("ruche2-depop", 16, 8, {"half": True}),
        pattern="uniform_random", rate=0.20,
        warmup=200, measure=400, drain_limit=800,
    ),
    "torus-64x8-ur": dict(
        config=("torus", 64, 8, {}),
        pattern="uniform_random", rate=0.10,
        warmup=200, measure=400, drain_limit=800,
    ),
}

#: Repeats per case: quick keeps CI fast, full feeds the baseline.
REPEATS = {"quick": 2, "full": 4}


def _case_spec(name: str, seed: int = 1) -> NetworkSpec:
    """The declarative design point behind one canonical case."""
    case = CASES[name]
    config_name, width, height, kwargs = case["config"]
    return NetworkSpec.for_network(
        config_name,
        width,
        height,
        pattern=case["pattern"],
        rate=case["rate"],
        warmup=case["warmup"],
        measure=case["measure"],
        drain_limit=case["drain_limit"],
        seed=seed,
        **kwargs,
    )


def measure_case(name: str, repeats: int, seed: int = 1) -> Dict[str, Any]:
    """Best-of-``repeats`` cycles/sec for one canonical case."""
    case = CASES[name]
    spec = _case_spec(name, seed=seed)
    best_seconds = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = build_run(spec)
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return {
        "name": name,
        "pattern": case["pattern"],
        "rate": case["rate"],
        "total_cycles": result.total_cycles,
        "best_seconds": round(best_seconds, 6),
        "cycles_per_sec": round(result.total_cycles / best_seconds, 1),
    }


def measure_campaign_scaling(
    jobs_list: Tuple[int, ...] = (1, 4)
) -> Dict[str, Any]:
    """Wall-clock a small fig6 slice at each worker count.

    The row sets must be identical across worker counts (the campaign's
    determinism contract); the speedup itself depends on host cores and
    is reported as context, never gated.
    """
    from repro.experiments.campaign import run_campaign
    from repro.experiments.fig6_synthetic_full import _run_row, make_grid

    grid = make_grid("smoke", seed=1)
    timings: Dict[str, float] = {}
    row_sets: List[List[dict]] = []
    for jobs in jobs_list:
        start = time.perf_counter()
        outcome = run_campaign(grid, _run_row, jobs=jobs)
        timings[str(jobs)] = round(time.perf_counter() - start, 6)
        row_sets.append(outcome.rows)
    identical = all(rows == row_sets[0] for rows in row_sets[1:])
    report: Dict[str, Any] = {
        "grid_rows": len(grid),
        "wall_seconds_by_jobs": timings,
        "rows_identical": identical,
    }
    first, last = str(jobs_list[0]), str(jobs_list[-1])
    if timings[last] > 0:
        report["speedup"] = round(timings[first] / timings[last], 3)
    return report


def run_bench(
    mode: str = "full",
    include_campaign: Optional[bool] = None,
    seed: int = 1,
) -> Dict[str, Any]:
    """Measure every canonical case; returns the report dict."""
    if mode not in REPEATS:
        raise ValueError(f"mode must be one of {sorted(REPEATS)}")
    if include_campaign is None:
        include_campaign = mode == "full"
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "mode": mode,
        "cases": [
            measure_case(name, REPEATS[mode], seed=seed) for name in CASES
        ],
    }
    if include_campaign:
        report["campaign"] = measure_campaign_scaling()
    return report


def compare_to_baseline(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.20,
) -> Tuple[List[str], List[str]]:
    """Gate a report against a committed baseline.

    Returns ``(regressions, notes)``: a case regresses when its
    cycles/sec falls more than ``tolerance`` below the baseline; a case
    that *improved* past the tolerance is reported as a note suggesting
    a baseline refresh (never a failure).  A case present in the
    baseline but missing from the report is a regression — a silently
    dropped benchmark must not pass the gate.
    """
    measured = {c["name"]: c for c in report.get("cases", ())}
    regressions: List[str] = []
    notes: List[str] = []
    for base_case in baseline.get("cases", ()):
        name = base_case["name"]
        base_cps = base_case["cycles_per_sec"]
        case = measured.get(name)
        if case is None:
            regressions.append(f"{name}: missing from report")
            continue
        cps = case["cycles_per_sec"]
        floor = base_cps * (1.0 - tolerance)
        if cps < floor:
            regressions.append(
                f"{name}: {cps:,.0f} cycles/s is below the tolerance "
                f"floor {floor:,.0f} (baseline {base_cps:,.0f}, "
                f"-{(1 - cps / base_cps) * 100:.1f}%)"
            )
        elif cps > base_cps * (1.0 + tolerance):
            notes.append(
                f"{name}: {cps:,.0f} cycles/s beats the baseline "
                f"{base_cps:,.0f} by more than {tolerance * 100:.0f}% — "
                "consider refreshing BENCH_noc.json"
            )
    campaign = report.get("campaign")
    if campaign is not None and not campaign.get("rows_identical", True):
        regressions.append(
            "campaign rows differ across --jobs values "
            "(determinism contract broken)"
        )
    return regressions, notes


def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unknown bench schema {report.get('schema')!r} "
            f"(expected {SCHEMA!r})"
        )
    return report


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
