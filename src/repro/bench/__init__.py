"""Microbenchmark harness: cycles/sec on canonical design points.

The repo's performance trajectory is tracked by ``BENCH_noc.json`` at
the repo root — the committed baseline this harness regenerates and CI
regresses against (the ``bench-regression`` job runs ``python -m
repro.bench --quick`` and fails when any case slows past the tolerance
gate).  Three canonical configs cover the simulator's three router
models:

* ``mesh-8x8-ur`` — wormhole router, the smallest paper array;
* ``halfruche2-16x8-ur`` — the paper's flagship Half Ruche RF=2 point
  (and the acceptance config for hot-path optimizations);
* ``torus-64x8-ur`` — VC router with wavefront allocation at the
  manycore aspect ratio.

Each case is measured once per registered simulation engine
(``reference`` and ``compiled`` — see :data:`repro.core.registry.ENGINES`),
so the baseline pins both the object-per-flit simulator and the
flat-array engine, and the compiled entries carry their speedup over
the same-run reference measurement.

Simulations are fully deterministic, so wall-clock is the only noisy
input; each case reports the **best of N repeats** (the repeat least
disturbed by the host), which is the standard way to stabilize
microbenchmarks without statistics over noise you cannot control.

The full mode also times a small fig6 campaign slice at ``--jobs 1``
vs ``--jobs 4`` and checks the row sets are identical — the equality
check is a hard contract; the speedup must stay above 1.0 (parallel
mode must never cost wall-clock) but its magnitude depends on host
cores and is otherwise informational.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.spec import NetworkSpec, build_run

SCHEMA = "repro-bench-v2"
#: Schemas :func:`load_report` accepts.  v1 baselines predate per-engine
#: entries; their cases compare as ``engine == "reference"`` and they
#: may lack the ``campaign`` section.
COMPATIBLE_SCHEMAS = ("repro-bench-v1", SCHEMA)

#: Engines every bench run measures, reference first so the compiled
#: entry can report its speedup against the same report.
BENCH_ENGINES = ("reference", "compiled")

#: name -> (config factory args, pattern, rate).  Workload windows are
#: fixed across modes so cycles/sec stays comparable between ``--quick``
#: CI runs and the committed full-mode baseline.
CASES: Dict[str, Dict[str, Any]] = {
    "mesh-8x8-ur": dict(
        config=("mesh", 8, 8, {}),
        pattern="uniform_random", rate=0.25,
        warmup=200, measure=400, drain_limit=800,
    ),
    "halfruche2-16x8-ur": dict(
        config=("ruche2-depop", 16, 8, {"half": True}),
        pattern="uniform_random", rate=0.20,
        warmup=200, measure=400, drain_limit=800,
    ),
    "torus-64x8-ur": dict(
        config=("torus", 64, 8, {}),
        pattern="uniform_random", rate=0.10,
        warmup=200, measure=400, drain_limit=800,
    ),
    # Fault schedules now compile (this PR's tentpole); this case pins
    # the compiled engine's advantage *with* an active fault schedule.
    # Transient-only: VC routers reject permanent-fault rerouting in
    # both engines, and transient drops force the compiled engine onto
    # its pure-Python loops — so this is also the canonical pure-Python
    # compiled measurement.
    "torus-64x8-ur-faults": dict(
        config=("torus", 64, 8,
                {"fault_transient": 4, "fault_drop_prob": 0.01}),
        pattern="uniform_random", rate=0.10,
        warmup=200, measure=400, drain_limit=800,
    ),
}

#: Repeats per case: quick keeps CI fast, full feeds the baseline.
REPEATS = {"quick": 2, "full": 4}


def _case_spec(
    name: str, seed: int = 1, engine: Optional[str] = None
) -> NetworkSpec:
    """The declarative design point behind one canonical case."""
    case = CASES[name]
    config_name, width, height, kwargs = case["config"]
    return NetworkSpec.for_network(
        config_name,
        width,
        height,
        pattern=case["pattern"],
        rate=case["rate"],
        warmup=case["warmup"],
        measure=case["measure"],
        drain_limit=case["drain_limit"],
        seed=seed,
        engine=engine,
        **kwargs,
    )


def measure_case(
    name: str,
    repeats: int,
    seed: int = 1,
    engine: str = "reference",
) -> Dict[str, Any]:
    """Best-of-``repeats`` cycles/sec for one canonical case/engine."""
    case = CASES[name]
    spec = _case_spec(name, seed=seed, engine=engine)
    best_seconds = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = build_run(spec)
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return {
        "name": name,
        "engine": engine,
        "pattern": case["pattern"],
        "rate": case["rate"],
        "total_cycles": result.total_cycles,
        "best_seconds": round(best_seconds, 6),
        "cycles_per_sec": round(result.total_cycles / best_seconds, 1),
    }


def profile_case(
    name: str,
    seed: int = 1,
    engine: str = "reference",
    limit: int = 20,
) -> str:
    """cProfile one canonical case; returns the top-``limit`` report.

    Sorted by cumulative time, which surfaces the phase structure
    (stepping vs injection vs stats) rather than leaf churn.
    """
    import cProfile
    import io
    import pstats

    spec = _case_spec(name, seed=seed, engine=engine)
    build_run(spec)  # warm route tables / native kernel out of the profile
    profiler = cProfile.Profile()
    profiler.enable()
    build_run(spec)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(limit)
    return stream.getvalue()


def measure_campaign_scaling(
    jobs_list: Tuple[int, ...] = (1, 4),
    engine: Optional[str] = "compiled",
) -> Dict[str, Any]:
    """Wall-clock a small fig6 slice at each worker count.

    The row sets must be identical across worker counts (the campaign's
    determinism contract).  The timing protocol is cold-first-leg: the
    routing caches are cleared before the first leg, so it pays what a
    fresh campaign pays, while later legs ride warm caches exactly as
    resumed (and forked-worker) campaigns do — the reported speedup is
    "repeat campaign at ``--jobs N`` vs fresh campaign at ``--jobs
    1``", the comparison a user actually experiences.  Anything below
    1.0 means parallel mode costs wall-clock and is gated as a
    regression by :func:`compare_to_baseline`; the magnitude above that
    depends on host cores and is informational.
    """
    from repro.core.routing import clear_routing_caches
    from repro.experiments.campaign import run_campaign
    from repro.experiments.fig6_synthetic_full import _run_row, make_grid
    from repro.sim.fastsim import clear_compile_caches

    grid = make_grid("smoke", seed=1, engine=engine)
    clear_routing_caches()
    clear_compile_caches()
    timings: Dict[str, float] = {}
    row_sets: List[List[dict]] = []
    for leg, jobs in enumerate(jobs_list):
        # The cold leg is single-shot by nature (a cache can only be
        # cold once); the warm legs use the same best-of stabilization
        # as the per-case measurements.
        best = None
        for _ in range(1 if leg == 0 else 2):
            start = time.perf_counter()
            outcome = run_campaign(grid, _run_row, jobs=jobs)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        timings[str(jobs)] = round(best, 6)
        row_sets.append(outcome.rows)
    identical = all(rows == row_sets[0] for rows in row_sets[1:])
    report: Dict[str, Any] = {
        "grid_rows": len(grid),
        "engine": engine,
        "wall_seconds_by_jobs": timings,
        "rows_identical": identical,
    }
    first, last = str(jobs_list[0]), str(jobs_list[-1])
    if timings[last] > 0:
        report["speedup"] = round(timings[first] / timings[last], 3)
    return report


def run_bench(
    mode: str = "full",
    include_campaign: Optional[bool] = None,
    seed: int = 1,
    engines: Sequence[str] = BENCH_ENGINES,
) -> Dict[str, Any]:
    """Measure every canonical case per engine; returns the report dict.

    Cases are ordered case-major, reference engine first, so each
    compiled entry can carry ``speedup_vs_reference`` against the
    measurement taken moments earlier on the same host.
    """
    if mode not in REPEATS:
        raise ValueError(f"mode must be one of {sorted(REPEATS)}")
    if include_campaign is None:
        include_campaign = mode == "full"
    cases: List[Dict[str, Any]] = []
    for name in CASES:
        reference_cps: Optional[float] = None
        for engine in engines:
            case = measure_case(
                name, REPEATS[mode], seed=seed, engine=engine
            )
            if engine == "reference":
                reference_cps = case["cycles_per_sec"]
            elif reference_cps:
                case["speedup_vs_reference"] = round(
                    case["cycles_per_sec"] / reference_cps, 2
                )
            cases.append(case)
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "mode": mode,
        "cases": cases,
    }
    if include_campaign:
        report["campaign"] = measure_campaign_scaling()
    return report


def compare_to_baseline(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.20,
) -> Tuple[List[str], List[str]]:
    """Gate a report against a committed baseline.

    Returns ``(regressions, notes)``: a case regresses when its
    cycles/sec falls more than ``tolerance`` below the baseline entry
    for the same ``(name, engine)`` pair (a v1 baseline entry without
    an ``engine`` field compares as ``"reference"``); a case that
    *improved* past the tolerance is reported as a note suggesting a
    baseline refresh (never a failure).  A case present in the baseline
    but missing from the report is a regression — a silently dropped
    benchmark must not pass the gate.  The report's campaign section,
    when present, must have identical rows across ``--jobs`` values and
    a speedup of at least 1.0; a baseline without a campaign section
    (v1, or quick mode) is tolerated.
    """

    def case_key(case: Dict[str, Any]) -> Tuple[str, str]:
        return case["name"], case.get("engine", "reference")

    measured = {case_key(c): c for c in report.get("cases", ())}
    regressions: List[str] = []
    notes: List[str] = []
    for base_case in baseline.get("cases", ()):
        name, engine = case_key(base_case)
        label = f"{name}[{engine}]"
        base_cps = base_case["cycles_per_sec"]
        case = measured.get((name, engine))
        if case is None:
            regressions.append(f"{label}: missing from report")
            continue
        cps = case["cycles_per_sec"]
        floor = base_cps * (1.0 - tolerance)
        if cps < floor:
            regressions.append(
                f"{label}: {cps:,.0f} cycles/s is below the tolerance "
                f"floor {floor:,.0f} (baseline {base_cps:,.0f}, "
                f"-{(1 - cps / base_cps) * 100:.1f}%)"
            )
        elif cps > base_cps * (1.0 + tolerance):
            notes.append(
                f"{label}: {cps:,.0f} cycles/s beats the baseline "
                f"{base_cps:,.0f} by more than {tolerance * 100:.0f}% — "
                "consider refreshing BENCH_noc.json"
            )
    campaign = report.get("campaign")
    if campaign is not None:
        if not campaign.get("rows_identical", True):
            regressions.append(
                "campaign rows differ across --jobs values "
                "(determinism contract broken)"
            )
        speedup = campaign.get("speedup")
        if speedup is not None and speedup < 1.0:
            regressions.append(
                f"campaign speedup {speedup} < 1.0 — parallel mode "
                "costs wall-clock over a serial rerun"
            )
        base_campaign = baseline.get("campaign")  # absent in v1/quick
        if (
            base_campaign is not None
            and speedup is not None
            and base_campaign.get("speedup") is not None
            and speedup < base_campaign["speedup"] * (1.0 - tolerance)
        ):
            notes.append(
                f"campaign speedup {speedup} fell more than "
                f"{tolerance * 100:.0f}% below the baseline "
                f"{base_campaign['speedup']} (host-dependent, not gated)"
            )
    return regressions, notes


def load_report(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    if report.get("schema") not in COMPATIBLE_SCHEMAS:
        raise ValueError(
            f"{path}: unknown bench schema {report.get('schema')!r} "
            f"(expected one of {', '.join(COMPATIBLE_SCHEMAS)})"
        )
    return report


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
