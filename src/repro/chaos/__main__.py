"""Command-line chaos/soak runner.

Examples::

    python -m repro.chaos                       # quick scale, serial
    python -m repro.chaos --scale smoke --jobs 2
    python -m repro.chaos --seed 7 --checkpoint chaos.json

Exit status is non-zero when any row failed outright, or when
``--expect-engine`` is given and any completed row ran on a different
engine (silent-fallback detection for CI).
"""

from __future__ import annotations

import argparse
import sys
import time


def main(argv=None) -> int:
    from repro.chaos import run

    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description=(
            "Randomized fault-campaign soak: escalating severity tiers "
            "at near-saturation load, reproducible from --seed."
        ),
    )
    parser.add_argument("--scale", choices=("smoke", "quick", "full"),
                        default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (results are bit-identical to serial)",
    )
    parser.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="JSON checkpoint file; reruns resume completed rows",
    )
    parser.add_argument(
        "--engine", metavar="NAME", default=None,
        help="simulation engine (default: compiled)",
    )
    parser.add_argument(
        "--watchdog-cycles", type=int, default=None, metavar="N",
        help="override the preset watchdog stall window",
    )
    parser.add_argument(
        "--expect-engine", metavar="NAME", default=None,
        help="fail (exit 1) unless every completed row ran on NAME "
             "(e.g. 'compiled' — catches silent fallback)",
    )
    parser.add_argument(
        "--preflight", action="store_true",
        help="statically verify the healthy design points first",
    )
    args = parser.parse_args(argv)

    start = time.time()
    result = run(
        scale=args.scale,
        seed=args.seed,
        checkpoint=args.checkpoint,
        preflight=args.preflight,
        jobs=args.jobs,
        watchdog_cycles=args.watchdog_cycles,
        engine=args.engine,
    )
    print(result.report())
    print(f"  [{time.time() - start:.1f}s]")

    status = 0
    if "FAILED ROWS" in result.notes:
        print("chaos campaign had failed rows", file=sys.stderr)
        status = 1
    if args.expect_engine:
        strays = [
            f"{row['config']}/{row['tier']}/s{row['fault_seed']}"
            f" ran on {row.get('engine')!r}"
            for row in result.rows
            if row.get("engine") != args.expect_engine
        ]
        if strays:
            print(
                f"{len(strays)} row(s) did not run on the expected "
                f"engine {args.expect_engine!r}: " + "; ".join(strays),
                file=sys.stderr,
            )
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
