"""Randomized fault-campaign (chaos/soak) harness.

A chaos campaign answers the question the curated fault studies cannot:
what happens to tail latency and per-tile fairness when a network runs
under sustained load while silicon degrades underneath it?  Each row
draws a seeded :class:`~repro.sim.faults.FaultSchedule` from an
escalating severity tier — from a healthy baseline through light
scratches to a mauled fabric mixing dead links, dead routers, and
flit-dropping channels — and simulates it on the compiled engine
(:mod:`repro.sim.fastsim`), which executes fault schedules
bit-identically to the reference engine at a multiple of its speed.

Each row runs two phases:

* **Load probe** — a descending ladder of near-saturation rates.  The
  highest rate the degraded fabric carries to completion is recorded as
  ``sustained_rate``; the lowest rate at which the forward-progress
  watchdog tripped is ``deadlock_load`` (with the snapshot summary).
  Deadlock here is data, not failure — discovering where a degraded
  fabric stops making progress is what a soak run is for.
* **Common-rate measurement** — every tier measured at one shared
  moderate rate, yielding p50/p99/p999 latency and per-tile fairness
  (max/mean ratio and coefficient of variation of per-tile means) that
  compare apples-to-apples across tiers.  Faulted rows are joined
  against their tier-0 baseline into ``*_x`` degradation ratios.

Every row also records the engine that actually ran (provenance — CI
asserts no silent fallback).  Reproducibility: the whole campaign is a
pure function of ``(scale, seed)``; fault draws come from each row's
own ``faults:*`` streams and traffic from the run seed, so
``python -m repro.chaos --scale smoke --seed 7`` emits the same rows on
every machine, serial or sharded (``--jobs``).

Runnable as ``python -m repro.chaos`` or as the registered campaign
experiment ``python -m repro.experiments chaos``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.params import NetworkConfig
from repro.errors import DeadlockError
from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.campaign import CheckpointStore, run_campaign
from repro.sim.faults import FaultSchedule
from repro.sim.metrics import fairness_stats, tail_latency_stats
from repro.sim.simulator import run_synthetic
from repro.sim.watchdog import WatchdogConfig

PATTERN = "uniform_random"

#: Escalating severity tiers.  Counts are per-64-tile quanta (scaled by
#: network size), so a tier means the same fault *density* at every
#: scale.  Tier 0 is the healthy control every degradation ratio is
#: measured against; ``degraded_model`` pins all tiers — including the
#: baseline — to the fault-tolerant crossbar + BFS-table
#: microarchitecture, so the ratios isolate fault impact rather than
#: the routing-model change.
TIERS: List[Dict[str, Any]] = [
    dict(tier="baseline", links=0, routers=0, transient=0, drop_prob=0.0),
    dict(tier="scratched", links=1, routers=0, transient=1, drop_prob=0.005),
    dict(tier="wounded", links=2, routers=1, transient=2, drop_prob=0.01),
    dict(tier="mauled", links=4, routers=2, transient=3, drop_prob=0.02),
]

#: Fault injection with rerouting requires wormhole routers, so chaos
#: sticks to the mesh / Ruche family (the paper's focus anyway).
#: ``probe_rates`` descend from above healthy saturation; ``rate`` is
#: the shared measurement load, low enough that every tier can carry it.
_PRESETS: Dict[str, dict] = {
    "smoke": dict(
        size=(8, 8),
        configs=("mesh",),
        fault_seeds=(0,),
        probe_rates=(0.30, 0.20, 0.12, 0.06),
        rate=0.10,
        warmup=150, measure=300, drain=1200,
        stall_window=300, max_cycles=20_000, max_wall_seconds=120.0,
    ),
    "quick": dict(
        size=(8, 8),
        configs=("mesh", "ruche2-depop"),
        fault_seeds=(0, 1),
        probe_rates=(0.32, 0.24, 0.16, 0.08),
        rate=0.10,
        warmup=300, measure=600, drain=2400,
        stall_window=600, max_cycles=60_000, max_wall_seconds=600.0,
    ),
    "full": dict(
        size=(16, 16),
        configs=("mesh", "ruche2-depop", "ruche2-pop"),
        fault_seeds=(0, 1, 2),
        probe_rates=(0.34, 0.26, 0.18, 0.10, 0.05),
        rate=0.08,
        warmup=500, measure=1500, drain=4500,
        stall_window=1000, max_cycles=200_000, max_wall_seconds=3600.0,
    ),
}


def _scaled(count: int, tiles: int) -> int:
    """Scale a per-64-tile fault count to the actual network size."""
    return max(count, count * tiles // 64) if count else 0


def build_schedule(
    config: NetworkConfig, tier: Dict[str, Any], tiles: int, seed: int
) -> FaultSchedule:
    """The seeded schedule for one (config, tier, fault seed) row."""
    return FaultSchedule.random_mixed(
        config,
        links=_scaled(tier["links"], tiles),
        routers=_scaled(tier["routers"], tiles),
        transient=_scaled(tier["transient"], tiles),
        drop_prob=tier["drop_prob"],
        seed=seed,
        degraded_model=True,
    )


# Promoted to :func:`repro.sim.metrics.fairness_stats`; kept under its
# historical name for chaos-campaign callers.
_fairness = fairness_stats


def _simulate(config, schedule, preset, params, rate, engine):
    return run_synthetic(
        config,
        PATTERN,
        rate,
        engine=engine,
        warmup=preset["warmup"],
        measure=preset["measure"],
        drain_limit=preset["drain"],
        seed=params["seed"],
        faults=schedule,
        watchdog=WatchdogConfig(
            stall_window=params.get("watchdog_cycles")
            or preset["stall_window"]
        ),
        max_cycles=preset["max_cycles"],
        max_wall_seconds=preset["max_wall_seconds"],
        keep_samples=True,
        track_per_source=True,
    )


def _probe_ladder(
    config, schedule, preset, params, engine
) -> Tuple[Optional[float], Optional[float], Optional[str]]:
    """Descend the probe rates: (sustained_rate, deadlock_load, summary)."""
    deadlock_load: Optional[float] = None
    summary: Optional[str] = None
    for rate in preset["probe_rates"]:
        try:
            _simulate(config, schedule, preset, params, rate, engine)
        except DeadlockError as exc:
            deadlock_load = rate
            summary = (
                exc.snapshot.summary() if exc.snapshot else str(exc)
            )
            continue
        return rate, deadlock_load, summary
    return None, deadlock_load, summary


def _run_row(params: Dict[str, Any]) -> Dict[str, Any]:
    """One chaos row: probe ladder + common-rate soak at one
    (config, tier, fault seed).

    Module-level and driven by one picklable dict, as the parallel
    campaign's worker processes require.
    """
    preset = _PRESETS[params["scale"]]
    tier = next(t for t in TIERS if t["tier"] == params["tier"])
    width, height = preset["size"]
    config = NetworkConfig.from_name(params["config"], width, height)
    schedule = build_schedule(
        config, tier, width * height, params["fault_seed"]
    )
    engine = params.get("engine", "compiled")
    row = dict(params)
    row["rate"] = preset["rate"]

    sustained, deadlock_load, summary = _probe_ladder(
        config, schedule, preset, params, engine
    )
    row.update(
        sustained_rate=sustained,
        deadlock_load=deadlock_load,
        deadlock_summary=summary,
    )

    try:
        result = _simulate(
            config, schedule, preset, params, preset["rate"], engine
        )
    except DeadlockError as exc:
        # Even the shared measurement load cannot be carried: the tier's
        # finding is the deadlock itself.
        row.update(
            engine=engine,
            deadlock=True,
            deadlock_summary=(
                exc.snapshot.summary() if exc.snapshot else str(exc)
            ),
        )
        return row
    metrics = result.metrics
    row.update(
        engine=result.engine,
        deadlock=False,
        accepted_throughput=result.accepted_throughput,
        avg_latency=result.avg_latency,
        injected=metrics.injected_measured,
        delivered=metrics.delivered_measured,
        dropped=metrics.dropped_measured,
        drained=result.drained,
        total_cycles=result.total_cycles,
        **tail_latency_stats(metrics),
    )
    return row


def _attach_degradation(rows: List[Dict[str, Any]]) -> None:
    """Join each faulted row against its tier-0 baseline in place."""
    baselines = {
        row["config"]: row
        for row in rows
        if row["tier"] == "baseline" and not row.get("deadlock")
    }
    for row in rows:
        base = baselines.get(row["config"])
        if row.get("deadlock") or base is None or base is row:
            continue
        for metric in ("p99_latency", "p999_latency",
                       "fairness_max_over_mean"):
            denom = base.get(metric)
            if denom:
                row[f"{metric}_x"] = row[metric] / denom


def run(
    scale: Optional[str] = None,
    seed: int = 0,
    checkpoint: Optional[str] = None,
    preflight: bool = False,
    jobs: int = 1,
    watchdog_cycles: Optional[int] = None,
    engine: Optional[str] = None,
) -> ExperimentResult:
    """Chaos/soak campaign (experiment id ``chaos``).

    Sweeps every configured topology across the escalating fault tiers:
    a near-saturation probe ladder per tier plus a shared-load tail
    measurement.  ``engine`` defaults to ``"compiled"`` (the point of
    the harness); pass ``"reference"`` to cross-check.
    ``watchdog_cycles`` overrides the preset stall window.  Both enter
    rows — and checkpoint keys — only when set.
    """
    scale = resolve_scale(scale)
    preset = _PRESETS[scale]
    overrides: Dict[str, Any] = {}
    if watchdog_cycles is not None:
        overrides["watchdog_cycles"] = watchdog_cycles
    if engine is not None:
        overrides["engine"] = engine
    grid = [
        {
            "config": name,
            "scale": scale,
            "tier": tier["tier"],
            "fault_seed": fault_seed,
            "seed": seed + 1,
            **overrides,
        }
        for name in preset["configs"]
        for tier in TIERS
        for fault_seed in preset["fault_seeds"]
    ]
    store = CheckpointStore(checkpoint) if checkpoint else None
    preflight_fn = None
    if preflight:
        from repro.verify import campaign_preflight

        width, height = preset["size"]
        preflight_fn = campaign_preflight(
            NetworkConfig.from_name(name, width, height)
            for name in preset["configs"]
        )
    outcome = run_campaign(
        grid,
        _run_row,
        checkpoint=store,
        preflight=preflight_fn,
        jobs=jobs,
    )
    tier_order = {t["tier"]: i for i, t in enumerate(TIERS)}
    rows = sorted(
        outcome.rows,
        key=lambda r: (r["config"], tier_order[r["tier"]], r["fault_seed"]),
    )
    _attach_degradation(rows)
    notes = (
        "sustained_rate/deadlock_load come from a descending "
        "near-saturation probe ladder (deadlock_load is where the "
        "watchdog tripped — the fabric provably stopped making "
        "progress); tail/fairness columns are measured at the shared "
        f"rate {preset['rate']} and *_x columns are degradation ratios "
        "vs the same config's healthy baseline tier (same degraded "
        "microarchitecture, zero faults)."
    )
    if outcome.failures:
        failed = ", ".join(
            f"{f['config']}/{f['tier']}" for f in outcome.failures
        )
        notes += f" FAILED ROWS (excluded): {failed}."
    if outcome.reused:
        notes += f" ({outcome.reused} rows resumed from checkpoint.)"
    return ExperimentResult(
        experiment_id="chaos",
        title="Chaos soak: tail latency and fairness under escalating faults",
        rows=rows,
        scale=scale,
        notes=notes,
        columns=(
            "config", "tier", "fault_seed", "engine", "sustained_rate",
            "deadlock_load", "p50_latency", "p99_latency", "p999_latency",
            "p99_latency_x", "p999_latency_x", "fairness_max_over_mean",
            "fairness_cv", "dropped",
        ),
    )
