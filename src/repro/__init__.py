"""repro — a reproduction of *Evaluating Ruche Networks* (ISCA 2025).

The package provides four layers:

* :mod:`repro.core` — topologies, routing algorithms and crossbar
  connectivity for Ruche networks and their baselines.
* :mod:`repro.sim` — a cycle-accurate, flit-level NoC simulator.
* :mod:`repro.phys` — parametric area / cycle-time / energy models for a
  12 nm-class process.
* :mod:`repro.manycore` — an execution-driven cellular manycore simulator
  with the paper's parallel workloads.

The :mod:`repro.experiments` registry maps every figure and table of the
paper's evaluation section onto a runnable driver.

Quickstart::

    from repro import NetworkConfig, load_latency_curve

    cfg = NetworkConfig.from_name("ruche2-depop", 8, 8)
    curve = load_latency_curve(cfg, pattern="uniform_random",
                               rates=[0.05, 0.15, 0.25])
    for point in curve:
        print(point.offered_load, point.avg_latency)
"""

from repro.core import (
    Coord,
    Direction,
    DorOrder,
    NetworkConfig,
    Topology,
    TopologyKind,
    make_routing,
)

__version__ = "1.0.0"

__all__ = [
    "Coord",
    "Direction",
    "DorOrder",
    "NetworkConfig",
    "Topology",
    "TopologyKind",
    "make_routing",
    "load_latency_curve",
    "__version__",
]


def load_latency_curve(config, pattern="uniform_random", rates=(0.05, 0.15), **kwargs):
    """Convenience wrapper over :func:`repro.sim.simulator.sweep_injection_rates`.

    Imported lazily so that ``import repro`` stays light.
    """
    from repro.sim.simulator import sweep_injection_rates

    return sweep_injection_rates(config, pattern=pattern, rates=rates, **kwargs)
