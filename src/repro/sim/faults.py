"""Deterministic, seeded fault injection for simulated networks.

A :class:`FaultSchedule` describes which parts of a design point are
broken — permanent dead links, failed routers, transient flit-dropping
links — and is handed to :class:`~repro.sim.network.Network` (usually via
``run_synthetic(..., faults=...)``).  The schedule is built from its own
named RNG streams (``derive_rng(seed, "faults:*")``), so adding or
removing faults never perturbs the healthy-path ``timing``/``dest``
streams: a zero-fault schedule reproduces the fault-free run bit for bit.

Fault models
------------

* **Dead link** — a bidirectional channel failure.  The channel is never
  wired, and routing is recomputed by BFS around it
  (:class:`~repro.core.routing.FaultAwareTableRouting`).
* **Dead router** — every channel touching the tile fails, the tile
  neither injects nor receives, and all pairs through it reroute.
* **Transient link fault** — the link stays wired but drops each
  traversing flit with probability ``drop_prob`` inside an optional
  ``[start, end)`` cycle window, from a dedicated drop RNG stream.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig
from repro.core.topology import make_topology
from repro.errors import ConfigError
from repro.sim.rng import derive_rng

#: A directed link id: (source tile, output direction).
LinkId = Tuple[Coord, Direction]


@dataclasses.dataclass(frozen=True)
class TransientLinkFault:
    """A link that drops flits with ``drop_prob`` during a cycle window.

    ``end=None`` means the fault persists for the rest of the run.
    """

    src: Coord
    direction: Direction
    drop_prob: float
    start: int = 0
    end: Optional[int] = None

    def active(self, cycle: int) -> bool:
        if cycle < self.start:
            return False
        return self.end is None or cycle < self.end


class FaultSchedule:
    """An immutable description of every injected fault for one run.

    Parameters
    ----------
    config:
        The design point the faults apply to (link ids are validated
        against its topology).
    dead_links:
        Bidirectional permanent link failures, each given as one
        directed ``(source tile, direction)`` id; the reverse direction
        dies with it.
    dead_routers:
        Failed tiles.
    transient:
        :class:`TransientLinkFault` entries (links stay routed; flits
        are dropped stochastically from the schedule's drop stream).
    seed:
        Seeds the drop stream.  Generator classmethods also derive
        their link/router choices from it.
    degraded_model:
        Force the degraded microarchitecture (BFS route tables on the
        fault-tolerant crossbar) even with zero faults.  Degradation
        *curves* need this for their baseline row: on depopulated
        crossbars the fault-tolerant matrix admits turns restricted DOR
        lacks, so comparing faulted table-routed runs against a healthy
        DOR run would conflate the routing-model change with the fault
        impact.
    """

    def __init__(
        self,
        config: NetworkConfig,
        *,
        dead_links: Iterable[LinkId] = (),
        dead_routers: Iterable[Coord] = (),
        transient: Iterable[TransientLinkFault] = (),
        seed: int = 0,
        degraded_model: bool = False,
    ) -> None:
        self.config = config
        self.seed = seed
        self.degraded_model = degraded_model
        topology = make_topology(config)
        self.dead_routers: FrozenSet[Coord] = frozenset(dead_routers)
        for coord in self.dead_routers:
            if coord not in set(topology.nodes):
                raise ConfigError(f"dead router {tuple(coord)} is not a tile")
        self.dead_links: Tuple[LinkId, ...] = tuple(dead_links)
        killed: Set[LinkId] = set()
        for src, direction in self.dead_links:
            dst = topology.channel_map.get((src, direction))
            if dst is None:
                raise ConfigError(
                    f"dead link ({tuple(src)}, {direction.name}) does not "
                    f"exist in this topology"
                )
            killed.add((src, direction))
            killed.add((dst, direction.opposite))
        for src, direction, dst in topology.channels:
            if src in self.dead_routers or dst in self.dead_routers:
                killed.add((src, direction))
                killed.add((dst, direction.opposite))
        #: Every directed channel that must not be wired.
        self.killed_channels: FrozenSet[LinkId] = frozenset(killed)
        self.transient: Tuple[TransientLinkFault, ...] = tuple(transient)
        trans_map: Dict[Tuple[Coord, int], TransientLinkFault] = {}
        for fault in self.transient:
            if (fault.src, fault.direction) not in topology.channel_map:
                raise ConfigError(
                    f"transient fault on nonexistent link "
                    f"({tuple(fault.src)}, {fault.direction.name})"
                )
            if not 0.0 <= fault.drop_prob <= 1.0:
                raise ConfigError("drop_prob must be in [0, 1]")
            if (fault.src, fault.direction) in self.killed_channels:
                raise ConfigError(
                    "transient fault overlaps a dead link/router"
                )
            trans_map[(fault.src, int(fault.direction))] = fault
        self._transient_map = trans_map

    # ------------------------------------------------------------------
    # Queries used by the network and campaigns
    # ------------------------------------------------------------------
    @property
    def affects_routing(self) -> bool:
        """True when route tables must be recomputed (permanent faults,
        or ``degraded_model`` pinning the table-routed baseline)."""
        return bool(self.killed_channels) or self.degraded_model

    @property
    def has_faults(self) -> bool:
        return bool(self.killed_channels or self.transient)

    def transient_on(self, src: Coord, out_idx: int) -> Optional[TransientLinkFault]:
        """The transient fault on a directed link, if any."""
        if not self._transient_map:
            return None
        return self._transient_map.get((src, out_idx))

    def make_drop_rng(self):
        """A fresh drop-decision stream (one per Network instance)."""
        return derive_rng(self.seed, "faults:drops")

    def describe(self) -> List[str]:
        """Human-readable fault list (stable order, for reports/tests)."""
        lines = [
            f"dead link {tuple(src)} -{direction.name}-"
            for src, direction in self.dead_links
        ]
        lines += [
            f"dead router {tuple(coord)}"
            for coord in sorted(self.dead_routers)
        ]
        lines += [
            f"transient {tuple(f.src)} -{f.direction.name}- "
            f"p={f.drop_prob} [{f.start}, {f.end})"
            for f in self.transient
        ]
        return lines

    # ------------------------------------------------------------------
    # Seeded generators
    # ------------------------------------------------------------------
    @classmethod
    def random_dead_links(
        cls,
        config: NetworkConfig,
        n: int,
        seed: int = 0,
        *,
        degraded_model: bool = False,
    ) -> "FaultSchedule":
        """``n`` distinct dead links drawn uniformly from the topology.

        Links are sampled as undirected channels (each listed once by
        its canonical direction), deterministically from the
        ``faults:links`` stream of ``seed``.
        """
        candidates = _undirected_channels(config)
        if n > len(candidates):
            raise ConfigError(
                f"requested {n} dead links but topology has only "
                f"{len(candidates)} channels"
            )
        rng = derive_rng(seed, "faults:links")
        chosen = rng.sample(candidates, n)
        return cls(
            config,
            dead_links=chosen,
            seed=seed,
            degraded_model=degraded_model,
        )

    @classmethod
    def random_dead_routers(
        cls, config: NetworkConfig, n: int, seed: int = 0
    ) -> "FaultSchedule":
        """``n`` distinct failed tiles, from the ``faults:routers`` stream."""
        nodes = make_topology(config).nodes
        if n > len(nodes):
            raise ConfigError(f"requested {n} dead routers of {len(nodes)}")
        rng = derive_rng(seed, "faults:routers")
        return cls(config, dead_routers=rng.sample(nodes, n), seed=seed)

    @classmethod
    def random_transient(
        cls,
        config: NetworkConfig,
        n: int,
        seed: int = 0,
        *,
        drop_prob: float = 0.01,
    ) -> "FaultSchedule":
        """``n`` flit-dropping links from the ``faults:transient`` stream.

        Each chosen channel drops flits in its canonical direction with
        ``drop_prob`` for the whole run.
        """
        return cls.random_mixed(
            config, transient=n, drop_prob=drop_prob, seed=seed
        )

    @classmethod
    def random_mixed(
        cls,
        config: NetworkConfig,
        *,
        links: int = 0,
        routers: int = 0,
        transient: int = 0,
        drop_prob: float = 0.01,
        seed: int = 0,
        degraded_model: bool = False,
    ) -> "FaultSchedule":
        """A combined schedule: dead links + dead routers + droppy links.

        Each fault class draws from its own named stream of ``seed``
        (``faults:links`` / ``faults:routers`` / ``faults:transient``),
        so ``random_mixed(links=n)`` reproduces
        :meth:`random_dead_links` bit for bit, and adding routers or
        transient faults never perturbs the link choices.  Transient
        candidates exclude channels already killed by the permanent
        faults (a dead link cannot also drop flits).
        """
        link_candidates = _undirected_channels(config)
        if links > len(link_candidates):
            raise ConfigError(
                f"requested {links} dead links but topology has only "
                f"{len(link_candidates)} channels"
            )
        chosen_links = derive_rng(seed, "faults:links").sample(
            link_candidates, links
        )
        nodes = make_topology(config).nodes
        if routers > len(nodes):
            raise ConfigError(
                f"requested {routers} dead routers of {len(nodes)}"
            )
        chosen_routers = derive_rng(seed, "faults:routers").sample(
            nodes, routers
        )
        base = cls(
            config,
            dead_links=chosen_links,
            dead_routers=chosen_routers,
            seed=seed,
            degraded_model=degraded_model,
        )
        if not transient:
            return base
        survivors = [
            link
            for link in link_candidates
            if link not in base.killed_channels
        ]
        if transient > len(survivors):
            raise ConfigError(
                f"requested {transient} transient faults but only "
                f"{len(survivors)} channels survive the permanent faults"
            )
        chosen_transient = derive_rng(seed, "faults:transient").sample(
            survivors, transient
        )
        return cls(
            config,
            dead_links=chosen_links,
            dead_routers=chosen_routers,
            transient=[
                TransientLinkFault(src, direction, drop_prob)
                for src, direction in chosen_transient
            ],
            seed=seed,
            degraded_model=degraded_model,
        )


def _undirected_channels(config: NetworkConfig) -> List[LinkId]:
    """Each physical channel once, by its canonical (positive) direction."""
    topology = make_topology(config)
    memory = set(topology.memory_nodes)
    seen: Set[FrozenSet] = set()
    links: List[LinkId] = []
    for src, direction, dst in topology.channels:
        if src in memory or dst in memory:
            continue
        key = frozenset(((src, direction), (dst, direction.opposite)))
        if key in seen:
            continue
        seen.add(key)
        links.append((src, direction))
    return links
