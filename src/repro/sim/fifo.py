"""Bounded FIFO used for router input buffers.

The paper's routers are "minimally buffered by two-element FIFOs"
(Section 3.2) with registered full/ready state: a full FIFO does not accept
an enqueue on the same cycle it dequeues.  The simulator models that by
checking fullness against the cycle-start occupancy (the two-phase network
step reads all lengths before committing any move).
"""

from __future__ import annotations

from collections import deque


class Fifo(deque):
    """A ``deque`` with a capacity, used as a router input buffer.

    Capacity is advisory — enforcement happens at the sender via
    :attr:`is_full`, matching ready/valid hardware where the receiver
    advertises space and the sender gates ``valid`` on it.  ``append``
    raises if the invariant is violated, which would indicate a simulator
    bug (two arrivals on one channel in one cycle).
    """

    __slots__ = ("depth",)

    def __init__(self, depth: int) -> None:
        super().__init__()
        if depth < 1:
            raise ValueError("fifo depth must be >= 1")
        self.depth = depth

    @property
    def is_full(self) -> bool:
        return len(self) >= self.depth

    @property
    def head(self):
        """The packet at the head, or ``None`` when empty."""
        return self[0] if self else None

    def append(self, item) -> None:  # noqa: D102 - deque override
        if len(self) >= self.depth:
            raise OverflowError(
                f"enqueue into full fifo (depth={self.depth}); "
                "flow control was violated"
            )
        super().append(item)
