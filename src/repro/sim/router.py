"""Router models: single-cycle wormhole (Ruche family) and VC (torus).

Both routers move packets at one cycle per hop (the paper's synthetic
setup) under ready/valid flow control against two-element input FIFOs.

:class:`WormholeRouter` models the Ruche/mesh/multi-mesh router of
Section 3.2: per-output decentralized round-robin arbiters over the inputs
admitted by the crossbar connectivity matrix, with request generation
independent of downstream readiness ("ready-valid-and").

:class:`VCRouter` models the paper's torus baseline: two VCs per input
sharing one crossbar port through a VC mux (Figure 3c — this is what
halves the peak crossbar bandwidth), requests gated on downstream credit
availability ("ready-then-valid"), and switch allocation by a wavefront
allocator with rotating priority.

Hot-path note: arbitration runs once per buffered router per cycle, so
:meth:`finish_wiring` compiles the wiring into flat per-output plans
(``(output, candidates, readiness kind, readiness object)`` tuples) that
the per-cycle loops dispatch on with integer compares instead of
``isinstance`` chains.  Grant decisions and round-robin pointer updates
are bit-identical to the straightforward formulation; the cross-check
against :class:`~repro.sim.arbiter.RoundRobinArbiter` lives in the test
suite.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig, TopologyKind
from repro.core.registry import ALLOCATORS, register_router
from repro.core.routing import RoutingAlgorithm
from repro.errors import ConfigError
from repro.sim.allocator import WavefrontAllocator
from repro.sim.channel import PipelinedChannel
from repro.sim.fifo import Fifo
from repro.sim.packet import Packet

NUM_DIRS = len(Direction)
P_IDX = int(Direction.P)

#: A committed switch traversal: (router, input port, input VC, output
#: port, packet).  The network applies all moves of a cycle atomically.
Move = Tuple["BaseRouter", int, int, int, Packet]

#: Readiness/commit dispatch codes compiled by ``finish_wiring``.
#: The network's commit loop and the routers' arbitration plans share
#: these so neither needs ``isinstance`` per flit.
KIND_SINK = 0       #: a Sink whose ``ready()`` must be consulted
KIND_LINK = 1       #: a PipelinedLink (multi-cycle, credit-controlled)
KIND_DIRECT = 2     #: a direct (router, input index) wire
KIND_SINK_FREE = 3  #: a Sink that is statically always ready


class Sink:
    """Ejection endpoint attached to a router output.

    The default sink is always ready and records deliveries into the run's
    metrics; the manycore layer substitutes tiles and memory controllers
    that exert real backpressure.
    """

    __slots__ = ()

    def ready(self) -> bool:
        return True

    def deliver(self, pkt: Packet, cycle: int) -> None:  # pragma: no cover
        raise NotImplementedError


class MetricsSink(Sink):
    """Records every delivery into a :class:`RunMetrics`."""

    __slots__ = ("metrics",)

    def __init__(self, metrics) -> None:
        self.metrics = metrics

    def deliver(self, pkt: Packet, cycle: int) -> None:
        self.metrics.record_delivery(pkt, cycle)


class PipelinedLink:
    """An output wired through a multi-cycle, credit-controlled channel."""

    __slots__ = ("channel", "router", "in_idx")

    def __init__(self, channel: PipelinedChannel, router: "BaseRouter",
                 in_idx: int) -> None:
        self.channel = channel
        self.router = router
        self.in_idx = in_idx


def _target_kind(target) -> int:
    """Dispatch code for one wired output target (see KIND_*)."""
    if isinstance(target, Sink):
        # A sink whose class never overrode ready() is statically ready;
        # skipping the method call matters at ejection rates of one flit
        # per tile per cycle.
        if type(target).ready is Sink.ready:
            return KIND_SINK_FREE
        return KIND_SINK
    if isinstance(target, PipelinedLink):
        return KIND_LINK
    return KIND_DIRECT


class BaseRouter:
    """State and wiring shared by both router models."""

    __slots__ = (
        "coord",
        "depth",
        "in_q",
        "out_target",
        "out_kind",
        "candidates",
        "occ",
        "route_cache",
        "in_channel",
        "net_idx",
    )

    def __init__(self, coord: Coord, depth: int,
                 route_cache: Optional[Dict] = None) -> None:
        self.coord = coord
        self.depth = depth
        self.occ = 0
        # Route memo; the network shares one per-node dict across router
        # instances of the same config (see RoutingAlgorithm.
        # node_route_cache) so repeated runs skip recomputation entirely.
        self.route_cache: Dict = {} if route_cache is None else route_cache
        # out_target[o] is None (port absent), a (router, in_idx) pair, a
        # PipelinedLink, or a Sink.  Filled in by the network's wiring.
        self.out_target: List = [None] * NUM_DIRS
        # out_kind[o] is the KIND_* code of out_target[o] (None when the
        # port is absent); compiled by finish_wiring for the commit loop.
        self.out_kind: List[Optional[int]] = [None] * NUM_DIRS
        # Credit-return hooks for inputs fed by pipelined channels.
        self.in_channel: List[Optional[PipelinedChannel]] = [None] * NUM_DIRS
        # Position in the network's router list (active-set bookkeeping).
        self.net_idx = 0

    def _compile_out_kinds(self) -> None:
        for o, target in enumerate(self.out_target):
            self.out_kind[o] = None if target is None else _target_kind(target)

    def pop(self, in_idx: int, vc: int) -> Packet:
        raise NotImplementedError

    def arbitrate(self, moves: List[Move]) -> None:
        raise NotImplementedError


class WormholeRouter(BaseRouter):
    """Single-cycle router without virtual channels (Ruche family).

    Every output direction owns an independent round-robin arbiter over
    the inputs that the crossbar connectivity matrix admits.  An input's
    request depends only on its head packet's route — not on downstream
    readiness — matching the "ready-valid-and" style the paper credits for
    the Ruche router's short critical path.
    """

    __slots__ = (
        "route_fn", "arb", "active_outputs", "_plan",
        "_in_list", "_posmap", "_reqmask",
    )

    def __init__(
        self,
        coord: Coord,
        depth: int,
        route_fn: Callable,
        input_dirs: Sequence[int],
        matrix: Dict[Direction, frozenset],
        route_cache: Optional[Dict] = None,
    ) -> None:
        super().__init__(coord, depth, route_cache)
        self.route_fn = route_fn
        # Input queues: P is the (unbounded) source queue; others are
        # bounded FIFOs, present only where a channel arrives.
        self.in_q: List[Optional[deque]] = [None] * NUM_DIRS
        self.in_q[P_IDX] = deque()
        for i in input_dirs:
            if i != P_IDX:
                self.in_q[i] = Fifo(depth)
        present = set(input_dirs) | {P_IDX}
        # Per-output candidate input lists (connectivity ∩ present inputs).
        self.candidates: List[Tuple[int, ...]] = [()] * NUM_DIRS
        for out_dir in Direction:
            cands = tuple(
                int(inp)
                for inp in Direction
                if int(inp) in present and out_dir in matrix.get(inp, ())
            )
            self.candidates[int(out_dir)] = cands
        self.arb = [0] * NUM_DIRS
        self.active_outputs: Tuple[int, ...] = ()
        # Per-output arbitration plan, compiled by finish_wiring:
        # (o, cands, len(cands), kind, readiness object, fifo depth).
        self._plan: Tuple[tuple, ...] = ()
        # Present input ports, ascending (the candidate-list order).
        self._in_list: Tuple[int, ...] = tuple(
            i for i in range(NUM_DIRS) if self.in_q[i] is not None
        )
        # _posmap[o * NUM_DIRS + i]: position of input i in candidates[o]
        # (-1 when the crossbar does not admit the turn).
        posmap = [-1] * (NUM_DIRS * NUM_DIRS)
        for o in range(NUM_DIRS):
            for pos, i in enumerate(self.candidates[o]):
                posmap[o * NUM_DIRS + i] = pos
        self._posmap: Tuple[int, ...] = tuple(posmap)
        # Per-output bitmask of requesting candidate positions, rebuilt
        # (and cleared) every arbitration cycle.
        self._reqmask = [0] * NUM_DIRS

    def finish_wiring(self) -> None:
        """Freeze the wired outputs into a flat arbitration plan."""
        self.active_outputs = tuple(
            o for o in range(NUM_DIRS) if self.out_target[o] is not None
        )
        self._compile_out_kinds()
        plan = []
        for o in self.active_outputs:
            cands = self.candidates[o]
            if not cands:
                continue
            target = self.out_target[o]
            kind = self.out_kind[o]
            if kind == KIND_DIRECT:
                down_router, down_idx = target
                # The downstream FIFO object is stable after wiring;
                # binding it here removes two indirections per check.
                obj = down_router.in_q[down_idx]
                depth = obj.depth
            elif kind == KIND_LINK:
                obj = target.channel
                depth = 0
            else:  # sink (free or gated)
                obj = target
                depth = 0
            plan.append((o, cands, len(cands), kind, obj, depth))
        self._plan = tuple(plan)

    def accept(self, pkt: Packet, in_idx: int, in_vc: int = 0) -> None:
        """Enqueue an arriving packet and cache its route decision."""
        key = (in_idx, pkt.dest, pkt.subnet)
        out = self.route_cache.get(key)
        if out is None:
            out = int(
                self.route_fn(
                    self.coord, Direction(in_idx), pkt.dest, pkt.subnet
                )
            )
            self.route_cache[key] = out
        pkt.out_dir = out
        self.in_q[in_idx].append(pkt)
        self.occ += 1

    def pop(self, in_idx: int, vc: int) -> Packet:
        self.occ -= 1
        return self.in_q[in_idx].popleft()

    def arbitrate(self, moves: List[Move]) -> None:
        """One cycle of per-output round-robin arbitration.

        Request-driven formulation of the per-output round-robin scan:
        one pass over the occupied input heads builds a bitmask of
        requesting candidate positions per output, then each requested
        output resolves its winner — the first set bit cyclically from
        the round-robin pointer, which is exactly the input the
        per-output candidate scan would have granted.  Readiness is
        consulted only for the winner; the pointer advances only on a
        grant, so grants and pointer trajectories are bit-identical to
        the straightforward formulation.
        """
        in_q = self.in_q
        reqmask = self._reqmask
        posmap = self._posmap
        for i in self._in_list:
            q = in_q[i]
            if q:
                o = q[0].out_dir
                pos = posmap[o * NUM_DIRS + i]
                if pos >= 0:
                    reqmask[o] |= 1 << pos
        arb = self.arb
        for o, cands, n, kind, obj, fifo_depth in self._plan:
            m = reqmask[o]
            if not m:
                continue
            reqmask[o] = 0
            pos = arb[o]
            while not (m >> pos) & 1:
                pos += 1
                if pos >= n:
                    pos = 0
            if kind == KIND_DIRECT:
                if len(obj) >= fifo_depth:
                    continue
            elif kind == KIND_SINK:
                if not obj.ready():
                    continue
            elif kind == KIND_LINK:
                if not obj.can_send(0):
                    continue
            # KIND_SINK_FREE: always ready.
            arb[o] = pos + 1 if pos + 1 < n else 0
            in_idx = cands[pos]
            moves.append((self, in_idx, 0, o, in_q[in_idx][0]))


class FbfcRouter(WormholeRouter):
    """Torus router using Flit Bubble Flow Control (Ma et al.).

    No virtual channels: deadlock freedom comes from an injection
    restriction — a packet may *enter* a ring (from the P port or by
    turning from the other dimension) only if the receiving FIFO keeps
    one free slot beyond the packet, so every ring always holds at least
    one bubble and through-traffic can always make progress.  Packets
    already travelling in the ring move under the normal one-slot rule.
    """

    __slots__ = ("_entry_need",)

    def __init__(
        self,
        coord: Coord,
        depth: int,
        route_fn: Callable,
        input_dirs: Sequence[int],
        matrix: Dict[Direction, frozenset],
        ring_axes: Sequence[str] = ("x",),
        ring_ports: Optional[Sequence[frozenset]] = None,
        route_cache: Optional[Dict] = None,
    ) -> None:
        super().__init__(
            coord, depth, route_fn, input_dirs, matrix,
            route_cache=route_cache,
        )
        if ring_ports is None:
            # Derive the ring port groups from the 2-D axis names; 3-D
            # builders hand explicit port-id groups instead.
            groups = []
            if "x" in ring_axes:
                groups.append(
                    frozenset((int(Direction.W), int(Direction.E)))
                )
            if "y" in ring_axes:
                groups.append(
                    frozenset((int(Direction.N), int(Direction.S)))
                )
            ring_ports = groups
        # _entry_need[o][i]: FIFO slots required for input i to win
        # output o (2 = ring entry, 1 = in-ring or non-ring move).
        self._entry_need = {}
        for o in range(NUM_DIRS):
            needs = {}
            for i in self.candidates[o]:
                entering = any(
                    o in group and i not in group
                    for group in ring_ports
                )
                needs[i] = 2 if entering else 1
            self._entry_need[o] = needs

    def arbitrate(self, moves: List[Move]) -> None:
        in_q = self.in_q
        arb = self.arb
        for o, cands, n, kind, obj, fifo_depth in self._plan:
            if kind == KIND_DIRECT:
                free = fifo_depth - len(obj)
            elif kind == KIND_LINK:
                free = obj.credits[0]
            elif kind == KIND_SINK:
                if not obj.ready():
                    continue
                free = self.depth  # ejection is not a ring entry
            else:  # KIND_SINK_FREE
                free = self.depth
            if free <= 0:
                continue
            needs = self._entry_need[o]
            ptr = arb[o]
            for k in range(n):
                pos = ptr + k
                if pos >= n:
                    pos -= n
                i = cands[pos]
                q = in_q[i]
                if q and q[0].out_dir == o and free >= needs[i]:
                    arb[o] = pos + 1 if pos + 1 < n else 0
                    moves.append((self, i, 0, o, q[0]))
                    break


class VCRouter(BaseRouter):
    """Torus router: 2 VCs per input, VC mux, wavefront switch allocation.

    Structural properties reproduced from the paper's Figure 3c:

    * each input port owns ``num_vcs`` FIFOs but only **one** crossbar
      port, so at most one flit per input per cycle enters the switch;
    * a request is raised only when the destination VC downstream has a
      free slot ("ready-then-valid" — the allocator must not grant flits
      that cannot move);
    * the switch allocator computes a maximal input/output matching
      (wavefront) and a per-input round-robin picks among requesting VCs.
    """

    __slots__ = (
        "route_vc_fn", "num_ports", "num_vcs", "vc_rr", "alloc", "ports",
        "_out_space", "_requests", "_candmask", "_touched",
    )

    #: Torus routers use only the five mesh directions.
    NUM_PORTS = 5

    def __init__(
        self,
        coord: Coord,
        depth: int,
        route_vc_fn: Callable,
        input_dirs: Sequence[int],
        num_vcs: int,
        route_cache: Optional[Dict] = None,
        allocator_factory: Optional[Callable] = None,
    ) -> None:
        super().__init__(coord, depth, route_cache)
        self.route_vc_fn = route_vc_fn
        self.num_vcs = num_vcs
        self.num_ports = self.NUM_PORTS
        self.in_q = [None] * self.NUM_PORTS
        self.in_q[P_IDX] = (deque(),)  # injection queue, single lane
        for i in input_dirs:
            if i != P_IDX:
                self.in_q[i] = tuple(Fifo(depth) for _ in range(num_vcs))
        self.vc_rr = [0] * self.NUM_PORTS
        if allocator_factory is None:
            allocator_factory = WavefrontAllocator
        self.alloc = allocator_factory(self.NUM_PORTS, self.NUM_PORTS)
        self.ports = tuple(
            i for i in range(self.NUM_PORTS) if self.in_q[i] is not None
        )
        # Per-output space-check plan: (kind, obj) where obj is the
        # downstream lane tuple (KIND_DIRECT), channel (KIND_LINK) or
        # sink; compiled by finish_wiring.
        self._out_space: List[Optional[tuple]] = [None] * self.NUM_PORTS
        # Reused per-cycle request state (allocation-free steady state):
        # the boolean matrix handed to the allocator plus a flat bitmask
        # of requesting VC lanes per (input, output) pair.
        nports = self.NUM_PORTS
        self._requests = [[False] * nports for _ in range(nports)]
        self._candmask = [0] * (nports * nports)
        self._touched: List[int] = []

    def finish_wiring(self) -> None:
        self._compile_out_kinds()
        for o in range(self.num_ports):
            if self.out_target[o] is not None:
                self._compile_out_space(o)

    def _compile_out_space(self, o: int) -> Optional[tuple]:
        """Build (and memoize) the space-check plan for one output."""
        target = self.out_target[o]
        if target is None:
            return None
        kind = _target_kind(target)
        if kind == KIND_DIRECT:
            down_router, down_idx = target
            lanes = down_router.in_q[down_idx]
            if down_idx == P_IDX:
                # Injection-side entry: a single unbounded lane.
                lanes = tuple(lanes[0] for _ in range(self.num_vcs))
            plan = (kind, lanes)
        elif kind == KIND_LINK:
            plan = (kind, target.channel)
        else:
            plan = (kind, target)
        self._out_space[o] = plan
        return plan

    def accept(self, pkt: Packet, in_idx: int, in_vc: int = 0) -> None:
        pkt.vc = in_vc
        key = (in_idx, in_vc, pkt.dest)
        cached = self.route_cache.get(key)
        if cached is None:
            out, ovc = self.route_vc_fn(
                self.coord, Direction(in_idx), in_vc, pkt.dest
            )
            cached = (int(out), ovc)
            self.route_cache[key] = cached
        pkt.out_dir, pkt.out_vc = cached
        lanes = self.in_q[in_idx]
        lane = 0 if in_idx == P_IDX else in_vc
        lanes[lane].append(pkt)
        self.occ += 1

    def pop(self, in_idx: int, vc: int) -> Packet:
        self.occ -= 1
        lanes = self.in_q[in_idx]
        lane = 0 if in_idx == P_IDX else vc
        return lanes[lane].popleft()

    def _space_downstream(self, pkt: Packet) -> bool:
        plan = self._out_space[pkt.out_dir]
        if plan is None:
            # Lazy compile: unit tests wire outputs by hand without
            # calling finish_wiring.
            plan = self._compile_out_space(pkt.out_dir)
            if plan is None:
                return False
        kind, obj = plan
        if kind == KIND_DIRECT:
            fifo = obj[pkt.out_vc]
            return len(fifo) < fifo.depth
        if kind == KIND_SINK_FREE:
            return True
        if kind == KIND_LINK:
            return obj.can_send(pkt.out_vc)
        return obj.ready()

    def arbitrate(self, moves: List[Move]) -> None:
        nports = self.num_ports
        requests = self._requests
        candmask = self._candmask
        touched = self._touched
        space = self._space_downstream
        any_request = False
        for i in self.ports:
            lanes = self.in_q[i]
            base = i * nports
            for lane, fifo in enumerate(lanes):
                if not fifo:
                    continue
                pkt = fifo[0]
                if not space(pkt):
                    continue
                o = pkt.out_dir
                idx = base + o
                if not candmask[idx]:
                    requests[i][o] = True
                    touched.append(idx)
                candmask[idx] |= 1 << lane
                any_request = True
        if not any_request:
            return
        num_vcs = self.num_vcs
        for i, o in self.alloc.allocate(requests):
            mask = candmask[i * nports + o]
            # Per-input round-robin among requesting VCs (the VC mux):
            # the winning lane minimizes (lane - ptr) mod num_vcs.
            ptr = self.vc_rr[i]
            best = 0
            best_key = num_vcs
            lane = 0
            while mask:
                if mask & 1:
                    key = (lane - ptr) % num_vcs
                    if key < best_key:
                        best_key = key
                        best = lane
                mask >>= 1
                lane += 1
            self.vc_rr[i] = (best + 1) % num_vcs
            pkt = self.in_q[i][best][0]
            moves.append((self, i, best, o, pkt))
        for idx in touched:
            candmask[idx] = 0
            requests[idx // nports][idx % nports] = False
        touched.clear()


# ----------------------------------------------------------------------
# Registered router kinds
# ----------------------------------------------------------------------
# Builders share one keyword signature so repro.core.spec can construct
# any registered kind uniformly.  ``allocator`` names a registered switch
# allocator; only the VC router performs switch allocation, so the other
# kinds reject it rather than silently ignore it.


def _reject_allocator(kind: str, allocator: Optional[str]) -> None:
    if allocator is not None:
        raise ConfigError(
            f"router kind {kind!r} does not use a switch allocator "
            f"(got allocator={allocator!r}); only 'vc' does"
        )


@register_router(
    "wormhole",
    description="single-cycle router without VCs (mesh / Ruche family)",
)
def build_wormhole_router(
    *,
    coord: Coord,
    config: NetworkConfig,
    routing: RoutingAlgorithm,
    input_dirs: Sequence[int],
    matrix: Dict[Direction, frozenset],
    route_cache: Optional[Dict] = None,
    allocator: Optional[str] = None,
) -> WormholeRouter:
    _reject_allocator("wormhole", allocator)
    return WormholeRouter(
        coord,
        config.fifo_depth,
        routing.route,
        input_dirs,
        matrix,
        route_cache=route_cache,
    )


@register_router(
    "fbfc",
    description="torus router with Flit Bubble Flow Control, no VCs",
)
def build_fbfc_router(
    *,
    coord: Coord,
    config: NetworkConfig,
    routing: RoutingAlgorithm,
    input_dirs: Sequence[int],
    matrix: Dict[Direction, frozenset],
    route_cache: Optional[Dict] = None,
    allocator: Optional[str] = None,
) -> FbfcRouter:
    _reject_allocator("fbfc", allocator)
    ring_ports = None
    if config.kind is TopologyKind.TORUS3D:
        # Three rings per router; the z ring rides the RN/RS port ids.
        ring_ports = [
            frozenset((int(Direction.W), int(Direction.E))),
            frozenset((int(Direction.N), int(Direction.S))),
            frozenset((int(Direction.RN), int(Direction.RS))),
        ]
    ring_axes = (
        ("x", "y")
        if config.kind is TopologyKind.FOLDED_TORUS
        else ("x",)
    )
    return FbfcRouter(
        coord,
        config.fifo_depth,
        routing.route,
        input_dirs,
        matrix,
        ring_axes=ring_axes,
        ring_ports=ring_ports,
        route_cache=route_cache,
    )


@register_router(
    "vc",
    description="2-VC torus router with wavefront switch allocation",
)
def build_vc_router(
    *,
    coord: Coord,
    config: NetworkConfig,
    routing: RoutingAlgorithm,
    input_dirs: Sequence[int],
    matrix: Dict[Direction, frozenset],
    route_cache: Optional[Dict] = None,
    allocator: Optional[str] = None,
) -> VCRouter:
    allocator_factory = (
        ALLOCATORS.get(allocator) if allocator is not None else None
    )
    return VCRouter(
        coord,
        config.fifo_depth,
        routing.route_vc,
        input_dirs,
        config.num_vcs,
        route_cache=route_cache,
        allocator_factory=allocator_factory,
    )
