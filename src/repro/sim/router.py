"""Router models: single-cycle wormhole (Ruche family) and VC (torus).

Both routers move packets at one cycle per hop (the paper's synthetic
setup) under ready/valid flow control against two-element input FIFOs.

:class:`WormholeRouter` models the Ruche/mesh/multi-mesh router of
Section 3.2: per-output decentralized round-robin arbiters over the inputs
admitted by the crossbar connectivity matrix, with request generation
independent of downstream readiness ("ready-valid-and").

:class:`VCRouter` models the paper's torus baseline: two VCs per input
sharing one crossbar port through a VC mux (Figure 3c — this is what
halves the peak crossbar bandwidth), requests gated on downstream credit
availability ("ready-then-valid"), and switch allocation by a wavefront
allocator with rotating priority.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.coords import Coord, Direction
from repro.sim.allocator import WavefrontAllocator
from repro.sim.channel import PipelinedChannel
from repro.sim.fifo import Fifo
from repro.sim.packet import Packet

NUM_DIRS = len(Direction)
P_IDX = int(Direction.P)

#: A committed switch traversal: (router, input port, input VC, output
#: port, packet).  The network applies all moves of a cycle atomically.
Move = Tuple["BaseRouter", int, int, int, Packet]


class Sink:
    """Ejection endpoint attached to a router output.

    The default sink is always ready and records deliveries into the run's
    metrics; the manycore layer substitutes tiles and memory controllers
    that exert real backpressure.
    """

    __slots__ = ()

    def ready(self) -> bool:
        return True

    def deliver(self, pkt: Packet, cycle: int) -> None:  # pragma: no cover
        raise NotImplementedError


class MetricsSink(Sink):
    """Records every delivery into a :class:`RunMetrics`."""

    __slots__ = ("metrics",)

    def __init__(self, metrics) -> None:
        self.metrics = metrics

    def deliver(self, pkt: Packet, cycle: int) -> None:
        self.metrics.record_delivery(pkt, cycle)


class PipelinedLink:
    """An output wired through a multi-cycle, credit-controlled channel."""

    __slots__ = ("channel", "router", "in_idx")

    def __init__(self, channel: PipelinedChannel, router: "BaseRouter",
                 in_idx: int) -> None:
        self.channel = channel
        self.router = router
        self.in_idx = in_idx


class BaseRouter:
    """State and wiring shared by both router models."""

    __slots__ = (
        "coord",
        "depth",
        "in_q",
        "out_target",
        "candidates",
        "occ",
        "route_cache",
        "in_channel",
    )

    def __init__(self, coord: Coord, depth: int) -> None:
        self.coord = coord
        self.depth = depth
        self.occ = 0
        self.route_cache: Dict = {}
        # out_target[o] is None (port absent), a (router, in_idx) pair, a
        # PipelinedLink, or a Sink.  Filled in by the network's wiring.
        self.out_target: List = [None] * NUM_DIRS
        # Credit-return hooks for inputs fed by pipelined channels.
        self.in_channel: List[Optional[PipelinedChannel]] = [None] * NUM_DIRS

    def pop(self, in_idx: int, vc: int) -> Packet:
        raise NotImplementedError

    def arbitrate(self, moves: List[Move]) -> None:
        raise NotImplementedError


class WormholeRouter(BaseRouter):
    """Single-cycle router without virtual channels (Ruche family).

    Every output direction owns an independent round-robin arbiter over
    the inputs that the crossbar connectivity matrix admits.  An input's
    request depends only on its head packet's route — not on downstream
    readiness — matching the "ready-valid-and" style the paper credits for
    the Ruche router's short critical path.
    """

    __slots__ = ("route_fn", "arb", "active_outputs")

    def __init__(
        self,
        coord: Coord,
        depth: int,
        route_fn: Callable,
        input_dirs: Sequence[int],
        matrix: Dict[Direction, frozenset],
    ) -> None:
        super().__init__(coord, depth)
        self.route_fn = route_fn
        # Input queues: P is the (unbounded) source queue; others are
        # bounded FIFOs, present only where a channel arrives.
        self.in_q: List[Optional[deque]] = [None] * NUM_DIRS
        self.in_q[P_IDX] = deque()
        for i in input_dirs:
            if i != P_IDX:
                self.in_q[i] = Fifo(depth)
        present = set(input_dirs) | {P_IDX}
        # Per-output candidate input lists (connectivity ∩ present inputs).
        self.candidates: List[Tuple[int, ...]] = [()] * NUM_DIRS
        for out_dir in Direction:
            cands = tuple(
                int(inp)
                for inp in Direction
                if int(inp) in present and out_dir in matrix.get(inp, ())
            )
            self.candidates[int(out_dir)] = cands
        self.arb = [0] * NUM_DIRS
        self.active_outputs: Tuple[int, ...] = ()

    def finish_wiring(self) -> None:
        """Freeze the list of wired outputs once the network connected them."""
        self.active_outputs = tuple(
            o for o in range(NUM_DIRS) if self.out_target[o] is not None
        )

    def accept(self, pkt: Packet, in_idx: int, in_vc: int = 0) -> None:
        """Enqueue an arriving packet and cache its route decision."""
        key = (in_idx, pkt.dest, pkt.subnet)
        out = self.route_cache.get(key)
        if out is None:
            out = int(
                self.route_fn(
                    self.coord, Direction(in_idx), pkt.dest, pkt.subnet
                )
            )
            self.route_cache[key] = out
        pkt.out_dir = out
        self.in_q[in_idx].append(pkt)
        self.occ += 1

    def pop(self, in_idx: int, vc: int) -> Packet:
        self.occ -= 1
        return self.in_q[in_idx].popleft()

    def arbitrate(self, moves: List[Move]) -> None:
        in_q = self.in_q
        for o in self.active_outputs:
            target = self.out_target[o]
            if isinstance(target, Sink):
                if not target.ready():
                    continue
            elif isinstance(target, PipelinedLink):
                if not target.channel.can_send(0):
                    continue
            else:
                down_router, down_idx = target
                down_fifo = down_router.in_q[down_idx]
                if len(down_fifo) >= down_fifo.depth:
                    continue
            cands = self.candidates[o]
            n = len(cands)
            if not n:
                continue
            ptr = self.arb[o]
            for k in range(n):
                pos = ptr + k
                if pos >= n:
                    pos -= n
                i = cands[pos]
                q = in_q[i]
                if q and q[0].out_dir == o:
                    self.arb[o] = pos + 1 if pos + 1 < n else 0
                    moves.append((self, i, 0, o, q[0]))
                    break


class FbfcRouter(WormholeRouter):
    """Torus router using Flit Bubble Flow Control (Ma et al.).

    No virtual channels: deadlock freedom comes from an injection
    restriction — a packet may *enter* a ring (from the P port or by
    turning from the other dimension) only if the receiving FIFO keeps
    one free slot beyond the packet, so every ring always holds at least
    one bubble and through-traffic can always make progress.  Packets
    already travelling in the ring move under the normal one-slot rule.
    """

    __slots__ = ("_entry_need",)

    def __init__(
        self,
        coord: Coord,
        depth: int,
        route_fn: Callable,
        input_dirs: Sequence[int],
        matrix: Dict[Direction, frozenset],
        ring_axes: Sequence[str] = ("x",),
    ) -> None:
        super().__init__(coord, depth, route_fn, input_dirs, matrix)
        horizontal = {int(Direction.W), int(Direction.E)}
        vertical = {int(Direction.N), int(Direction.S)}
        # _entry_need[o][i]: FIFO slots required for input i to win
        # output o (2 = ring entry, 1 = in-ring or non-ring move).
        self._entry_need = {}
        for o in range(NUM_DIRS):
            needs = {}
            for i in self.candidates[o]:
                entering = (
                    ("x" in ring_axes and o in horizontal
                     and i not in horizontal)
                    or ("y" in ring_axes and o in vertical
                        and i not in vertical)
                )
                needs[i] = 2 if entering else 1
            self._entry_need[o] = needs

    def arbitrate(self, moves: List[Move]) -> None:
        in_q = self.in_q
        for o in self.active_outputs:
            target = self.out_target[o]
            if isinstance(target, Sink):
                if not target.ready():
                    continue
                free = self.depth  # ejection is not a ring entry
            elif isinstance(target, PipelinedLink):
                free = target.channel.credits[0]
            else:
                down_router, down_idx = target
                down_fifo = down_router.in_q[down_idx]
                free = down_fifo.depth - len(down_fifo)
            if free <= 0:
                continue
            cands = self.candidates[o]
            n = len(cands)
            if not n:
                continue
            needs = self._entry_need[o]
            ptr = self.arb[o]
            for k in range(n):
                pos = ptr + k
                if pos >= n:
                    pos -= n
                i = cands[pos]
                q = in_q[i]
                if q and q[0].out_dir == o and free >= needs[i]:
                    self.arb[o] = pos + 1 if pos + 1 < n else 0
                    moves.append((self, i, 0, o, q[0]))
                    break


class VCRouter(BaseRouter):
    """Torus router: 2 VCs per input, VC mux, wavefront switch allocation.

    Structural properties reproduced from the paper's Figure 3c:

    * each input port owns ``num_vcs`` FIFOs but only **one** crossbar
      port, so at most one flit per input per cycle enters the switch;
    * a request is raised only when the destination VC downstream has a
      free slot ("ready-then-valid" — the allocator must not grant flits
      that cannot move);
    * the switch allocator computes a maximal input/output matching
      (wavefront) and a per-input round-robin picks among requesting VCs.
    """

    __slots__ = ("route_vc_fn", "num_ports", "num_vcs", "vc_rr", "alloc", "ports")

    #: Torus routers use only the five mesh directions.
    NUM_PORTS = 5

    def __init__(
        self,
        coord: Coord,
        depth: int,
        route_vc_fn: Callable,
        input_dirs: Sequence[int],
        num_vcs: int,
    ) -> None:
        super().__init__(coord, depth)
        self.route_vc_fn = route_vc_fn
        self.num_vcs = num_vcs
        self.num_ports = self.NUM_PORTS
        self.in_q = [None] * self.NUM_PORTS
        self.in_q[P_IDX] = (deque(),)  # injection queue, single lane
        for i in input_dirs:
            if i != P_IDX:
                self.in_q[i] = tuple(Fifo(depth) for _ in range(num_vcs))
        self.vc_rr = [0] * self.NUM_PORTS
        self.alloc = WavefrontAllocator(self.NUM_PORTS, self.NUM_PORTS)
        self.ports = tuple(
            i for i in range(self.NUM_PORTS) if self.in_q[i] is not None
        )

    def finish_wiring(self) -> None:
        pass

    def accept(self, pkt: Packet, in_idx: int, in_vc: int = 0) -> None:
        pkt.vc = in_vc
        key = (in_idx, in_vc, pkt.dest)
        cached = self.route_cache.get(key)
        if cached is None:
            out, ovc = self.route_vc_fn(
                self.coord, Direction(in_idx), in_vc, pkt.dest
            )
            cached = (int(out), ovc)
            self.route_cache[key] = cached
        pkt.out_dir, pkt.out_vc = cached
        lanes = self.in_q[in_idx]
        lane = 0 if in_idx == P_IDX else in_vc
        lanes[lane].append(pkt)
        self.occ += 1

    def pop(self, in_idx: int, vc: int) -> Packet:
        self.occ -= 1
        lanes = self.in_q[in_idx]
        lane = 0 if in_idx == P_IDX else vc
        return lanes[lane].popleft()

    def _space_downstream(self, pkt: Packet) -> bool:
        o = pkt.out_dir
        target = self.out_target[o]
        if target is None:
            return False
        if isinstance(target, Sink):
            return target.ready()
        if isinstance(target, PipelinedLink):
            return target.channel.can_send(pkt.out_vc)
        down_router, down_idx = target
        lanes = down_router.in_q[down_idx]
        if down_idx == P_IDX:
            fifo = lanes[0]
        else:
            fifo = lanes[pkt.out_vc]
        return len(fifo) < fifo.depth

    def arbitrate(self, moves: List[Move]) -> None:
        nports = self.num_ports
        requests = [[False] * nports for _ in range(nports)]
        # candidates[i][o] -> list of VC lane indices with a valid request
        candidates: List[Dict[int, List[int]]] = [dict() for _ in range(nports)]
        any_request = False
        for i in self.ports:
            lanes = self.in_q[i]
            for lane, fifo in enumerate(lanes):
                if not fifo:
                    continue
                pkt = fifo[0]
                if not self._space_downstream(pkt):
                    continue
                o = pkt.out_dir
                requests[i][o] = True
                candidates[i].setdefault(o, []).append(lane)
                any_request = True
        if not any_request:
            return
        for i, o in self.alloc.allocate(requests):
            lanes = candidates[i][o]
            # Per-input round-robin among requesting VCs (the VC mux).
            ptr = self.vc_rr[i]
            lane = min(lanes, key=lambda v: (v - ptr) % self.num_vcs)
            self.vc_rr[i] = (lane + 1) % self.num_vcs
            pkt = self.in_q[i][lane][0]
            moves.append((self, i, lane, o, pkt))
