"""Pipelined channels with credit-based flow control.

Section 3.2 of the paper: "As the tile size or Ruche Factor increases,
the wire delay starts to dominate, in which case the router and the
physical link need to be pipelined using credit-based flow control.  The
capacity of input FIFOs needs to be increased accordingly to hide the
credit-return latency."

A :class:`PipelinedChannel` models exactly that: flits take
``latency`` cycles to cross, credits take ``latency`` cycles to return,
and the sender may only push while it holds credits.  With the default
single-cycle channels the network bypasses this module entirely (the
sender reads the receiver FIFO's occupancy directly, which is equivalent
for latency 1).

Round-trip accounting: sustaining one flit per cycle across a channel of
latency ``L`` needs ``2L`` buffer slots downstream — the ablation bench
``benchmarks/test_ablation_channel_latency.py`` demonstrates the paper's
sizing rule.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.sim.packet import Packet


class PipelinedChannel:
    """A multi-cycle link between two routers, flow-controlled by credits.

    Parameters
    ----------
    latency:
        Cycles for a flit to traverse (and for a credit to return).
    depth:
        Receiver FIFO depth per lane; the sender starts with this many
        credits per lane.
    num_lanes:
        1 for wormhole receivers; the VC count for torus receivers
        (credits are per-VC).
    """

    __slots__ = ("latency", "num_lanes", "credits", "_in_flight",
                 "_credit_returns")

    def __init__(self, latency: int, depth: int, num_lanes: int = 1) -> None:
        if latency < 1:
            raise ValueError("channel latency must be >= 1")
        self.latency = latency
        self.num_lanes = num_lanes
        self.credits: List[int] = [depth] * num_lanes
        # (arrival_cycle, packet, lane)
        self._in_flight: Deque[Tuple[int, Packet, int]] = deque()
        # (mature_cycle, lane)
        self._credit_returns: Deque[Tuple[int, int]] = deque()

    def can_send(self, lane: int = 0) -> bool:
        return self.credits[lane] > 0

    def send(self, pkt: Packet, cycle: int, lane: int = 0) -> None:
        if self.credits[lane] <= 0:
            raise OverflowError("send without credit: flow control broken")
        self.credits[lane] -= 1
        self._in_flight.append((cycle + self.latency, pkt, lane))

    def credit_return(self, cycle: int, lane: int = 0) -> None:
        """The receiver freed a slot; the credit matures after the wire
        delay back to the sender."""
        self._credit_returns.append((cycle + self.latency, lane))

    def deliveries(self, cycle: int):
        """Pop and yield every (packet, lane) arriving this cycle, and
        mature any due credits."""
        while self._credit_returns and self._credit_returns[0][0] <= cycle:
            _, lane = self._credit_returns.popleft()
            self.credits[lane] += 1
        while self._in_flight and self._in_flight[0][0] <= cycle:
            _, pkt, lane = self._in_flight.popleft()
            yield pkt, lane

    @property
    def occupancy(self) -> int:
        """Flits currently on the wire."""
        return len(self._in_flight)


def channel_latency_for(
    config, direction, base_latency: int = 1,
    ruche_latency: Optional[int] = None,
) -> int:
    """Per-direction channel latency policy.

    Local links take ``base_latency``; Ruche links may take longer when
    the wire delay exceeds a cycle (``ruche_latency``, defaulting to the
    base).
    """
    if direction.is_ruche and ruche_latency is not None:
        return ruche_latency
    return base_latency
