"""Network packets.

The paper's synthetic evaluation and the cellular manycore both use
single-flit packets ("We assume using a single-flit packet", Section 4.1;
word-level packets in Section 1), so a packet and a flit are the same unit
here.  A packet carries its routing state: the cached output direction (and
output VC on torus) computed when it arrived at its current router, and the
subnet class chosen at injection for Ruche-One / multi-mesh parity routing.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.coords import Coord


class Packet:
    """A single-flit packet traversing the network.

    Attributes
    ----------
    pid:
        Unique id within one simulation run.
    src, dest:
        Endpoint coordinates.  Memory endpoints use the phantom rows
        ``y = -1`` / ``y = height``.
    inject_cycle:
        Cycle the packet entered its source queue.
    subnet:
        Injection-time class for parity-balanced routing (0 otherwise).
    vc:
        The virtual channel the packet currently occupies (torus only).
    out_dir / out_vc:
        The output port (and VC) requested at the packet's *current*
        router, cached when the packet arrived there.
    measured:
        True when injected inside the measurement window.
    hops:
        Channel traversals so far.
    payload:
        Opaque field used by the manycore layer (request descriptors).
    """

    __slots__ = (
        "pid",
        "src",
        "dest",
        "inject_cycle",
        "subnet",
        "vc",
        "out_dir",
        "out_vc",
        "measured",
        "hops",
        "payload",
    )

    def __init__(
        self,
        pid: int,
        src: Coord,
        dest: Coord,
        inject_cycle: int,
        subnet: int = 0,
        measured: bool = False,
        payload: Optional[Any] = None,
    ) -> None:
        self.pid = pid
        self.src = src
        self.dest = dest
        self.inject_cycle = inject_cycle
        self.subnet = subnet
        self.vc = 0
        self.out_dir = 0
        self.out_vc = 0
        self.measured = measured
        self.hops = 0
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.pid} {tuple(self.src)}->{tuple(self.dest)} "
            f"t={self.inject_cycle} hops={self.hops})"
        )
