"""Network assembly and the cycle loop.

A :class:`Network` materializes a design point into routers wired by the
topology's channels and advances them with a two-phase cycle:

1. **Arbitrate** — every router with buffered packets computes its switch
   grants against cycle-start FIFO occupancies (so a full FIFO cannot
   accept an enqueue on the cycle it dequeues, matching registered
   ready/valid handshakes).
2. **Commit** — all granted moves execute atomically: pops, pushes (with
   the next hop's route computed on arrival), ejections into sinks.

Endpoints are pluggable: the default sink records metrics (synthetic
traffic); the manycore layer attaches tiles and memory controllers that
exert backpressure and re-inject response traffic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.connectivity import Matrix
from repro.core.coords import Coord
from repro.core.params import NetworkConfig
from repro.core.registry import ROUTERS
from repro.core.routing import RoutingAlgorithm
from repro.core.spec import default_router_kind, network_components
from repro.core.topology import Topology
from repro.errors import ConfigError, DeadlockError
from repro.sim.channel import PipelinedChannel
from repro.sim.faults import FaultSchedule
from repro.sim.metrics import RunMetrics
from repro.sim.packet import Packet
from repro.sim.router import (
    KIND_DIRECT,
    KIND_LINK,
    P_IDX,
    MetricsSink,
    Move,
    PipelinedLink,
    Sink,
)
from repro.sim.watchdog import WatchdogConfig, capture_snapshot

#: Consecutive all-idle cycles with packets in flight before the watchdog
#: declares a deadlock.  Correct routing never trips this.  (Kept as the
#: default of :class:`~repro.sim.watchdog.WatchdogConfig.stall_window`.)
DEADLOCK_WATCHDOG_CYCLES = 1000


class Network:
    """One NoC instance: routers, channels, endpoints, and the cycle loop.

    Parameters
    ----------
    config:
        The design point to build.
    metrics:
        Measurement collector; a fresh :class:`RunMetrics` by default.
    sink_factory:
        Optional ``coord -> Sink`` supplying each tile's ejection endpoint
        (defaults to the shared metrics sink).
    memory_sink_factory:
        Optional ``coord -> Sink`` for the phantom memory endpoints on the
        array's north/south edges (``edge_memory`` configs only).
    faults:
        Optional :class:`~repro.sim.faults.FaultSchedule`.  Dead
        links/routers are left unwired and routing is recomputed around
        them (routers are then built with the fault-tolerant crossbar);
        transient faults drop flits in the commit phase.
    watchdog:
        Forward-progress thresholds; defaults to the classic
        1000-idle-cycle stall watchdog with starvation detection off.
    topology / routing / matrix:
        Pre-resolved components, normally supplied by
        :func:`repro.core.spec.build_network`; any left ``None`` is
        resolved through :func:`repro.core.spec.network_components`
        (the builtin components for the config, or the fault-aware
        variants under a routing-affecting fault schedule).
    router / allocator:
        Registered router-kind and switch-allocator names; ``None``
        selects the config's defaults (see
        :func:`repro.core.spec.default_router_kind`).
    """

    def __init__(
        self,
        config: NetworkConfig,
        metrics: Optional[RunMetrics] = None,
        sink_factory: Optional[Callable[[Coord], Sink]] = None,
        memory_sink_factory: Optional[Callable[[Coord], Sink]] = None,
        faults: Optional[FaultSchedule] = None,
        watchdog: Optional[WatchdogConfig] = None,
        *,
        topology: Optional[Topology] = None,
        routing: Optional[RoutingAlgorithm] = None,
        matrix: Optional[Matrix] = None,
        router: Optional[str] = None,
        allocator: Optional[str] = None,
    ) -> None:
        self.config = config
        self.faults = faults
        self.watchdog = watchdog if watchdog is not None else WatchdogConfig()
        if faults is not None and faults.affects_routing and (
            config.uses_vcs or config.fbfc
        ):
            raise ConfigError(
                "dead links/routers (fault-aware rerouting) support "
                "wormhole-routed topologies only (mesh / Ruche family); "
                "transient drop faults run on any topology"
            )
        if topology is None or routing is None or matrix is None:
            components = network_components(config, faults=faults)
            if topology is None:
                topology = components.topology
            if routing is None:
                routing = components.routing
            if matrix is None:
                matrix = components.matrix
        self.topology = topology
        self.routing = routing
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.cycle = 0
        self.occupancy = 0
        self._idle_cycles = 0
        self._starved_cycles = 0
        self._next_pid = 0
        killed = faults.killed_channels if faults is not None else frozenset()
        self._drop_rng = faults.make_drop_rng() if faults is not None else None
        self._has_transient = bool(faults is not None and faults.transient)
        default_sink = MetricsSink(self.metrics)
        #: The crossbar matrix every router was provisioned with; the
        #: runtime audit checks buffered routes against it via the same
        #: turn-legality predicate as the static verifier.
        self.matrix = matrix

        router_kind = (
            router if router is not None else default_router_kind(config)
        )
        build_router = ROUTERS.get(router_kind)
        self.routers: Dict[Coord, object] = {}
        for coord in self.topology.nodes:
            input_dirs = [
                int(d)
                for d in self.topology.output_directions(coord)
                if (coord, d) not in killed
            ]
            # Route decisions are pure functions of (node, input, dest,
            # subnet); the memo dict is owned by the routing object so a
            # sweep rebuilding networks for the same design point never
            # recomputes a route it has already seen.
            route_cache = self.routing.node_route_cache(coord)
            self.routers[coord] = build_router(
                coord=coord,
                config=config,
                routing=self.routing,
                input_dirs=input_dirs,
                matrix=matrix,
                route_cache=route_cache,
                allocator=allocator,
            )

        # Pipelined links (only created when channel latency > 1).
        self._channels: List[PipelinedLink] = []
        # Edge-memory entry points: phantom coord -> (router, input index).
        self._edge_entry: Dict[Coord, tuple] = {}
        memory_coords = set(self.topology.memory_nodes)
        for src, direction, dst in self.topology.channels:
            if (src, direction) in killed:
                continue  # dead link or failed router: never wired
            if dst in memory_coords:
                sink = (
                    memory_sink_factory(dst)
                    if memory_sink_factory
                    else default_sink
                )
                self.routers[src].out_target[int(direction)] = sink
            elif src in memory_coords:
                self._edge_entry[src] = (
                    self.routers[dst],
                    int(direction.opposite),
                )
            else:
                latency = config.latency_for(direction)
                down = self.routers[dst]
                in_idx = int(direction.opposite)
                if latency > 1:
                    lanes = config.num_vcs if config.uses_vcs else 1
                    channel = PipelinedChannel(
                        latency, config.fifo_depth, num_lanes=lanes
                    )
                    link = PipelinedLink(channel, down, in_idx)
                    self._channels.append(link)
                    down.in_channel[in_idx] = channel
                    self.routers[src].out_target[int(direction)] = link
                else:
                    self.routers[src].out_target[int(direction)] = (
                        down,
                        in_idx,
                    )
        for coord, router in self.routers.items():
            sink = sink_factory(coord) if sink_factory else default_sink
            router.out_target[P_IDX] = sink
            router.finish_wiring()
        self._router_list = list(self.routers.values())
        for idx, router in enumerate(self._router_list):
            router.net_idx = idx
        # Indexes (into _router_list) of routers currently holding at
        # least one packet.  The cycle loop arbitrates only these,
        # iterating a sorted view so the per-cycle order — and with it
        # the transient-fault RNG stream — is identical to a full scan.
        self._active: set = set()

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def inject(
        self,
        src: Coord,
        dest: Coord,
        *,
        measured: bool = False,
        payload=None,
    ) -> Packet:
        """Create a packet at ``src``'s source queue, bound for ``dest``."""
        subnet = self.routing.injection_subnet(src, dest)
        pkt = Packet(
            self._next_pid,
            src,
            dest,
            self.cycle,
            subnet=subnet,
            measured=measured,
            payload=payload,
        )
        self._next_pid += 1
        router = self.routers[src]
        router.accept(pkt, P_IDX)
        self._active.add(router.net_idx)
        self.occupancy += 1
        self.metrics.record_injection(measured)
        return pkt

    def source_queue_len(self, src: Coord) -> int:
        """Occupancy of a tile's injection queue (closed-loop backpressure)."""
        router = self.routers[src]
        lanes = router.in_q[P_IDX]
        return len(lanes[0]) if isinstance(lanes, tuple) else len(lanes)

    def try_inject_from_memory(self, mem_coord: Coord, dest: Coord, *,
                               payload=None, measured: bool = False) -> bool:
        """Inject a packet from a phantom memory endpoint into the array.

        Memory responses enter through the edge router's vertical input
        FIFO; the injection fails (returns False) when that FIFO is full,
        which is how memory-side backpressure propagates.
        """
        router, in_idx = self._edge_entry[mem_coord]
        fifo = self._edge_fifo(router, in_idx)
        if len(fifo) >= self.config.fifo_depth:
            return False
        pkt = Packet(
            self._next_pid,
            mem_coord,
            dest,
            self.cycle,
            measured=measured,
            payload=payload,
        )
        self._next_pid += 1
        if self.config.uses_vcs:
            router.accept(pkt, in_idx, 0)
        else:
            router.accept(pkt, in_idx)
        self._active.add(router.net_idx)
        self.occupancy += 1
        self.metrics.record_injection(measured)
        return True

    def memory_entry_space(self, mem_coord: Coord) -> int:
        """Free slots in the edge FIFO behind a memory endpoint."""
        router, in_idx = self._edge_entry[mem_coord]
        fifo = self._edge_fifo(router, in_idx)
        return self.config.fifo_depth - len(fifo)

    @staticmethod
    def _edge_fifo(router, in_idx: int):
        lanes = router.in_q[in_idx]
        # VC routers keep a tuple of lanes; memory responses ride VC 0.
        return lanes[0] if isinstance(lanes, tuple) else lanes

    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------
    def step(self) -> int:
        """Advance one cycle; returns the number of switch traversals."""
        arrivals = 0
        active = self._active
        if self._channels:
            for link in self._channels:
                for pkt, lane in link.channel.deliveries(self.cycle):
                    link.router.accept(pkt, link.in_idx, lane)
                    active.add(link.router.net_idx)
                    arrivals += 1
        moves: List[Move] = []
        if active:
            router_list = self._router_list
            # Quiescent routers never enter the active set, so the cycle
            # loop touches only buffered routers; the sorted view keeps
            # the arbitration (and hence move/RNG) order deterministic.
            for idx in sorted(active):
                router_list[idx].arbitrate(moves)
        ejections = 0
        if moves:
            cycle = self.cycle
            hop_counts = self.metrics.hop_counts
            link_counts = self.metrics.link_counts
            has_transient = self._has_transient
            for router, in_idx, vc, out_idx, pkt in moves:
                router.pop(in_idx, vc)
                if not router.occ:
                    active.discard(router.net_idx)
                channel = router.in_channel[in_idx]
                if channel is not None:
                    channel.credit_return(cycle, vc)
                if has_transient and out_idx != P_IDX:
                    fault = self.faults.transient_on(router.coord, out_idx)
                    if (
                        fault is not None
                        and fault.active(cycle)
                        and self._drop_rng.random() < fault.drop_prob
                    ):
                        # The flit dies on the faulty wires: it left its
                        # FIFO (credit already returned) but never
                        # arrives anywhere.
                        self.occupancy -= 1
                        self.metrics.record_drop(pkt)
                        continue
                if link_counts is not None and out_idx != P_IDX:
                    key = (router.coord, out_idx)
                    link_counts[key] = link_counts.get(key, 0) + 1
                kind = router.out_kind[out_idx]
                target = router.out_target[out_idx]
                if kind == KIND_DIRECT:  # router-to-router is the hot case
                    pkt.hops += 1
                    hop_counts[out_idx] += 1
                    down, idx = target
                    down.accept(pkt, idx, pkt.out_vc)
                    active.add(down.net_idx)
                elif kind == KIND_LINK:
                    pkt.hops += 1
                    hop_counts[out_idx] += 1
                    target.channel.send(pkt, cycle, pkt.out_vc)
                else:  # sink (KIND_SINK / KIND_SINK_FREE)
                    if out_idx != P_IDX:
                        pkt.hops += 1
                        hop_counts[out_idx] += 1
                    self.occupancy -= 1
                    ejections += 1
                    target.deliver(pkt, cycle)
        watchdog = self.watchdog
        if moves or arrivals:
            self._idle_cycles = 0
        elif self.occupancy:
            self._idle_cycles += 1
            if self._idle_cycles >= watchdog.stall_window:
                snapshot = capture_snapshot(
                    self, "stall", self._idle_cycles
                )
                raise DeadlockError(
                    f"no packet moved for {self._idle_cycles} cycles with "
                    f"{self.occupancy} packets in flight: deadlock "
                    f"[{snapshot.summary()}]",
                    snapshot=snapshot,
                )
        if watchdog.starvation_window is not None:
            if ejections or not self.occupancy:
                self._starved_cycles = 0
            else:
                self._starved_cycles += 1
                if self._starved_cycles >= watchdog.starvation_window:
                    snapshot = capture_snapshot(
                        self, "starvation", self._starved_cycles
                    )
                    raise DeadlockError(
                        f"no packet ejected for {self._starved_cycles} "
                        f"cycles with {self.occupancy} packets in flight: "
                        f"livelock [{snapshot.summary()}]",
                        snapshot=snapshot,
                    )
        self.cycle += 1
        return len(moves)

    def run(self, cycles: int) -> None:
        """Advance ``cycles`` cycles."""
        for _ in range(cycles):
            self.step()

    def drain(self, limit: int) -> bool:
        """Step until the network is empty; False if ``limit`` hit first."""
        for _ in range(limit):
            if self.occupancy == 0:
                return True
            self.step()
        return self.occupancy == 0
