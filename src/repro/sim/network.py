"""Network assembly and the cycle loop.

A :class:`Network` materializes a design point into routers wired by the
topology's channels and advances them with a two-phase cycle:

1. **Arbitrate** — every router with buffered packets computes its switch
   grants against cycle-start FIFO occupancies (so a full FIFO cannot
   accept an enqueue on the cycle it dequeues, matching registered
   ready/valid handshakes).
2. **Commit** — all granted moves execute atomically: pops, pushes (with
   the next hop's route computed on arrival), ejections into sinks.

Endpoints are pluggable: the default sink records metrics (synthetic
traffic); the manycore layer attaches tiles and memory controllers that
exert backpressure and re-inject response traffic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.coords import Coord, Direction
from repro.core.connectivity import connectivity_matrix
from repro.core.params import NetworkConfig
from repro.core.routing import make_routing
from repro.core.topology import Topology
from repro.errors import SimulationError
from repro.sim.channel import PipelinedChannel
from repro.sim.metrics import RunMetrics
from repro.sim.packet import Packet
from repro.sim.router import (
    FbfcRouter,
    Move,
    MetricsSink,
    P_IDX,
    PipelinedLink,
    Sink,
    VCRouter,
    WormholeRouter,
)

#: Consecutive all-idle cycles with packets in flight before the watchdog
#: declares a deadlock.  Correct routing never trips this.
DEADLOCK_WATCHDOG_CYCLES = 1000


class Network:
    """One NoC instance: routers, channels, endpoints, and the cycle loop.

    Parameters
    ----------
    config:
        The design point to build.
    metrics:
        Measurement collector; a fresh :class:`RunMetrics` by default.
    sink_factory:
        Optional ``coord -> Sink`` supplying each tile's ejection endpoint
        (defaults to the shared metrics sink).
    memory_sink_factory:
        Optional ``coord -> Sink`` for the phantom memory endpoints on the
        array's north/south edges (``edge_memory`` configs only).
    """

    def __init__(
        self,
        config: NetworkConfig,
        metrics: Optional[RunMetrics] = None,
        sink_factory: Optional[Callable[[Coord], Sink]] = None,
        memory_sink_factory: Optional[Callable[[Coord], Sink]] = None,
    ) -> None:
        self.config = config
        self.topology = Topology(config)
        self.routing = make_routing(config)
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.cycle = 0
        self.occupancy = 0
        self._idle_cycles = 0
        self._next_pid = 0
        default_sink = MetricsSink(self.metrics)

        self.routers: Dict[Coord, object] = {}
        for coord in self.topology.nodes:
            input_dirs = [
                int(d) for d in self.topology.output_directions(coord)
            ]
            if config.uses_vcs:
                router = VCRouter(
                    coord,
                    config.fifo_depth,
                    self.routing.route_vc,
                    input_dirs,
                    config.num_vcs,
                )
            elif config.fbfc:
                from repro.core.params import TopologyKind

                ring_axes = (
                    ("x", "y")
                    if config.kind is TopologyKind.FOLDED_TORUS
                    else ("x",)
                )
                router = FbfcRouter(
                    coord,
                    config.fifo_depth,
                    self.routing.route,
                    input_dirs,
                    connectivity_matrix(config),
                    ring_axes=ring_axes,
                )
            else:
                router = WormholeRouter(
                    coord,
                    config.fifo_depth,
                    self.routing.route,
                    input_dirs,
                    connectivity_matrix(config),
                )
            self.routers[coord] = router

        # Pipelined links (only created when channel latency > 1).
        self._channels: List[PipelinedLink] = []
        # Edge-memory entry points: phantom coord -> (router, input index).
        self._edge_entry: Dict[Coord, tuple] = {}
        memory_coords = set(self.topology.memory_nodes)
        for src, direction, dst in self.topology.channels:
            if dst in memory_coords:
                sink = (
                    memory_sink_factory(dst)
                    if memory_sink_factory
                    else default_sink
                )
                self.routers[src].out_target[int(direction)] = sink
            elif src in memory_coords:
                self._edge_entry[src] = (
                    self.routers[dst],
                    int(direction.opposite),
                )
            else:
                latency = config.latency_for(direction)
                down = self.routers[dst]
                in_idx = int(direction.opposite)
                if latency > 1:
                    lanes = config.num_vcs if config.uses_vcs else 1
                    channel = PipelinedChannel(
                        latency, config.fifo_depth, num_lanes=lanes
                    )
                    link = PipelinedLink(channel, down, in_idx)
                    self._channels.append(link)
                    down.in_channel[in_idx] = channel
                    self.routers[src].out_target[int(direction)] = link
                else:
                    self.routers[src].out_target[int(direction)] = (
                        down,
                        in_idx,
                    )
        for coord, router in self.routers.items():
            sink = sink_factory(coord) if sink_factory else default_sink
            router.out_target[P_IDX] = sink
            router.finish_wiring()
        self._router_list = list(self.routers.values())

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------
    def inject(
        self,
        src: Coord,
        dest: Coord,
        *,
        measured: bool = False,
        payload=None,
    ) -> Packet:
        """Create a packet at ``src``'s source queue, bound for ``dest``."""
        subnet = self.routing.injection_subnet(src, dest)
        pkt = Packet(
            self._next_pid,
            src,
            dest,
            self.cycle,
            subnet=subnet,
            measured=measured,
            payload=payload,
        )
        self._next_pid += 1
        self.routers[src].accept(pkt, P_IDX)
        self.occupancy += 1
        self.metrics.record_injection(measured)
        return pkt

    def source_queue_len(self, src: Coord) -> int:
        """Occupancy of a tile's injection queue (closed-loop backpressure)."""
        router = self.routers[src]
        lanes = router.in_q[P_IDX]
        return len(lanes[0]) if isinstance(lanes, tuple) else len(lanes)

    def try_inject_from_memory(self, mem_coord: Coord, dest: Coord, *,
                               payload=None, measured: bool = False) -> bool:
        """Inject a packet from a phantom memory endpoint into the array.

        Memory responses enter through the edge router's vertical input
        FIFO; the injection fails (returns False) when that FIFO is full,
        which is how memory-side backpressure propagates.
        """
        router, in_idx = self._edge_entry[mem_coord]
        fifo = self._edge_fifo(router, in_idx)
        if len(fifo) >= self.config.fifo_depth:
            return False
        pkt = Packet(
            self._next_pid,
            mem_coord,
            dest,
            self.cycle,
            measured=measured,
            payload=payload,
        )
        self._next_pid += 1
        if self.config.uses_vcs:
            router.accept(pkt, in_idx, 0)
        else:
            router.accept(pkt, in_idx)
        self.occupancy += 1
        self.metrics.record_injection(measured)
        return True

    def memory_entry_space(self, mem_coord: Coord) -> int:
        """Free slots in the edge FIFO behind a memory endpoint."""
        router, in_idx = self._edge_entry[mem_coord]
        fifo = self._edge_fifo(router, in_idx)
        return self.config.fifo_depth - len(fifo)

    @staticmethod
    def _edge_fifo(router, in_idx: int):
        lanes = router.in_q[in_idx]
        # VC routers keep a tuple of lanes; memory responses ride VC 0.
        return lanes[0] if isinstance(lanes, tuple) else lanes

    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------
    def step(self) -> int:
        """Advance one cycle; returns the number of switch traversals."""
        arrivals = 0
        if self._channels:
            for link in self._channels:
                for pkt, lane in link.channel.deliveries(self.cycle):
                    link.router.accept(pkt, link.in_idx, lane)
                    arrivals += 1
        moves: List[Move] = []
        for router in self._router_list:
            if router.occ:
                router.arbitrate(moves)
        if moves:
            hop_counts = self.metrics.hop_counts
            link_counts = self.metrics.link_counts
            for router, in_idx, vc, out_idx, pkt in moves:
                router.pop(in_idx, vc)
                channel = router.in_channel[in_idx]
                if channel is not None:
                    channel.credit_return(self.cycle, vc)
                if link_counts is not None and out_idx != P_IDX:
                    key = (router.coord, out_idx)
                    link_counts[key] = link_counts.get(key, 0) + 1
                target = router.out_target[out_idx]
                if isinstance(target, Sink):
                    if out_idx != P_IDX:
                        pkt.hops += 1
                        hop_counts[out_idx] += 1
                    self.occupancy -= 1
                    target.deliver(pkt, self.cycle)
                elif isinstance(target, PipelinedLink):
                    pkt.hops += 1
                    hop_counts[out_idx] += 1
                    target.channel.send(pkt, self.cycle, pkt.out_vc)
                else:
                    pkt.hops += 1
                    hop_counts[out_idx] += 1
                    down, idx = target
                    down.accept(pkt, idx, pkt.out_vc)
        if moves or arrivals:
            self._idle_cycles = 0
        elif self.occupancy:
            self._idle_cycles += 1
            if self._idle_cycles >= DEADLOCK_WATCHDOG_CYCLES:
                raise SimulationError(
                    f"no packet moved for {self._idle_cycles} cycles with "
                    f"{self.occupancy} packets in flight: deadlock"
                )
        self.cycle += 1
        return len(moves)

    def run(self, cycles: int) -> None:
        """Advance ``cycles`` cycles."""
        for _ in range(cycles):
            self.step()

    def drain(self, limit: int) -> bool:
        """Step until the network is empty; False if ``limit`` hit first."""
        for _ in range(limit):
            if self.occupancy == 0:
                return True
            self.step()
        return self.occupancy == 0
