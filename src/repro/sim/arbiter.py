"""Round-robin arbiter.

Ruche routers arbitrate each output direction with "a simple round-robin
policy" (Section 3.2): the most recently granted requester gets the lowest
priority next cycle.  The hot router loop inlines this logic for speed;
this class is the reference implementation, used by the VC router's
per-input VC selection and cross-checked against the inlined version in
the test suite.
"""

from __future__ import annotations

from typing import Optional, Sequence


class RoundRobinArbiter:
    """Grants one of ``n`` requesters with rotating priority."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("arbiter needs at least one requester")
        self.n = n
        self.ptr = 0

    def pick(self, requests: Sequence[bool]) -> Optional[int]:
        """Index of the winning requester, or ``None`` if none request.

        Does not advance the priority pointer; call :meth:`grant` once the
        winner actually moves (a granted packet may still be blocked
        downstream, in which case priority must not rotate past it).
        """
        if len(requests) != self.n:
            raise ValueError("request vector width mismatch")
        for k in range(self.n):
            idx = (self.ptr + k) % self.n
            if requests[idx]:
                return idx
        return None

    def grant(self, idx: int) -> None:
        """Commit a grant: ``idx`` becomes the lowest-priority requester."""
        self.ptr = (idx + 1) % self.n
