"""Compiled structure-of-arrays simulation engine.

The reference engine (:mod:`repro.sim.network`) spends most of its time
in per-flit object machinery: a ``Packet`` per flit, a ``Fifo`` per
port, a method call per router per cycle.  This module lowers a design
point into flat preallocated integer structures once — per-port FIFO
queues of packet ids, route tables indexed ``(node, dest) -> output
port``, packed per-packet records (destination index, inject cycle,
measured bit) — and steps the whole network with tight loops over those
structures.  The lowering is *compiled by extraction*: a throwaway
reference :class:`~repro.sim.network.Network` is built once per config
and its wiring (candidate lists, arbitration plans, downstream targets)
is copied out, which guarantees the compiled network is wired
identically to the one the reference engine would simulate.

Equivalence contract
--------------------
For every run the compiled engine accepts, its :class:`RunResult` and
:class:`~repro.sim.metrics.RunMetrics` are **bit-identical** to the
reference engine's: same RNG streams and consumption order, same
injection and arbitration order, same round-robin/wavefront pointer
trajectories, same per-packet latency multiset and delivery order.  The
cross-engine differential tests in ``tests/sim/test_fastsim.py`` enforce
this on the canonical bench cases and on hypothesis-generated specs.

Arbitration is additionally skipped for *clean* routers — routers whose
queues and downstream occupancies are untouched since they last
arbitrated.  This is lossless, not approximate: in all three router
kinds a grantless arbitration mutates no state (round-robin pointers
advance only on grants; the VC router rotates its wavefront priority
only when at least one space-gated request exists, and any such request
always yields a grant), so re-running it would reproduce the same
nothing.

Faults at compiled speed
------------------------
:class:`~repro.sim.faults.FaultSchedule` state is lowered rather than
delegated.  Dead links and routers are masked ports: the throwaway
extraction network is built *with* the schedule, so killed channels are
never wired and the packed route tables come straight from
:class:`~repro.core.routing.FaultAwareTableRouting`'s BFS tables
(``-1`` marks states a packet can never occupy).  Transient drop faults
replay the reference's ``faults:drops`` stream inside the commit loop,
at the exact point the reference engine draws it.  The forward-progress
watchdog stays a cheap in-loop stall counter; only on a trip is the
flat queue state rehydrated into a reference-style network to capture a
full :class:`~repro.sim.watchdog.DeadlockSnapshot`.  Constraint: the
native step kernel cannot draw from Python's Mersenne RNG, so runs with
*transient* faults always take the pure-Python step loops (permanent
faults keep the kernel — masked ports are just absent table entries).

What falls back
---------------
Runs the compiler cannot prove equivalent are transparently delegated to
the reference engine (the returned result then reports
``engine == "reference"``): ``audit_every`` tripwires, plugin topology
components, non-builtin routing/router/allocator types, edge-memory
endpoints, multi-cycle (pipelined) channels, and fault-aware rerouting
on the VC/FBFC torus routers (which the reference engine rejects with
the same :class:`~repro.errors.ConfigError`).
"""

from __future__ import annotations

import ctypes
import dataclasses
import time
from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig, TopologyKind
from repro.core.routing import (
    FaultAwareTableRouting,
    MeshDOR,
    MultiMeshRouting,
    RucheDOR,
    RucheOneRouting,
    TorusDOR,
    _ParitySubnetRouting,
    tabulate_next_hops,
)
from repro.core.spec import (
    NetworkSpec,
    build_config,
    build_faults,
    build_network,
    build_pattern,
    build_watchdog,
)
from repro.errors import DeadlockError, SimulationTimeout
from repro.sim import _ckernel
from repro.sim.faults import FaultSchedule
from repro.sim.allocator import WavefrontAllocator
from repro.sim.metrics import LatencyStats, RunMetrics
from repro.sim.rng import derive_rng
from repro.sim.router import (
    KIND_DIRECT,
    KIND_SINK_FREE,
    NUM_DIRS,
    P_IDX,
    FbfcRouter,
    Sink,
    VCRouter,
    WormholeRouter,
    _target_kind,
)
from repro.sim.watchdog import WatchdogConfig

__all__ = [
    "LoweringDiagnostic",
    "batching_problems",
    "clear_compile_caches",
    "lowering_problems",
    "run_compiled",
    "run_compiled_batch",
]

#: How often (in cycles) the wall-clock limit is polled (must match the
#: reference engine so budget overruns trip on the same cycle).
_WALL_CHECK_EVERY = 256

#: Input / output port and diagonal decodings for a flat 5x5 VC request
#: index (``idx = in_port * 5 + out_port``); _DIAG5 is the wavefront
#: step on which the allocator visits the pair when its priority is 0.
_I5 = tuple(idx // 5 for idx in range(25))
_O5 = tuple(idx % 5 for idx in range(25))
_DIAG5 = tuple((idx // 5 + idx % 5) % 5 for idx in range(25))

#: _WF_KEYS[priority][idx] orders flat request indices exactly as the
#: wavefront allocator visits them for that priority: diagonal first,
#: then input port ascending within a diagonal.
_WF_KEYS = tuple(
    tuple(((_DIAG5[idx] - b) % 5) * 5 + _I5[idx] for idx in range(25))
    for b in range(5)
)

#: Routing algorithms whose route functions the compiler knows how to
#: tabulate.  Exact-type matches only: a subclass may override behavior
#: the tables would not capture, so it falls back.
_SUPPORTED_ROUTINGS = (
    MeshDOR,
    RucheDOR,
    RucheOneRouting,
    MultiMeshRouting,
    TorusDOR,
)


@dataclasses.dataclass(frozen=True)
class LoweringDiagnostic:
    """One structured reason a design point cannot lower to this engine.

    ``code`` is a stable machine-readable slug (``"pipelined-channels"``,
    ``"audit-every"``, ...); ``detail`` is the human-readable
    explanation.  Diagnostics come from the same gate checks and
    compile-time raises that make :func:`run_compiled` fall back, so
    :func:`lowering_problems` can never disagree with the engine about
    *why* a run delegated to reference.
    """

    code: str
    detail: str

    def render(self) -> str:
        return f"{self.code}: {self.detail}"


class _Unsupported(Exception):
    """Raised during compilation when a design point cannot be lowered."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"{code}: {detail}")
        self.diagnostic = LoweringDiagnostic(code=code, detail=detail)


class _CompiledModel:
    """Immutable per-config lowering shared by every run of that config.

    Holds only static tables (wiring, routes, candidate lists); all
    mutable simulation state (queues, pointers, counters) is allocated
    fresh per run by :func:`_execute`.
    """

    __slots__ = (
        "kind",
        "config",
        "nodes",
        "node_index",
        "n",
        "depth",
        "num_vcs",
        "subnet_tab",
        "reachable",
        # wormhole / fbfc
        "in_lists",
        "posmaps",
        "plans",
        "feeders",
        "route_rows",
        # vc
        "ports",
        "out_tab",
        "vcn_tab",
        "dl_tab",
        "same_dim",
        "vc_wiring",
        # lazily-built flat tables for the native step kernel
        "carrays",
        "cvarrays",
        "csubnet",
    )


# Compiled models keyed by (config, routing, router, allocator) names
# plus the routing-relevant fault state (killed channels + degraded
# flag; transient-only schedules share the healthy model — the wiring
# is unchanged and drops happen at run time).  An uncompilable design
# point caches its LoweringDiagnostic so repeat calls skip the
# throwaway-network build yet still report the original reason.
_MISSING = object()
_COMPILE_CACHE: Dict[
    Tuple, Union[_CompiledModel, LoweringDiagnostic]
] = {}


def clear_compile_caches() -> None:
    """Drop every compiled model (bench cold-start / test hygiene)."""
    _COMPILE_CACHE.clear()
    _PATTERN_CACHE.clear()


# ----------------------------------------------------------------------
# Compilation (by extraction from a throwaway reference network)
# ----------------------------------------------------------------------
def _compile(
    target: Union[NetworkConfig, NetworkSpec],
    config: NetworkConfig,
    routing_name: Optional[str],
    router_name: Optional[str],
    allocator_name: Optional[str],
    faults: Any = None,
) -> _CompiledModel:
    fault_key = (
        (faults.killed_channels, faults.dead_routers, faults.degraded_model)
        if faults is not None
        else None
    )
    key = (config, routing_name, router_name, allocator_name, fault_key)
    cached = _COMPILE_CACHE.get(key, _MISSING)
    if cached is not _MISSING:
        if isinstance(cached, LoweringDiagnostic):
            raise _Unsupported(cached.code, cached.detail)
        return cached
    try:
        model = _build_model(target, config, faults)
    except _Unsupported as exc:
        _COMPILE_CACHE[key] = exc.diagnostic
        raise
    _COMPILE_CACHE[key] = model
    return model


def _extraction_target(
    target: Union[NetworkConfig, NetworkSpec],
) -> Union[NetworkConfig, NetworkSpec]:
    """``target`` with any spec-level fault fields neutralized.

    Extraction passes its :class:`FaultSchedule` (or its absence)
    explicitly, so a spec target must not re-resolve its own fault
    fields inside ``build_network`` — an explicit ``faults=None`` must
    mean *healthy*, not *use the spec's faults*.
    """
    if isinstance(target, NetworkSpec):
        return target.replace(
            fault_links=0,
            fault_routers=0,
            fault_transient=0,
            degraded_model=False,
        )
    return target


def _direct_target(router, o: int) -> Tuple[int, int]:
    down, down_idx = router.out_target[o]
    return down.net_idx, down_idx


def _build_model(
    target: Union[NetworkConfig, NetworkSpec],
    config: NetworkConfig,
    faults: Any = None,
) -> _CompiledModel:
    # Building the extraction network *with* the schedule means killed
    # channels are never wired, so masked ports (shrunk input lists,
    # absent plan entries, -1 posmap slots) fall out of extraction for
    # free and stay wired identically to the reference network.
    net = build_network(_extraction_target(target), faults=faults)
    if net._channels:
        raise _Unsupported(
            "pipelined-channels",
            "multi-cycle channel pipelining is not lowered",
        )
    if net._edge_entry or net.topology.memory_nodes:
        raise _Unsupported(
            "edge-memory", "edge-memory endpoints are not lowered"
        )
    routing = net.routing
    if type(routing) is FaultAwareTableRouting and faults is None:
        raise _Unsupported(
            "fault-aware-routing",
            "fault-aware table routing without a FaultSchedule",
        )
    routers = net._router_list
    kinds = {type(r) for r in routers}
    if kinds == {WormholeRouter}:
        kind = "wormhole"
    elif kinds == {FbfcRouter}:
        kind = "fbfc"
    elif kinds == {VCRouter}:
        kind = "vc"
    else:
        raise _Unsupported(
            "unsupported-router",
            f"router kinds {sorted(k.__name__ for k in kinds)}",
        )

    model = _CompiledModel()
    model.kind = kind
    model.config = config
    model.carrays = None
    model.cvarrays = None
    model.csubnet = None
    # Mirrors the reference engine's getattr: only the fault-aware
    # tables expose reachability, and only faulted runs consult it.
    model.reachable = getattr(routing, "reachable", None)
    nodes = tuple(net.topology.nodes)
    model.nodes = nodes
    model.node_index = {coord: idx for idx, coord in enumerate(nodes)}
    model.n = len(nodes)
    model.depth = config.fifo_depth
    for idx, router in enumerate(routers):
        if router.coord != nodes[idx] or router.net_idx != idx:
            raise _Unsupported(
                "router-order", "router order diverges from topology order"
            )
        if router.depth != config.fifo_depth:
            raise _Unsupported(
                "non-uniform-depth", "non-uniform FIFO depth"
            )

    nsub = 2 if isinstance(routing, _ParitySubnetRouting) else 1
    if nsub == 2:
        n = model.n
        tab = [0] * (n * n)
        for s, src in enumerate(nodes):
            base = s * n
            for d, dest in enumerate(nodes):
                tab[base + d] = routing.injection_subnet(src, dest)
        model.subnet_tab = tab
    else:
        model.subnet_tab = None

    if kind == "vc":
        if type(routing) not in _SUPPORTED_ROUTINGS:
            raise _Unsupported(
                "unsupported-routing",
                f"no VC tabulation for routing {type(routing).__name__}",
            )
        _extract_vc(model, net, routers)
        _tabulate_vc_routes(model, routing)
    else:
        _extract_wormhole(model, net, routers, fbfc=(kind == "fbfc"))
        if type(routing) is FaultAwareTableRouting:
            _tabulate_fault_routes(model, routing)
        elif type(routing) in _SUPPORTED_ROUTINGS:
            # Exact builtin types keep their closed-form tabulation
            # (bit-identical rows, no graph walk).
            _tabulate_wormhole_routes(model, routing, nsub)
        else:
            _tabulate_generic_routes(model, net, routing, nsub)
    return model


def _sink_or_direct(router, o: int) -> Optional[Tuple[int, int]]:
    """``None`` for an always-ready sink, (down, in) for a direct wire."""
    target = router.out_target[o]
    code = _target_kind(target)
    if code == KIND_SINK_FREE:
        return None
    if code == KIND_DIRECT:
        down_r, down_in = _direct_target(router, o)
        if down_in == P_IDX:
            raise _Unsupported(
                "injection-wiring", "link wired into an injection port"
            )
        return down_r, down_in
    if isinstance(target, Sink):
        raise _Unsupported("custom-sink", "non-builtin sink on an output")
    raise _Unsupported("pipelined-link", "pipelined link on an output")


def _extract_wormhole(model, net, routers, *, fbfc: bool) -> None:
    in_lists, posmaps, plans, feeders = [], [], [], []
    feeder_of: Dict[Tuple[int, int], int] = {}
    for r, router in enumerate(routers):
        in_lists.append(router._in_list)
        posmaps.append(router._posmap)
        entries = []
        for o, cands, nc, code, _obj, _depth in router._plan:
            wired = _sink_or_direct(router, o)
            if wired is None:
                down_r = down_in = -1
                sink = True
            else:
                down_r, down_in = wired
                feeder_of[(down_r, down_in)] = r
                sink = False
            needs = (
                tuple(router._entry_need[o][i] for i in cands)
                if fbfc
                else None
            )
            entries.append((o, cands, nc, sink, down_r, down_in, needs))
        plans.append(tuple(entries))
    for r in range(len(routers)):
        feeders.append(
            tuple(feeder_of.get((r, i), -1) for i in range(NUM_DIRS))
        )
    model.in_lists = tuple(in_lists)
    model.posmaps = tuple(posmaps)
    model.plans = tuple(plans)
    model.feeders = tuple(feeders)
    model.num_vcs = 1
    model.ports = None
    model.out_tab = model.vcn_tab = model.dl_tab = None
    model.same_dim = model.vc_wiring = None


def _extract_vc(model, net, routers) -> None:
    config = model.config
    ports, wiring, feeders = [], [], []
    feeder_of: Dict[Tuple[int, int], int] = {}
    num_vcs = config.num_vcs
    for r, router in enumerate(routers):
        if type(router.alloc) is not WavefrontAllocator:
            raise _Unsupported(
                "unsupported-allocator",
                f"allocator {type(router.alloc).__name__}",
            )
        if router.num_vcs != num_vcs:
            raise _Unsupported("non-uniform-vcs", "non-uniform VC count")
        ports.append(router.ports)
        outs: List[Optional[Tuple]] = [None] * VCRouter.NUM_PORTS
        for o in range(VCRouter.NUM_PORTS):
            if router.out_target[o] is None:
                continue
            wired = _sink_or_direct(router, o)
            if wired is None:
                outs[o] = ()  # sink marker
            else:
                outs[o] = wired
                feeder_of[wired] = r
        wiring.append(tuple(outs))
    for r in range(len(routers)):
        feeders.append(
            tuple(
                feeder_of.get((r, i), -1)
                for i in range(VCRouter.NUM_PORTS)
            )
        )
    model.ports = tuple(ports)
    model.vc_wiring = tuple(wiring)
    model.feeders = tuple(feeders)
    model.num_vcs = num_vcs
    # same_dim[in_port * 5 + out_port], exactly as TorusDOR.route_vc
    # evaluates it for the five mesh ports.  An injection-port input is
    # never same-dimension; a P output never consults the flag (the
    # reference returns (P, 0) before the check), so it is pinned False
    # and the ejection VC collapses to vcn_tab's 0 at the destination.
    horiz = (int(Direction.W), int(Direction.E))
    sd = []
    for i in range(VCRouter.NUM_PORTS):
        for o in range(VCRouter.NUM_PORTS):
            if i == P_IDX or o == P_IDX:
                sd.append(False)
            else:
                sd.append((i in horiz) == (o in horiz))
    model.same_dim = tuple(sd)
    model.in_lists = model.posmaps = model.plans = None
    model.route_rows = None


def _tabulate_wormhole_routes(model, routing, nsub: int) -> None:
    """Per-node route rows, one shared row per input-equivalence class.

    ``route(node, in_dir, dest, subnet)`` depends on ``in_dir`` only
    through axis membership (and only for :class:`RucheDOR`'s
    second-axis Ruche-boarding rule), so one representative input per
    class tabulates every input port exactly.
    """
    if type(routing) is RucheDOR:
        cls_of_in = (0, 1, 1, 2, 2, 1, 1, 2, 2)  # P | x-axis | y-axis
        reps = (Direction.P, Direction.W, Direction.N)
    else:
        cls_of_in = (0,) * NUM_DIRS
        reps = (Direction.P,)
    nodes = model.nodes
    n = model.n
    route = routing.route
    route_rows = []
    for coord in nodes:
        cls_rows = []
        for rep in reps:
            row = [0] * (nsub * n)
            for sub in range(nsub):
                off = sub * n
                for d, dest in enumerate(nodes):
                    row[off + d] = int(route(coord, rep, dest, sub))
            cls_rows.append(row)
        route_rows.append(
            tuple(cls_rows[cls_of_in[i]] for i in range(NUM_DIRS))
        )
    model.route_rows = tuple(route_rows)


def _tabulate_fault_routes(model, routing) -> None:
    """Per-(node, input) route rows from the fault-aware BFS tables.

    Unlike the DOR algorithms, :class:`FaultAwareTableRouting` keys its
    next hop on the exact input port, so every input gets its own row.
    States absent from a destination's table are packed as ``-1``; they
    are never consulted at runtime — injection filters unreachable
    destinations through ``model.reachable``, and the BFS tables are
    next-hop-closed (a tabled state's successor is also tabled, all the
    way to ejection).  Identical rows are interned to one shared object
    so the native kernel's id-deduped ``rows`` table stays near one
    copy per node (on the fully-connected fault matrix most inputs of a
    node share a row).
    """
    n = model.n
    node_index = model.node_index
    blank = [-1] * n
    by_state: Dict[Tuple[int, int], List[int]] = {}
    for d, dest in enumerate(model.nodes):
        for (coord, in_idx), out in routing.next_hop_items(dest):
            state = (node_index[coord], in_idx)
            row = by_state.get(state)
            if row is None:
                row = by_state[state] = blank.copy()
            row[d] = out
    interned: Dict[Tuple[int, ...], List[int]] = {tuple(blank): blank}
    route_rows = []
    for r in range(n):
        per_in = []
        for i in range(NUM_DIRS):
            row = by_state.get((r, i), blank)
            per_in.append(interned.setdefault(tuple(row), row))
        route_rows.append(tuple(per_in))
    model.route_rows = tuple(route_rows)


def _tabulate_generic_routes(model, net, routing, nsub: int) -> None:
    """Per-(node, input) route rows for any routing, walked over the IR.

    The generic lowering behind plugin routings and the 3-D packs: each
    destination's table comes from
    :func:`~repro.core.routing.tabulate_next_hops` over the topology's
    port graph, so anything that routes soundly over the IR compiles —
    no per-algorithm closed form required.  Rows are packed exactly
    like the fault tables (``-1`` blanks for states the walk never
    visits, identical rows interned to one object).  A route
    computation that raises, an output with no wired channel, or
    VC-dependent state makes the design point fall back with a
    ``route-tabulation`` diagnostic.
    """
    n = model.n
    node_index = model.node_index
    graph = net.topology.port_graph()
    blank = [-1] * (nsub * n)
    by_state: Dict[Tuple[int, int], List[int]] = {}
    problems: List[str] = []

    def on_error(state, exc) -> None:
        problems.append(str(exc))

    for d, dest in enumerate(model.nodes):
        table = tabulate_next_hops(
            routing, graph, dest, on_error=on_error
        )
        if problems:
            raise _Unsupported(
                "route-tabulation",
                f"routing {type(routing).__name__} toward "
                f"{tuple(dest)}: {problems[0]}",
            )
        for (coord, in_idx, in_vc, subnet), (out, out_vc) in table.items():
            if in_vc or out_vc:
                raise _Unsupported(
                    "route-tabulation",
                    f"routing {type(routing).__name__} uses VC state, "
                    f"which only the builtin torus lowering models",
                )
            if not 0 <= subnet < nsub:
                raise _Unsupported(
                    "route-tabulation",
                    f"routing {type(routing).__name__} produced subnet "
                    f"{subnet} outside the {nsub} modelled subnet(s)",
                )
            state = (node_index[coord], in_idx)
            row = by_state.get(state)
            if row is None:
                row = by_state[state] = blank.copy()
            row[subnet * n + d] = out
    interned: Dict[Tuple[int, ...], List[int]] = {tuple(blank): blank}
    route_rows = []
    for r in range(n):
        per_in = []
        for i in range(NUM_DIRS):
            row = by_state.get((r, i), blank)
            per_in.append(interned.setdefault(tuple(row), row))
        route_rows.append(tuple(per_in))
    model.route_rows = tuple(route_rows)


def _tabulate_vc_routes(model, routing) -> None:
    """Decompose ``route_vc`` into (output, non-same-dim VC, dateline).

    The output port is a pure function of ``(node, dest)`` (taken
    straight from :meth:`TorusDOR.route_vc`); the VC depends on the
    arriving VC only through the same-dimension predicate, which
    :data:`same_dim` reconstructs at accept time, and the remaining
    cases — dateline promotion and the ahead/spread choice — are pure
    ``(node, dest)`` arithmetic mirrored from the reference.
    """
    config = model.config
    nodes = model.nodes
    n = model.n
    x_ring = True
    y_ring = config.kind is TopologyKind.FOLDED_TORUS
    east, south = int(Direction.E), int(Direction.S)
    out_tab, vcn_tab, dl_tab = [], [], []
    for coord in nodes:
        out_row = [0] * n
        vcn_row = [0] * n
        dl_row = [0] * n
        for d, dest in enumerate(nodes):
            if dest == coord:
                continue  # (P, 0): zeros already in place
            out = int(routing.route_vc(coord, Direction.P, 0, dest)[0])
            out_row[d] = out
            horizontal = out in (1, 2)  # W, E
            cur = coord.x if horizontal else coord.y
            tgt = dest.x if horizontal else dest.y
            k = config.width if horizontal else config.height
            is_ring = x_ring if horizontal else y_ring
            if out in (east, south):
                ahead = tgt < cur
                dateline = is_ring and cur == k - 1
            else:
                ahead = tgt > cur
                dateline = is_ring and cur == 0
            if is_ring and ahead:
                vcn = 0
            elif is_ring:
                vcn = (dest.x + dest.y) & 1
            else:
                vcn = 0
            vcn_row[d] = vcn
            dl_row[d] = 1 if dateline else 0
        out_tab.append(out_row)
        vcn_tab.append(vcn_row)
        dl_tab.append(dl_row)
    model.out_tab = tuple(out_tab)
    model.vcn_tab = tuple(vcn_tab)
    model.dl_tab = tuple(dl_tab)


# ----------------------------------------------------------------------
# Native-kernel lowering (wormhole / fbfc only)
# ----------------------------------------------------------------------
#: array typecodes must match the kernel's int32/int64 fields exactly.
_ARRAYS_OK = array("i").itemsize == 4 and array("q").itemsize == 8


class _CArrays:
    """Flat int32 tables handed to the native step kernel.

    Same content as the per-router ``plans`` / ``posmaps`` /
    ``route_rows`` structures, re-laid-out as contiguous arrays indexed
    by flat (router, port) ids; built once per compiled model.
    """

    __slots__ = (
        "dn", "ncv", "cands", "pm", "needs", "rowof", "rows", "rowlen",
    )


def _ptr32(a: array):
    return ctypes.cast(a.buffer_info()[0], ctypes.POINTER(ctypes.c_int32))


def _ptr64(a: array):
    return ctypes.cast(a.buffer_info()[0], ctypes.POINTER(ctypes.c_int64))


def _c_arrays(model: _CompiledModel) -> _CArrays:
    ca = model.carrays
    if ca is not None:
        return ca
    R = model.n
    nq = R * NUM_DIRS
    dn = [-1] * nq
    ncv = [0] * nq
    cands_f = [0] * (nq * NUM_DIRS)
    needs_f = [0] * (nq * NUM_DIRS)
    pm_f: List[int] = []
    for r in range(R):
        pm_f.extend(model.posmaps[r])
        rb = r * NUM_DIRS
        for o, cands, nc, sink, down_r, down_in, needs in model.plans[r]:
            ro = rb + o
            ncv[ro] = nc
            dn[ro] = -1 if sink else down_r * NUM_DIRS + down_in
            cb = ro * NUM_DIRS
            for pos, i in enumerate(cands):
                cands_f[cb + pos] = i
            if needs is not None:
                for pos, need in enumerate(needs):
                    needs_f[cb + pos] = need
    # Route rows are shared between input ports of one router (one per
    # input-equivalence class); dedupe by identity so the kernel's rows
    # table stays one copy per class.
    row_index: Dict[int, int] = {}
    rows_f: List[int] = []
    rowof = [0] * nq
    for r in range(R):
        rb = r * NUM_DIRS
        for i in range(NUM_DIRS):
            row = model.route_rows[r][i]
            idx = row_index.get(id(row))
            if idx is None:
                idx = len(row_index)
                row_index[id(row)] = idx
                rows_f.extend(row)
            rowof[rb + i] = idx
    ca = _CArrays()
    ca.dn = array("i", dn)
    ca.ncv = array("i", ncv)
    ca.cands = array("i", cands_f)
    ca.pm = array("i", pm_f)
    ca.needs = array("i", needs_f)
    ca.rowof = array("i", rowof)
    ca.rows = array("i", rows_f)
    ca.rowlen = len(model.route_rows[0][0])
    model.carrays = ca
    return ca


class _VcArrays:
    """Flat int32 tables handed to the native dateline-VC kernel.

    Same content as the per-router ``ports`` / ``vc_wiring`` /
    ``feeders`` / route-table structures, re-laid-out as contiguous
    arrays indexed by flat ``(router, port)`` ids (stride 5) and flat
    ``(router, dest)`` route rows; built once per compiled model.
    """

    __slots__ = (
        "plist", "pofs", "pcnt", "dn", "feed", "out", "vcn", "dl", "sd",
    )


def _vc_arrays(model: _CompiledModel) -> _VcArrays:
    va = model.cvarrays
    if va is not None:
        return va
    R = model.n
    nports = VCRouter.NUM_PORTS
    plist: List[int] = []
    pofs = [0] * R
    pcnt = [0] * R
    for r in range(R):
        pofs[r] = len(plist)
        plist.extend(model.ports[r])
        pcnt[r] = len(model.ports[r])
    dn = [-1] * (R * nports)
    for r in range(R):
        for o, wired in enumerate(model.vc_wiring[r]):
            if wired:  # (down_r, down_in); () sink marker stays -1
                down_r, down_in = wired
                dn[r * nports + o] = down_r * nports + down_in
    feed = [
        model.feeders[r][i] for r in range(R) for i in range(nports)
    ]
    out_f: List[int] = []
    vcn_f: List[int] = []
    dl_f: List[int] = []
    for r in range(R):
        out_f.extend(model.out_tab[r])
        vcn_f.extend(model.vcn_tab[r])
        dl_f.extend(model.dl_tab[r])
    va = _VcArrays()
    va.plist = array("i", plist)
    va.pofs = array("i", pofs)
    va.pcnt = array("i", pcnt)
    va.dn = array("i", dn)
    va.feed = array("i", feed)
    va.out = array("i", out_f)
    va.vcn = array("i", vcn_f)
    va.dl = array("i", dl_f)
    va.sd = array("i", [1 if f else 0 for f in model.same_dim])
    model.cvarrays = va
    return va


def _c_subnet(model: _CompiledModel) -> Optional[array]:
    """The flat subnet table as an int32 array (multimesh only)."""
    if model.subnet_tab is None:
        return None
    tab = model.csubnet
    if tab is None:
        tab = model.csubnet = array("i", model.subnet_tab)
    return tab


def _deadlock_error(
    target: Any,
    faults: Optional[FaultSchedule],
    kind: str,
    window: int,
    cycle: int,
    occupancy: int,
    nodes: Sequence[Coord],
    n: int,
    subnet_tab: Any,
    psrc: Sequence[int],
    pinj: Sequence[int],
    pmeas: Sequence[Any],
    pdest: Sequence[int],
    pbase: Sequence[int],
    fill: Any,
) -> DeadlockError:
    """Build the reference-identical ``DeadlockError`` for a tripped run.

    Shared by the serial engine and the batch scheduler: rebuilds the
    object-model network, replays every buffered packet into it via the
    caller-supplied ``fill(routers, mk)`` callback, and lets the
    watchdog's snapshot machinery produce the same forensic report a
    reference run would have raised.
    """
    from repro.sim.packet import Packet
    from repro.sim.watchdog import capture_snapshot

    model_faults = (
        faults if faults is not None and faults.affects_routing else None
    )
    net = build_network(_extraction_target(target), faults=model_faults)
    routers = [net.routers[coord] for coord in nodes]

    def mk(pid: int) -> Any:
        return Packet(
            pid,
            nodes[psrc[pid]],
            nodes[pdest[pid]],
            pinj[pid],
            subnet=(pbase[pid] // n) if subnet_tab else 0,
            measured=bool(pmeas[pid]),
        )

    fill(routers, mk)
    net.cycle = cycle
    net.occupancy = occupancy
    snapshot = capture_snapshot(net, kind, window)
    verb, noun = (
        ("moved", "deadlock") if kind == "stall" else ("ejected", "livelock")
    )
    return DeadlockError(
        f"no packet {verb} for {window} cycles with {occupancy} "
        f"packets in flight: {noun} [{snapshot.summary()}]",
        snapshot=snapshot,
    )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _execute(
    model: _CompiledModel,
    config: NetworkConfig,
    pattern: str,
    rate: float,
    *,
    warmup: int,
    measure: int,
    drain_limit: int,
    seed: int,
    track_per_source: bool,
    keep_samples: bool,
    track_links: bool,
    faults: Any,
    target: Union[NetworkConfig, NetworkSpec],
    watchdog: Optional[WatchdogConfig],
    max_cycles: Optional[int],
    max_wall_seconds: Optional[float],
):
    from repro.sim.simulator import RunResult

    nodes = model.nodes
    node_index = model.node_index
    n = model.n
    R = n
    depth = model.depth
    subnet_tab = model.subnet_tab
    is_vc = model.kind == "vc"
    is_fbfc = model.kind == "fbfc"
    has_faults = faults is not None and faults.has_faults
    transient = faults.transient if faults is not None else ()
    # Every router kind has a native step translation (see _ckernel);
    # the pure-Python loops below remain the no-compiler fallback and
    # the executable specification the kernel is checked against.
    # Transient faults force the Python loops: the drop decision draws
    # from Python's Mersenne stream mid-commit, which the kernel cannot
    # replicate (permanent faults keep the kernel — they are static
    # table state).
    kernel = (
        _ckernel.get_kernel()
        if _ARRAYS_OK and not transient
        else None
    )
    use_c = kernel is not None and not is_vc
    use_c_vc = kernel is not None and is_vc
    # Post-pop queue length at/above which the pop changed something the
    # upstream feeder's arbitration can observe (and so must re-run):
    # wormhole/VC read only the full/not-full gate (pre-pop == depth);
    # FBFC compares free space against entry needs of up to 2.
    dfull = depth - 2 if is_fbfc else depth - 1

    dest_fn = build_pattern(pattern, config)
    timing_random = derive_rng(seed, "timing").random  # rng: shared
    dest_rng = derive_rng(seed, "dest")  # rng: shared

    # Mirrors the reference engine's degraded-injection discipline bit
    # for bit: dead routers never draw from the timing stream, and a
    # destination the fault-aware tables cannot reach is discarded
    # *after* the healthy pattern consumed its dest-stream draw.
    if has_faults:
        dead = faults.dead_routers
        src_list: Tuple[Tuple[int, Any], ...] = tuple(
            (s, src) for s, src in enumerate(nodes) if src not in dead
        )
        reachable = model.reachable
        if reachable is not None:
            healthy_fn = dest_fn

            def dest_fn(src, rng):  # noqa: F811 - degraded wrapper
                dest = healthy_fn(src, rng)
                if dest is None or not reachable(src, dest):
                    return None
                return dest
    else:
        src_list = tuple(enumerate(nodes))

    if transient:
        drop_rnd = faults.make_drop_rng().random
        # trans[r * NUM_DIRS + out] -> the TransientLinkFault (or None),
        # consulted in commit order — which both engines share — so the
        # inline draws consume the faults:drops stream identically.
        trans: Optional[List[Any]] = [None] * (R * NUM_DIRS)
        for tf in transient:
            trans[node_index[tf.src] * NUM_DIRS + int(tf.direction)] = tf
    else:
        drop_rnd = None
        trans = None

    wd = watchdog if watchdog is not None else WatchdogConfig()
    stall_window = wd.stall_window
    starvation_window = wd.starvation_window

    # -- mutable per-run state -----------------------------------------
    # Per-packet records, indexed by pid (appended at injection).
    pdest: List[int] = []
    pinj: List[int] = []
    pmeas: List[bool] = []
    psrc: List[int] = []
    pout: List[int] = []
    pbase: List[int] = []  # wormhole/fbfc: subnet * n (route-row offset)
    povc: List[int] = []  # vc: the VC assigned at the current router

    occ = [0] * R
    dirty = bytearray([1]) * R
    hop_counts = [0] * NUM_DIRS
    link_flat = [0] * (R * NUM_DIRS) if track_links else None
    per_src: Optional[Dict[int, LatencyStats]] = (
        {} if track_per_source else None
    )
    samples: Optional[List[int]] = [] if keep_samples else None

    occupancy = 0
    delivered_total = 0
    delivered_measured = 0
    injected_total = 0
    injected_measured = 0
    dropped_total = 0
    dropped_measured = 0
    lat_count = 0
    lat_total = 0
    lat_total_sq = 0
    lat_min: Optional[int] = None
    lat_max: Optional[int] = None
    cycle = 0
    idle_cycles = 0
    starved_cycles = 0

    if use_c_vc:
        num_vcs = model.num_vcs
        nports = VCRouter.NUM_PORTS
        ports = model.ports
        out_tab = model.out_tab
        vcn_tab = model.vcn_tab
        dl_tab = model.dl_tab
        va = _vc_arrays(model)
        # Flat lane ids: (r * 5 + in_port) * num_vcs + lane; the P
        # injection port owns a single lane (mirroring the reference's
        # one injection FIFO), capped by the injection-round count.
        nl = R * nports * num_vcs
        inj_cap = warmup + measure + drain_limit + 2
        qcap_l = [0] * nl
        qoff_l = [0] * nl
        off = 0
        for r in range(R):
            for i in ports[r]:
                lb = (r * nports + i) * num_vcs
                nlanes = 1 if i == P_IDX else num_vcs
                for lane in range(nlanes):
                    qcap_l[lb + lane] = inj_cap if i == P_IDX else depth
                    qoff_l[lb + lane] = off
                    off += qcap_l[lb + lane]
        buf_a = array("i", bytes(4 * off))
        qoff_a = array("i", qoff_l)
        qcap_a = array("i", qcap_l)
        qhead_a = array("i", bytes(4 * nl))
        qlen_a = array("i", bytes(4 * nl))
        vc_rr_a = array("i", bytes(4 * R * nports))
        prio_a = array("i", bytes(4 * R))
        occ_a = array("i", bytes(4 * R))
        dirty_a = array("i", [1] * R)
        hop_a = array("q", bytes(8 * NUM_DIRS))
        link_a = array(
            "q", bytes(8 * (R * NUM_DIRS if track_links else 1))
        )
        gsq_a = array("i", bytes(4 * R * nports))
        gro_a = array("i", bytes(4 * R * nports))
        ej_a = array("i", bytes(4 * R))
        nej_a = array("i", bytes(4))
        pk_cap = 4096
        pdest_a = array("i", bytes(4 * pk_cap))
        pout_a = array("i", bytes(4 * pk_cap))
        povc_a = array("i", bytes(4 * pk_cap))
        npk = 0
        vctx = _ckernel.VcCtx()
        vctx.R = R
        vctx.depth = depth
        vctx.nvc = num_vcs
        vctx.track_links = 1 if track_links else 0
        vctx.n = n
        vctx.plist = _ptr32(va.plist)
        vctx.pofs = _ptr32(va.pofs)
        vctx.pcnt = _ptr32(va.pcnt)
        vctx.dn = _ptr32(va.dn)
        vctx.feed = _ptr32(va.feed)
        vctx.out_tab = _ptr32(va.out)
        vctx.vcn_tab = _ptr32(va.vcn)
        vctx.dl_tab = _ptr32(va.dl)
        vctx.sd = _ptr32(va.sd)
        vctx.buf = _ptr32(buf_a)
        vctx.qoff = _ptr32(qoff_a)
        vctx.qcap = _ptr32(qcap_a)
        vctx.qhead = _ptr32(qhead_a)
        vctx.qlen = _ptr32(qlen_a)
        vctx.vc_rr = _ptr32(vc_rr_a)
        vctx.prio = _ptr32(prio_a)
        vctx.occ = _ptr32(occ_a)
        vctx.dirty = _ptr32(dirty_a)
        vctx.pout = _ptr32(pout_a)
        vctx.povc = _ptr32(povc_a)
        vctx.pdest = _ptr32(pdest_a)
        vctx.hop = _ptr64(hop_a)
        vctx.link = _ptr64(link_a)
        vctx.gsq = _ptr32(gsq_a)
        vctx.gro = _ptr32(gro_a)
        vctx.ej = _ptr32(ej_a)
        vctx.nej = _ptr32(nej_a)
    elif is_vc:
        num_vcs = model.num_vcs
        nports = VCRouter.NUM_PORTS
        ports = model.ports
        out_tab = model.out_tab
        vcn_tab = model.vcn_tab
        dl_tab = model.dl_tab
        same_dim = model.same_dim
        feeders = model.feeders
        lanes: List[List[Optional[List[List[int]]]]] = []
        for r in range(R):
            row: List[Optional[List[List[int]]]] = [None] * nports
            for i in ports[r]:
                row[i] = (
                    [[]]
                    if i == P_IDX
                    else [[] for _ in range(num_vcs)]
                )
            lanes.append(row)
        # Flat per-router scan list over every input lane, in the
        # reference's request order (port order, lanes ascending).
        qlists = tuple(
            tuple(
                (i, lane, lanes[r][i][lane], i * nports)
                for i in ports[r]
                for lane in range(len(lanes[r][i]))
            )
            for r in range(R)
        )
        # Per-output bindings: the downstream lane list for space checks
        # and the commit tuple (down router, down input x 5, lanes,
        # route/vc/dateline rows) — ``None`` = ejection into the sink.
        space_lanes: List[List[Optional[List[List[int]]]]] = []
        commit_to: List[List[Optional[Tuple]]] = []
        for r in range(R):
            srow: List[Optional[List[List[int]]]] = [None] * nports
            crow: List[Optional[Tuple]] = [None] * nports
            for o, wired in enumerate(model.vc_wiring[r]):
                if wired:  # (down_r, down_in); () is the sink marker
                    down_r, down_in = wired
                    dlanes = lanes[down_r][down_in]
                    srow[o] = dlanes
                    crow[o] = (
                        down_r,
                        down_in * nports,
                        dlanes,
                        out_tab[down_r],
                        vcn_tab[down_r],
                        dl_tab[down_r],
                    )
            space_lanes.append(srow)
            commit_to.append(crow)
        candmasks = [[0] * (nports * nports) for _ in range(R)]
        vc_rr = [[0] * nports for _ in range(R)]
        prio = [0] * R
    elif use_c:
        in_lists = model.in_lists
        route_rows = model.route_rows
        ca = _c_arrays(model)
        nq = R * NUM_DIRS
        # Ring-buffer capacities: an injection (P) queue is unbounded in
        # the reference engine, but one source can enqueue at most one
        # packet per injection round, so the round count is a hard cap.
        inj_cap = warmup + measure + drain_limit + 2
        qcap_l = [0] * nq
        qoff_l = [0] * nq
        off = 0
        for r in range(R):
            rb = r * NUM_DIRS
            for i in in_lists[r]:
                qcap_l[rb + i] = inj_cap if i == P_IDX else depth
                qoff_l[rb + i] = off
                off += qcap_l[rb + i]
        buf_a = array("i", bytes(4 * off))
        qoff_a = array("i", qoff_l)
        qcap_a = array("i", qcap_l)
        qhead_a = array("i", bytes(4 * nq))
        qlen_a = array("i", bytes(4 * nq))
        arb_a = array("i", bytes(4 * nq))
        occ_a = array("i", bytes(4 * R))
        hop_a = array("q", bytes(8 * NUM_DIRS))
        link_a = array(
            "q", bytes(8 * (nq if track_links else 1))
        )
        gsq_a = array("i", bytes(4 * nq))
        gro_a = array("i", bytes(4 * nq))
        ej_a = array("i", bytes(4 * R))
        nej_a = array("i", bytes(4))
        pk_cap = 4096
        pdest_a = array("i", bytes(4 * pk_cap))
        pbase_a = array("i", bytes(4 * pk_cap))
        pout_a = array("i", bytes(4 * pk_cap))
        npk = 0
        ctx = _ckernel.StepCtx()
        ctx.R = R
        ctx.depth = depth
        ctx.fbfc = 1 if is_fbfc else 0
        ctx.track_links = 1 if track_links else 0
        ctx.rowlen = ca.rowlen
        ctx.dn = _ptr32(ca.dn)
        ctx.ncv = _ptr32(ca.ncv)
        ctx.cands = _ptr32(ca.cands)
        ctx.pm = _ptr32(ca.pm)
        ctx.needs = _ptr32(ca.needs)
        ctx.rowof = _ptr32(ca.rowof)
        ctx.rows = _ptr32(ca.rows)
        ctx.buf = _ptr32(buf_a)
        ctx.qoff = _ptr32(qoff_a)
        ctx.qcap = _ptr32(qcap_a)
        ctx.qhead = _ptr32(qhead_a)
        ctx.qlen = _ptr32(qlen_a)
        ctx.arb = _ptr32(arb_a)
        ctx.occ = _ptr32(occ_a)
        ctx.pout = _ptr32(pout_a)
        ctx.pbase = _ptr32(pbase_a)
        ctx.pdest = _ptr32(pdest_a)
        ctx.hop = _ptr64(hop_a)
        ctx.link = _ptr64(link_a)
        ctx.gsq = _ptr32(gsq_a)
        ctx.gro = _ptr32(gro_a)
        ctx.ej = _ptr32(ej_a)
        ctx.nej = _ptr32(nej_a)
    else:
        in_lists = model.in_lists
        posmaps = model.posmaps
        feeders = model.feeders
        route_rows = model.route_rows
        qs: List[List[Optional[List[int]]]] = []
        for r in range(R):
            row: List[Optional[List[int]]] = [None] * NUM_DIRS
            for i in in_lists[r]:
                row[i] = []
            qs.append(row)
        # Requests are maintained incrementally rather than rescanned:
        # reqmasks[r][o] holds one bit per candidate position whose
        # queue head currently wants output o, and romasks[r] is the
        # bitmask of outputs with any requester.  A queue's head only
        # changes on a pop or a push-to-empty, so the commit loop (and
        # injection) are the only writers.  Plan entries bind everything
        # a grant's commit needs: the downstream queue, route row,
        # posmap, and request mask.
        reqmasks = [[0] * NUM_DIRS for _ in range(R)]
        romasks = [0] * R
        arbs = [[0] * NUM_DIRS for _ in range(R)]
        pents: List[List[Optional[Tuple]]] = [
            [None] * NUM_DIRS for _ in range(R)
        ]
        for r in range(R):
            for o, cands, nc, sink, down_r, down_in, needs in model.plans[r]:
                if sink:
                    pents[r][o] = (
                        o, cands, nc, True, None, -1, None, needs, None, -1,
                        None,
                    )
                else:
                    pents[r][o] = (
                        o,
                        cands,
                        nc,
                        False,
                        qs[down_r][down_in],
                        down_r,
                        route_rows[down_r][down_in],
                        needs,
                        posmaps[down_r],
                        down_in,
                        reqmasks[down_r],
                    )

    # -- injection ------------------------------------------------------
    if use_c:
        def inject_round(measured: bool) -> None:
            nonlocal injected_total, injected_measured, occupancy
            nonlocal npk, pk_cap
            rnd = timing_random
            nidx = node_index
            cyc = cycle
            st = subnet_tab
            qh = qhead_a
            ql = qlen_a
            bf = buf_a
            rr = model.route_rows
            for s, src in src_list:
                if rnd() < rate:
                    dest = dest_fn(src, dest_rng)
                    if dest is None:
                        continue
                    d = nidx[dest]
                    pid = npk
                    if pid >= pk_cap:
                        zeros = bytes(4 * pk_cap)
                        pdest_a.frombytes(zeros)
                        pbase_a.frombytes(zeros)
                        pout_a.frombytes(zeros)
                        pk_cap *= 2
                        ctx.pdest = _ptr32(pdest_a)
                        ctx.pbase = _ptr32(pbase_a)
                        ctx.pout = _ptr32(pout_a)
                    npk = pid + 1
                    base = st[s * n + d] * n if st else 0
                    pdest_a[pid] = d
                    pbase_a[pid] = base
                    pout_a[pid] = rr[s][0][base + d]
                    pinj.append(cyc)
                    pmeas.append(measured)
                    psrc.append(s)
                    qi = s * NUM_DIRS
                    tail = qh[qi] + ql[qi]
                    if tail >= inj_cap:
                        tail -= inj_cap
                    bf[qoff_l[qi] + tail] = pid
                    ql[qi] += 1
                    occ_a[s] += 1
                    occupancy += 1
                    injected_total += 1
                    if measured:
                        injected_measured += 1
    elif use_c_vc:
        def inject_round(measured: bool) -> None:
            nonlocal injected_total, injected_measured, occupancy
            nonlocal npk, pk_cap
            rnd = timing_random
            nidx = node_index
            cyc = cycle
            qh = qhead_a
            ql = qlen_a
            bf = buf_a
            for s, src in src_list:
                if rnd() < rate:
                    dest = dest_fn(src, dest_rng)
                    if dest is None:
                        continue
                    d = nidx[dest]
                    pid = npk
                    if pid >= pk_cap:
                        zeros = bytes(4 * pk_cap)
                        pdest_a.frombytes(zeros)
                        pout_a.frombytes(zeros)
                        povc_a.frombytes(zeros)
                        pk_cap *= 2
                        vctx.pdest = _ptr32(pdest_a)
                        vctx.pout = _ptr32(pout_a)
                        vctx.povc = _ptr32(povc_a)
                    npk = pid + 1
                    pdest_a[pid] = d
                    pout_a[pid] = out_tab[s][d]
                    povc_a[pid] = 1 if dl_tab[s][d] else vcn_tab[s][d]
                    pinj.append(cyc)
                    pmeas.append(measured)
                    psrc.append(s)
                    qi = s * nports * num_vcs  # P port, lane 0
                    tail = qh[qi] + ql[qi]
                    if tail >= inj_cap:
                        tail -= inj_cap
                    bf[qoff_l[qi] + tail] = pid
                    ql[qi] += 1
                    occ_a[s] += 1
                    dirty_a[s] = 1
                    occupancy += 1
                    injected_total += 1
                    if measured:
                        injected_measured += 1
    else:
        if is_vc:
            inj_q = tuple(lanes[s][0][0] for s in range(R))
        else:
            inj_q = tuple(qs[s][0] for s in range(R))

    def _inject_round_py(measured: bool) -> None:
        nonlocal injected_total, injected_measured, occupancy
        rnd = timing_random
        nidx = node_index
        pd = pdest
        cyc = cycle
        dirty_l = dirty
        occ_l = occ
        for s, src in src_list:
            if rnd() < rate:
                dest = dest_fn(src, dest_rng)
                if dest is None:
                    continue
                d = nidx[dest]
                pid = len(pd)
                pd.append(d)
                pinj.append(cyc)
                pmeas.append(measured)
                psrc.append(s)
                if is_vc:
                    pout.append(out_tab[s][d])
                    povc.append(1 if dl_tab[s][d] else vcn_tab[s][d])
                    inj_q[s].append(pid)
                else:
                    base = subnet_tab[s * n + d] * n if subnet_tab else 0
                    pbase.append(base)
                    out = route_rows[s][0][base + d]
                    pout.append(out)
                    q = inj_q[s]
                    q.append(pid)
                    if len(q) == 1:  # new head: raise its request
                        pos = posmaps[s][out * NUM_DIRS]
                        if pos >= 0:
                            rq = reqmasks[s]
                            if not rq[out]:
                                romasks[s] |= 1 << out
                            rq[out] |= 1 << pos
                occ_l[s] += 1
                dirty_l[s] = 1
                occupancy += 1
                injected_total += 1
                if measured:
                    injected_measured += 1

    if not use_c and not use_c_vc:
        inject_round = _inject_round_py

    # -- one cycle (two-phase: arbitrate all, then commit all) ----------
    def deliver(pid: int) -> None:
        nonlocal occupancy, delivered_total, delivered_measured
        nonlocal lat_count, lat_total, lat_total_sq, lat_min, lat_max
        occupancy -= 1
        delivered_total += 1
        if pmeas[pid]:
            delivered_measured += 1
            lat = cycle - pinj[pid]
            lat_count += 1
            lat_total += lat
            lat_total_sq += lat * lat
            if lat_min is None or lat < lat_min:
                lat_min = lat
            if lat_max is None or lat > lat_max:
                lat_max = lat
            if samples is not None:
                samples.append(lat)
            if per_src is not None:
                stats = per_src.get(psrc[pid])
                if stats is None:
                    stats = per_src[psrc[pid]] = LatencyStats()
                stats.add(lat)

    def _commit_wh(moves) -> int:
        # Commits the granted moves and maintains the incremental
        # request state: clear the popped head's request, raise the new
        # head's (pop side) and a freshly-headed downstream queue's
        # (push side), and wake the upstream feeder only when the pop
        # actually changed what its arbitration can see (queue was full
        # for wormhole, free space within the largest entry need for
        # FBFC).
        nonlocal occupancy, dropped_total, dropped_measured
        ejections = 0
        pout_l = pout
        pbase_l = pbase
        pdest_l = pdest
        dirty_l = dirty
        occ_l = occ
        hop_l = hop_counts
        lf = link_flat
        tr = trans
        for r, i, q, entry in moves:
            pid = q.pop(0)
            occ_l[r] -= 1
            dirty_l[r] = 1
            o = entry[0]
            pm = posmaps[r]
            rq = reqmasks[r]
            nm = rq[o] & ~(1 << pm[o * NUM_DIRS + i])
            rq[o] = nm
            if not nm:
                romasks[r] &= ~(1 << o)
            if q:
                pid2 = q[0]
                o2 = pout_l[pid2]
                pos2 = pm[o2 * NUM_DIRS + i]
                if pos2 >= 0:
                    if not rq[o2]:
                        romasks[r] |= 1 << o2
                    rq[o2] |= 1 << pos2
            f = feeders[r][i]
            if f >= 0 and len(q) >= dfull:
                dirty_l[f] = 1
            if tr is not None and o:
                tf = tr[r * NUM_DIRS + o]
                if (
                    tf is not None
                    and tf.active(cycle)
                    and drop_rnd() < tf.drop_prob
                ):
                    occupancy -= 1
                    dropped_total += 1
                    if pmeas[pid]:
                        dropped_measured += 1
                    continue
            if lf is not None and o:
                lf[r * NUM_DIRS + o] += 1
            if entry[3]:  # sink
                ejections += 1
                deliver(pid)
            else:
                hop_l[o] += 1
                out2 = entry[6][pbase_l[pid] + pdest_l[pid]]
                pout_l[pid] = out2
                dq = entry[4]
                dq.append(pid)
                dr = entry[5]
                occ_l[dr] += 1
                dirty_l[dr] = 1
                if len(dq) == 1:  # new head: raise its request
                    pos = entry[8][out2 * NUM_DIRS + entry[9]]
                    if pos >= 0:
                        drq = entry[10]
                        if not drq[out2]:
                            romasks[dr] |= 1 << out2
                        drq[out2] |= 1 << pos
        return ejections

    def step_wormhole() -> Tuple[int, int]:
        moves = []
        append = moves.append
        dirty_l = dirty
        dep = depth
        for r in range(R):
            if not dirty_l[r]:
                continue
            dirty_l[r] = 0
            om = romasks[r]
            if not om:
                continue
            arb_r = arbs[r]
            pent = pents[r]
            rq = reqmasks[r]
            qs_r = qs[r]
            while om:
                b = om & -om
                om -= b
                o = b.bit_length() - 1
                entry = pent[o]
                dq = entry[4]
                if dq is not None and len(dq) >= dep:
                    continue
                m = rq[o]
                nc = entry[2]
                pos = arb_r[o]
                while not (m >> pos) & 1:
                    pos += 1
                    if pos >= nc:
                        pos = 0
                arb_r[o] = pos + 1 if pos + 1 < nc else 0
                i = entry[1][pos]
                append((r, i, qs_r[i], entry))
        return len(moves), _commit_wh(moves)

    def step_fbfc() -> Tuple[int, int]:
        moves = []
        append = moves.append
        dirty_l = dirty
        dep = depth
        for r in range(R):
            if not dirty_l[r]:
                continue
            dirty_l[r] = 0
            om = romasks[r]
            if not om:
                continue
            arb_r = arbs[r]
            pent = pents[r]
            rq = reqmasks[r]
            qs_r = qs[r]
            while om:
                b = om & -om
                om -= b
                o = b.bit_length() - 1
                entry = pent[o]
                dq = entry[4]
                if dq is None:
                    free = dep  # ejection is never a ring entry
                else:
                    free = dep - len(dq)
                    if free <= 0:
                        continue
                m = rq[o]
                nc = entry[2]
                needs = entry[7]
                ptr = arb_r[o]
                for k in range(nc):
                    pos = ptr + k
                    if pos >= nc:
                        pos -= nc
                    if (m >> pos) & 1 and free >= needs[pos]:
                        arb_r[o] = pos + 1 if pos + 1 < nc else 0
                        i = entry[1][pos]
                        append((r, i, qs_r[i], entry))
                        break
        return len(moves), _commit_wh(moves)

    def step_vc() -> Tuple[int, int]:
        nonlocal occupancy, dropped_total, dropped_measured
        moves = []
        append = moves.append
        pout_l = pout
        povc_l = povc
        dirty_l = dirty
        occ_l = occ
        dep = depth
        nvc = num_vcs
        nvc2 = nvc == 2
        i5 = _I5
        o5 = _O5
        wf_keys = _WF_KEYS
        for r in range(R):
            if not dirty_l[r]:
                continue
            dirty_l[r] = 0
            if not occ_l[r]:
                continue
            sl_r = space_lanes[r]
            cm = candmasks[r]
            touched = []
            for i, lane, q, ib in qlists[r]:
                if not q:
                    continue
                pid = q[0]
                o = pout_l[pid]
                sl = sl_r[o]
                if sl is not None and len(sl[povc_l[pid]]) >= dep:
                    continue
                idx = ib + o
                if not cm[idx]:
                    touched.append(idx)
                cm[idx] |= 1 << lane
            if not touched:
                continue
            # Wavefront allocation over the requesting pairs only:
            # sorting the touched (input, output) pairs by the diagonal
            # the allocator would visit them on (then input ascending)
            # and granting greedily against the free masks reproduces
            # WavefrontAllocator.allocate's grant order exactly —
            # without sweeping all 25 slots — because only requesting
            # pairs can grant and their visit order is preserved.
            base_p = prio[r]
            prio[r] = base_p + 1 if base_p < 4 else 0
            if len(touched) > 1:
                touched.sort(key=wf_keys[base_p].__getitem__)
            vc_rr_r = vc_rr[r]
            lanes_r = lanes[r]
            ct_r = commit_to[r]
            in_free = 31
            out_free = 31
            for idx in touched:
                mask = cm[idx]
                cm[idx] = 0
                i = i5[idx]
                if not (in_free >> i) & 1:
                    continue
                o = o5[idx]
                if not (out_free >> o) & 1:
                    continue
                in_free &= ~(1 << i)
                out_free &= ~(1 << o)
                if nvc2:
                    # 2-VC mux: {1,2} -> that lane, 3 -> the round-robin
                    # preferred lane; rotation flips the pointer.
                    best = vc_rr_r[i] if mask == 3 else mask - 1
                    vc_rr_r[i] = 1 - best
                else:
                    if mask & (mask - 1):
                        ptr = vc_rr_r[i]
                        best = 0
                        best_key = nvc
                        lane = 0
                        while mask:
                            if mask & 1:
                                key = lane - ptr
                                if key < 0:
                                    key += nvc
                                if key < best_key:
                                    best_key = key
                                    best = lane
                            mask >>= 1
                            lane += 1
                    else:
                        best = mask.bit_length() - 1
                    vc_rr_r[i] = best + 1 if best + 1 < nvc else 0
                append((r, i, lanes_r[i][best], o, ct_r[o]))
        ejections = 0
        pdest_l = pdest
        hop_l = hop_counts
        sd = same_dim
        lf = link_flat
        tr = trans
        for r, i, q, o, ct in moves:
            pid = q.pop(0)
            occ_l[r] -= 1
            dirty_l[r] = 1
            f = feeders[r][i]
            if f >= 0 and len(q) >= dfull:  # lane was full: gate reopens
                dirty_l[f] = 1
            if tr is not None and o:
                tf = tr[r * NUM_DIRS + o]
                if (
                    tf is not None
                    and tf.active(cycle)
                    and drop_rnd() < tf.drop_prob
                ):
                    occupancy -= 1
                    dropped_total += 1
                    if pmeas[pid]:
                        dropped_measured += 1
                    continue
            if lf is not None and o:
                lf[r * NUM_DIRS + o] += 1
            if ct is None:  # sink
                ejections += 1
                deliver(pid)
            else:
                hop_l[o] += 1
                down_r, di5, dlanes, out_row, vcn_row, dl_row = ct
                d = pdest_l[pid]
                out2 = out_row[d]
                avc = povc_l[pid]
                if dl_row[d]:
                    v2 = 1
                elif sd[di5 + out2]:
                    v2 = avc
                else:
                    v2 = vcn_row[d]
                pout_l[pid] = out2
                povc_l[pid] = v2
                dlanes[avc].append(pid)
                occ_l[down_r] += 1
                dirty_l[down_r] = 1
        return len(moves), ejections

    if use_c:
        step_fn = kernel.step_noc
        ctx_ref = ctypes.byref(ctx)

        def step_c() -> Tuple[int, int]:
            moved = step_fn(ctx_ref)
            ne = nej_a[0]
            if ne:
                ej = ej_a
                for k in range(ne):
                    deliver(ej[k])
            return moved, ne

        step = step_c
    elif use_c_vc:
        vstep_fn = kernel.step_vc
        vctx_ref = ctypes.byref(vctx)

        def step_c_vc() -> Tuple[int, int]:
            moved = vstep_fn(vctx_ref)
            ne = nej_a[0]
            if ne:
                ej = ej_a
                for k in range(ne):
                    deliver(ej[k])
            return moved, ne

        step = step_c_vc
    else:
        step = (
            step_vc if is_vc else (step_fbfc if is_fbfc else step_wormhole)
        )
    deadline = (
        time.monotonic() + max_wall_seconds  # det: allow - wall budget
        if max_wall_seconds is not None
        else None
    )

    def _deadlock(kind: str, window: int) -> DeadlockError:
        # Slow path, entered at most once per run: rebuild the reference
        # object model, replay every buffered packet into it, and let the
        # watchdog's snapshot machinery produce the same forensic report
        # a reference run would have raised.
        pd = pdest_a if use_c or use_c_vc else pdest
        pb = pbase_a if use_c else pbase

        def fill(routers: List[Any], mk: Any) -> None:
            if use_c_vc:
                for r in range(R):
                    for i in ports[r]:
                        for lane in range(1 if i == P_IDX else num_vcs):
                            qi = (r * nports + i) * num_vcs + lane
                            off = qoff_l[qi]
                            cap = qcap_l[qi]
                            head = qhead_a[qi]
                            for k in range(qlen_a[qi]):
                                routers[r].accept(
                                    mk(buf_a[off + (head + k) % cap]),
                                    i,
                                    lane,
                                )
            elif is_vc:
                for r in range(R):
                    for i, lane, q, _ib in qlists[r]:
                        for pid in q:
                            routers[r].accept(mk(pid), i, lane)
            elif use_c:
                for r in range(R):
                    for i in in_lists[r]:
                        qi = r * NUM_DIRS + i
                        off = qoff_l[qi]
                        cap = qcap_l[qi]
                        head = qhead_a[qi]
                        for k in range(qlen_a[qi]):
                            routers[r].accept(
                                mk(buf_a[off + (head + k) % cap]), i
                            )
            else:
                for r in range(R):
                    for i in in_lists[r]:
                        for pid in qs[r][i]:
                            routers[r].accept(mk(pid), i)

        return _deadlock_error(
            target,
            faults,
            kind,
            window,
            cycle,
            occupancy,
            nodes,
            n,
            subnet_tab,
            psrc,
            pinj,
            pmeas,
            pd,
            pb,
            fill,
        )

    def tick() -> None:
        nonlocal cycle, idle_cycles, starved_cycles
        moved, ejections = step()
        if moved:
            idle_cycles = 0
        elif occupancy:
            idle_cycles += 1
            if idle_cycles >= stall_window:
                raise _deadlock("stall", idle_cycles)
        if starvation_window is not None:
            if ejections or not occupancy:
                starved_cycles = 0
            else:
                starved_cycles += 1
                if starved_cycles >= starvation_window:
                    raise _deadlock("starvation", starved_cycles)
        cycle += 1
        if max_cycles is not None and cycle >= max_cycles:
            raise SimulationTimeout(
                f"run exceeded its {max_cycles}-cycle budget "
                f"({occupancy} packets still in flight)"
            )
        if deadline is not None and cycle % _WALL_CHECK_EVERY == 0:
            if time.monotonic() > deadline:  # det: allow - wall budget
                raise SimulationTimeout(
                    f"run exceeded its {max_wall_seconds:.1f}s wall-clock "
                    f"limit at cycle {cycle}"
                )

    for _ in range(warmup):
        inject_round(False)
        tick()

    delivered_before = delivered_total
    for _ in range(measure):
        inject_round(True)
        tick()
    delivered_during = delivered_total - delivered_before

    drained = delivered_measured + dropped_measured >= injected_measured
    remaining = drain_limit
    while not drained and remaining > 0:
        inject_round(False)
        tick()
        remaining -= 1
        drained = (
            delivered_measured + dropped_measured >= injected_measured
        )

    # -- finalize into the reference metric structures ------------------
    if use_c or use_c_vc:
        hop_counts = list(hop_a)
        if track_links:
            link_flat = link_a
    metrics = RunMetrics(
        track_per_source=track_per_source,
        keep_samples=keep_samples,
        track_links=track_links,
    )
    stats = metrics.measured
    stats.count = lat_count
    stats.total = lat_total
    stats.total_sq = lat_total_sq
    stats.min = lat_min
    stats.max = lat_max
    if samples is not None:
        stats._samples = samples
    metrics.delivered_total = delivered_total
    metrics.delivered_measured = delivered_measured
    metrics.injected_total = injected_total
    metrics.injected_measured = injected_measured
    metrics.dropped_total = dropped_total
    metrics.dropped_measured = dropped_measured
    metrics.hop_counts = hop_counts
    if per_src is not None:
        for s, src_stats in per_src.items():
            metrics.per_source[nodes[s]] = src_stats
    if link_flat is not None:
        link_counts = metrics.link_counts
        for r in range(R):
            base = r * NUM_DIRS
            coord = nodes[r]
            for o in range(1, NUM_DIRS):
                count = link_flat[base + o]
                if count:
                    link_counts[(coord, o)] = count

    accepted = delivered_during / (len(src_list) * measure)
    avg_hops = (
        sum(hop_counts) / delivered_total
        if delivered_total
        else float("nan")
    )
    return RunResult(
        config_name=config.name,
        pattern=pattern,
        offered_load=rate,
        accepted_throughput=accepted,
        avg_latency=stats.mean,
        stddev_latency=stats.stddev,
        max_latency=float(lat_max) if lat_max is not None else float("nan"),
        delivered_measured=delivered_measured,
        injected_measured=injected_measured,
        drained=drained,
        measure_cycles=measure,
        avg_hops=avg_hops,
        total_cycles=cycle,
        dropped_measured=dropped_measured,
        metrics=metrics,
        engine="compiled",
    )


# ----------------------------------------------------------------------
# Lowering diagnostics
# ----------------------------------------------------------------------
def _gate_diagnostics(
    cfg: NetworkConfig,
    faults: Any,
    audit_every: Optional[int],
) -> List[LoweringDiagnostic]:
    """The pre-compile fallback gates, as structured diagnostics.

    This is the single source of truth for the checks
    :func:`run_compiled` performs before attempting compilation; the
    static analyzer (:func:`lowering_problems`) reports exactly these,
    so analyzer and engine can never drift apart.  Plugin topologies
    are no longer gated here: providers with custom components lower
    through the generic port-graph tabulation and fall back only if
    compilation itself reports a diagnostic.
    """
    reasons: List[LoweringDiagnostic] = []
    if audit_every is not None:
        reasons.append(
            LoweringDiagnostic(
                "audit-every",
                "in-loop network audits (audit_every) only run on the "
                "reference engine",
            )
        )
    if cfg.edge_memory:
        reasons.append(
            LoweringDiagnostic(
                "edge-memory", "edge-memory endpoints are not lowered"
            )
        )
    if cfg.max_channel_latency > 1:
        reasons.append(
            LoweringDiagnostic(
                "pipelined-channels",
                f"pipelined channels (max_channel_latency="
                f"{cfg.max_channel_latency}) are not lowered",
            )
        )
    if (
        faults is not None
        and faults.affects_routing
        and (cfg.uses_vcs or cfg.fbfc)
    ):
        # The reference engine raises the identical ConfigError for
        # fault-aware rerouting on VC/FBFC topologies — run_compiled
        # delegates so the error comes from one place.
        reasons.append(
            LoweringDiagnostic(
                "vc-fbfc-rerouting",
                "fault-aware rerouting on VC/FBFC torus routers is "
                "rejected (identically) by both engines",
            )
        )
    return reasons


def lowering_problems(
    target: Union[NetworkConfig, NetworkSpec],
    *,
    faults: Any = None,
    audit_every: Optional[int] = None,
) -> List[LoweringDiagnostic]:
    """Why ``target`` would fall back to the reference engine.

    A static compilability analysis: an empty list means
    :func:`run_compiled` will run this design point on the flat-array
    engine; otherwise each :class:`LoweringDiagnostic` names one exact
    fallback reason.  For a :class:`NetworkSpec`, fault and
    ``audit_every`` fields are resolved from the spec (explicit
    arguments override).  Nothing is simulated: the analysis runs the
    same pre-compile gates as :func:`run_compiled` and, when those
    pass, the same (cached) model compilation — so the verdict is the
    engine's own, not a parallel reimplementation.
    """
    if isinstance(target, NetworkSpec):
        spec = target
        cfg = build_config(spec)
        if faults is None:
            faults = build_faults(spec, cfg)
        if audit_every is None:
            audit_every = spec.audit_every
        names: Tuple[
            Optional[str], Optional[str], Optional[str]
        ] = (spec.routing, spec.router, spec.allocator)
    else:
        cfg = target
        names = (None, None, None)
    reasons = _gate_diagnostics(cfg, faults, audit_every)
    if reasons:
        return reasons
    model_faults = (
        faults if faults is not None and faults.affects_routing else None
    )
    try:
        _compile(target, cfg, *names, faults=model_faults)
    except _Unsupported as exc:
        return [exc.diagnostic]
    return []


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_compiled(
    config: Union[NetworkConfig, NetworkSpec],
    pattern: Optional[str] = None,
    rate: Optional[float] = None,
    *,
    warmup: int = 500,
    measure: int = 1000,
    drain_limit: int = 3000,
    seed: int = 1,
    track_per_source: bool = False,
    keep_samples: bool = False,
    track_links: bool = False,
    faults: Any = None,
    watchdog: Optional[WatchdogConfig] = None,
    audit_every: Optional[int] = None,
    max_cycles: Optional[int] = None,
    max_wall_seconds: Optional[float] = None,
):
    """The compiled engine: ``run_synthetic`` semantics on flat arrays.

    Accepts the full reference-engine signature, including ``faults``
    and ``watchdog``.  Fault schedules are compiled in: permanent faults
    select a fault-aware route-table model, transient drops run in the
    pure-Python inner loop, and the watchdog raises a reference-format
    :class:`~repro.errors.DeadlockError` with a full snapshot.  Runs the
    compiler cannot lower (see the module docstring) are delegated to
    :func:`repro.sim.simulator._run_reference` unchanged, and the
    returned result's ``engine`` field reports which engine actually
    ran.
    """

    def fallback():
        from repro.sim.simulator import _run_reference

        return _run_reference(
            config,
            pattern,
            rate,
            warmup=warmup,
            measure=measure,
            drain_limit=drain_limit,
            seed=seed,
            track_per_source=track_per_source,
            keep_samples=keep_samples,
            track_links=track_links,
            faults=faults,
            watchdog=watchdog,
            audit_every=audit_every,
            max_cycles=max_cycles,
            max_wall_seconds=max_wall_seconds,
        )

    if isinstance(config, NetworkSpec):
        spec = config
        if pattern is None:
            pattern = spec.pattern
        if rate is None:
            rate = spec.rate
        cfg = build_config(spec)
        if faults is None:
            faults = build_faults(spec, cfg)
        if watchdog is None:
            watchdog = build_watchdog(spec)
        names = (spec.routing, spec.router, spec.allocator)
        target: Union[NetworkConfig, NetworkSpec] = spec
    else:
        if pattern is None or rate is None:
            raise TypeError(
                "run_synthetic(config, ...) requires explicit pattern "
                "and rate (only NetworkSpec carries defaults)"
            )
        cfg = config
        names = (None, None, None)
        target = config
    if _gate_diagnostics(cfg, faults, audit_every):
        return fallback()
    model_faults = (
        faults if faults is not None and faults.affects_routing else None
    )
    try:
        model = _compile(target, cfg, *names, faults=model_faults)
    except _Unsupported:
        return fallback()
    return _execute(
        model,
        cfg,
        pattern,
        rate,
        warmup=warmup,
        measure=measure,
        drain_limit=drain_limit,
        seed=seed,
        track_per_source=track_per_source,
        keep_samples=keep_samples,
        track_links=track_links,
        faults=faults,
        target=target,
        watchdog=watchdog,
        max_cycles=max_cycles,
        max_wall_seconds=max_wall_seconds,
    )


# ----------------------------------------------------------------------
# Batched execution
# ----------------------------------------------------------------------
# A batch stacks the flat per-run state of N design points — FIFO rings,
# flit records, route tables, Mersenne Twister states — into one
# structure-of-arrays arena and steps every run in whole-phase blocks of
# the native kernel (`run_block_noc` / `run_block_vc`), retiring each
# run the moment it finishes.  The per-run setup that dominates short
# campaign rows (ctypes marshalling, Python-loop injection, per-cycle
# FFI calls) is paid once per block instead of once per cycle.
#
# The bit-identity contract extends unchanged: a batched run consumes
# the same `timing` / `dest` RNG streams in the same order as a serial
# run of the same spec (the kernel replicates CPython's MT19937,
# including `random()`'s 53-bit recipe and `randrange`'s top-bits
# rejection loop), so every counter, latency, and checkpoint byte
# matches the serial compiled engine — which in turn matches reference.
# `RunResult.engine` reports `"compiled-batch"` for provenance.


class _PoisonPattern(Exception):
    """Raised when a probed pattern touches its RNG (not tabulable)."""


class _PoisonRng:
    """An RNG stand-in whose every use raises :class:`_PoisonPattern`."""

    __slots__ = ()

    def __getattr__(self, name: str) -> Any:
        raise _PoisonPattern(name)


_POISON_RNG = _PoisonRng()

#: (config, pattern name) -> batch injection plan: ``("table", dtab)``
#: for deterministic patterns (``-1`` = self-addressed, skipped after
#: the timing draw), ``("uniform", perm, ubits)`` for the builtin
#: uniform-random pattern, or ``None`` when the pattern draws from the
#: dest stream in a way the block kernel cannot replicate.  Trace
#: replay plans (``("trace", table)``) live in
#: :data:`_TRACE_PLAN_CACHE` instead, keyed on the trace file's stat
#: signature — a name-keyed entry would go stale when the file at the
#: same path is overwritten.
_PATTERN_CACHE: Dict[Tuple, Optional[Tuple]] = {}

#: (config, trace source key) -> ``("trace", table)`` plans.
_TRACE_PLAN_CACHE: Dict[Tuple, Tuple] = {}


def _trace_plan(
    model: _CompiledModel, config: NetworkConfig, arg: str
) -> Optional[Tuple]:
    """The batch plan for ``trace_replay:<arg>``, or ``None``.

    ``None`` routes the spec to a per-row serial run, where the pattern
    factory raises the loader's full :class:`~repro.sim.trace.TraceError`
    — the batch gate stays an analysis, not an error path.
    """
    from repro.sim import trace as trace_mod

    try:
        tr = trace_mod.load_trace(arg)
        tr.check_config(config)
    except Exception:
        return None
    key = (config, tr.source_key)
    plan = _TRACE_PLAN_CACHE.get(key)
    if plan is None:
        try:
            plan = (
                "trace", tr.batch_table(model.nodes, model.node_index)
            )
        except Exception:
            return None
        _TRACE_PLAN_CACHE[key] = plan
    return plan


def _pattern_plan(
    model: _CompiledModel, config: NetworkConfig, pattern: str
) -> Optional[Tuple]:
    base, sep, arg = pattern.partition(":")
    if sep and base.strip().lower() == "trace_replay":
        # Stateful by design (per-source cursors) — the poison-RNG
        # probe below would mis-tabulate it, and the plan must key on
        # the file's content signature, not its name.
        return _trace_plan(model, config, arg)
    key = (config, pattern)
    cached = _PATTERN_CACHE.get(key, _MISSING)
    if cached is not _MISSING:
        return cached
    plan: Optional[Tuple] = None
    nidx = model.node_index
    try:
        fn = build_pattern(pattern, config)
        vals = array("i", bytes(4 * model.n))
        for s, src in enumerate(model.nodes):
            dest = fn(src, _POISON_RNG)
            vals[s] = -1 if dest is None else nidx[dest]
        plan = ("table", vals)
    except _PoisonPattern:
        # Draws from the dest stream: only the builtin uniform pattern
        # has a kernel translation (identity check — a plugin override
        # registered under the same name must not silently batch).
        from repro.core.registry import PATTERNS
        from repro.errors import ConfigError
        from repro.sim import traffic

        try:
            factory = PATTERNS.get(pattern)
        except ConfigError:
            factory = None
        if factory is traffic.make_uniform:
            pnodes = traffic._all_nodes(config)
            if len(pnodes) == model.n:
                perm = array("i", (nidx[c] for c in pnodes))
                plan = ("uniform", perm, len(pnodes).bit_length())
    except Exception:
        plan = None
    _PATTERN_CACHE[key] = plan
    return plan


def batching_problems(
    target: Union[NetworkConfig, NetworkSpec],
    *,
    faults: Any = None,
) -> List[LoweringDiagnostic]:
    """Why ``target`` cannot join a batched kernel invocation.

    An empty list means :func:`run_compiled_batch` will run this design
    point inside the shared arena; otherwise each diagnostic names one
    exact reason it falls back to a per-row serial run.  The batch gate
    is a strict superset of :func:`lowering_problems`: everything that
    cannot lower cannot batch, and batching additionally requires a
    :class:`~repro.core.spec.NetworkSpec` that selects the compiled
    engine, no fault schedule, no wall-clock budget, a working native
    block kernel, and a pattern the kernel can replicate.
    """
    if not isinstance(target, NetworkSpec):
        return [
            LoweringDiagnostic(
                "engine-not-compiled",
                "batching requires a NetworkSpec selecting the compiled "
                "engine (plain configs carry no engine/window fields)",
            )
        ]
    spec = target
    reasons: List[LoweringDiagnostic] = []
    if spec.engine != "compiled":
        reasons.append(
            LoweringDiagnostic(
                "engine-not-compiled",
                f"spec selects engine {spec.engine!r}; batches run only "
                f"explicitly compiled design points",
            )
        )
    if spec.max_wall_seconds is not None:
        reasons.append(
            LoweringDiagnostic(
                "wall-clock-budget",
                "wall-clock budgets are polled per cycle by the serial "
                "engines; block execution cannot honor them",
            )
        )
    base, sep, _arg = spec.pattern.partition(":")
    if (
        sep
        and base.strip().lower() == "trace_replay"
        and spec.rate != 1.0
    ):
        reasons.append(
            LoweringDiagnostic(
                "trace-rate",
                f"trace replay batches only at rate=1.0 (spec has "
                f"rate={spec.rate}): the block kernel indexes the trace "
                f"by the cycle counter while the serial engines index "
                f"by pattern call, and the two agree only when every "
                f"cycle draws the pattern",
            )
        )
    cfg = build_config(spec)
    if faults is None:
        faults = build_faults(spec, cfg)
    if faults is not None and faults.has_faults:
        reasons.append(
            LoweringDiagnostic(
                "fault-schedule",
                "fault schedules (drop streams, degraded injection) run "
                "per-row on the serial engines",
            )
        )
    reasons.extend(lowering_problems(spec, faults=faults))
    if reasons:
        return reasons
    kernel = _ckernel.get_kernel() if _ARRAYS_OK else None
    if (
        kernel is None
        or not hasattr(kernel, "run_block_noc")
        or array("I").itemsize != 4
    ):
        return [
            LoweringDiagnostic(
                "no-native-kernel",
                "the native block kernel is unavailable (no C compiler, "
                "REPRO_NO_CKERNEL, or exotic array widths)",
            )
        ]
    model = _compile(
        spec, cfg, spec.routing, spec.router, spec.allocator, faults=None
    )
    if _pattern_plan(model, cfg, spec.pattern) is None:
        return [
            LoweringDiagnostic(
                "pattern-not-batchable",
                f"pattern {spec.pattern!r} draws from the dest stream in "
                f"a way the block kernel cannot replicate",
            )
        ]
    return []


class _Arena:
    """One structure-of-arrays allocation backing a whole batch.

    Runs stage their segment layouts (`add32`/`add64`/`addu32` return
    element offsets) and `seal()` freezes the staging lists into three
    contiguous arrays — int32 queue/table state, int64 counters, uint32
    Mersenne Twister states — that every run's ctypes context points
    into.  Per-packet logs are deliberately *not* arena-resident: their
    worst case (every injection round hitting) would dwarf the steady
    state, so they stay growable per-run arrays.
    """

    __slots__ = ("_s32", "_s64", "_su32", "a32", "a64", "au32")

    def __init__(self) -> None:
        self._s32: List[int] = []
        self._s64: List[int] = []
        self._su32: List[int] = []
        self.a32: Optional[array] = None
        self.a64: Optional[array] = None
        self.au32: Optional[array] = None

    def add32(self, init: Union[int, Sequence[int]]) -> int:
        off = len(self._s32)
        if isinstance(init, int):
            self._s32.extend([0] * init)
        else:
            self._s32.extend(init)
        return off

    def add64(self, size: int) -> int:
        off = len(self._s64)
        self._s64.extend([0] * size)
        return off

    def addu32(self, data: Sequence[int]) -> int:
        off = len(self._su32)
        self._su32.extend(data)
        return off

    def seal(self) -> None:
        self.a32 = array("i", self._s32)
        self.a64 = array("q", self._s64)
        self.au32 = array("I", self._su32)
        self._s32 = self._s64 = self._su32 = []

    def p32(self, off: int):
        return ctypes.cast(
            self.a32.buffer_info()[0] + 4 * off,
            ctypes.POINTER(ctypes.c_int32),
        )

    def p64(self, off: int):
        return ctypes.cast(
            self.a64.buffer_info()[0] + 8 * off,
            ctypes.POINTER(ctypes.c_int64),
        )

    def pu32(self, off: int):
        return ctypes.cast(
            self.au32.buffer_info()[0] + 4 * off,
            ctypes.POINTER(ctypes.c_uint32),
        )

    def view64(self, off: int, size: int):
        return memoryview(self.a64)[off:off + size]


_PK_CAP0 = 4096  # initial per-run packet-record capacity (doubles)
_EJ_CAP0 = 8192  # initial per-run ejection-log capacity, in int32 slots


class _BatchRun:
    """One design point's lowered state inside a batch arena."""

    __slots__ = (
        "spec", "cfg", "model", "plan",
        "track_per_source", "keep_samples", "track_links",
        "warmup", "measure", "drain_limit", "seed", "max_cycles",
        "stall_window", "starvation_window", "is_vc",
        "qcap_l", "qoff_l", "inj_cap",
        "buf_off", "qoff_off", "qcap_off", "qhead_off", "qlen_off",
        "arb_off", "vc_rr_off", "prio_off", "occ_off", "dirty_off",
        "gsq_off", "gro_off", "ej_off", "nej_off", "tab_off",
        "trcur_off",
        "hop_off", "link_off", "st_off", "tmt_off", "dmt_off",
        "i32", "st",
        "pdest_a", "pbase_a", "pout_a", "povc_a",
        "psrc_a", "pinj_a", "pmeas_a", "ejlog_a", "pk_cap",
        "sctx", "vctx", "bctx", "sref", "vref", "bref",
        "phase", "phase_remaining", "delivered_before",
        "delivered_during", "drained", "error", "result",
        "lat_count", "lat_total", "lat_total_sq", "lat_min", "lat_max",
        "samples", "per_src",
    )

    def __init__(
        self,
        spec: NetworkSpec,
        cfg: NetworkConfig,
        model: _CompiledModel,
        plan: Tuple,
        *,
        track_per_source: bool,
        keep_samples: bool,
        track_links: bool,
    ) -> None:
        self.spec = spec
        self.cfg = cfg
        self.model = model
        self.plan = plan
        self.track_per_source = track_per_source
        self.keep_samples = keep_samples
        self.track_links = track_links
        self.warmup = spec.warmup
        self.measure = spec.measure
        self.drain_limit = spec.drain_limit
        self.seed = spec.seed
        self.max_cycles = spec.max_cycles
        wd = build_watchdog(spec) or WatchdogConfig()
        self.stall_window = wd.stall_window
        self.starvation_window = wd.starvation_window
        self.is_vc = model.kind == "vc"
        self.phase = 0
        self.phase_remaining = self.warmup
        self.delivered_before = 0
        self.delivered_during = 0
        self.drained = False
        self.error: Optional[Exception] = None
        self.result: Optional[Any] = None
        self.lat_count = 0
        self.lat_total = 0
        self.lat_total_sq = 0
        self.lat_min: Optional[int] = None
        self.lat_max: Optional[int] = None
        self.samples: Optional[List[int]] = [] if keep_samples else None
        self.per_src: Optional[Dict[int, LatencyStats]] = (
            {} if track_per_source else None
        )

    # -- arena layout ---------------------------------------------------
    def reserve(self, arena: _Arena) -> None:
        model = self.model
        R = model.n
        depth = model.depth
        self.inj_cap = self.warmup + self.measure + self.drain_limit + 2
        if self.is_vc:
            nports = VCRouter.NUM_PORTS
            num_vcs = model.num_vcs
            nl = R * nports * num_vcs
            qcap_l = [0] * nl
            qoff_l = [0] * nl
            off = 0
            for r in range(R):
                for i in model.ports[r]:
                    lb = (r * nports + i) * num_vcs
                    for lane in range(1 if i == P_IDX else num_vcs):
                        qcap_l[lb + lane] = (
                            self.inj_cap if i == P_IDX else depth
                        )
                        qoff_l[lb + lane] = off
                        off += qcap_l[lb + lane]
            nq = nl
            narb = R * nports
        else:
            nq = R * NUM_DIRS
            qcap_l = [0] * nq
            qoff_l = [0] * nq
            off = 0
            for r in range(R):
                rb = r * NUM_DIRS
                for i in model.in_lists[r]:
                    qcap_l[rb + i] = (
                        self.inj_cap if i == P_IDX else depth
                    )
                    qoff_l[rb + i] = off
                    off += qcap_l[rb + i]
            narb = nq
        self.qcap_l = qcap_l
        self.qoff_l = qoff_l
        self.buf_off = arena.add32(off)
        self.qoff_off = arena.add32(qoff_l)
        self.qcap_off = arena.add32(qcap_l)
        self.qhead_off = arena.add32(nq)
        self.qlen_off = arena.add32(nq)
        if self.is_vc:
            self.vc_rr_off = arena.add32(narb)
            self.prio_off = arena.add32(R)
            self.dirty_off = arena.add32([1] * R)
        else:
            self.arb_off = arena.add32(narb)
        self.occ_off = arena.add32(R)
        self.gsq_off = arena.add32(narb)
        self.gro_off = arena.add32(narb)
        self.ej_off = arena.add32(R)
        self.nej_off = arena.add32(1)
        self.tab_off = arena.add32(self.plan[1])
        if self.plan[0] == "trace":
            # Per-source replay cursors, initialized to the schedule's
            # per-source start offsets (the table's first n entries).
            self.trcur_off = arena.add32(self.plan[1][:R])
        self.hop_off = arena.add64(NUM_DIRS)
        self.link_off = arena.add64(
            R * NUM_DIRS if self.track_links else 1
        )
        self.st_off = arena.add64(_ckernel.ST_LEN)
        seed = self.seed
        self.tmt_off = arena.addu32(
            derive_rng(seed, "timing").getstate()[1]  # rng: shared
        )
        self.dmt_off = arena.addu32(
            derive_rng(seed, "dest").getstate()[1]  # rng: shared
        )

    # -- ctypes binding -------------------------------------------------
    def bind(self, arena: _Arena, kernel: Any) -> None:
        model = self.model
        self.i32 = arena.a32
        self.st = arena.view64(self.st_off, _ckernel.ST_LEN)
        self.pk_cap = _PK_CAP0
        zeros = bytes(4 * _PK_CAP0)
        self.pdest_a = array("i", zeros)
        self.pout_a = array("i", zeros)
        self.psrc_a = array("i", zeros)
        self.pinj_a = array("i", zeros)
        self.pmeas_a = array("i", zeros)
        self.ejlog_a = array("i", bytes(4 * _EJ_CAP0))
        if self.is_vc:
            self.povc_a = array("i", zeros)
            va = _vc_arrays(model)
            c = self.vctx = _ckernel.VcCtx()
            c.R = model.n
            c.depth = model.depth
            c.nvc = model.num_vcs
            c.track_links = 1 if self.track_links else 0
            c.n = model.n
            c.plist = _ptr32(va.plist)
            c.pofs = _ptr32(va.pofs)
            c.pcnt = _ptr32(va.pcnt)
            c.dn = _ptr32(va.dn)
            c.feed = _ptr32(va.feed)
            c.out_tab = _ptr32(va.out)
            c.vcn_tab = _ptr32(va.vcn)
            c.dl_tab = _ptr32(va.dl)
            c.sd = _ptr32(va.sd)
            c.buf = arena.p32(self.buf_off)
            c.qoff = arena.p32(self.qoff_off)
            c.qcap = arena.p32(self.qcap_off)
            c.qhead = arena.p32(self.qhead_off)
            c.qlen = arena.p32(self.qlen_off)
            c.vc_rr = arena.p32(self.vc_rr_off)
            c.prio = arena.p32(self.prio_off)
            c.occ = arena.p32(self.occ_off)
            c.dirty = arena.p32(self.dirty_off)
            c.pout = _ptr32(self.pout_a)
            c.povc = _ptr32(self.povc_a)
            c.pdest = _ptr32(self.pdest_a)
            c.hop = arena.p64(self.hop_off)
            c.link = arena.p64(self.link_off)
            c.gsq = arena.p32(self.gsq_off)
            c.gro = arena.p32(self.gro_off)
            c.ej = arena.p32(self.ej_off)
            c.nej = arena.p32(self.nej_off)
            self.vref = ctypes.byref(c)
        else:
            self.pbase_a = array("i", zeros)
            ca = _c_arrays(model)
            c = self.sctx = _ckernel.StepCtx()
            c.R = model.n
            c.depth = model.depth
            c.fbfc = 1 if model.kind == "fbfc" else 0
            c.track_links = 1 if self.track_links else 0
            c.rowlen = ca.rowlen
            c.dn = _ptr32(ca.dn)
            c.ncv = _ptr32(ca.ncv)
            c.cands = _ptr32(ca.cands)
            c.pm = _ptr32(ca.pm)
            c.needs = _ptr32(ca.needs)
            c.rowof = _ptr32(ca.rowof)
            c.rows = _ptr32(ca.rows)
            c.buf = arena.p32(self.buf_off)
            c.qoff = arena.p32(self.qoff_off)
            c.qcap = arena.p32(self.qcap_off)
            c.qhead = arena.p32(self.qhead_off)
            c.qlen = arena.p32(self.qlen_off)
            c.arb = arena.p32(self.arb_off)
            c.occ = arena.p32(self.occ_off)
            c.pout = _ptr32(self.pout_a)
            c.pbase = _ptr32(self.pbase_a)
            c.pdest = _ptr32(self.pdest_a)
            c.hop = arena.p64(self.hop_off)
            c.link = arena.p64(self.link_off)
            c.gsq = arena.p32(self.gsq_off)
            c.gro = arena.p32(self.gro_off)
            c.ej = arena.p32(self.ej_off)
            c.nej = arena.p32(self.nej_off)
            self.sref = ctypes.byref(c)
        b = self.bctx = _ckernel.BlockCtx()
        b.t_mt = arena.pu32(self.tmt_off)
        b.d_mt = arena.pu32(self.dmt_off)
        b.rate = self.spec.rate
        b.n = model.n
        if self.plan[0] == "table":
            b.mode = 0
            b.ubits = 0
            b.dtab = arena.p32(self.tab_off)
        elif self.plan[0] == "trace":
            b.mode = 2
            b.ubits = 0
            b.trace = arena.p32(self.tab_off)
            b.trcur = arena.p32(self.trcur_off)
        else:
            b.mode = 1
            b.ubits = self.plan[2]
            b.perm = arena.p32(self.tab_off)
        b.stall_window = self.stall_window
        b.starve_window = (
            -1 if self.starvation_window is None else self.starvation_window
        )
        b.target = 0
        b.maxc = -1 if self.max_cycles is None else self.max_cycles
        subnet = None if self.is_vc else _c_subnet(model)
        if subnet is not None:
            b.subnet = _ptr32(subnet)
        b.psrc = _ptr32(self.psrc_a)
        b.pinj = _ptr32(self.pinj_a)
        b.pmeas = _ptr32(self.pmeas_a)
        b.st = arena.p64(self.st_off)
        b.ejlog = _ptr32(self.ejlog_a)
        self.bref = ctypes.byref(b)

    # -- growable per-packet logs ---------------------------------------
    def _ensure_capacity(self, count: int) -> None:
        st = self.st
        need_pk = st[_ckernel.ST_NPK] + self.model.n * count
        if need_pk > self.pk_cap:
            newcap = self.pk_cap
            while newcap < need_pk:
                newcap *= 2
            grow = bytes(4 * (newcap - self.pk_cap))
            self.pk_cap = newcap
            b = self.bctx
            for a in (self.psrc_a, self.pinj_a, self.pmeas_a):
                a.frombytes(grow)
            b.psrc = _ptr32(self.psrc_a)
            b.pinj = _ptr32(self.pinj_a)
            b.pmeas = _ptr32(self.pmeas_a)
            self.pdest_a.frombytes(grow)
            self.pout_a.frombytes(grow)
            if self.is_vc:
                self.povc_a.frombytes(grow)
                c = self.vctx
                c.pdest = _ptr32(self.pdest_a)
                c.pout = _ptr32(self.pout_a)
                c.povc = _ptr32(self.povc_a)
            else:
                self.pbase_a.frombytes(grow)
                c = self.sctx
                c.pdest = _ptr32(self.pdest_a)
                c.pout = _ptr32(self.pout_a)
                c.pbase = _ptr32(self.pbase_a)
        need_ej = 2 * (st[_ckernel.ST_OCC] + self.model.n * count)
        if need_ej > len(self.ejlog_a):
            newcap = len(self.ejlog_a)
            while newcap < need_ej:
                newcap *= 2
            self.ejlog_a.frombytes(
                bytes(4 * (newcap - len(self.ejlog_a)))
            )
            self.bctx.ejlog = _ptr32(self.ejlog_a)

    # -- block scheduling -----------------------------------------------
    def advance(self, kernel: Any, budget: int) -> bool:
        """Run up to ``budget`` cycles; True when this run is finished."""
        st = self.st
        while budget > 0:
            if self.phase == 3:
                return True
            if self.phase_remaining <= 0:
                if self._next_phase():
                    return True
                continue
            count = min(budget, self.phase_remaining)
            b = self.bctx
            b.count = count
            b.measured = 1 if self.phase == 1 else 0
            b.drain = 1 if self.phase == 2 else 0
            if self.phase == 2:
                b.target = st[_ckernel.ST_INJ_MEAS]
            self._ensure_capacity(count)
            st[_ckernel.ST_NEJLOG] = 0
            if self.is_vc:
                stop = kernel.run_block_vc(self.vref, self.bref)
            else:
                stop = kernel.run_block_noc(self.sref, self.bref)
            ran = st[_ckernel.ST_RAN]
            self.phase_remaining -= ran
            budget -= max(ran, 1)
            self._replay_ejections()
            if stop == _ckernel.STOP_STALL:
                self.error = self._watchdog_error(
                    "stall", int(st[_ckernel.ST_IDLE])
                )
            elif stop == _ckernel.STOP_STARVE:
                self.error = self._watchdog_error(
                    "starvation", int(st[_ckernel.ST_STARVED])
                )
            elif stop == _ckernel.STOP_MAX_CYCLES:
                self.error = SimulationTimeout(
                    f"run exceeded its {self.max_cycles}-cycle budget "
                    f"({int(st[_ckernel.ST_OCC])} packets still in "
                    f"flight)"
                )
            elif stop == _ckernel.STOP_DRAINED:
                self.drained = True
                self._finish()
                return True
            if self.error is not None:
                self.phase = 3
                return True
        return self.phase == 3

    def _next_phase(self) -> bool:
        st = self.st
        if self.phase == 0:
            self.delivered_before = int(st[_ckernel.ST_DEL_TOTAL])
            self.phase = 1
            self.phase_remaining = self.measure
            return False
        drained = (
            st[_ckernel.ST_DEL_MEAS] >= st[_ckernel.ST_INJ_MEAS]
        )
        if self.phase == 1:
            self.delivered_during = (
                int(st[_ckernel.ST_DEL_TOTAL]) - self.delivered_before
            )
            self.phase = 2
            if drained or self.drain_limit <= 0:
                self.drained = drained
                self._finish()
                return True
            self.phase_remaining = self.drain_limit
            return False
        # Drain budget exhausted without reaching the target.
        self.drained = drained
        self._finish()
        return True

    def _replay_ejections(self) -> None:
        st = self.st
        nlog = st[_ckernel.ST_NEJLOG]
        if not nlog:
            return
        ejlog = self.ejlog_a
        pmeas = self.pmeas_a
        pinj = self.pinj_a
        psrc = self.psrc_a
        samples = self.samples
        per_src = self.per_src
        for k in range(nlog):
            pid = ejlog[2 * k]
            if not pmeas[pid]:
                continue
            lat = ejlog[2 * k + 1] - pinj[pid]
            self.lat_count += 1
            self.lat_total += lat
            self.lat_total_sq += lat * lat
            if self.lat_min is None or lat < self.lat_min:
                self.lat_min = lat
            if self.lat_max is None or lat > self.lat_max:
                self.lat_max = lat
            if samples is not None:
                samples.append(lat)
            if per_src is not None:
                stats = per_src.get(psrc[pid])
                if stats is None:
                    stats = per_src[psrc[pid]] = LatencyStats()
                stats.add(lat)

    # -- terminal states ------------------------------------------------
    def _watchdog_error(self, kind: str, window: int) -> DeadlockError:
        model = self.model
        R = model.n
        i32 = self.i32
        qoff_l = self.qoff_l
        qcap_l = self.qcap_l
        qhead_off = self.qhead_off
        qlen_off = self.qlen_off
        buf_off = self.buf_off

        if self.is_vc:
            nports = VCRouter.NUM_PORTS
            num_vcs = model.num_vcs

            def fill(routers: List[Any], mk: Any) -> None:
                for r in range(R):
                    for i in model.ports[r]:
                        for lane in range(1 if i == P_IDX else num_vcs):
                            qi = (r * nports + i) * num_vcs + lane
                            off = qoff_l[qi]
                            cap = qcap_l[qi]
                            head = i32[qhead_off + qi]
                            for k in range(i32[qlen_off + qi]):
                                routers[r].accept(
                                    mk(
                                        i32[
                                            buf_off + off
                                            + (head + k) % cap
                                        ]
                                    ),
                                    i,
                                    lane,
                                )
        else:

            def fill(routers: List[Any], mk: Any) -> None:
                for r in range(R):
                    for i in model.in_lists[r]:
                        qi = r * NUM_DIRS + i
                        off = qoff_l[qi]
                        cap = qcap_l[qi]
                        head = i32[qhead_off + qi]
                        for k in range(i32[qlen_off + qi]):
                            routers[r].accept(
                                mk(i32[buf_off + off + (head + k) % cap]),
                                i,
                            )

        return _deadlock_error(
            self.spec,
            None,
            kind,
            window,
            int(self.st[_ckernel.ST_CYCLE]),
            int(self.st[_ckernel.ST_OCC]),
            model.nodes,
            model.n,
            model.subnet_tab,
            self.psrc_a,
            self.pinj_a,
            self.pmeas_a,
            self.pdest_a,
            self.pbase_a if not self.is_vc else self.pdest_a,
            fill,
        )

    def _finish(self) -> None:
        from repro.sim.simulator import RunResult

        st = self.st
        model = self.model
        self.phase = 3
        hop_counts = [
            int(v)
            for v in memoryview(self.i64_src())[
                self.hop_off:self.hop_off + NUM_DIRS
            ]
        ]
        metrics = RunMetrics(
            track_per_source=self.track_per_source,
            keep_samples=self.keep_samples,
            track_links=self.track_links,
        )
        stats = metrics.measured
        stats.count = self.lat_count
        stats.total = self.lat_total
        stats.total_sq = self.lat_total_sq
        stats.min = self.lat_min
        stats.max = self.lat_max
        if self.samples is not None:
            stats._samples = self.samples
        metrics.delivered_total = int(st[_ckernel.ST_DEL_TOTAL])
        metrics.delivered_measured = int(st[_ckernel.ST_DEL_MEAS])
        metrics.injected_total = int(st[_ckernel.ST_INJ_TOTAL])
        metrics.injected_measured = int(st[_ckernel.ST_INJ_MEAS])
        metrics.dropped_total = 0
        metrics.dropped_measured = 0
        metrics.hop_counts = hop_counts
        if self.per_src is not None:
            for s, src_stats in self.per_src.items():
                metrics.per_source[model.nodes[s]] = src_stats
        if self.track_links:
            link_counts = metrics.link_counts
            lv = memoryview(self.i64_src())[
                self.link_off:self.link_off + model.n * NUM_DIRS
            ]
            for r in range(model.n):
                base = r * NUM_DIRS
                coord = model.nodes[r]
                for o in range(1, NUM_DIRS):
                    count = lv[base + o]
                    if count:
                        link_counts[(coord, o)] = int(count)
        delivered_total = metrics.delivered_total
        accepted = self.delivered_during / (model.n * self.measure)
        avg_hops = (
            sum(hop_counts) / delivered_total
            if delivered_total
            else float("nan")
        )
        self.result = RunResult(
            config_name=self.cfg.name,
            pattern=self.spec.pattern,
            offered_load=self.spec.rate,
            accepted_throughput=accepted,
            avg_latency=stats.mean,
            stddev_latency=stats.stddev,
            max_latency=(
                float(self.lat_max)
                if self.lat_max is not None
                else float("nan")
            ),
            delivered_measured=metrics.delivered_measured,
            injected_measured=metrics.injected_measured,
            drained=self.drained,
            measure_cycles=self.measure,
            avg_hops=avg_hops,
            total_cycles=int(st[_ckernel.ST_CYCLE]),
            dropped_measured=0,
            metrics=metrics,
            engine="compiled-batch",
        )

    def i64_src(self) -> array:
        # self.st is a slice view; the link/hop segments live in the
        # same backing array, reachable through the view's .obj.
        return self.st.obj


def run_compiled_batch(
    specs: Sequence[NetworkSpec],
    *,
    track_per_source: bool = False,
    keep_samples: bool = False,
    track_links: bool = False,
    horizon: int = 4096,
):
    """Run many design points through one structure-of-arrays batch.

    Returns one entry per spec, **in order**: a
    :class:`~repro.sim.simulator.RunResult` on success or the
    :class:`~repro.errors.SimulationError` the run raised (watchdog
    trips and cycle-budget overruns are data in a sweep, and one bad
    design point must not poison its batchmates).  Specs the batch gate
    rejects (see :func:`batching_problems`) transparently fall back to a
    per-row :func:`~repro.core.spec.build_run`, so their provenance —
    ``"compiled"`` or ``"reference"`` instead of ``"compiled-batch"`` —
    is visible in ``RunResult.engine``.

    Batched runs are scheduled round-robin with a ``horizon``-cycle
    slice each and retired the moment they finish; results are
    bit-identical to running each spec serially (same RNG streams, same
    counters, same error messages), which the differential tests and
    the campaign checkpoint-byte contract pin down.
    """
    from collections import deque

    from repro.core.spec import build_run
    from repro.errors import SimulationError

    results: List[Any] = [None] * len(specs)
    batch: List[Tuple[int, _BatchRun]] = []
    for idx, spec in enumerate(specs):
        if batching_problems(spec):
            try:
                results[idx] = build_run(
                    spec,
                    track_per_source=track_per_source,
                    keep_samples=keep_samples,
                    track_links=track_links,
                )
            except SimulationError as exc:
                results[idx] = exc
            continue
        cfg = build_config(spec)
        model = _compile(
            spec, cfg, spec.routing, spec.router, spec.allocator,
            faults=None,
        )
        plan = _pattern_plan(model, cfg, spec.pattern)
        batch.append(
            (
                idx,
                _BatchRun(
                    spec,
                    cfg,
                    model,
                    plan,
                    track_per_source=track_per_source,
                    keep_samples=keep_samples,
                    track_links=track_links,
                ),
            )
        )
    if batch:
        kernel = _ckernel.get_kernel()
        arena = _Arena()
        for _idx, run in batch:
            run.reserve(arena)
        arena.seal()
        for _idx, run in batch:
            run.bind(arena, kernel)
        active = deque(batch)
        while active:
            idx, run = active.popleft()
            if run.advance(kernel, horizon):
                results[idx] = (
                    run.error if run.error is not None else run.result
                )
            else:
                active.append((idx, run))
    return results
