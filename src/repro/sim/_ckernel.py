"""Optional native step kernel for the compiled engine.

The wormhole/FBFC inner loop of :mod:`repro.sim.fastsim` is a few dozen
integer operations per packet move; in CPython the interpreter dispatch
around those operations dominates.  This module compiles a single-file C
translation of that loop with the system C compiler at first use and
loads it through :mod:`ctypes`.  The C kernel performs exactly the same
two-phase step (arbitrate every router against cycle-start state, then
commit every grant in discovery order) on the same flat arrays, so the
equivalence argument of the pure-Python path carries over unchanged —
the differential tests exercise both paths.

The kernel is strictly optional: when no C compiler is available, the
compile fails, or ``REPRO_NO_CKERNEL`` is set in the environment,
:func:`get_kernel` returns ``None`` and the compiled engine falls back
to its pure-Python step loops (same results, lower throughput).  The
shared object lives in a process-lifetime temporary directory; nothing
is installed.
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import tempfile
import warnings
from typing import Optional

__all__ = ["StepCtx", "get_kernel"]

_I32P = ctypes.POINTER(ctypes.c_int32)
_I64P = ctypes.POINTER(ctypes.c_int64)


class StepCtx(ctypes.Structure):
    """Mirror of the C ``StepCtx``: one pointer block per simulation run.

    Filling the struct once and passing a single pointer per cycle keeps
    the per-call ctypes marshalling cost constant instead of linear in
    the argument count.
    """

    _fields_ = [
        ("R", ctypes.c_int32),
        ("depth", ctypes.c_int32),
        ("fbfc", ctypes.c_int32),
        ("track_links", ctypes.c_int32),
        ("rowlen", ctypes.c_int32),
        # static tables (per compiled model)
        ("dn", _I32P),
        ("ncv", _I32P),
        ("cands", _I32P),
        ("pm", _I32P),
        ("needs", _I32P),
        ("rowof", _I32P),
        ("rows", _I32P),
        # per-run queue state
        ("buf", _I32P),
        ("qoff", _I32P),
        ("qcap", _I32P),
        ("qhead", _I32P),
        ("qlen", _I32P),
        ("arb", _I32P),
        ("occ", _I32P),
        # per-packet records (grown by the Python side)
        ("pout", _I32P),
        ("pbase", _I32P),
        ("pdest", _I32P),
        # counters and per-cycle outputs
        ("hop", _I64P),
        ("link", _I64P),
        ("gsq", _I32P),
        ("gro", _I32P),
        ("ej", _I32P),
        ("nej", _I32P),
    ]


_SOURCE = r"""
#include <stdint.h>

typedef struct {
    int32_t R, depth, fbfc, track_links, rowlen;
    const int32_t *dn, *ncv, *cands, *pm, *needs, *rowof, *rows;
    int32_t *buf;
    const int32_t *qoff, *qcap;
    int32_t *qhead, *qlen, *arb, *occ;
    int32_t *pout;
    const int32_t *pbase, *pdest;
    int64_t *hop, *link;
    int32_t *gsq, *gro, *ej, *nej;
} StepCtx;

/* One network cycle for the wormhole / FBFC router kinds.
 *
 * Phase 1 arbitrates every output of every occupied router against
 * cycle-start queue state (request masks over candidate positions,
 * rotating round-robin winner, downstream space gate — free slot for
 * wormhole, per-entry bubble need for FBFC).  Phase 2 commits the
 * grants in discovery order: router ascending, output ascending.  Both
 * phases are literal translations of the pure-Python step loops in
 * repro.sim.fastsim; the pointer trajectories and commit order are
 * identical by construction.  Returns the number of grants; ejected
 * packet ids are written to ej/nej for the Python side to score.
 */
int step_noc(StepCtx *c)
{
    const int32_t R = c->R, depth = c->depth, fbfc = c->fbfc;
    const int32_t *qoff = c->qoff, *qcap = c->qcap;
    int32_t *qhead = c->qhead, *qlen = c->qlen;
    int ng = 0, nej = 0;
    for (int r = 0; r < R; r++) {
        if (!c->occ[r])
            continue;
        int reqm[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
        const int rb = r * 9;
        const int32_t *pmr = c->pm + r * 81;
        int anyreq = 0;
        for (int i = 0; i < 9; i++) {
            const int qi = rb + i;
            if (!qlen[qi])
                continue;
            const int pid = c->buf[qoff[qi] + qhead[qi]];
            const int o = c->pout[pid];
            const int pos = pmr[o * 9 + i];
            if (pos < 0)
                continue;
            reqm[o] |= 1 << pos;
            anyreq = 1;
        }
        if (!anyreq)
            continue;
        for (int o = 0; o < 9; o++) {
            const int m = reqm[o];
            if (!m)
                continue;
            const int ro = rb + o;
            const int nc = c->ncv[ro];
            if (nc <= 0)
                continue;
            const int d = c->dn[ro];
            int pos;
            if (!fbfc) {
                if (d >= 0 && qlen[d] >= depth)
                    continue;
                pos = c->arb[ro];
                while (!((m >> pos) & 1)) {
                    pos++;
                    if (pos >= nc)
                        pos = 0;
                }
            } else {
                const int avail = d < 0 ? depth : depth - qlen[d];
                if (avail <= 0)
                    continue;
                const int ptr = c->arb[ro];
                const int32_t *nd = c->needs + ro * 9;
                pos = -1;
                for (int k = 0; k < nc; k++) {
                    int p = ptr + k;
                    if (p >= nc)
                        p -= nc;
                    if (((m >> p) & 1) && avail >= nd[p]) {
                        pos = p;
                        break;
                    }
                }
                if (pos < 0)
                    continue;
            }
            c->arb[ro] = pos + 1 < nc ? pos + 1 : 0;
            c->gsq[ng] = rb + c->cands[ro * 9 + pos];
            c->gro[ng] = ro;
            ng++;
        }
    }
    for (int g = 0; g < ng; g++) {
        const int sq = c->gsq[g], ro = c->gro[g];
        const int r = ro / 9, o = ro % 9;
        int h = qhead[sq];
        const int pid = c->buf[qoff[sq] + h];
        h++;
        if (h >= qcap[sq])
            h = 0;
        qhead[sq] = h;
        qlen[sq]--;
        c->occ[r]--;
        if (c->track_links && o)
            c->link[ro]++;
        const int d = c->dn[ro];
        if (d < 0) {
            c->ej[nej++] = pid;
        } else {
            c->hop[o]++;
            c->pout[pid] = c->rows[c->rowof[d] * c->rowlen
                                   + c->pbase[pid] + c->pdest[pid]];
            int t = qhead[d] + qlen[d];
            if (t >= qcap[d])
                t -= qcap[d];
            c->buf[qoff[d] + t] = pid;
            qlen[d]++;
            c->occ[d / 9]++;
        }
    }
    *c->nej = nej;
    return ng;
}
"""

_lib: Optional[ctypes.CDLL] = None
_tried = False
# Keeps the build directory (and its .so) alive for the process.
_tmpdir: Optional[tempfile.TemporaryDirectory] = None


def get_kernel() -> Optional[ctypes.CDLL]:
    """The loaded step kernel, building it on first call.

    Returns ``None`` when ``REPRO_NO_CKERNEL`` is set, no working C
    compiler is on ``PATH``, or the build/load fails for any reason —
    callers then use the pure-Python step.  A failure is cached as a
    negative result (one :class:`RuntimeWarning`, never a rebuild
    attempt per run), so a broken toolchain costs one compiler
    invocation per process, not one per simulation.
    """
    global _lib, _tried, _tmpdir
    if _tried:
        return _lib
    _tried = True
    if os.environ.get("REPRO_NO_CKERNEL"):
        return None
    try:
        _tmpdir = tempfile.TemporaryDirectory(prefix="repro-ckernel-")
        src = os.path.join(_tmpdir.name, "step_noc.c")
        out = os.path.join(_tmpdir.name, "step_noc.so")
        with open(src, "w", encoding="utf-8") as fh:
            fh.write(_SOURCE)
        compiler = os.environ.get("CC", "cc")
        subprocess.run(
            [compiler, "-O2", "-fPIC", "-shared", "-o", out, src],
            check=True,
            capture_output=True,
            timeout=120,
        )
        lib = ctypes.CDLL(out)
        lib.step_noc.argtypes = [ctypes.POINTER(StepCtx)]
        lib.step_noc.restype = ctypes.c_int
        _lib = lib
    except Exception as exc:
        _lib = None
        warnings.warn(
            f"native step kernel unavailable ({type(exc).__name__}: "
            f"{exc}); the compiled engine will use its pure-Python "
            f"loops for this process",
            RuntimeWarning,
            stacklevel=2,
        )
    return _lib
