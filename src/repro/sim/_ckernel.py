"""Optional native step kernel for the compiled engine.

The wormhole/FBFC inner loop of :mod:`repro.sim.fastsim` is a few dozen
integer operations per packet move; in CPython the interpreter dispatch
around those operations dominates.  This module compiles a single-file C
translation of that loop with the system C compiler at first use and
loads it through :mod:`ctypes`.  The C kernel performs exactly the same
two-phase step (arbitrate every router against cycle-start state, then
commit every grant in discovery order) on the same flat arrays, so the
equivalence argument of the pure-Python path carries over unchanged —
the differential tests exercise both paths.

Three kernel surfaces are exported:

``step_noc(StepCtx*)``
    One cycle of the wormhole/FBFC step loop.

``step_vc(VcCtx*)``
    One cycle of the dateline-VC (torus) step loop: per-router wavefront
    allocation over the touched (input, output) pairs, round-robin VC
    muxing, and the dateline/same-dimension VC transition rules — a
    literal translation of ``fastsim.step_vc``.

``run_block_noc(StepCtx*, BlockCtx*)`` / ``run_block_vc(VcCtx*, BlockCtx*)``
    Whole-phase drivers for batched execution: injection (replicating
    CPython's Mersenne Twister so the timing/destination streams are
    consumed bit-identically — see ``mt_next``), the step, ejection
    logging, and the stall/starvation/cycle-budget watchdogs run
    entirely in C for up to ``count`` cycles, so a batch of runs pays
    one ctypes call per horizon instead of two Python calls per cycle.

The kernel is strictly optional: when no C compiler is available, the
compile fails, or ``REPRO_NO_CKERNEL`` is set in the environment,
:func:`get_kernel` returns ``None`` and the compiled engine falls back
to its pure-Python step loops (same results, lower throughput).  The
shared object lives in a process-lifetime temporary directory; nothing
is installed.
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import tempfile
import warnings
from typing import Optional

__all__ = ["BlockCtx", "StepCtx", "VcCtx", "get_kernel"]

_I32P = ctypes.POINTER(ctypes.c_int32)
_I64P = ctypes.POINTER(ctypes.c_int64)
_U32P = ctypes.POINTER(ctypes.c_uint32)


class StepCtx(ctypes.Structure):
    """Mirror of the C ``StepCtx``: one pointer block per simulation run.

    Filling the struct once and passing a single pointer per cycle keeps
    the per-call ctypes marshalling cost constant instead of linear in
    the argument count.
    """

    _fields_ = [
        ("R", ctypes.c_int32),
        ("depth", ctypes.c_int32),
        ("fbfc", ctypes.c_int32),
        ("track_links", ctypes.c_int32),
        ("rowlen", ctypes.c_int32),
        # static tables (per compiled model)
        ("dn", _I32P),
        ("ncv", _I32P),
        ("cands", _I32P),
        ("pm", _I32P),
        ("needs", _I32P),
        ("rowof", _I32P),
        ("rows", _I32P),
        # per-run queue state
        ("buf", _I32P),
        ("qoff", _I32P),
        ("qcap", _I32P),
        ("qhead", _I32P),
        ("qlen", _I32P),
        ("arb", _I32P),
        ("occ", _I32P),
        # per-packet records (grown by the Python side)
        ("pout", _I32P),
        ("pbase", _I32P),
        ("pdest", _I32P),
        # counters and per-cycle outputs
        ("hop", _I64P),
        ("link", _I64P),
        ("gsq", _I32P),
        ("gro", _I32P),
        ("ej", _I32P),
        ("nej", _I32P),
    ]


class VcCtx(ctypes.Structure):
    """Mirror of the C ``VcCtx``: the dateline-VC router state block.

    Queue state is flattened over ``(router, input, lane)`` with lane
    stride ``nvc`` (the P injection port owns a single lane).  Static
    tables mirror the compiled model: ``dn[r*5+o]`` is the downstream
    ``down_r*5+down_in`` (or -1 for the ejection sink), ``out_tab`` /
    ``vcn_tab`` / ``dl_tab`` are the per-destination route/VC/dateline
    rows, and ``sd`` is the 5x5 same-dimension predicate.
    """

    _fields_ = [
        ("R", ctypes.c_int32),
        ("depth", ctypes.c_int32),
        ("nvc", ctypes.c_int32),
        ("track_links", ctypes.c_int32),
        ("n", ctypes.c_int32),
        # static tables (per compiled model)
        ("plist", _I32P),
        ("pofs", _I32P),
        ("pcnt", _I32P),
        ("dn", _I32P),
        ("feed", _I32P),
        ("out_tab", _I32P),
        ("vcn_tab", _I32P),
        ("dl_tab", _I32P),
        ("sd", _I32P),
        # per-run queue state
        ("buf", _I32P),
        ("qoff", _I32P),
        ("qcap", _I32P),
        ("qhead", _I32P),
        ("qlen", _I32P),
        ("vc_rr", _I32P),
        ("prio", _I32P),
        ("occ", _I32P),
        ("dirty", _I32P),
        # per-packet records (grown by the Python side)
        ("pout", _I32P),
        ("povc", _I32P),
        ("pdest", _I32P),
        # counters and per-cycle outputs
        ("hop", _I64P),
        ("link", _I64P),
        ("gsq", _I32P),
        ("gro", _I32P),
        ("ej", _I32P),
        ("nej", _I32P),
    ]


class BlockCtx(ctypes.Structure):
    """Mirror of the C ``BlockCtx``: one batched run's phase driver.

    ``t_mt``/``d_mt`` are CPython Mersenne Twister states (624 words +
    the output index, exactly ``random.Random.getstate()[1]``) for the
    timing and destination streams.  ``st`` is the 12-slot ``int64``
    counter block shared with the Python side: cycle, occupancy,
    injected total/measured, delivered total/measured, idle cycles,
    starved cycles, packet count, ejection-log length, stop code, and
    cycles ran this block.
    """

    _fields_ = [
        ("t_mt", _U32P),
        ("d_mt", _U32P),
        ("rate", ctypes.c_double),
        ("n", ctypes.c_int32),
        ("mode", ctypes.c_int32),
        ("ubits", ctypes.c_int32),
        ("count", ctypes.c_int32),
        ("measured", ctypes.c_int32),
        ("drain", ctypes.c_int32),
        ("stall_window", ctypes.c_int32),
        ("starve_window", ctypes.c_int32),
        ("target", ctypes.c_int64),
        ("maxc", ctypes.c_int64),
        ("dtab", _I32P),
        ("perm", _I32P),
        ("subnet", _I32P),
        ("psrc", _I32P),
        ("pinj", _I32P),
        ("pmeas", _I32P),
        ("st", _I64P),
        ("ejlog", _I32P),
        # trace replay (mode 2): `trace` is the flat schedule — n + 1
        # per-source pair offsets followed by (cycle, dest) pairs —
        # and `trcur` the per-source cursor into it.
        ("trace", _I32P),
        ("trcur", _I32P),
    ]


# st[] slot indices shared between the C drivers and the Python side.
ST_CYCLE = 0
ST_OCC = 1
ST_INJ_TOTAL = 2
ST_INJ_MEAS = 3
ST_DEL_TOTAL = 4
ST_DEL_MEAS = 5
ST_IDLE = 6
ST_STARVED = 7
ST_NPK = 8
ST_NEJLOG = 9
ST_STOP = 10
ST_RAN = 11
ST_LEN = 12

# Stop codes written to st[ST_STOP] by the block drivers.
STOP_BUDGET = 0  # ran `count` cycles
STOP_STALL = 1
STOP_STARVE = 2
STOP_DRAINED = 3
STOP_MAX_CYCLES = 6

_SOURCE = r"""
#include <stdint.h>

typedef struct {
    int32_t R, depth, fbfc, track_links, rowlen;
    const int32_t *dn, *ncv, *cands, *pm, *needs, *rowof, *rows;
    int32_t *buf;
    const int32_t *qoff, *qcap;
    int32_t *qhead, *qlen, *arb, *occ;
    int32_t *pout, *pbase, *pdest;
    int64_t *hop, *link;
    int32_t *gsq, *gro, *ej, *nej;
} StepCtx;

typedef struct {
    int32_t R, depth, nvc, track_links, n;
    const int32_t *plist, *pofs, *pcnt;
    const int32_t *dn, *feed;
    const int32_t *out_tab, *vcn_tab, *dl_tab, *sd;
    int32_t *buf;
    const int32_t *qoff, *qcap;
    int32_t *qhead, *qlen, *vc_rr, *prio, *occ, *dirty;
    int32_t *pout, *povc, *pdest;
    int64_t *hop, *link;
    int32_t *gsq, *gro, *ej, *nej;
} VcCtx;

typedef struct {
    uint32_t *t_mt, *d_mt;
    double rate;
    int32_t n, mode, ubits, count, measured, drain;
    int32_t stall_window, starve_window;
    int64_t target, maxc;
    const int32_t *dtab, *perm, *subnet;
    int32_t *psrc, *pinj, *pmeas;
    int64_t *st;
    int32_t *ejlog;
    const int32_t *trace;
    int32_t *trcur;
} BlockCtx;

/* CPython's Mersenne Twister (_randommodule.c genrand_uint32), operating
 * on the 625-word state random.Random.getstate()[1] hands out: 624 state
 * words followed by the output index.  Replicating the generator rather
 * than calling back into Python lets a whole injection phase run in C
 * while consuming the timing/destination streams bit-identically.
 */
#define MT_N 624
#define MT_M 397

static uint32_t mt_next(uint32_t *mt)
{
    uint32_t idx = mt[MT_N];
    uint32_t y;
    if (idx >= MT_N) {
        static const uint32_t mag[2] = {0u, 0x9908b0dfu};
        int kk;
        for (kk = 0; kk < MT_N - MT_M; kk++) {
            y = (mt[kk] & 0x80000000u) | (mt[kk + 1] & 0x7fffffffu);
            mt[kk] = mt[kk + MT_M] ^ (y >> 1) ^ mag[y & 1u];
        }
        for (; kk < MT_N - 1; kk++) {
            y = (mt[kk] & 0x80000000u) | (mt[kk + 1] & 0x7fffffffu);
            mt[kk] = mt[kk + (MT_M - MT_N)] ^ (y >> 1) ^ mag[y & 1u];
        }
        y = (mt[MT_N - 1] & 0x80000000u) | (mt[0] & 0x7fffffffu);
        mt[MT_N - 1] = mt[MT_M - 1] ^ (y >> 1) ^ mag[y & 1u];
        idx = 0;
    }
    y = mt[idx];
    mt[MT_N] = idx + 1;
    y ^= y >> 11;
    y ^= (y << 7) & 0x9d2c5680u;
    y ^= (y << 15) & 0xefc60000u;
    y ^= y >> 18;
    return y;
}

/* random.Random.random(): 53-bit double in [0, 1). */
static double mt_random(uint32_t *mt)
{
    const uint32_t a = mt_next(mt) >> 5;
    const uint32_t b = mt_next(mt) >> 6;
    return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0);
}

/* random.Random._randbelow(nmax) for nmax < 2**31: draw kbits
 * (= nmax.bit_length()) top bits, rejecting draws >= nmax. */
static int32_t mt_below(uint32_t *mt, int32_t nmax, int32_t kbits)
{
    uint32_t r = mt_next(mt) >> (32 - kbits);
    while (r >= (uint32_t)nmax)
        r = mt_next(mt) >> (32 - kbits);
    return (int32_t)r;
}

/* One network cycle for the wormhole / FBFC router kinds.
 *
 * Phase 1 arbitrates every output of every occupied router against
 * cycle-start queue state (request masks over candidate positions,
 * rotating round-robin winner, downstream space gate — free slot for
 * wormhole, per-entry bubble need for FBFC).  Phase 2 commits the
 * grants in discovery order: router ascending, output ascending.  Both
 * phases are literal translations of the pure-Python step loops in
 * repro.sim.fastsim; the pointer trajectories and commit order are
 * identical by construction.  Returns the number of grants; ejected
 * packet ids are written to ej/nej for the caller to score.
 */
int step_noc(StepCtx *c)
{
    const int32_t R = c->R, depth = c->depth, fbfc = c->fbfc;
    const int32_t *qoff = c->qoff, *qcap = c->qcap;
    int32_t *qhead = c->qhead, *qlen = c->qlen;
    int ng = 0, nej = 0;
    for (int r = 0; r < R; r++) {
        if (!c->occ[r])
            continue;
        int reqm[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
        const int rb = r * 9;
        const int32_t *pmr = c->pm + r * 81;
        int anyreq = 0;
        for (int i = 0; i < 9; i++) {
            const int qi = rb + i;
            if (!qlen[qi])
                continue;
            const int pid = c->buf[qoff[qi] + qhead[qi]];
            const int o = c->pout[pid];
            const int pos = pmr[o * 9 + i];
            if (pos < 0)
                continue;
            reqm[o] |= 1 << pos;
            anyreq = 1;
        }
        if (!anyreq)
            continue;
        for (int o = 0; o < 9; o++) {
            const int m = reqm[o];
            if (!m)
                continue;
            const int ro = rb + o;
            const int nc = c->ncv[ro];
            if (nc <= 0)
                continue;
            const int d = c->dn[ro];
            int pos;
            if (!fbfc) {
                if (d >= 0 && qlen[d] >= depth)
                    continue;
                pos = c->arb[ro];
                while (!((m >> pos) & 1)) {
                    pos++;
                    if (pos >= nc)
                        pos = 0;
                }
            } else {
                const int avail = d < 0 ? depth : depth - qlen[d];
                if (avail <= 0)
                    continue;
                const int ptr = c->arb[ro];
                const int32_t *nd = c->needs + ro * 9;
                pos = -1;
                for (int k = 0; k < nc; k++) {
                    int p = ptr + k;
                    if (p >= nc)
                        p -= nc;
                    if (((m >> p) & 1) && avail >= nd[p]) {
                        pos = p;
                        break;
                    }
                }
                if (pos < 0)
                    continue;
            }
            c->arb[ro] = pos + 1 < nc ? pos + 1 : 0;
            c->gsq[ng] = rb + c->cands[ro * 9 + pos];
            c->gro[ng] = ro;
            ng++;
        }
    }
    for (int g = 0; g < ng; g++) {
        const int sq = c->gsq[g], ro = c->gro[g];
        const int r = ro / 9, o = ro % 9;
        int h = qhead[sq];
        const int pid = c->buf[qoff[sq] + h];
        h++;
        if (h >= qcap[sq])
            h = 0;
        qhead[sq] = h;
        qlen[sq]--;
        c->occ[r]--;
        if (c->track_links && o)
            c->link[ro]++;
        const int d = c->dn[ro];
        if (d < 0) {
            c->ej[nej++] = pid;
        } else {
            c->hop[o]++;
            c->pout[pid] = c->rows[c->rowof[d] * c->rowlen
                                   + c->pbase[pid] + c->pdest[pid]];
            int t = qhead[d] + qlen[d];
            if (t >= qcap[d])
                t -= qcap[d];
            c->buf[qoff[d] + t] = pid;
            qlen[d]++;
            c->occ[d / 9]++;
        }
    }
    *c->nej = nej;
    return ng;
}

/* One network cycle for the dateline-VC (torus) router kind.
 *
 * Per dirty router: collect the requesting (input, output) pairs with a
 * per-pair lane candidate mask (queue heads only, gated on downstream
 * lane space), visit them in the wavefront allocator's diagonal order
 * (rotating priority, input ascending within a diagonal), grant
 * greedily against the input/output free masks with round-robin VC
 * muxing, then commit all grants in discovery order applying the
 * dateline / same-dimension / new-dimension VC transition.  A literal
 * translation of fastsim.step_vc.
 */
int step_vc(VcCtx *c)
{
    const int32_t R = c->R, depth = c->depth, nvc = c->nvc, n = c->n;
    const int32_t *qoff = c->qoff, *qcap = c->qcap;
    int32_t *qhead = c->qhead, *qlen = c->qlen;
    int ng = 0, nej = 0;
    for (int r = 0; r < R; r++) {
        if (!c->dirty[r])
            continue;
        c->dirty[r] = 0;
        if (!c->occ[r])
            continue;
        int cm[25] = {0};
        int touched[25];
        int ntouched = 0;
        const int rb5 = r * 5;
        const int pc = c->pcnt[r];
        const int po = c->pofs[r];
        for (int pi = 0; pi < pc; pi++) {
            const int i = c->plist[po + pi];
            const int nlanes = i == 0 ? 1 : nvc;
            const int lb = (rb5 + i) * nvc;
            for (int lane = 0; lane < nlanes; lane++) {
                const int q = lb + lane;
                if (!qlen[q])
                    continue;
                const int pid = c->buf[qoff[q] + qhead[q]];
                const int o = c->pout[pid];
                const int code = c->dn[rb5 + o];
                if (code >= 0
                    && qlen[code * nvc + c->povc[pid]] >= depth)
                    continue;
                const int idx = i * 5 + o;
                if (!cm[idx])
                    touched[ntouched++] = idx;
                cm[idx] |= 1 << lane;
            }
        }
        if (!ntouched)
            continue;
        const int base_p = c->prio[r];
        c->prio[r] = base_p < 4 ? base_p + 1 : 0;
        /* insertion sort by the wavefront visit key
         * ((input + output - priority) mod 5, input); keys are unique
         * per pair so stability is moot. */
        for (int a = 1; a < ntouched; a++) {
            const int idx = touched[a];
            const int key =
                ((idx / 5 + idx % 5 - base_p + 5) % 5) * 5 + idx / 5;
            int b = a - 1;
            while (b >= 0) {
                const int jdx = touched[b];
                const int jkey =
                    ((jdx / 5 + jdx % 5 - base_p + 5) % 5) * 5 + jdx / 5;
                if (jkey <= key)
                    break;
                touched[b + 1] = jdx;
                b--;
            }
            touched[b + 1] = idx;
        }
        int in_free = 31, out_free = 31;
        for (int t = 0; t < ntouched; t++) {
            const int idx = touched[t];
            int mask = cm[idx];
            cm[idx] = 0;
            const int i = idx / 5;
            if (!((in_free >> i) & 1))
                continue;
            const int o = idx % 5;
            if (!((out_free >> o) & 1))
                continue;
            in_free &= ~(1 << i);
            out_free &= ~(1 << o);
            int best;
            if (mask & (mask - 1)) {
                const int ptr = c->vc_rr[rb5 + i];
                int best_key = nvc;
                int lane = 0;
                best = 0;
                while (mask) {
                    if (mask & 1) {
                        int key = lane - ptr;
                        if (key < 0)
                            key += nvc;
                        if (key < best_key) {
                            best_key = key;
                            best = lane;
                        }
                    }
                    mask >>= 1;
                    lane++;
                }
            } else {
                best = 0;
                while (!((mask >> best) & 1))
                    best++;
            }
            c->vc_rr[rb5 + i] = best + 1 < nvc ? best + 1 : 0;
            c->gsq[ng] = (rb5 + i) * nvc + best;
            c->gro[ng] = rb5 + o;
            ng++;
        }
    }
    for (int g = 0; g < ng; g++) {
        const int sq = c->gsq[g], ro = c->gro[g];
        const int r = ro / 5, o = ro % 5;
        const int i = sq / nvc % 5;
        int h = qhead[sq];
        const int pid = c->buf[qoff[sq] + h];
        h++;
        if (h >= qcap[sq])
            h = 0;
        qhead[sq] = h;
        qlen[sq]--;
        c->occ[r]--;
        c->dirty[r] = 1;
        const int f = c->feed[r * 5 + i];
        if (f >= 0 && qlen[sq] >= depth - 1)
            c->dirty[f] = 1;
        if (c->track_links && o)
            c->link[r * 9 + o]++;
        const int code = c->dn[ro];
        if (code < 0) {
            c->ej[nej++] = pid;
        } else {
            c->hop[o]++;
            const int down_r = code / 5;
            const int row = down_r * n + c->pdest[pid];
            const int out2 = c->out_tab[row];
            const int avc = c->povc[pid];
            int v2;
            if (c->dl_tab[row])
                v2 = 1;
            else if (c->sd[(code % 5) * 5 + out2])
                v2 = avc;
            else
                v2 = c->vcn_tab[row];
            c->pout[pid] = out2;
            c->povc[pid] = v2;
            const int dq = code * nvc + avc;
            int t = qhead[dq] + qlen[dq];
            if (t >= qcap[dq])
                t -= qcap[dq];
            c->buf[qoff[dq] + t] = pid;
            qlen[dq]++;
            c->occ[down_r]++;
            c->dirty[down_r] = 1;
        }
    }
    *c->nej = nej;
    return ng;
}

/* Whole-phase block drivers for batched execution.
 *
 * Each call runs up to b->count cycles of one phase (warmup, measure,
 * or drain — blocks never span phases, so b->measured and b->drain are
 * per-block constants): the injection round (timing draw, destination
 * draw or table lookup, FIFO push), the router step, the ejection log,
 * and the stall/starvation/cycle-budget watchdogs — all in the exact
 * order of fastsim's inject_round()/tick().  Counters live in the
 * 12-slot int64 st[] block (see the Python-side ST_* constants); the
 * stop code tells the caller why the block ended:
 *   0 budget exhausted, 1 stall trip, 2 starvation trip, 3 drained,
 *   6 max_cycles trip.
 * On a watchdog/budget trip the loop breaks BEFORE the cycle counter
 * increments, matching the reference raise points.
 */
static int inject_block(void *sctx, VcCtx *vc, BlockCtx *b)
{
    /* Injection round shared by both drivers; sctx is the StepCtx when
     * vc is NULL, else unused. */
    StepCtx *sc = (StepCtx *)sctx;
    const int n = b->n;
    const int measured = b->measured;
    const int64_t cycle = b->st[0];
    for (int s = 0; s < n; s++) {
        if (!(mt_random(b->t_mt) < b->rate))
            continue;
        int d;
        if (b->mode == 0) {
            d = b->dtab[s];
            if (d < 0)
                continue;
        } else if (b->mode == 2) {
            /* Trace replay: one cursor per source over cycle-sorted
             * (cycle, dest) pairs.  The timing draw above is already
             * consumed (rate is 1.0 for replay specs), matching the
             * serial engines' pattern-returns-None path exactly. */
            const int cur = b->trcur[s];
            const int32_t *rec;
            if (cur >= b->trace[s + 1])
                continue;
            rec = b->trace + n + 1 + 2 * cur;
            if (rec[0] != (int32_t)cycle)
                continue;
            b->trcur[s] = cur + 1;
            d = rec[1];
        } else {
            int idx = mt_below(b->d_mt, n, b->ubits);
            while (b->perm[idx] == s)
                idx = mt_below(b->d_mt, n, b->ubits);
            d = b->perm[idx];
        }
        const int pid = (int)b->st[8];
        b->st[8] = pid + 1;
        b->psrc[pid] = s;
        b->pinj[pid] = (int32_t)cycle;
        b->pmeas[pid] = measured;
        if (vc) {
            const int row = s * n + d;
            vc->pdest[pid] = d;
            vc->pout[pid] = vc->out_tab[row];
            vc->povc[pid] = vc->dl_tab[row] ? 1 : vc->vcn_tab[row];
            const int q = s * 5 * vc->nvc;  /* P port, lane 0 */
            int t = vc->qhead[q] + vc->qlen[q];
            if (t >= vc->qcap[q])
                t -= vc->qcap[q];
            vc->buf[vc->qoff[q] + t] = pid;
            vc->qlen[q]++;
            vc->occ[s]++;
            vc->dirty[s] = 1;
        } else {
            const int base = b->subnet ? b->subnet[s * n + d] * n : 0;
            sc->pdest[pid] = d;
            sc->pbase[pid] = base;
            sc->pout[pid] = sc->rows[sc->rowof[s * 9] * sc->rowlen
                                     + base + d];
            const int q = s * 9;  /* P injection queue */
            int t = sc->qhead[q] + sc->qlen[q];
            if (t >= sc->qcap[q])
                t -= sc->qcap[q];
            sc->buf[sc->qoff[q] + t] = pid;
            sc->qlen[q]++;
            sc->occ[s]++;
        }
        b->st[1]++;
        b->st[2]++;
        if (measured)
            b->st[3]++;
    }
    return 0;
}

static int run_block(StepCtx *sc, VcCtx *vc, BlockCtx *b)
{
    int64_t *st = b->st;
    const int32_t *ej = vc ? vc->ej : sc->ej;
    const int32_t *nejp = vc ? vc->nej : sc->nej;
    int32_t ran = 0;
    int stop = 0;
    while (ran < b->count) {
        inject_block(sc, vc, b);
        const int moved = vc ? step_vc(vc) : step_noc(sc);
        const int ne = *nejp;
        for (int k = 0; k < ne; k++) {
            const int pid = ej[k];
            const int at = 2 * (int)st[9];
            b->ejlog[at] = pid;
            b->ejlog[at + 1] = (int32_t)st[0];
            st[9]++;
            st[1]--;
            st[4]++;
            if (b->pmeas[pid])
                st[5]++;
        }
        if (moved) {
            st[6] = 0;
        } else if (st[1]) {
            st[6]++;
            if (st[6] >= b->stall_window) {
                stop = 1;
                break;
            }
        }
        if (b->starve_window >= 0) {
            if (ne || !st[1]) {
                st[7] = 0;
            } else {
                st[7]++;
                if (st[7] >= b->starve_window) {
                    stop = 2;
                    break;
                }
            }
        }
        st[0]++;
        ran++;
        if (b->maxc >= 0 && st[0] >= b->maxc) {
            stop = 6;
            break;
        }
        if (b->drain && st[5] >= b->target) {
            stop = 3;
            break;
        }
    }
    st[10] = stop;
    st[11] = ran;
    return stop;
}

int run_block_noc(StepCtx *sc, BlockCtx *b)
{
    return run_block(sc, (VcCtx *)0, b);
}

int run_block_vc(VcCtx *vc, BlockCtx *b)
{
    return run_block((StepCtx *)0, vc, b);
}
"""

_lib: Optional[ctypes.CDLL] = None
_tried = False
# Keeps the build directory (and its .so) alive for the process.
_tmpdir: Optional[tempfile.TemporaryDirectory] = None


def get_kernel() -> Optional[ctypes.CDLL]:
    """The loaded step kernel, building it on first call.

    Returns ``None`` when ``REPRO_NO_CKERNEL`` is set, no working C
    compiler is on ``PATH``, or the build/load fails for any reason —
    callers then use the pure-Python step.  A failure is cached as a
    negative result (one :class:`RuntimeWarning`, never a rebuild
    attempt per run), so a broken toolchain costs one compiler
    invocation per process, not one per simulation.
    """
    global _lib, _tried, _tmpdir
    if _tried:
        return _lib
    _tried = True
    if os.environ.get("REPRO_NO_CKERNEL"):
        return None
    try:
        _tmpdir = tempfile.TemporaryDirectory(prefix="repro-ckernel-")
        src = os.path.join(_tmpdir.name, "step_noc.c")
        out = os.path.join(_tmpdir.name, "step_noc.so")
        with open(src, "w", encoding="utf-8") as fh:
            fh.write(_SOURCE)
        compiler = os.environ.get("CC", "cc")
        subprocess.run(
            [compiler, "-O2", "-fPIC", "-shared", "-o", out, src],
            check=True,
            capture_output=True,
            timeout=120,
        )
        lib = ctypes.CDLL(out)
        lib.step_noc.argtypes = [ctypes.POINTER(StepCtx)]
        lib.step_noc.restype = ctypes.c_int
        lib.step_vc.argtypes = [ctypes.POINTER(VcCtx)]
        lib.step_vc.restype = ctypes.c_int
        lib.run_block_noc.argtypes = [
            ctypes.POINTER(StepCtx),
            ctypes.POINTER(BlockCtx),
        ]
        lib.run_block_noc.restype = ctypes.c_int
        lib.run_block_vc.argtypes = [
            ctypes.POINTER(VcCtx),
            ctypes.POINTER(BlockCtx),
        ]
        lib.run_block_vc.restype = ctypes.c_int
        _lib = lib
    except Exception as exc:
        _lib = None
        warnings.warn(
            f"native step kernel unavailable ({type(exc).__name__}: "
            f"{exc}); the compiled engine will use its pure-Python "
            f"loops for this process",
            RuntimeWarning,
            stacklevel=2,
        )
    return _lib
