"""Wavefront switch allocator for the VC torus router.

The paper's torus baseline performs switch allocation with "an acyclic
implementation of wavefront allocator for maximal matching quality"
(Section 4.1, following Becker's dissertation).  A wavefront allocator
sweeps diagonals of the request matrix starting from a rotating priority
diagonal; within one sweep each input and each output is granted at most
once, and the result is a maximal matching (no request remains whose input
and output are both free).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.registry import register_allocator


@register_allocator(
    "wavefront",
    description="rotating-diagonal maximal matching (Becker)",
)
class WavefrontAllocator:
    """Maximal input/output matching with rotating priority diagonal."""

    def __init__(self, num_inputs: int, num_outputs: int) -> None:
        if num_inputs < 1 or num_outputs < 1:
            raise ValueError("allocator needs at least one input and output")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self._priority = 0
        self._span = max(num_inputs, num_outputs)
        # Scratch free-masks reused across calls (the allocator runs once
        # per buffered VC router per cycle); reset by slice-assignment
        # from the immutable templates below.
        self._in_free = [True] * num_inputs
        self._out_free = [True] * num_outputs
        self._in_true = (True,) * num_inputs
        self._out_true = (True,) * num_outputs

    def allocate(
        self, requests: Sequence[Sequence[bool]]
    ) -> List[Tuple[int, int]]:
        """Grant a maximal matching over the boolean request matrix.

        ``requests[i][o]`` is true when input ``i`` requests output ``o``.
        Returns the granted ``(input, output)`` pairs.  The priority
        diagonal rotates on every call, emulating the per-cycle rotation
        of the hardware allocator.
        """
        if len(requests) != self.num_inputs:
            raise ValueError("request matrix has wrong number of inputs")
        in_free = self._in_free
        out_free = self._out_free
        in_free[:] = self._in_true
        out_free[:] = self._out_true
        grants: List[Tuple[int, int]] = []
        span = self._span
        base = self._priority
        for step in range(span):
            diag = (base + step) % span
            for i in range(self.num_inputs):
                if not in_free[i]:
                    continue
                o = (diag - i) % span
                if o >= self.num_outputs or not out_free[o]:
                    continue
                if requests[i][o]:
                    grants.append((i, o))
                    in_free[i] = False
                    out_free[o] = False
        self._priority = (base + 1) % span
        return grants
