"""Measurement collection: latency statistics, throughput, fairness.

The simulator's default packet sink feeds a :class:`RunMetrics`, which
aggregates the quantities the paper reports: average/percentile latency
(Figures 6, 9), accepted throughput, per-source-tile latency distributions
(the fairness study of Figure 8), and per-direction channel traversal
counts (input to the energy models of Table 3 / Figure 13).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.coords import Coord, Direction


class LatencyStats:
    """Streaming mean/stddev/min/max of packet latencies."""

    __slots__ = ("count", "total", "total_sq", "min", "max", "_samples")

    def __init__(self, keep_samples: bool = False) -> None:
        self.count = 0
        self.total = 0
        self.total_sq = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self._samples: Optional[List[int]] = [] if keep_samples else None

    def add(self, latency: int) -> None:
        self.count += 1
        self.total += latency
        self.total_sq += latency * latency
        if self.min is None or latency < self.min:
            self.min = latency
        if self.max is None or latency > self.max:
            self.max = latency
        if self._samples is not None:
            self._samples.append(latency)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        mean = self.mean
        var = self.total_sq / self.count - mean * mean
        return math.sqrt(max(0.0, var))

    def percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 1]; needs ``keep_samples``.

        Nearest-rank definition: the smallest sample with at least a
        ``q`` fraction of the distribution at or below it.  Well-defined
        on short runs too — with fewer than 1000 samples, p999 is the
        maximum, not an out-of-range index rounded to something odd.
        """
        if self._samples is None:
            raise ValueError("percentiles require keep_samples=True")
        if not self._samples:
            return float("nan")
        ordered = sorted(self._samples)
        n = len(ordered)
        idx = min(n - 1, max(0, math.ceil(q * n) - 1))
        return float(ordered[idx])

    def merge(self, other: "LatencyStats") -> None:
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        if self._samples is not None and other._samples is not None:
            self._samples.extend(other._samples)


def fairness_stats(per_source_means: Dict) -> Dict[str, float]:
    """Per-tile fairness of mean latencies: max/mean ratio and CV.

    ``per_source_means`` maps source tiles to their mean measured
    latency (see :meth:`RunMetrics.per_source_means`); tiles that
    delivered nothing (NaN mean) are excluded.  A max/mean ratio near 1
    and a small coefficient of variation mean the fabric serves every
    tile evenly (the Figure 8 question); both degrade near saturation.
    """
    means = [m for m in per_source_means.values() if not math.isnan(m)]
    if not means:
        return dict(
            fairness_max_over_mean=float("nan"),
            fairness_cv=float("nan"),
        )
    mean = sum(means) / len(means)
    var = sum((m - mean) ** 2 for m in means) / len(means)
    return dict(
        fairness_max_over_mean=max(means) / mean if mean else float("nan"),
        fairness_cv=math.sqrt(var) / mean if mean else float("nan"),
    )


def tail_latency_stats(metrics: "RunMetrics") -> Dict[str, float]:
    """p50/p99/p999 plus fairness for one run, as flat row columns.

    Requires the run to have been measured with ``keep_samples=True``;
    the fairness columns additionally require ``track_per_source=True``
    and are omitted otherwise.
    """
    out = {
        "p50_latency": metrics.measured.percentile(0.50),
        "p99_latency": metrics.measured.percentile(0.99),
        "p999_latency": metrics.measured.percentile(0.999),
    }
    if metrics.per_source is not None:
        out.update(fairness_stats(metrics.per_source_means()))
    return out


class RunMetrics:
    """All measurements collected during one simulation run."""

    def __init__(
        self,
        track_per_source: bool = False,
        keep_samples: bool = False,
        track_links: bool = False,
    ) -> None:
        self.measured = LatencyStats(keep_samples=keep_samples)
        self.delivered_total = 0
        self.delivered_measured = 0
        self.injected_total = 0
        self.injected_measured = 0
        #: Flits destroyed by transient link faults (fault injection).
        self.dropped_total = 0
        self.dropped_measured = 0
        self.hop_counts = [0] * len(Direction)
        self.per_source: Optional[Dict[Coord, LatencyStats]] = (
            {} if track_per_source else None
        )
        #: Per-channel traversal counts, keyed (source tile, direction).
        #: Populated by the network only when tracking is requested
        #: (it costs a dict update per switch traversal).
        self.link_counts: Optional[Dict] = {} if track_links else None

    # Called by the network on every ejection.
    def record_delivery(self, pkt, cycle: int) -> None:
        self.delivered_total += 1
        if pkt.measured:
            self.delivered_measured += 1
            latency = cycle - pkt.inject_cycle
            self.measured.add(latency)
            if self.per_source is not None:
                stats = self.per_source.get(pkt.src)
                if stats is None:
                    stats = LatencyStats()
                    self.per_source[pkt.src] = stats
                stats.add(latency)

    def record_injection(self, measured: bool) -> None:
        self.injected_total += 1
        if measured:
            self.injected_measured += 1

    # Called by the network when a transient link fault destroys a flit.
    def record_drop(self, pkt) -> None:
        self.dropped_total += 1
        if pkt.measured:
            self.dropped_measured += 1

    @property
    def resolved_measured(self) -> int:
        """Measured packets that left the network (delivered or dropped).

        The drain condition compares this against ``injected_measured``
        so that a lossy (transient-fault) run can still terminate.
        """
        return self.delivered_measured + self.dropped_measured

    def per_source_means(self) -> Dict[Coord, float]:
        """Per-tile mean latency (the Figure 8 distribution)."""
        if self.per_source is None:
            raise ValueError("run was not configured with track_per_source")
        return {src: stats.mean for src, stats in self.per_source.items()}

    def hop_count_for(self, direction: Direction) -> int:
        return self.hop_counts[int(direction)]

    def link_utilization(self, cycles: int) -> Dict:
        """Per-channel utilization in flits/cycle over ``cycles``.

        Requires ``track_links=True``; keys are ``(tile, direction)``.
        """
        if self.link_counts is None:
            raise ValueError("run was not configured with track_links")
        return {
            key: count / cycles for key, count in self.link_counts.items()
        }

    def hottest_links(self, n: int = 10):
        """The ``n`` most-traversed channels (bottleneck analysis)."""
        if self.link_counts is None:
            raise ValueError("run was not configured with track_links")
        ranked = sorted(
            self.link_counts.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:n]
