"""Runtime invariant audits for simulated networks.

These checks catch simulator bugs (broken flow control, lost packets,
stale bookkeeping) rather than modelling errors.  They are cheap enough
to run mid-simulation and are exercised throughout the test suite; a
library user embedding the simulator can call :func:`audit_network`
inside long campaigns as a tripwire.
"""

from __future__ import annotations

from typing import List

from repro.core.coords import Direction
from repro.sim.network import Network
from repro.sim.router import P_IDX, VCRouter
from repro.verify.turns import format_turn, is_legal_turn


def audit_network(net: Network) -> List[str]:
    """Return a list of invariant violations (empty when healthy).

    Checked invariants:

    * every bounded FIFO's occupancy is within its depth;
    * each router's ``occ`` equals the sum of its queue lengths;
    * the network's global occupancy equals buffered plus in-flight
      packets;
    * pipelined-channel credits never exceed the receiver depth and
      ``credits + occupancy + receiver backlog`` is conserved;
    * every buffered packet's cached route is a legal crossbar turn
      (the same :func:`~repro.verify.turns.is_legal_turn` predicate the
      static verifier proves exhaustively) targeting a wired output.
    """
    problems: List[str] = []
    buffered = 0
    matrix = net.matrix
    for coord, router in net.routers.items():
        router_total = 0
        for in_idx in range(len(router.in_q)):
            lanes = router.in_q[in_idx]
            if lanes is None:
                continue
            lane_list = lanes if isinstance(lanes, tuple) else (lanes,)
            for lane in lane_list:
                router_total += len(lane)
                depth = getattr(lane, "depth", None)
                if depth is not None and len(lane) > depth:
                    problems.append(
                        f"{tuple(coord)}: input {in_idx} holds "
                        f"{len(lane)} > depth {depth}"
                    )
                for pkt in lane:
                    in_dir = Direction(in_idx)
                    out_dir = Direction(pkt.out_dir)
                    if not is_legal_turn(matrix, in_dir, out_dir):
                        problems.append(
                            f"packet #{pkt.pid} holds illegal turn "
                            f"{format_turn(coord, in_dir, out_dir)}"
                        )
                    if (
                        pkt.out_dir != P_IDX
                        and router.out_target[pkt.out_dir] is None
                    ):
                        problems.append(
                            f"{tuple(coord)}: packet #{pkt.pid} routed to "
                            f"unwired output {pkt.out_dir}"
                        )
        if router.occ != router_total:
            problems.append(
                f"{tuple(coord)}: occ={router.occ} but queues hold "
                f"{router_total}"
            )
        buffered += router_total
    in_flight = sum(
        link.channel.occupancy for link in net._channels
    )
    if buffered + in_flight != net.occupancy:
        problems.append(
            f"network occupancy {net.occupancy} != buffered {buffered} "
            f"+ in-flight {in_flight}"
        )
    depth = net.config.fifo_depth
    for link in net._channels:
        for credit in link.channel.credits:
            if credit < 0:
                problems.append("negative channel credit")
            if credit > depth:
                problems.append(
                    f"channel credit {credit} exceeds depth {depth}"
                )
    return problems


def assert_healthy(net: Network) -> None:
    """Raise ``AssertionError`` with details if any invariant fails."""
    problems = audit_network(net)
    if problems:
        raise AssertionError(
            "network invariant violations:\n  " + "\n  ".join(problems)
        )


def is_vc_network(net: Network) -> bool:
    """True when the network is built from VC routers."""
    return any(isinstance(r, VCRouter) for r in net.routers.values())
