"""Injection-trace capture and replay (the trace-driven fast path).

The execution-driven manycore model (:mod:`repro.manycore`) is the last
workload class pinned to the reference engine: its per-core injection
decisions come from a closed-loop cache/memory model that cannot lower
to flat arrays.  What *can* lower is the traffic it produces.  This
module records the per-core injection stream of one reference run into
a compact, deterministic on-disk trace, and replays it as a registered
traffic pattern (``trace_replay:<path>``) that the compiled engine —
serial, batched, and the native C kernels — steps natively.

File format (version 1, little-endian throughout)::

    offset 0   8 bytes   magic ``b"NOCTRACE"``
    offset 8   u32       format version
    offset 12  u32       header length in bytes
    offset 16  header    canonical JSON (sorted keys, no whitespace)
    ...        payload   ``records`` packed ``(cycle, src, dest, size)``
                         int32 quadruples

The header carries the replay geometry (``topology``, ``width``,
``height``, ``options``), the measurement ``duration``, the record
count, a sha256 over the payload bytes, and a free-form ``provenance``
dict naming the producing run.  Node ids are row-major (``y * width +
x``).  Everything is content-derived — no timestamps, no hostnames — so
re-capturing the same run yields byte-identical files (diff-stable).

Replay semantics: a replay spec uses ``rate=1.0`` and ``warmup=0``, so
the pattern's per-source call index equals the cycle number and every
engine consumes the timing stream identically; per-source record cycles
are strictly increasing, so each call matches at most one record.  The
destination RNG stream is never touched.  Batched execution additionally
requires ``rate == 1.0`` (the C kernel indexes the trace by the cycle
counter); :func:`repro.sim.fastsim.batching_problems` reports a
``trace-rate`` diagnostic otherwise.

Truncated, corrupt, or mismatched files are rejected with a
:class:`TraceError` naming the file and the first violated invariant.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import sys
from array import array
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.coords import Coord
from repro.core.params import NetworkConfig
from repro.errors import ConfigError

__all__ = [
    "TRACE_MAGIC",
    "TRACE_VERSION",
    "Trace",
    "TraceError",
    "TraceRecorder",
    "load_trace",
    "replay_pattern",
    "replay_spec",
    "write_trace",
]

TRACE_MAGIC = b"NOCTRACE"
TRACE_VERSION = 1

_FIXED = struct.Struct("<II")  # version, header length
_REC_BYTES = 16  # four little-endian int32s per record


class TraceError(ConfigError):
    """A trace file is missing, truncated, corrupt, or mismatched."""


def _le(values: array) -> bytes:
    """``values`` as little-endian bytes regardless of host order."""
    if sys.byteorder != "little":
        values = array(values.typecode, values)
        values.byteswap()
    return values.tobytes()


def _from_le(raw: bytes) -> array:
    values = array("i")
    values.frombytes(raw)
    if sys.byteorder != "little":
        values.byteswap()
    return values


@dataclass
class Trace:
    """One captured injection stream plus its replay geometry.

    ``cycles`` / ``srcs`` / ``dests`` / ``sizes`` are parallel int32
    arrays sorted by ``(cycle, src)`` with strictly increasing cycles
    per source.  ``options`` are the ``NetworkConfig.from_name`` keyword
    overrides a replay network needs (``dor_order``, ``half``, FIFO
    depth, ...) — deliberately *excluding* ``edge_memory``: memory
    endpoints are remapped onto their adjacent edge tiles at capture
    time so the trace replays on a compilable fabric.
    """

    topology: str
    width: int
    height: int
    duration: int
    options: Dict[str, Any] = field(default_factory=dict)
    provenance: Dict[str, Any] = field(default_factory=dict)
    cycles: array = field(default_factory=lambda: array("i"))
    srcs: array = field(default_factory=lambda: array("i"))
    dests: array = field(default_factory=lambda: array("i"))
    sizes: array = field(default_factory=lambda: array("i"))
    #: ``(abspath, mtime_ns, size)`` stamped by :func:`load_trace`;
    #: ``None`` for traces born in memory.  Cache keys derive from it.
    source_key: Optional[Tuple[str, int, int]] = None
    _schedule: Optional[Tuple[array, array, array]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def records(self) -> int:
        return len(self.cycles)

    @property
    def nodes(self) -> int:
        return self.width * self.height

    def node_id(self, coord: Coord) -> int:
        return coord.y * self.width + coord.x

    def coord_of(self, idx: int) -> Coord:
        return Coord(idx % self.width, idx // self.width)

    def header(self, payload_sha256: str) -> Dict[str, Any]:
        return {
            "topology": self.topology,
            "width": self.width,
            "height": self.height,
            "duration": self.duration,
            "records": self.records,
            "options": dict(self.options),
            "provenance": dict(self.provenance),
            "payload_sha256": payload_sha256,
        }

    def payload(self) -> bytes:
        flat = array("i", bytes(4 * 4 * self.records))
        flat[0::4] = self.cycles
        flat[1::4] = self.srcs
        flat[2::4] = self.dests
        flat[3::4] = self.sizes
        return _le(flat)

    def to_bytes(self) -> bytes:
        payload = self.payload()
        digest = hashlib.sha256(payload).hexdigest()
        header = json.dumps(
            self.header(digest), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return (
            TRACE_MAGIC
            + _FIXED.pack(TRACE_VERSION, len(header))
            + header
            + payload
        )

    def write(self, path: str) -> str:
        """Write the trace to ``path`` atomically; returns ``path``."""
        blob = self.to_bytes()
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
        return path

    def check_config(self, config: NetworkConfig) -> None:
        """Reject replay on a network the trace was not captured for."""
        if getattr(config, "depth", 1) > 1:
            raise TraceError(
                "trace replay supports 2-D fabrics only "
                f"(config has depth={config.depth})"
            )
        if (config.width, config.height) != (self.width, self.height):
            raise TraceError(
                f"trace was captured on a {self.width}x{self.height} "
                f"array but the replay network is "
                f"{config.width}x{config.height}"
            )

    def schedule(self) -> Tuple[array, array, array]:
        """Per-source replay schedule ``(starts, cycles, dests)``.

        ``starts`` has ``nodes + 1`` entries; source ``s`` owns the
        half-open record range ``starts[s]:starts[s+1]`` of the
        source-grouped, cycle-sorted ``cycles``/``dests`` arrays.
        Memoized: replaying the same loaded trace N times builds it
        once.
        """
        if self._schedule is not None:
            return self._schedule
        n = self.nodes
        counts = [0] * (n + 1)
        for s in self.srcs:
            counts[s + 1] += 1
        begins = array("i", bytes(4 * (n + 1)))
        acc = 0
        for i in range(n + 1):
            acc += counts[i]
            begins[i] = acc
        cursor = list(begins[:n])
        out_cycles = array("i", bytes(4 * self.records))
        out_dests = array("i", bytes(4 * self.records))
        for k in range(self.records):
            s = self.srcs[k]
            at = cursor[s]
            cursor[s] = at + 1
            out_cycles[at] = self.cycles[k]
            out_dests[at] = self.dests[k]
        self._schedule = (begins, out_cycles, out_dests)
        return self._schedule

    def batch_table(
        self,
        model_nodes: Sequence[Coord],
        node_index: Mapping[Coord, int],
    ) -> array:
        """The flat int32 block the C kernel's trace mode consumes.

        Layout: ``n + 1`` per-source offsets (in pair units, over the
        *model's* node order) followed by the source-grouped
        ``(cycle, dest_model_index)`` pairs.  The kernel keeps one
        cursor per source, initialized to the offset entries.
        """
        n = len(model_nodes)
        if n != self.nodes:
            raise TraceError(
                f"compiled model has {n} nodes but the trace covers "
                f"{self.nodes}"
            )
        begins, cycles, dests = self.schedule()
        # Map trace row-major source ids onto model node indices.
        order = sorted(
            range(n), key=lambda s: node_index[self.coord_of(s)]
        )
        table = array(
            "i", bytes(4 * (n + 1 + 2 * self.records))
        )
        pair = 0
        for rank, s in enumerate(order):
            table[rank] = pair
            for at in range(begins[s], begins[s + 1]):
                base = n + 1 + 2 * pair
                table[base] = cycles[at]
                table[base + 1] = node_index[self.coord_of(dests[at])]
                pair += 1
        table[n] = pair
        return table


def write_trace(trace: Trace, path: str) -> str:
    """Module-level alias for :meth:`Trace.write`."""
    return trace.write(path)


def _fail(path: str, why: str) -> "TraceError":
    return TraceError(f"trace file {path!r}: {why}")


def _parse(path: str, blob: bytes) -> Trace:
    if len(blob) < len(TRACE_MAGIC) + _FIXED.size:
        raise _fail(
            path,
            f"truncated: {len(blob)} bytes is shorter than the "
            f"fixed header",
        )
    if blob[: len(TRACE_MAGIC)] != TRACE_MAGIC:
        raise _fail(
            path,
            f"bad magic {blob[:len(TRACE_MAGIC)]!r} (expected "
            f"{TRACE_MAGIC!r}); not a trace file",
        )
    version, hlen = _FIXED.unpack_from(blob, len(TRACE_MAGIC))
    if version != TRACE_VERSION:
        raise _fail(
            path,
            f"unsupported format version {version} (this build reads "
            f"version {TRACE_VERSION})",
        )
    body = len(TRACE_MAGIC) + _FIXED.size
    if body + hlen > len(blob):
        raise _fail(
            path,
            f"truncated: header claims {hlen} bytes but only "
            f"{len(blob) - body} remain",
        )
    try:
        header = json.loads(blob[body: body + hlen].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _fail(path, f"corrupt header: {exc}") from exc
    if not isinstance(header, dict):
        raise _fail(path, "corrupt header: not a JSON object")
    required = (
        "topology", "width", "height", "duration", "records",
        "payload_sha256",
    )
    for key in required:
        if key not in header:
            raise _fail(path, f"header is missing {key!r}")
    width = header["width"]
    height = header["height"]
    duration = header["duration"]
    records = header["records"]
    for name, value in (
        ("width", width), ("height", height),
        ("duration", duration), ("records", records),
    ):
        if not isinstance(value, int) or value < 0:
            raise _fail(
                path, f"header field {name!r} must be a non-negative "
                f"integer, got {value!r}"
            )
    if width == 0 or height == 0:
        raise _fail(path, "header declares an empty array")
    payload = blob[body + hlen:]
    if len(payload) != records * _REC_BYTES:
        raise _fail(
            path,
            f"truncated payload: {records} records need "
            f"{records * _REC_BYTES} bytes, found {len(payload)}",
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["payload_sha256"]:
        raise _fail(
            path,
            f"payload sha256 mismatch (header {header['payload_sha256']}"
            f", actual {digest}); the file is corrupt",
        )
    flat = _from_le(payload)
    trace = Trace(
        topology=str(header["topology"]),
        width=width,
        height=height,
        duration=duration,
        options=dict(header.get("options", {})),
        provenance=dict(header.get("provenance", {})),
        cycles=flat[0::4],
        srcs=flat[1::4],
        dests=flat[2::4],
        sizes=flat[3::4],
    )
    n = trace.nodes
    last: Dict[int, int] = {}
    prev_key = (-1, -1)
    for k in range(records):
        cyc, s, d, size = (
            trace.cycles[k], trace.srcs[k], trace.dests[k],
            trace.sizes[k],
        )
        if not 0 <= s < n or not 0 <= d < n:
            raise _fail(
                path,
                f"record {k} endpoints ({s} -> {d}) fall outside the "
                f"{width}x{height} array",
            )
        if s == d:
            raise _fail(path, f"record {k} is self-addressed (node {s})")
        if size < 1:
            raise _fail(path, f"record {k} has non-positive size {size}")
        if not 0 <= cyc < duration:
            raise _fail(
                path,
                f"record {k} cycle {cyc} falls outside the declared "
                f"duration {duration}",
            )
        if (cyc, s) < prev_key:
            raise _fail(
                path, f"record {k} breaks the (cycle, src) sort order"
            )
        prev_key = (cyc, s)
        if s in last and cyc <= last[s]:
            raise _fail(
                path,
                f"record {k}: source {s} injects twice at cycle {cyc}",
            )
        last[s] = cyc
    return trace


#: abspath -> ((mtime_ns, size), Trace); invalidated when the file's
#: stat signature changes, so an overwritten trace is re-read.
_TRACE_CACHE: Dict[str, Tuple[Tuple[int, int], Trace]] = {}


def load_trace(path: str) -> Trace:
    """Read and fully validate a trace file (cached per stat signature)."""
    full = os.path.abspath(path)
    try:
        st = os.stat(full)
    except OSError as exc:
        raise _fail(path, f"cannot stat: {exc}") from exc
    sig = (st.st_mtime_ns, st.st_size)
    cached = _TRACE_CACHE.get(full)
    if cached is not None and cached[0] == sig:
        return cached[1]
    try:
        with open(full, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise _fail(path, f"cannot read: {exc}") from exc
    trace = _parse(path, blob)
    trace.source_key = (full, st.st_mtime_ns, st.st_size)
    _TRACE_CACHE[full] = (sig, trace)
    return trace


def replay_pattern(config: NetworkConfig, arg: Optional[str]) -> Any:
    """The ``trace_replay:<path>`` pattern factory body.

    Stateful by construction: each built pattern keeps a per-source
    call counter and record cursor, so one pattern instance replays the
    trace exactly once.  With ``rate=1.0`` and ``warmup=0`` the call
    index equals the cycle number on every engine.
    """
    if not arg:
        raise TraceError(
            "the trace_replay pattern needs a file argument: use "
            "pattern='trace_replay:<path>'"
        )
    trace = load_trace(arg)
    trace.check_config(config)
    width = trace.width
    begins, cycles, dests = trace.schedule()
    n = trace.nodes
    calls = array("i", bytes(4 * n))
    cursor = array("i", begins[:n])
    coords = [trace.coord_of(i) for i in range(n)]

    def replay(src: Coord, rng: Any) -> Optional[Coord]:
        s = src.y * width + src.x
        call = calls[s]
        calls[s] = call + 1
        at = cursor[s]
        if at < begins[s + 1] and cycles[at] == call:
            cursor[s] = at + 1
            return coords[dests[at]]
        return None

    return replay


def replay_spec(
    path: str,
    *,
    engine: str = "compiled",
    seed: int = 1,
    drain_limit: Optional[int] = None,
) -> Any:
    """A :class:`~repro.core.spec.NetworkSpec` replaying ``path``.

    Geometry, topology, and network options come from the trace header;
    the measurement window covers the full capture (``warmup=0``,
    ``measure=duration``) at ``rate=1.0`` so the replay pattern's call
    index tracks the cycle counter on every engine.
    """
    from repro.core.spec import NetworkSpec

    trace = load_trace(path)
    if drain_limit is None:
        drain_limit = max(2000, 8 * (trace.width + trace.height))
    return NetworkSpec.for_network(
        trace.topology,
        trace.width,
        trace.height,
        pattern=f"trace_replay:{path}",
        rate=1.0,
        warmup=0,
        measure=trace.duration,
        drain_limit=drain_limit,
        seed=seed,
        engine=engine,
        **dict(trace.options),
    )


class TraceRecorder:
    """Collects injection events from a manycore run into traces.

    The machine calls :meth:`record` once per accepted injection (cycle
    order); :meth:`finalize` turns each named stream into a validated
    :class:`Trace`.  Finalization remaps the off-array memory endpoints
    (``y == -1`` / ``y == height``) onto their adjacent edge tiles,
    drops events the remap makes self-addressed, and resolves the
    resulting same-cycle collisions by deterministically spilling the
    later event to the next free cycle — per-source cycles end up
    strictly increasing, as the format requires.
    """

    def __init__(self) -> None:
        self._events: Dict[str, List[Tuple[int, Coord, Coord]]] = {}

    def record(
        self, stream: str, cycle: int, src: Coord, dest: Coord
    ) -> None:
        self._events.setdefault(stream, []).append((cycle, src, dest))

    def finalize(
        self,
        *,
        width: int,
        height: int,
        duration: int,
        networks: Mapping[str, Tuple[str, Mapping[str, Any]]],
        provenance: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Trace]:
        """Build one :class:`Trace` per stream named in ``networks``.

        ``networks`` maps the stream name to its replay ``(topology,
        options)``; streams with no recorded events yield empty traces.
        """

        def clamp(coord: Coord) -> Coord:
            if coord.y < 0:
                return Coord(coord.x, 0)
            if coord.y >= height:
                return Coord(coord.x, height - 1)
            return coord

        out: Dict[str, Trace] = {}
        for stream, (topology, options) in networks.items():
            events = self._events.get(stream, [])
            last: Dict[int, int] = {}
            rows: List[Tuple[int, int, int]] = []
            top = duration
            for cycle, src, dest in events:
                s_coord = clamp(src)
                d_coord = clamp(dest)
                if s_coord == d_coord:
                    continue
                s = s_coord.y * width + s_coord.x
                d = d_coord.y * width + d_coord.x
                spilled = max(cycle, last.get(s, -1) + 1)
                last[s] = spilled
                rows.append((spilled, s, d))
                if spilled >= top:
                    top = spilled + 1
            rows.sort(key=lambda r: (r[0], r[1]))
            out[stream] = Trace(
                topology=topology,
                width=width,
                height=height,
                duration=top,
                options=dict(options),
                provenance=dict(provenance or {}),
                cycles=array("i", (r[0] for r in rows)),
                srcs=array("i", (r[1] for r in rows)),
                dests=array("i", (r[2] for r in rows)),
                sizes=array("i", bytes(0)) if not rows else array(
                    "i", [1] * len(rows)
                ),
            )
        return out
