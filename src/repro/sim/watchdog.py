"""Forward-progress watchdog: stall detection and diagnostic snapshots.

The network's step loop counts two windows while packets are in flight:

* **stall** — cycles with no switch traversal and no channel arrival
  anywhere (a classic buffer-cycle deadlock);
* **starvation** — cycles with no ejection anywhere, even though packets
  are moving (a livelock: traffic circling without delivering).

When either window exceeds its threshold the network raises a
:class:`~repro.errors.DeadlockError` carrying a
:class:`DeadlockSnapshot`, which attributes the stall to specific
routers: per-router buffered occupancy, the head-of-line packet on every
input with the reason its move is blocked, plus the invariant audit from
:func:`~repro.sim.validate.audit_network` (so a flow-control bug is
distinguishable from a genuine routing deadlock).

The compiled engine (:mod:`repro.sim.fastsim`) runs the same two
counters as cheap in-loop integers and only pays for diagnostics on
trip: it rebuilds the reference object model, replays every buffered
packet into it, and calls :func:`capture_snapshot` on the
reconstruction — so a compiled-engine ``DeadlockError`` carries a
snapshot identical, field for field, to the reference engine's.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

#: Consecutive all-idle cycles with packets in flight before the watchdog
#: declares a deadlock.  Correct healthy routing never trips this.
DEFAULT_STALL_WINDOW = 1000


@dataclasses.dataclass(frozen=True)
class WatchdogConfig:
    """Thresholds for the forward-progress watchdog.

    ``stall_window`` counts consecutive cycles with zero movement while
    packets are in flight.  ``starvation_window`` (optional; disabled
    when ``None``) counts consecutive cycles with zero ejections while
    packets are in flight — it catches livelocks that the stall counter
    misses because packets keep moving.  Endpoint-driven simulations
    (the manycore layer) should keep starvation detection off or
    generous: long legitimate ejection gaps are possible under
    endpoint backpressure.
    """

    stall_window: int = DEFAULT_STALL_WINDOW
    starvation_window: Optional[int] = None

    def __post_init__(self) -> None:
        if self.stall_window < 1:
            raise ValueError("stall_window must be >= 1")
        if self.starvation_window is not None and self.starvation_window < 1:
            raise ValueError("starvation_window must be >= 1")


@dataclasses.dataclass(frozen=True)
class BlockedHead:
    """A head-of-line packet that cannot move, and why."""

    input_dir: int
    pid: int
    dest: Tuple[int, int]
    out_dir: int
    reason: str


@dataclasses.dataclass(frozen=True)
class StalledRouter:
    """One router holding traffic at watchdog-trip time."""

    coord: Tuple[int, int]
    buffered: int
    heads: Tuple[BlockedHead, ...]


@dataclasses.dataclass(frozen=True)
class DeadlockSnapshot:
    """Everything needed to diagnose a watchdog trip offline."""

    kind: str  # "stall" or "starvation"
    cycle: int
    occupancy: int
    window: int
    stalled_routers: Tuple[StalledRouter, ...]
    audit_problems: Tuple[str, ...]

    def summary(self, max_routers: int = 5) -> str:
        names = ", ".join(
            str(r.coord) for r in self.stalled_routers[:max_routers]
        )
        extra = (
            f" (+{len(self.stalled_routers) - max_routers} more)"
            if len(self.stalled_routers) > max_routers
            else ""
        )
        text = (
            f"{self.kind} at cycle {self.cycle}: no progress for "
            f"{self.window} cycles with {self.occupancy} packets in "
            f"flight; stalled routers: {names}{extra}"
        )
        if self.audit_problems:
            text += f"; audit: {'; '.join(self.audit_problems)}"
        return text


def _blocking_reason(router, pkt) -> str:
    """Why a head-of-line packet's requested output cannot accept it."""
    from repro.sim.router import P_IDX, PipelinedLink, Sink

    target = router.out_target[pkt.out_dir]
    if target is None:
        return "routed to unwired output"
    if isinstance(target, Sink):
        return "ready" if target.ready() else "sink backpressure"
    if isinstance(target, PipelinedLink):
        lane = getattr(pkt, "out_vc", 0)
        return (
            "ready"
            if target.channel.can_send(lane)
            else "no channel credit"
        )
    down, idx = target
    lanes = down.in_q[idx]
    if isinstance(lanes, tuple):
        lanes = (lanes[0] if idx == P_IDX else lanes[pkt.out_vc],)
    else:
        lanes = (lanes,)
    fifo = lanes[0]
    depth = getattr(fifo, "depth", None)
    if depth is not None and len(fifo) >= depth:
        return f"downstream FIFO full at {tuple(down.coord)}"
    return "ready (lost arbitration)"


def capture_snapshot(net, kind: str, window: int) -> DeadlockSnapshot:
    """Build a :class:`DeadlockSnapshot` from a live network."""
    from repro.sim.validate import audit_network

    stalled: List[StalledRouter] = []
    for coord, router in net.routers.items():
        if not router.occ:
            continue
        heads: List[BlockedHead] = []
        for in_idx, lanes in enumerate(router.in_q):
            if lanes is None:
                continue
            lane_list = lanes if isinstance(lanes, tuple) else (lanes,)
            for lane in lane_list:
                if not lane:
                    continue
                pkt = lane[0]
                heads.append(
                    BlockedHead(
                        input_dir=in_idx,
                        pid=pkt.pid,
                        dest=tuple(pkt.dest),
                        out_dir=pkt.out_dir,
                        reason=_blocking_reason(router, pkt),
                    )
                )
        stalled.append(
            StalledRouter(
                coord=tuple(coord),
                buffered=router.occ,
                heads=tuple(heads),
            )
        )
    stalled.sort(key=lambda r: (-r.buffered, r.coord))
    return DeadlockSnapshot(
        kind=kind,
        cycle=net.cycle,
        occupancy=net.occupancy,
        window=window,
        stalled_routers=tuple(stalled),
        audit_problems=tuple(audit_network(net)),
    )
