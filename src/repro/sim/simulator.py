"""Open-loop synthetic-traffic simulation harness.

Implements the standard three-phase measurement methodology behind the
paper's load–latency curves (Figures 6 and 9): a warmup window brings the
network to steady state, packets injected during the measurement window are
tagged, and the run then drains (while continuing to inject untagged
background traffic, so tail packets still see a loaded network) until every
tagged packet is delivered or a drain limit is hit.

Injection is Bernoulli per tile per cycle ("packets are randomly injected
based on a fixed probability", Section 4.6), with an unbounded source
queue — the open-loop convention, under which latency includes source
queueing and therefore diverges at saturation.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.core.coords import Coord
from repro.core.params import NetworkConfig
from repro.core.registry import ENGINES, register_engine
from repro.core.spec import (
    NetworkSpec,
    build_network,
    build_pattern,
    build_routing,
)
from repro.errors import SimulationError, SimulationTimeout
from repro.sim.faults import FaultSchedule
from repro.sim.metrics import RunMetrics
from repro.sim.rng import derive_rng
from repro.sim.watchdog import WatchdogConfig

#: How often (in cycles) the wall-clock limit is polled; keeps the
#: common no-limit path free of ``time.monotonic`` calls.
_WALL_CHECK_EVERY = 256


@dataclasses.dataclass
class RunResult:
    """Summary of one (design point, pattern, rate) simulation."""

    config_name: str
    pattern: str
    offered_load: float
    accepted_throughput: float
    avg_latency: float
    stddev_latency: float
    max_latency: float
    delivered_measured: int
    injected_measured: int
    drained: bool
    measure_cycles: int
    avg_hops: float
    #: Cycles actually simulated (warmup + measurement + drain).
    total_cycles: int = 0
    #: Measured packets destroyed by transient link faults.
    dropped_measured: int = 0
    metrics: Optional[RunMetrics] = dataclasses.field(
        default=None, repr=False
    )
    #: The registered engine that actually produced this result (a
    #: compiled run that fell back reports ``"reference"``).  Excluded
    #: from cross-engine fingerprints — it is provenance, not a metric.
    engine: str = "reference"

    @property
    def saturated(self) -> bool:
        """Heuristic: the run failed to drain its tagged packets."""
        return not self.drained


def run_synthetic(
    config: Union[NetworkConfig, NetworkSpec],
    pattern: Optional[str] = None,
    rate: Optional[float] = None,
    *,
    engine: Optional[str] = None,
    **kwargs,
) -> RunResult:
    """Simulate one injection rate and return its measured statistics.

    ``rate`` is the per-tile injection probability per cycle (the paper's
    "injection rate" axis, as a fraction of one flit/tile/cycle).

    ``config`` may also be a :class:`~repro.core.spec.NetworkSpec`, in
    which case ``pattern``, ``rate``, and the fault/watchdog options
    default from the spec and the network is materialized through the
    component registries (:func:`~repro.core.spec.build_run` is the
    declarative wrapper over this path).

    ``engine`` names a registered simulation engine
    (:data:`repro.core.registry.ENGINES`): ``"reference"`` (default) is
    the object-per-flit :class:`~repro.sim.network.Network`;
    ``"compiled"`` is the flat-array engine of
    :mod:`repro.sim.fastsim`, which produces bit-identical metrics —
    including under fault schedules — and transparently falls back to
    the reference engine for runs it cannot compile (plugin components,
    multi-cycle channels, ``audit_every`` tripwires).
    When ``engine`` is ``None`` a spec's ``engine`` field applies.

    Measurement keywords (``warmup``, ``measure``, ``drain_limit``,
    ``seed``, ``track_per_source``, ``keep_samples``, ``track_links``)
    and robustness knobs (``faults``, ``watchdog``, ``audit_every``,
    ``max_cycles``, ``max_wall_seconds``) are forwarded to the engine;
    see :func:`_run_reference` for their semantics.
    """
    if engine is None and isinstance(config, NetworkSpec):
        engine = config.engine
    name = (engine or "reference").strip().lower()
    runner = ENGINES.get(name)
    return runner(config, pattern, rate, **kwargs)


@register_engine(
    "reference",
    description="object-per-flit cycle-accurate Network (sim.network)",
)
def _run_reference(
    config: Union[NetworkConfig, NetworkSpec],
    pattern: Optional[str] = None,
    rate: Optional[float] = None,
    *,
    warmup: int = 500,
    measure: int = 1000,
    drain_limit: int = 3000,
    seed: int = 1,
    track_per_source: bool = False,
    keep_samples: bool = False,
    track_links: bool = False,
    faults: Optional[FaultSchedule] = None,
    watchdog: Optional[WatchdogConfig] = None,
    audit_every: Optional[int] = None,
    max_cycles: Optional[int] = None,
    max_wall_seconds: Optional[float] = None,
) -> RunResult:
    """The reference engine: one open-loop run on the object network.

    Robustness knobs (all off by default, so healthy runs are
    bit-identical to earlier versions):

    * ``faults`` — a :class:`~repro.sim.faults.FaultSchedule`.  Dead
      routers stop injecting, and destinations a source can no longer
      reach (reported by the routing's ``partitioned_pairs``) are
      skipped at injection instead of livelocking the run.  The
      healthy-path RNG streams are shared with the fault-free run: for
      link-fault schedules every injected packet keeps the same
      (src, dest, cycle) it would have had without faults, and a
      zero-fault schedule reproduces the fault-free run bit for bit.
    * ``watchdog`` — forward-progress thresholds for the step loop.
    * ``audit_every`` — run :func:`~repro.sim.validate.audit_network`
      every N cycles as an invariant tripwire; violations raise
      :class:`~repro.errors.SimulationError`.
    * ``max_cycles`` / ``max_wall_seconds`` — per-run budgets; on
      overrun the run raises :class:`~repro.errors.SimulationTimeout`
      (hardened campaigns convert that into a retry or a failed row).
    """
    metrics = RunMetrics(
        track_per_source=track_per_source,
        keep_samples=keep_samples,
        track_links=track_links,
    )
    if isinstance(config, NetworkSpec):
        spec = config
        if pattern is None:
            pattern = spec.pattern
        if rate is None:
            rate = spec.rate
        net = build_network(
            spec, metrics=metrics, faults=faults, watchdog=watchdog
        )
        config = net.config
        faults = net.faults
    else:
        if pattern is None or rate is None:
            raise TypeError(
                "run_synthetic(config, ...) requires explicit pattern "
                "and rate (only NetworkSpec carries defaults)"
            )
        net = build_network(
            config, metrics=metrics, faults=faults, watchdog=watchdog
        )
    dest_fn = build_pattern(pattern, config)
    timing_rng = derive_rng(seed, "timing")  # rng: shared
    dest_rng = derive_rng(seed, "dest")  # rng: shared
    sources = net.topology.nodes
    if faults is not None and faults.has_faults:
        dead = faults.dead_routers
        reachable = getattr(net.routing, "reachable", None)
        sources = [s for s in sources if s not in dead]

        healthy_fn = dest_fn

        def dest_fn(src, rng):  # noqa: F811 - degraded wrapper
            dest = healthy_fn(src, rng)
            if dest is None:
                return None
            if reachable is not None and not reachable(src, dest):
                return None
            return dest

    cycles_run = 0
    deadline = (
        time.monotonic() + max_wall_seconds  # det: allow - wall budget
        if max_wall_seconds is not None
        else None
    )

    def tick() -> None:
        """One simulated cycle plus tripwires and budget checks."""
        nonlocal cycles_run
        net.step()
        cycles_run += 1
        if audit_every is not None and cycles_run % audit_every == 0:
            from repro.sim.validate import audit_network

            problems = audit_network(net)
            if problems:
                raise SimulationError(
                    f"invariant audit failed at cycle {net.cycle}:\n  "
                    + "\n  ".join(problems)
                )
        if max_cycles is not None and cycles_run >= max_cycles:
            raise SimulationTimeout(
                f"run exceeded its {max_cycles}-cycle budget "
                f"({net.occupancy} packets still in flight)"
            )
        if deadline is not None and cycles_run % _WALL_CHECK_EVERY == 0:
            if time.monotonic() > deadline:  # det: allow - wall budget
                raise SimulationTimeout(
                    f"run exceeded its {max_wall_seconds:.1f}s wall-clock "
                    f"limit at cycle {net.cycle}"
                )

    def inject_round(measured: bool) -> None:
        for src in sources:
            if timing_rng.random() < rate:
                dest = dest_fn(src, dest_rng)
                if dest is not None:
                    net.inject(src, dest, measured=measured)

    for _ in range(warmup):
        inject_round(False)
        tick()

    delivered_before = metrics.delivered_total
    for _ in range(measure):
        inject_round(True)
        tick()
    delivered_during = metrics.delivered_total - delivered_before

    # Dropped measured packets count as resolved, so lossy
    # (transient-fault) runs can still terminate.
    drained = metrics.resolved_measured >= metrics.injected_measured
    remaining = drain_limit
    while not drained and remaining > 0:
        inject_round(False)
        tick()
        remaining -= 1
        drained = metrics.resolved_measured >= metrics.injected_measured

    stats = metrics.measured
    accepted = delivered_during / (len(sources) * measure)
    avg_hops = (
        sum(metrics.hop_counts) / metrics.delivered_total
        if metrics.delivered_total
        else float("nan")
    )
    return RunResult(
        config_name=config.name,
        pattern=pattern,
        offered_load=rate,
        accepted_throughput=accepted,
        avg_latency=stats.mean,
        stddev_latency=stats.stddev,
        max_latency=float(stats.max) if stats.max is not None else float("nan"),
        delivered_measured=metrics.delivered_measured,
        injected_measured=metrics.injected_measured,
        drained=drained,
        measure_cycles=measure,
        avg_hops=avg_hops,
        total_cycles=cycles_run,
        dropped_measured=metrics.dropped_measured,
        metrics=metrics,
    )


@register_engine(
    "compiled",
    description=(
        "flat structure-of-arrays engine (sim.fastsim) with compiled "
        "fault schedules; lowers any registered topology through the "
        "port-graph IR, falling back to reference only for "
        "multi-cycle links and audit tripwires"
    ),
)
def _compiled_engine(
    config: Union[NetworkConfig, NetworkSpec],
    pattern: Optional[str] = None,
    rate: Optional[float] = None,
    **kwargs,
) -> RunResult:
    # Imported lazily: fastsim imports this module for RunResult and
    # _run_reference, so a top-level import would be circular.
    from repro.sim.fastsim import run_compiled

    return run_compiled(config, pattern, rate, **kwargs)


def sweep_injection_rates(
    config: NetworkConfig,
    pattern: str,
    rates: Sequence[float],
    *,
    warmup: int = 500,
    measure: int = 1000,
    drain_limit: int = 3000,
    seed: int = 1,
    stop_when_saturated: bool = False,
    **kwargs,
) -> List[RunResult]:
    """A load–latency curve: one :class:`RunResult` per injection rate.

    ``stop_when_saturated`` aborts the sweep after the first undrained
    point, which saves time on steep post-saturation regions.  Extra
    keyword arguments (``faults``, ``watchdog``, budgets, ...) pass
    through to :func:`run_synthetic`.
    """
    results: List[RunResult] = []
    for rate in rates:
        result = run_synthetic(
            config,
            pattern,
            rate,
            warmup=warmup,
            measure=measure,
            drain_limit=drain_limit,
            seed=seed,
            **kwargs,
        )
        results.append(result)
        if stop_when_saturated and result.saturated:
            break
    return results


def multi_seed_run(
    config: NetworkConfig,
    pattern: str,
    rate: float,
    *,
    seeds: Sequence[int] = (1, 2, 3),
    **kwargs,
) -> Dict[str, float]:
    """Mean and spread of latency/throughput across independent seeds.

    Useful for judging whether a small difference between two design
    points exceeds run-to-run noise.
    """
    results = [
        run_synthetic(config, pattern, rate, seed=seed, **kwargs)
        for seed in seeds
    ]
    lats = [r.avg_latency for r in results]
    accs = [r.accepted_throughput for r in results]
    n = len(results)
    lat_mean = sum(lats) / n
    acc_mean = sum(accs) / n
    return {
        "latency_mean": lat_mean,
        "latency_spread": max(lats) - min(lats),
        "throughput_mean": acc_mean,
        "throughput_spread": max(accs) - min(accs),
        "seeds": n,
    }


def zero_load_latency(
    config: NetworkConfig,
    pattern: str = "uniform_random",
    *,
    samples: int = 2000,
    seed: int = 7,
) -> float:
    """Analytic zero-load latency: mean hop count under a pattern.

    At one cycle per hop with empty buffers, a packet's latency equals its
    hop count, so the mean routed path length *is* the zero-load latency.
    Sampled (not exhaustive) for tractability on large arrays.
    """
    routing = build_routing(config)
    dest_fn = build_pattern(pattern, config)
    rng = derive_rng(seed, "zero-load")
    nodes = [
        Coord(x, y)
        for y in range(config.height)
        for x in range(config.width)
    ]
    total = 0
    count = 0
    while count < samples:
        src = nodes[rng.randrange(len(nodes))]
        dest = dest_fn(src, rng)
        if dest is None:
            continue
        total += routing.hop_count(src, dest)
        count += 1
    return total / samples


def average_hops_by_direction(
    config: NetworkConfig,
    pattern: str = "uniform_random",
    *,
    samples: int = 2000,
    seed: int = 7,
) -> Dict[int, float]:
    """Mean traversals per packet for each direction (energy modelling)."""
    routing = build_routing(config)
    dest_fn = build_pattern(pattern, config)
    rng = derive_rng(seed, "dir-hops")
    nodes = [
        Coord(x, y)
        for y in range(config.height)
        for x in range(config.width)
    ]
    counts: Dict[int, int] = {}
    count = 0
    while count < samples:
        src = nodes[rng.randrange(len(nodes))]
        dest = dest_fn(src, rng)
        if dest is None:
            continue
        for _node, out in routing.compute_path(src, dest):
            counts[int(out)] = counts.get(int(out), 0) + 1
        count += 1
    return {d: c / samples for d, c in counts.items()}
