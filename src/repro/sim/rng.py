"""Deterministic random-number utilities for the simulator.

All stochastic components (traffic generators, injectors) draw from a
:class:`random.Random` seeded per run, so every experiment is exactly
reproducible from its seed.
"""

from __future__ import annotations

import random


def make_rng(seed: int) -> random.Random:
    """A fresh, seeded RNG stream.

    A distinct stream per purpose (injection timing vs. destination choice)
    keeps results stable when one consumer changes its draw count.
    """
    return random.Random(seed)


def derive_rng(seed: int, stream: str) -> random.Random:
    """A named sub-stream derived deterministically from ``seed``."""
    return random.Random(f"{seed}:{stream}")
