"""Synthetic traffic patterns (paper Sections 4.1 and 4.5).

Each pattern is a function ``(src, rng) -> dest | None`` returning the
destination for a packet injected at ``src``; ``None`` means the tile does
not inject under this pattern (e.g. the diagonal under transpose).

Patterns used by the paper:

* ``uniform_random`` / ``tile_to_tile`` — all-to-all uniform random.
* ``bit_complement`` — destination mirrors both coordinates.
* ``transpose`` — ``(x, y) -> (y, x)`` (square arrays).
* ``tornado`` — half-way-around offset in each dimension, the classic
  adversarial pattern for rings.
* ``tile_to_memory`` — uniform random over the memory endpoints on the
  northern and southern edges (the cellular-manycore pattern; requires an
  ``edge_memory`` config).

Extensions beyond the paper, used by ablation benches:

* ``hotspot`` — a fraction of traffic targets one tile.
* ``neighbor`` — uniform over the four mesh neighbours.

Every pattern registers itself in
:data:`repro.core.registry.PATTERNS` as a factory ``(config) ->
PatternFn``; :func:`make_pattern` is a thin name-normalizing lookup, so
out-of-tree patterns plug in with
:func:`~repro.core.registry.register_pattern`.
"""

from __future__ import annotations

import functools
import random
from typing import Callable, List, Optional

from repro.core.coords import Coord, Coord3
from repro.core.params import NetworkConfig
from repro.core.registry import register_pattern
from repro.errors import ConfigError

PatternFn = Callable[[Coord, random.Random], Optional[Coord]]


def _all_nodes(config: NetworkConfig) -> List[Coord]:
    # Layer-major for 3-D configs, matching the topology's node order
    # (the compiled engine's batched drivers depend on the match).
    if config.depth > 1:
        return [
            Coord3(x, y, z)
            for z in range(config.depth)
            for y in range(config.height)
            for x in range(config.width)
        ]
    return [
        Coord(x, y)
        for y in range(config.height)
        for x in range(config.width)
    ]


@register_pattern(
    "uniform_random",
    description="all-to-all uniform random",
    aliases=("uniform", "tile_to_tile"),
)
def make_uniform(config: NetworkConfig) -> PatternFn:
    nodes = _all_nodes(config)

    def uniform(src: Coord, rng: random.Random) -> Optional[Coord]:
        dest = nodes[rng.randrange(len(nodes))]
        while dest == src:
            dest = nodes[rng.randrange(len(nodes))]
        return dest

    return uniform


@register_pattern(
    "bit_complement", description="destination mirrors both coordinates"
)
def make_bit_complement(config: NetworkConfig) -> PatternFn:
    width, height = config.width, config.height

    def complement(src: Coord, rng: random.Random) -> Optional[Coord]:
        dest = Coord(width - 1 - src.x, height - 1 - src.y)
        return None if dest == src else dest

    return complement


@register_pattern(
    "transpose", description="(x, y) -> (y, x); square arrays only"
)
def make_transpose(config: NetworkConfig) -> PatternFn:
    if config.width != config.height:
        raise ConfigError("transpose requires a square array")

    def transpose(src: Coord, rng: random.Random) -> Optional[Coord]:
        dest = Coord(src.y, src.x)
        return None if dest == src else dest

    return transpose


@register_pattern(
    "tornado",
    description="half-way-around offset in each dimension",
)
def make_tornado(config: NetworkConfig) -> PatternFn:
    width, height = config.width, config.height
    shift_x = (width + 1) // 2 - 1
    shift_y = (height + 1) // 2 - 1

    def tornado(src: Coord, rng: random.Random) -> Optional[Coord]:
        dest = Coord(
            (src.x + shift_x) % width, (src.y + shift_y) % height
        )
        return None if dest == src else dest

    return tornado


@register_pattern(
    "tile_to_memory",
    description="uniform over north/south edge memory endpoints",
)
def make_tile_to_memory(config: NetworkConfig) -> PatternFn:
    if not config.edge_memory:
        raise ConfigError(
            "tile_to_memory requires a config with edge_memory=True"
        )
    width, height = config.width, config.height
    memory: List[Coord] = [Coord(x, -1) for x in range(width)]
    memory += [Coord(x, height) for x in range(width)]

    def to_memory(src: Coord, rng: random.Random) -> Optional[Coord]:
        return memory[rng.randrange(len(memory))]

    return to_memory


def _make_bit_permutation(
    config: NetworkConfig, kind: str
) -> PatternFn:
    # Index-bit permutations over the node id (classic adversarial
    # patterns for DOR; require power-of-two node counts).
    width = config.width
    n = width * config.height
    bits = n.bit_length() - 1
    if n != 1 << bits:
        raise ConfigError(f"{kind} requires a power-of-two array")

    def permute(idx: int) -> int:
        if kind == "shuffle":  # rotate left by one bit
            return ((idx << 1) | (idx >> (bits - 1))) & (n - 1)
        return int(format(idx, f"0{bits}b")[::-1], 2)

    def bitperm(src: Coord, rng: random.Random) -> Optional[Coord]:
        idx = src.y * width + src.x
        out = permute(idx)
        dest = Coord(out % width, out // width)
        return None if dest == src else dest

    return bitperm


@register_pattern(
    "shuffle", description="node-id bits rotated left by one"
)
def make_shuffle(config: NetworkConfig) -> PatternFn:
    return _make_bit_permutation(config, "shuffle")


@register_pattern(
    "bit_reverse", description="node-id bit string reversed"
)
def make_bit_reverse(config: NetworkConfig) -> PatternFn:
    return _make_bit_permutation(config, "bit_reverse")


@register_pattern(
    "hotspot",
    description="20% of traffic targets the center tile",
)
def make_hotspot(config: NetworkConfig) -> PatternFn:
    hot = Coord(config.width // 2, config.height // 2)
    nodes = _all_nodes(config)

    def hotspot(src: Coord, rng: random.Random) -> Optional[Coord]:
        if rng.random() < 0.2:
            return None if hot == src else hot
        dest = nodes[rng.randrange(len(nodes))]
        while dest == src:
            dest = nodes[rng.randrange(len(nodes))]
        return dest

    return hotspot


@register_pattern(
    "neighbor", description="uniform over the four mesh neighbours"
)
def make_neighbor(config: NetworkConfig) -> PatternFn:
    width, height = config.width, config.height

    def neighbor(src: Coord, rng: random.Random) -> Optional[Coord]:
        options = [
            Coord(src.x + dx, src.y + dy)
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1))
            if 0 <= src.x + dx < width and 0 <= src.y + dy < height
        ]
        return options[rng.randrange(len(options))]

    return neighbor


@register_pattern(
    "trace_replay",
    description="replay a captured injection trace "
    "(parameterized: trace_replay:<path>)",
)
def make_trace_replay(
    config: NetworkConfig, arg: Optional[str] = None
) -> PatternFn:
    from repro.sim.trace import replay_pattern

    fn: PatternFn = replay_pattern(config, arg)
    return fn


def make_pattern(name: str, config: NetworkConfig) -> PatternFn:
    """Build a destination function for pattern ``name`` on ``config``.

    A pattern name may carry a colon-separated argument
    (``"trace_replay:/path/to.noctrace"``): the base name is normalized
    and resolved through the registry, the argument is passed to the
    factory verbatim (case- and whitespace-preserving, so filesystem
    paths survive).
    """
    from repro.core.registry import PATTERNS

    base, sep, arg = name.strip().partition(":")
    factory = PATTERNS.get(base.strip().lower())
    if sep:
        return factory(config, arg)
    return factory(config)


@functools.lru_cache(maxsize=None)
def pattern_names() -> tuple:
    """All synthetic pattern names (the sweepable traffic axis).

    The parameterized ``trace_replay:<path>`` pattern is deliberately
    excluded: it needs a capture file, so it is not a free axis for
    sweeps that enumerate this tuple.
    """
    return (
        "uniform_random",
        "bit_complement",
        "transpose",
        "tornado",
        "tile_to_tile",
        "tile_to_memory",
        "hotspot",
        "neighbor",
        "shuffle",
        "bit_reverse",
    )
