"""Synthetic traffic patterns (paper Sections 4.1 and 4.5).

Each pattern is a function ``(src, rng) -> dest | None`` returning the
destination for a packet injected at ``src``; ``None`` means the tile does
not inject under this pattern (e.g. the diagonal under transpose).

Patterns used by the paper:

* ``uniform_random`` / ``tile_to_tile`` — all-to-all uniform random.
* ``bit_complement`` — destination mirrors both coordinates.
* ``transpose`` — ``(x, y) -> (y, x)`` (square arrays).
* ``tornado`` — half-way-around offset in each dimension, the classic
  adversarial pattern for rings.
* ``tile_to_memory`` — uniform random over the memory endpoints on the
  northern and southern edges (the cellular-manycore pattern; requires an
  ``edge_memory`` config).

Extensions beyond the paper, used by ablation benches:

* ``hotspot`` — a fraction of traffic targets one tile.
* ``neighbor`` — uniform over the four mesh neighbours.
"""

from __future__ import annotations

import functools
import random
from typing import Callable, List, Optional

from repro.core.coords import Coord
from repro.core.params import NetworkConfig
from repro.errors import ConfigError

PatternFn = Callable[[Coord, random.Random], Optional[Coord]]


def make_pattern(name: str, config: NetworkConfig) -> PatternFn:
    """Build a destination function for pattern ``name`` on ``config``."""
    width, height = config.width, config.height
    lowered = name.strip().lower()

    if lowered in ("uniform_random", "uniform", "tile_to_tile"):
        nodes = [
            Coord(x, y) for y in range(height) for x in range(width)
        ]

        def uniform(src: Coord, rng: random.Random) -> Optional[Coord]:
            dest = nodes[rng.randrange(len(nodes))]
            while dest == src:
                dest = nodes[rng.randrange(len(nodes))]
            return dest

        return uniform

    if lowered == "bit_complement":

        def complement(src: Coord, rng: random.Random) -> Optional[Coord]:
            dest = Coord(width - 1 - src.x, height - 1 - src.y)
            return None if dest == src else dest

        return complement

    if lowered == "transpose":
        if width != height:
            raise ConfigError("transpose requires a square array")

        def transpose(src: Coord, rng: random.Random) -> Optional[Coord]:
            dest = Coord(src.y, src.x)
            return None if dest == src else dest

        return transpose

    if lowered == "tornado":
        shift_x = (width + 1) // 2 - 1
        shift_y = (height + 1) // 2 - 1

        def tornado(src: Coord, rng: random.Random) -> Optional[Coord]:
            dest = Coord(
                (src.x + shift_x) % width, (src.y + shift_y) % height
            )
            return None if dest == src else dest

        return tornado

    if lowered == "tile_to_memory":
        if not config.edge_memory:
            raise ConfigError(
                "tile_to_memory requires a config with edge_memory=True"
            )
        memory: List[Coord] = [Coord(x, -1) for x in range(width)]
        memory += [Coord(x, height) for x in range(width)]

        def to_memory(src: Coord, rng: random.Random) -> Optional[Coord]:
            return memory[rng.randrange(len(memory))]

        return to_memory

    if lowered in ("shuffle", "bit_reverse"):
        # Index-bit permutations over the node id (classic adversarial
        # patterns for DOR; require power-of-two node counts).
        n = width * height
        bits = n.bit_length() - 1
        if n != 1 << bits:
            raise ConfigError(f"{lowered} requires a power-of-two array")

        def permute(idx: int) -> int:
            if lowered == "shuffle":  # rotate left by one bit
                return ((idx << 1) | (idx >> (bits - 1))) & (n - 1)
            return int(format(idx, f"0{bits}b")[::-1], 2)

        def bitperm(src: Coord, rng: random.Random) -> Optional[Coord]:
            idx = src.y * width + src.x
            out = permute(idx)
            dest = Coord(out % width, out // width)
            return None if dest == src else dest

        return bitperm

    if lowered == "hotspot":
        hot = Coord(width // 2, height // 2)
        nodes = [
            Coord(x, y) for y in range(height) for x in range(width)
        ]

        def hotspot(src: Coord, rng: random.Random) -> Optional[Coord]:
            if rng.random() < 0.2:
                return None if hot == src else hot
            dest = nodes[rng.randrange(len(nodes))]
            while dest == src:
                dest = nodes[rng.randrange(len(nodes))]
            return dest

        return hotspot

    if lowered == "neighbor":

        def neighbor(src: Coord, rng: random.Random) -> Optional[Coord]:
            options = [
                Coord(src.x + dx, src.y + dy)
                for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1))
                if 0 <= src.x + dx < width and 0 <= src.y + dy < height
            ]
            return options[rng.randrange(len(options))]

        return neighbor

    raise ConfigError(f"unknown traffic pattern: {name!r}")


@functools.lru_cache(maxsize=None)
def pattern_names() -> tuple:
    """All supported pattern names."""
    return (
        "uniform_random",
        "bit_complement",
        "transpose",
        "tornado",
        "tile_to_tile",
        "tile_to_memory",
        "hotspot",
        "neighbor",
        "shuffle",
        "bit_reverse",
    )
