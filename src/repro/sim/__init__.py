"""Cycle-accurate, flit-level NoC simulator.

The substrate behind the paper's Figures 6, 8 and 9: single-cycle-per-hop
routers with two-element input FIFOs, round-robin output arbitration for
the Ruche family, and a 2-VC wavefront-allocated router for the torus
baselines.
"""

from repro.sim.allocator import WavefrontAllocator
from repro.sim.arbiter import RoundRobinArbiter
from repro.sim.channel import PipelinedChannel
from repro.sim.faults import FaultSchedule, TransientLinkFault
from repro.sim.fifo import Fifo
from repro.sim.metrics import LatencyStats, RunMetrics
from repro.sim.network import Network
from repro.sim.packet import Packet
from repro.sim.router import FbfcRouter, Sink, VCRouter, WormholeRouter
from repro.sim.simulator import (
    RunResult,
    average_hops_by_direction,
    multi_seed_run,
    run_synthetic,
    sweep_injection_rates,
    zero_load_latency,
)
from repro.sim.traffic import make_pattern, pattern_names
from repro.sim.validate import assert_healthy, audit_network
from repro.sim.watchdog import (
    DeadlockSnapshot,
    WatchdogConfig,
    capture_snapshot,
)

__all__ = [
    "Fifo",
    "Packet",
    "RoundRobinArbiter",
    "WavefrontAllocator",
    "WormholeRouter",
    "VCRouter",
    "FbfcRouter",
    "PipelinedChannel",
    "Sink",
    "Network",
    "LatencyStats",
    "RunMetrics",
    "RunResult",
    "run_synthetic",
    "sweep_injection_rates",
    "zero_load_latency",
    "average_hops_by_direction",
    "multi_seed_run",
    "make_pattern",
    "pattern_names",
    "audit_network",
    "assert_healthy",
    "FaultSchedule",
    "TransientLinkFault",
    "WatchdogConfig",
    "DeadlockSnapshot",
    "capture_snapshot",
]
