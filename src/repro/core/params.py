"""Network configuration parameters.

A :class:`NetworkConfig` fully describes one network design point of the
paper: topology family, array dimensions, Ruche Factor, crossbar population,
channel width and buffering.  Every other layer (simulator, physical models,
manycore) consumes a ``NetworkConfig``.

The canonical short names used throughout the paper's figures are supported
by :meth:`NetworkConfig.from_name`, e.g. ``"mesh"``, ``"torus"``,
``"half-torus"``, ``"multimesh"``, ``"ruche1-pop"``, ``"ruche3-depop"``.
"""

from __future__ import annotations

import dataclasses
import enum
import re
from typing import TYPE_CHECKING, Any, Optional, Tuple

from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.core.coords import Direction


class TopologyKind(enum.Enum):
    """The topology families evaluated in the paper (Figures 1, 6, 9)."""

    MESH = "mesh"
    FOLDED_TORUS = "torus"
    HALF_TORUS = "half-torus"
    FULL_RUCHE = "ruche"
    HALF_RUCHE = "half-ruche"
    RUCHE_ONE = "ruche-one"
    MULTI_MESH = "multimesh"
    MESH3D = "mesh3d"
    TORUS3D = "torus3d"

    @property
    def is_ruche(self) -> bool:
        return self in (
            TopologyKind.FULL_RUCHE,
            TopologyKind.HALF_RUCHE,
            TopologyKind.RUCHE_ONE,
            TopologyKind.MULTI_MESH,
        )

    @property
    def is_torus(self) -> bool:
        """The 2-D torus family (VC or FBFC rings).

        Deliberately excludes :data:`TORUS3D`, whose deadlock freedom is
        always bubble flow control — the 5-port VC router does not apply.
        """
        return self in (TopologyKind.FOLDED_TORUS, TopologyKind.HALF_TORUS)

    @property
    def is_3d(self) -> bool:
        return self in (TopologyKind.MESH3D, TopologyKind.TORUS3D)


class DorOrder(enum.Enum):
    """Dimension-ordered routing order.

    The paper routes request traffic X-Y and response traffic Y-X
    (Section 4, citing Abts et al. [2]).
    """

    XY = "xy"
    YX = "yx"


_NAME_RE = re.compile(r"^ruche(?P<rf>\d+)(?:-(?P<pop>pop|depop))?$")


@dataclasses.dataclass(frozen=True)
class NetworkConfig:
    """A complete description of one network design point.

    Parameters
    ----------
    kind:
        Topology family.
    width, height:
        Array dimensions in tiles.  ``width`` is the X (east-west) extent.
    ruche_factor:
        Skip distance of the Ruche channels.  Ignored (forced to 0/1) for
        non-Ruche topologies; must be 1 for ``RUCHE_ONE`` and
        ``MULTI_MESH``.
    depopulated:
        Use the depopulated crossbar variant (Figure 5).  Ruche-One and
        multi-mesh require fully-populated routers (Section 3.2).
    channel_width_bits:
        Flit/channel width; the paper's physical studies use 128 bits.
    fifo_depth:
        Input FIFO depth in flits.  The paper's routers are "minimally
        buffered by two-element FIFOs".
    num_vcs:
        Virtual channels per input (torus only; the paper uses two).
    edge_memory:
        Attach memory ports on the northern and southern edges
        (the cellular-manycore arrangement of Section 4.5+).
    dor_order:
        Dimension order for routing.
    """

    kind: TopologyKind
    width: int
    height: int
    ruche_factor: int = 0
    depopulated: bool = True
    channel_width_bits: int = 128
    fifo_depth: int = 2
    num_vcs: int = 2
    edge_memory: bool = False
    dor_order: DorOrder = DorOrder.XY
    #: Use Flit Bubble Flow Control instead of virtual channels for torus
    #: deadlock freedom (Ma et al., discussed in the paper's Section 5):
    #: packets may enter a ring only while the receiving FIFO keeps one
    #: slot free beyond the packet, so each ring always holds a bubble.
    fbfc: bool = False
    #: Cycles per channel traversal.  1 (the paper's dense-tile setting)
    #: uses direct wiring; >1 enables pipelined channels with
    #: credit-based flow control (Section 3.2).
    channel_latency: int = 1
    #: Latency of the long-range Ruche channels, when their wire delay
    #: exceeds a cycle; defaults to ``channel_latency``.
    ruche_channel_latency: Optional[int] = None
    #: Z extent (layers) for the 3-D topology pack; must be >= 2 for
    #: ``MESH3D`` / ``TORUS3D`` and exactly 1 for every 2-D family.
    depth: int = 1

    def __post_init__(self) -> None:
        if self.channel_latency < 1:
            raise ConfigError("channel_latency must be >= 1")
        if (
            self.ruche_channel_latency is not None
            and self.ruche_channel_latency < 1
        ):
            raise ConfigError("ruche_channel_latency must be >= 1")
        if self.width < 2 or self.height < 1:
            raise ConfigError(
                f"array must be at least 2x1, got {self.width}x{self.height}"
            )
        if self.fifo_depth < 1:
            raise ConfigError("fifo_depth must be >= 1")
        if self.kind in (TopologyKind.RUCHE_ONE, TopologyKind.MULTI_MESH):
            if self.ruche_factor not in (0, 1):
                raise ConfigError(
                    f"{self.kind.value} has an implicit Ruche Factor of 1"
                )
            object.__setattr__(self, "ruche_factor", 1)
            if self.depopulated:
                raise ConfigError(
                    f"{self.kind.value} works only on fully-populated routers"
                )
        elif self.kind in (TopologyKind.FULL_RUCHE, TopologyKind.HALF_RUCHE):
            if self.ruche_factor < 1:
                raise ConfigError("Ruche topologies need ruche_factor >= 1")
            if self.ruche_factor >= max(self.width, self.height):
                raise ConfigError(
                    "ruche_factor must be smaller than the array extent"
                )
        else:
            object.__setattr__(self, "ruche_factor", 0)
        if self.kind.is_3d:
            if self.depth < 2:
                raise ConfigError(
                    f"{self.kind.value} needs depth >= 2 layers, got "
                    f"{self.depth} (pass depth=<layers>)"
                )
        elif self.depth != 1:
            raise ConfigError(
                f"depth applies only to 3-D topologies, got depth="
                f"{self.depth} for {self.kind.value}"
            )
        if self.fbfc and not (self.kind.is_torus or self.kind.is_3d):
            raise ConfigError("fbfc applies only to torus networks")
        if self.kind is TopologyKind.TORUS3D and not self.fbfc:
            raise ConfigError(
                "torus3d requires fbfc=True: its rings span all three "
                "axes, beyond the 5-port VC router"
            )
        if self.kind is TopologyKind.MESH3D and self.fbfc:
            raise ConfigError("fbfc applies only to torus networks")
        if self.kind.is_torus and not self.fbfc and self.num_vcs < 2:
            raise ConfigError(
                "torus networks need >= 2 VCs for deadlock freedom "
                "(or fbfc=True for bubble flow control)"
            )
        if self.edge_memory and self.kind.is_3d:
            raise ConfigError(
                "edge_memory is not supported for 3-D topologies"
            )
        if self.edge_memory and (
            self.has_vertical_ruche or self.kind is TopologyKind.FOLDED_TORUS
        ):
            # The manycore scenario attaches memory through plain vertical
            # edge channels; vertical long-range links (or a vertical ring)
            # have no edge to terminate on.  The paper pairs edge memory
            # only with mesh / half-torus / Half Ruche (Section 4.5).
            raise ConfigError(
                "edge_memory requires a topology without vertical "
                "long-range links (mesh, half-torus, or Half Ruche)"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_name(
        cls,
        name: str,
        width: int,
        height: int,
        *,
        half: bool = False,
        **overrides: Any,
    ) -> "NetworkConfig":
        """Build a config from a paper-style short name.

        ``name`` is one of ``mesh``, ``torus``, ``half-torus``,
        ``multimesh``, or ``ruche<RF>[-pop|-depop]`` (``-depop`` is the
        default, matching the paper's guidance).  When ``half`` is true,
        ``ruche*`` names build Half Ruche networks (horizontal Ruche
        channels only), as used in the Section 4.5+ evaluation.
        """
        lowered = name.strip().lower()
        if lowered.endswith("-fbfc"):
            overrides.setdefault("fbfc", True)
            lowered = lowered[: -len("-fbfc")]
        if lowered == "mesh":
            return cls(TopologyKind.MESH, width, height, **overrides)
        if lowered == "torus":
            return cls(TopologyKind.FOLDED_TORUS, width, height, **overrides)
        if lowered in ("half-torus", "halftorus", "half_torus"):
            return cls(TopologyKind.HALF_TORUS, width, height, **overrides)
        if lowered == "mesh3d":
            return cls(TopologyKind.MESH3D, width, height, **overrides)
        if lowered == "torus3d":
            overrides.setdefault("fbfc", True)
            return cls(TopologyKind.TORUS3D, width, height, **overrides)
        if lowered in ("multimesh", "multi-mesh", "multi_mesh"):
            overrides.setdefault("depopulated", False)
            return cls(TopologyKind.MULTI_MESH, width, height, **overrides)
        match = _NAME_RE.match(lowered)
        if match is None:
            if lowered.startswith("ruche"):
                # Name the bad token: ruche<RF> must be digits and the
                # optional suffix must be -pop or -depop.
                stem, _, suffix = lowered.partition("-")
                if not stem[len("ruche"):].isdigit():
                    raise ConfigError(
                        f"unrecognized network name: {name!r} "
                        f"(bad Ruche Factor in {stem!r}; expected "
                        f"ruche<RF> with RF a positive integer)"
                    )
                raise ConfigError(
                    f"unrecognized network name: {name!r} (bad "
                    f"population suffix {suffix!r}; expected 'pop' "
                    f"or 'depop')"
                )
            raise ConfigError(f"unrecognized network name: {name!r}")
        rf = int(match.group("rf"))
        if rf == 0:
            raise ConfigError(
                f"unrecognized network name: {name!r} (bad Ruche "
                f"Factor 'ruche0'; RF must be >= 1)"
            )
        depop = match.group("pop") != "pop"
        if rf == 1 and not half:
            # ruche1 is Ruche-One: fully-populated by definition.
            overrides.setdefault("depopulated", False)
            if overrides["depopulated"]:
                raise ConfigError("ruche1 (Ruche-One) cannot be depopulated")
            return cls(TopologyKind.RUCHE_ONE, width, height, **overrides)
        kind = TopologyKind.HALF_RUCHE if half else TopologyKind.FULL_RUCHE
        return cls(
            kind, width, height, ruche_factor=rf, depopulated=depop, **overrides
        )

    # ------------------------------------------------------------------
    # Descriptive properties
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Paper-style short name of this design point."""
        if self.kind is TopologyKind.MESH:
            return "mesh"
        if self.kind is TopologyKind.MESH3D:
            return "mesh3d"
        if self.kind is TopologyKind.TORUS3D:
            # fbfc is mandatory for torus3d, so the name needs no suffix.
            return "torus3d"
        suffix = "-fbfc" if self.fbfc else ""
        if self.kind is TopologyKind.FOLDED_TORUS:
            return "torus" + suffix
        if self.kind is TopologyKind.HALF_TORUS:
            return "half-torus" + suffix
        if self.kind is TopologyKind.MULTI_MESH:
            return "multimesh"
        if self.kind is TopologyKind.RUCHE_ONE:
            return "ruche1-pop"
        pop = "depop" if self.depopulated else "pop"
        return f"ruche{self.ruche_factor}-{pop}"

    @property
    def num_nodes(self) -> int:
        return self.width * self.height * self.depth

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.width, self.height)

    @property
    def has_horizontal_ruche(self) -> bool:
        return self.kind.is_ruche

    @property
    def has_vertical_ruche(self) -> bool:
        return self.kind in (
            TopologyKind.FULL_RUCHE,
            TopologyKind.RUCHE_ONE,
            TopologyKind.MULTI_MESH,
        )

    @property
    def uses_vcs(self) -> bool:
        """True if the routers need virtual channels (torus family,
        unless bubble flow control supplies the deadlock freedom)."""
        return self.kind.is_torus and not self.fbfc

    def latency_for(self, direction: Direction) -> int:
        """Channel latency in cycles for a given output direction."""
        if direction.is_ruche and self.ruche_channel_latency is not None:
            return self.ruche_channel_latency
        return self.channel_latency

    @property
    def max_channel_latency(self) -> int:
        return max(
            self.channel_latency, self.ruche_channel_latency or 1
        )

    def replace(self, **changes: Any) -> "NetworkConfig":
        """A copy with ``changes`` applied (dataclass ``replace``)."""
        return dataclasses.replace(self, **changes)
