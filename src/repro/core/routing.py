"""Routing algorithms for every topology the paper evaluates.

All algorithms are *deterministic dimension-ordered* variants, computed
per-hop from ``(current tile, input port, destination)`` plus a small
per-packet state decided at injection (the subnet class for Ruche-One /
multi-mesh, the current VC for torus).  This mirrors the paper's RTL route
computation and keeps every algorithm deadlock-free:

* **Mesh**: minimal X-Y (or Y-X) DOR.
* **Ruche** (Section 3.2, Figure 4): the first dimension routes
  *Ruche-first* — board a Ruche channel like a highway while the remaining
  distance warrants it, then finish on local links; the second dimension
  routes *local-first* — take local links until the remaining distance is a
  multiple of the Ruche Factor, then ride Ruche channels to the destination.
  The *fully-populated* variant allows direct turns off a Ruche channel;
  the *depopulated* variant requires getting off to local links first and
  only boards second-dimension Ruche channels from same-axis inputs, which
  makes it (mildly) non-minimal but prunes 16 crossbar connections
  (Figure 5).
* **Ruche-One** (Figure 1f): Ruche Factor 1; a packet rides the Ruche
  subnet for its entire path when its total Manhattan distance is even,
  and the local subnet when odd, balancing the two parallel networks.
* **Multi-mesh** (Figure 3a): two parallel meshes; mesh 0 when the
  Manhattan distance is even, mesh 1 otherwise.
* **Folded torus**: shortest-way DOR around each ring with two virtual
  channels and *dateline* partitioning for deadlock freedom (Dally &
  Seitz); crossing a ring's wrap link promotes the packet to VC 1.
"""

from __future__ import annotations

import functools
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    cast,
)

from repro.core.coords import Coord, Direction
from repro.core.params import DorOrder, NetworkConfig, TopologyKind
from repro.core.portgraph import (
    NodeId,
    PortChannel,
    PortGraph,
    ensure_port_graph,
)
from repro.core.registry import register_routing
from repro.errors import ConfigError, RoutingError

if TYPE_CHECKING:
    from typing import Union

    from repro.core.topology import Topology

# Axis direction tables: (negative local, positive local, negative ruche,
# positive ruche).  "Positive" means growing coordinate (E for x, S for y).
_AxisDirs = Tuple[Direction, Direction, Direction, Direction]
_X_DIRS: _AxisDirs = (Direction.W, Direction.E, Direction.RW, Direction.RE)
_Y_DIRS: _AxisDirs = (Direction.N, Direction.S, Direction.RN, Direction.RS)

_X_AXIS_INPUTS = frozenset(_X_DIRS)
_Y_AXIS_INPUTS = frozenset(_Y_DIRS)


class RoutingAlgorithm:
    """Base class: per-hop deterministic route computation.

    Subclasses implement :meth:`route`, returning the output direction for
    a packet at ``node`` that arrived on ``in_dir`` heading for ``dest``.
    ``subnet`` is the packet's injection-time class (see
    :meth:`injection_subnet`); non-classed algorithms ignore it.
    """

    #: True when the algorithm needs virtual-channel state (torus family).
    uses_vcs = False

    def __init__(self, config: NetworkConfig) -> None:
        self.config = config
        self.width = config.width
        self.height = config.height
        first_axis_is_x = config.dor_order is DorOrder.XY
        self._first_axis_is_x = first_axis_is_x
        self._route_caches: Dict[Coord, Dict[Any, Any]] = {}

    def node_route_cache(self, node: Coord) -> Dict[Any, Any]:
        """Per-node route memo shared by every router built at ``node``.

        Routing is a pure function of ``(in port, destination, subnet)``
        at a given tile, so routers memoize their lookups here; because
        :func:`make_routing` is itself memoized per config, repeated
        simulations of the same design point (rate/seed sweeps) start
        with warm tables instead of recomputing every route per packet.
        """
        cache = self._route_caches.get(node)
        if cache is None:
            cache = self._route_caches[node] = {}
        return cache

    def injection_subnet(self, src: Coord, dest: Coord) -> int:
        """Per-packet subnet class chosen at injection (default: none)."""
        return 0

    def route(
        self, node: Coord, in_dir: Direction, dest: Coord, subnet: int = 0
    ) -> Direction:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Analytic helpers
    # ------------------------------------------------------------------
    def compute_path(
        self, src: Coord, dest: Coord, subnet: Optional[int] = None
    ) -> List[Tuple[Coord, Direction]]:
        """The full hop sequence from ``src`` to ``dest``.

        Returns a list of ``(tile, output direction)`` pairs, ending with
        the ``P`` ejection at the destination.  Used for zero-load
        latency, diameters, and routing validation.
        """
        if subnet is None:
            subnet = self.injection_subnet(src, dest)
        path: List[Tuple[Coord, Direction]] = []
        node, in_dir = src, Direction.P
        limit = 4 * (self.width + self.height) * max(1, self.config.ruche_factor or 1)
        for _ in range(limit):
            out = self.route(node, in_dir, dest, subnet)
            path.append((node, out))
            if out is Direction.P:
                if node != dest:
                    raise RoutingError(
                        f"ejected at {node} but destination is {dest}"
                    )
                return path
            node, in_dir = self._advance(node, out)
        raise RoutingError(
            f"route from {src} to {dest} did not converge within {limit} hops"
        )

    def hop_count(self, src: Coord, dest: Coord, subnet: Optional[int] = None) -> int:
        """Number of channel traversals from ``src`` to ``dest``."""
        return len(self.compute_path(src, dest, subnet)) - 1

    def _advance(self, node: Coord, out: Direction) -> Tuple[Coord, Direction]:
        dx, dy = out.step(max(1, self.config.ruche_factor))
        nxt = node.offset(dx, dy)
        if self.config.kind.is_torus:
            wrap_x = self.config.kind in (
                TopologyKind.FOLDED_TORUS,
                TopologyKind.HALF_TORUS,
            )
            wrap_y = self.config.kind is TopologyKind.FOLDED_TORUS
            x = nxt.x % self.width if wrap_x else nxt.x
            y = nxt.y % self.height if wrap_y else nxt.y
            nxt = Coord(x, y)
        return nxt, out.opposite


class MeshDOR(RoutingAlgorithm):
    """Minimal dimension-ordered routing on a 2-D mesh."""

    def route(
        self, node: Coord, in_dir: Direction, dest: Coord, subnet: int = 0
    ) -> Direction:
        dx = dest.x - node.x
        dy = dest.y - node.y
        if self._first_axis_is_x:
            if dx:
                return Direction.E if dx > 0 else Direction.W
            if dy:
                return Direction.S if dy > 0 else Direction.N
        else:
            if dy:
                return Direction.S if dy > 0 else Direction.N
            if dx:
                return Direction.E if dx > 0 else Direction.W
        return Direction.P


class RucheDOR(RoutingAlgorithm):
    """Ruche-first / local-first DOR for Half and Full Ruche networks."""

    def __init__(self, config: NetworkConfig) -> None:
        super().__init__(config)
        self.rf = config.ruche_factor
        self.depopulated = config.depopulated
        self._x_has_ruche = config.has_horizontal_ruche
        self._y_has_ruche = config.has_vertical_ruche

    def route(
        self, node: Coord, in_dir: Direction, dest: Coord, subnet: int = 0
    ) -> Direction:
        dx = dest.x - node.x
        dy = dest.y - node.y
        if self._first_axis_is_x:
            if dx:
                return self._first_axis(dx, _X_DIRS, self._x_has_ruche)
            if dy:
                return self._second_axis(
                    dy, _Y_DIRS, self._y_has_ruche, in_dir, _Y_AXIS_INPUTS
                )
        else:
            if dy:
                return self._first_axis(dy, _Y_DIRS, self._y_has_ruche)
            if dx:
                return self._second_axis(
                    dx, _X_DIRS, self._x_has_ruche, in_dir, _X_AXIS_INPUTS
                )
        return Direction.P

    def _first_axis(
        self, d: int, dirs: _AxisDirs, has_ruche: bool
    ) -> Direction:
        """Ruche-first: ride the highway while the distance warrants it.

        Fully-populated boards a Ruche channel whenever ``|d| >= RF`` (it
        may land exactly on the turn column and turn straight off the
        Ruche input); depopulated boards only when ``|d| > RF`` so that the
        final first-dimension hop is always a local link.
        """
        neg_local, pos_local, neg_ruche, pos_ruche = dirs
        adist = abs(d)
        if has_ruche:
            boards = adist > self.rf if self.depopulated else adist >= self.rf
            if boards:
                return pos_ruche if d > 0 else neg_ruche
        return pos_local if d > 0 else neg_local

    def _second_axis(
        self,
        d: int,
        dirs: _AxisDirs,
        has_ruche: bool,
        in_dir: Direction,
        axis_inputs: FrozenSet[Direction],
    ) -> Direction:
        """Local-first: local links until the remainder divides the RF.

        Depopulated routers only board second-dimension Ruche channels from
        same-axis inputs (Figure 5: the RS/RN outputs lose their P, W, E,
        RW, RE inputs), so a turning packet always takes at least one local
        hop first.
        """
        neg_local, pos_local, neg_ruche, pos_ruche = dirs
        adist = abs(d)
        if has_ruche and adist % self.rf == 0:
            allowed = (not self.depopulated) or (in_dir in axis_inputs)
            if allowed:
                return pos_ruche if d > 0 else neg_ruche
        return pos_local if d > 0 else neg_local


class _ParitySubnetRouting(RoutingAlgorithm):
    """Shared logic for Ruche-One and multi-mesh parity-balanced routing."""

    #: subnet value that maps onto the Ruche-named direction set.
    _RUCHE_SUBNET = 1

    def route(
        self, node: Coord, in_dir: Direction, dest: Coord, subnet: int = 0
    ) -> Direction:
        dx = dest.x - node.x
        dy = dest.y - node.y
        ruche_class = subnet == self._RUCHE_SUBNET
        if self._first_axis_is_x:
            if dx:
                return self._axis_dir(dx, _X_DIRS, ruche_class)
            if dy:
                return self._axis_dir(dy, _Y_DIRS, ruche_class)
        else:
            if dy:
                return self._axis_dir(dy, _Y_DIRS, ruche_class)
            if dx:
                return self._axis_dir(dx, _X_DIRS, ruche_class)
        return Direction.P

    @staticmethod
    def _axis_dir(d: int, dirs: _AxisDirs, ruche_class: bool) -> Direction:
        neg_local, pos_local, neg_ruche, pos_ruche = dirs
        if ruche_class:
            return pos_ruche if d > 0 else neg_ruche
        return pos_local if d > 0 else neg_local


class RucheOneRouting(_ParitySubnetRouting):
    """Ruche-One: even total distance rides the Ruche subnet (Section 3.2)."""

    def injection_subnet(self, src: Coord, dest: Coord) -> int:
        return 1 if src.manhattan(dest) % 2 == 0 else 0


class MultiMeshRouting(_ParitySubnetRouting):
    """2x multi-mesh: even Manhattan distance uses mesh 0 (Section 4.2)."""

    def injection_subnet(self, src: Coord, dest: Coord) -> int:
        return 0 if src.manhattan(dest) % 2 == 0 else 1


class TorusDOR(RoutingAlgorithm):
    """Shortest-way DOR with dateline VC partitioning for (half-)torus.

    Returns both an output direction and an output VC through
    :meth:`route_vc`.  Each unidirectional ring has one *dateline* at its
    wrap link; packets that will traverse the dateline start on VC 0 and
    are promoted to VC 1 when they cross it, breaking the cyclic channel
    dependency.  Packets whose ring segment never touches the dateline
    cannot contribute to either cycle, so they may use either VC; they are
    spread across both by a per-flow hash, which keeps delivery in order
    (the VC sequence is deterministic per source/destination pair) while
    recovering the buffer utilization a VC0-only scheme would waste.
    """

    uses_vcs = True

    def __init__(self, config: NetworkConfig) -> None:
        super().__init__(config)
        self._x_is_ring = True
        self._y_is_ring = config.kind is TopologyKind.FOLDED_TORUS

    def route(
        self, node: Coord, in_dir: Direction, dest: Coord, subnet: int = 0
    ) -> Direction:
        out, _vc = self.route_vc(node, in_dir, 0, dest)
        return out

    def route_vc(
        self, node: Coord, in_dir: Direction, in_vc: int, dest: Coord
    ) -> Tuple[Direction, int]:
        """Output ``(direction, vc)`` for a packet holding VC ``in_vc``."""
        if self._first_axis_is_x:
            axes = (("x", node.x, dest.x), ("y", node.y, dest.y))
        else:
            axes = (("y", node.y, dest.y), ("x", node.x, dest.x))
        for axis, cur, tgt in axes:
            if cur == tgt:
                continue
            if axis == "x":
                k, is_ring, dirs = self.width, self._x_is_ring, _X_DIRS
            else:
                k, is_ring, dirs = self.height, self._y_is_ring, _Y_DIRS
            out = self._ring_dir(cur, tgt, k, is_ring, dirs, dest)
            same_dim = (
                in_dir in _X_AXIS_INPUTS
                if out in _X_AXIS_INPUTS
                else in_dir in _Y_AXIS_INPUTS
            )
            if same_dim:
                vc = in_vc
            elif is_ring and self._crosses_ahead(out, cur, tgt, k):
                vc = 0  # will be promoted at the dateline hop
            else:
                # Never touches the dateline in this ring: spread across
                # both VCs, deterministically per destination flow.
                vc = (dest.x + dest.y) & 1 if is_ring else 0
            if self._crosses_dateline(out, cur, k):
                vc = 1
            return out, vc
        return Direction.P, 0

    @staticmethod
    def _crosses_ahead(out: Direction, cur: int, tgt: int, k: int) -> bool:
        """True when the remaining ring segment includes the wrap link."""
        if out in (Direction.E, Direction.S):
            return tgt < cur
        return tgt > cur

    @staticmethod
    def _ring_dir(
        cur: int, tgt: int, k: int, is_ring: bool, dirs: _AxisDirs, dest: Coord
    ) -> Direction:
        neg_local, pos_local, _nr, _pr = dirs
        if not is_ring:
            return pos_local if tgt > cur else neg_local
        fwd = (tgt - cur) % k
        bwd = (cur - tgt) % k
        if fwd == bwd:
            # Exact half-ring distance: break the tie per destination flow
            # (deterministic, hence in-order) so neither unidirectional
            # ring carries all of the half-way traffic.
            return pos_local if (dest.x + dest.y) % 2 == 0 else neg_local
        return pos_local if fwd < bwd else neg_local

    def _crosses_dateline(self, out: Direction, cur: int, k: int) -> bool:
        """True when this hop traverses the ring's wrap (dateline) link."""
        if out in (Direction.E, Direction.S):
            return cur == k - 1 and self._axis_is_ring(out)
        if out in (Direction.W, Direction.N):
            return cur == 0 and self._axis_is_ring(out)
        return False

    def _axis_is_ring(self, out: Direction) -> bool:
        return self._x_is_ring if out.is_horizontal else self._y_is_ring


#: Tie-break order among equal-distance outputs in the fault-aware BFS.
#: X-axis moves come first so that, on a healthy array, the recomputed
#: tables collapse to the same X-Y dimension order the DOR algorithms use
#: (and therefore inherit their deadlock freedom); detours near faults are
#: the only deviations.
_BFS_PRIORITY = {
    int(d): rank
    for rank, d in enumerate(
        (
            Direction.P,
            Direction.E,
            Direction.W,
            Direction.RE,
            Direction.RW,
            Direction.S,
            Direction.N,
            Direction.RS,
            Direction.RN,
        )
    )
}

#: A directed link identified by its source node and output direction.
LinkId = Tuple[NodeId, Direction]


class FaultAwareTableRouting(RoutingAlgorithm):
    """Table routing recomputed by BFS around dead links and routers.

    For every destination a backward breadth-first search over the
    *surviving* channel graph produces a next-hop table keyed by
    ``(tile, input port)``.  Feasible turns come from the
    fault-tolerant crossbar (:func:`~repro.core.connectivity.
    fault_tolerant_matrix`): dimension-ordered switches physically lack
    the Y-to-X turns detours need, so degraded operation provisions the
    fully-connected switch and pays its area cost.  Paths are shortest
    feasible paths over the surviving graph.  Parity-subnet disciplines
    (Ruche-One / multi-mesh) are dropped under faults: every packet is
    subnet 0 and may use any surviving channel.

    Unlike the healthy DOR algorithms this is not provably deadlock-free
    once faults bend routes out of dimension order; the simulator's
    forward-progress watchdog is the backstop (see
    ``docs/methodology.md``).  Node pairs left with no feasible path are
    reported by :meth:`partitioned_pairs` rather than routed into a
    livelock.
    """

    def __init__(
        self,
        config: NetworkConfig,
        dead_links: Iterable[LinkId] = (),
        dead_nodes: Iterable[Coord] = (),
    ) -> None:
        super().__init__(config)
        if config.uses_vcs or config.fbfc:
            raise ConfigError(
                "fault-aware routing supports wormhole-routed topologies "
                "only (mesh / Ruche family), not the torus VC/FBFC routers"
            )
        if config.edge_memory:
            raise ConfigError(
                "fault-aware routing does not model edge-memory endpoints"
            )
        from repro.core.connectivity import (
            fault_tolerant_matrix,
            port_turns,
        )
        from repro.core.topology import make_topology

        graph = make_topology(config).port_graph()
        self.dead_nodes: FrozenSet[Coord] = frozenset(dead_nodes)
        self.dead_links: FrozenSet[LinkId] = self._normalize_links(
            graph, dead_links, self.dead_nodes
        )
        self._nodes = [
            n for n in graph.nodes if n not in self.dead_nodes
        ]
        # Degraded operation assumes the fault-tolerant crossbar: a DOR
        # switch physically lacks the turns detours need (see
        # fault_tolerant_matrix), and the simulator builds its routers
        # with the same matrix whenever faults are active.
        turns = port_turns(fault_tolerant_matrix(config))
        self._tables = self._build_tables(graph, turns)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_links(
        graph: PortGraph,
        dead_links: Iterable[LinkId],
        dead_nodes: FrozenSet[Coord],
    ) -> FrozenSet[LinkId]:
        """Expand faults to directed link ids, killing both directions.

        A physical link failure takes out the wires in both directions,
        and a failed router takes out every link touching it.
        """
        killed: Set[LinkId] = set()
        for src, direction in dead_links:
            hop = graph.out_map.get((src, int(direction)))
            if hop is None:
                raise ConfigError(
                    f"dead link ({tuple(src)}, {direction.name}) does not "
                    f"exist in this topology"
                )
            killed.add((src, direction))
            killed.add((hop[0], direction.opposite))
        if dead_nodes:
            for channel in graph.channels:
                if channel.src in dead_nodes or channel.dst in dead_nodes:
                    killed.add((channel.src, Direction(channel.out_port)))
                    killed.add((channel.dst, Direction(channel.in_port)))
        return frozenset(killed)

    def _build_tables(
        self, graph: PortGraph, turns: Mapping[int, FrozenSet[int]]
    ) -> Dict[NodeId, Dict[Tuple[NodeId, int], int]]:
        """Per-destination next-hop tables over (node, input port) states.

        Pure port-graph construction: channels come from the IR in
        emitter order (the BFS tie-breaks depend on it), turn legality
        from the integer turn sets of
        :func:`~repro.core.connectivity.port_turns`.
        """
        routable = frozenset(self._nodes)
        # Forward state graph: (node, input) --out--> (next, in_port).
        reverse: Dict[
            Tuple[NodeId, int], List[Tuple[Tuple[NodeId, int], int]]
        ] = {}
        p_out = graph.ejection_port
        inputs_at: Dict[NodeId, List[int]] = {
            n: [p_out] for n in self._nodes
        }
        alive: List[PortChannel] = []
        for channel in graph.channels:
            if channel.src not in routable or channel.dst not in routable:
                continue
            if (channel.src, Direction(channel.out_port)) in self.dead_links:
                continue
            alive.append(channel)
            inputs_at[channel.dst].append(channel.in_port)
        for channel in alive:
            succ = (channel.dst, channel.in_port)
            for in_idx in inputs_at[channel.src]:
                if channel.out_port in turns.get(in_idx, ()):
                    reverse.setdefault(succ, []).append(
                        ((channel.src, in_idx), channel.out_port)
                    )
        tables: Dict[NodeId, Dict[Tuple[NodeId, int], int]] = {}
        for dest in self._nodes:
            next_hop: Dict[Tuple[NodeId, int], int] = {}
            frontier: List[Tuple[NodeId, int]] = []
            for in_idx in inputs_at[dest]:
                if p_out in turns.get(in_idx, ()):
                    next_hop[(dest, in_idx)] = p_out
                    frontier.append((dest, in_idx))
            # Level-synchronous BFS with a deterministic, DOR-like
            # tie-break: among predecessors discovered on the same level,
            # each state keeps the output ranked first by _BFS_PRIORITY.
            while frontier:
                best: Dict[Tuple[NodeId, int], int] = {}
                for state in frontier:
                    for pred, out in reverse.get(state, ()):
                        if pred in next_hop:
                            continue
                        cur = best.get(pred)
                        if cur is None or (
                            _BFS_PRIORITY[out] < _BFS_PRIORITY[cur]
                        ):
                            best[pred] = out
                next_hop.update(best)
                frontier = list(best)
            tables[dest] = next_hop
        return tables

    # ------------------------------------------------------------------
    # RoutingAlgorithm interface
    # ------------------------------------------------------------------
    def route(
        self, node: Coord, in_dir: Direction, dest: Coord, subnet: int = 0
    ) -> Direction:
        table = self._tables.get(dest)
        if table is None:
            raise RoutingError(f"destination {dest} is a failed router")
        out = table.get((node, int(in_dir)))
        if out is None:
            raise RoutingError(
                f"no surviving path from {node} (input "
                f"{Direction(in_dir).name}) to {dest}"
            )
        return Direction(out)

    def next_hop_items(
        self, dest: Coord
    ) -> Iterable[Tuple[Tuple[NodeId, int], int]]:
        """All ``((tile, input port), output port)`` entries for ``dest``.

        The tabulated form of :meth:`route`, exposed so the compiled
        engine (``repro.sim.fastsim``) can pack the BFS tables into flat
        route rows without probing every (state, dest) pair through the
        raising accessor.  Empty for a failed-router destination.
        """
        table = self._tables.get(dest)
        return table.items() if table is not None else ()

    # ------------------------------------------------------------------
    # Reachability analysis
    # ------------------------------------------------------------------
    def reachable(self, src: Coord, dest: Coord) -> bool:
        """True when a packet injected at ``src`` can reach ``dest``."""
        if src in self.dead_nodes or dest in self.dead_nodes:
            return False
        if src == dest:
            return True
        table = self._tables.get(dest)
        return table is not None and (src, int(Direction.P)) in table

    def partitioned_pairs(self) -> List[Tuple[NodeId, NodeId]]:
        """All (src, dest) pairs of live tiles with no surviving path.

        A campaign checks this *before* injecting so that a partitioned
        pair is reported as degraded coverage instead of silently
        livelocking the run.
        """
        p_in = int(Direction.P)
        return [
            (src, dest)
            for dest in self._nodes
            for src in self._nodes
            if src != dest and (src, p_in) not in self._tables[dest]
        ]


#: A flat routing-table state: (node, input port index, held VC, subnet).
TableState = Tuple[NodeId, int, int, int]

#: A next-hop decision: (output port index, output VC).
TableEntry = Tuple[int, int]


def tabulate_next_hops(
    routing: RoutingAlgorithm,
    topology: "Union[Topology, PortGraph]",
    dest: Coord,
    *,
    sources: Optional[Iterable[Coord]] = None,
    on_error: Optional[Callable[[TableState, RoutingError], None]] = None,
) -> Dict[TableState, TableEntry]:
    """Export ``routing``'s next-hop decisions toward ``dest`` as a table.

    This is the flat representation the compiled engine lowers to and
    the static certifier (:mod:`repro.verify.certify`) analyzes: one
    ``(node, input port, held VC, subnet) -> (output port, output VC)``
    entry per routing state reachable from injection.  The walk uses
    only the port-graph IR (``topology`` may be a
    :class:`~repro.core.portgraph.PortGraph` or anything that emits one
    via ``port_graph()``) and the routing's own per-hop function — no
    coordinate arithmetic — so any registered topology, builtin or
    plugin, and any :class:`RoutingAlgorithm`, closed-form or
    table-driven (:class:`FaultAwareTableRouting`), exports
    identically.

    ``sources`` restricts the injection frontier (the certifier passes
    only fault-reachable sources); default is every graph node.
    Route computations that raise, and outputs with no wired channel,
    are reported through ``on_error`` — an unwired output keeps its
    table entry (the entry *is* the defect), a raising state gets none.
    Ejections appear as entries whose output port is the graph's
    ejection port.
    """
    graph = ensure_port_graph(topology)
    # Key VC usage on the deployed router discipline, not the routing
    # class: an FBFC torus instantiates TorusDOR (uses_vcs=True) but its
    # FbfcRouter consumes single-VC route() — bubble flow control, no
    # dateline — so the class flag alone would tabulate dateline states
    # the hardware never visits.
    routing_config = getattr(routing, "config", None)
    if routing_config is not None:
        uses_vcs = routing_config.uses_vcs
    else:
        uses_vcs = routing.uses_vcs
    p_idx = graph.ejection_port
    table: Dict[TableState, TableEntry] = {}
    frontier: List[TableState] = [
        (src, p_idx, 0, routing.injection_subnet(src, dest))
        for src in cast(
            "Iterable[Coord]",
            graph.nodes if sources is None else sources,
        )
    ]
    while frontier:
        state = frontier.pop()
        if state in table:
            continue
        raw_node, in_idx, in_vc, subnet = state
        node = cast(Coord, raw_node)
        try:
            if uses_vcs:
                out, out_vc = routing.route_vc(
                    node, Direction(in_idx), in_vc, dest
                )
            else:
                out = routing.route(node, Direction(in_idx), dest, subnet)
                out_vc = 0
        except RoutingError as exc:
            if on_error is not None:
                on_error(state, exc)
            continue
        out_idx = int(out)
        table[state] = (out_idx, out_vc)
        if out_idx == p_idx:
            continue
        hop = graph.out_map.get((node, out_idx))
        if hop is None:
            if on_error is not None:
                on_error(
                    state,
                    RoutingError(
                        f"{tuple(node)} routed {graph.port_name(out_idx)} "
                        f"but no such channel is wired"
                    ),
                )
            continue
        nxt, in_port, _latency = hop
        frontier.append((nxt, in_port, out_vc, subnet))
    return table


def make_fault_aware_routing(
    config: NetworkConfig,
    dead_links: Iterable[LinkId] = (),
    dead_nodes: Iterable[Coord] = (),
) -> FaultAwareTableRouting:
    """Routing tables recomputed around a set of faults."""
    return FaultAwareTableRouting(
        config, dead_links=dead_links, dead_nodes=dead_nodes
    )


@functools.lru_cache(maxsize=128)
def make_routing(config: NetworkConfig) -> RoutingAlgorithm:
    """Factory: the routing algorithm for a design point.

    Memoized per (frozen, hashable) config: every algorithm here is a
    pure function of the config, so instances — and their per-node route
    caches — are safely shared across simulations.  Fault-aware tables
    (:func:`make_fault_aware_routing`) are per-fault-set and stay
    unmemoized.
    """
    kind = config.kind
    if kind is TopologyKind.MESH:
        return MeshDOR(config)
    if kind in (TopologyKind.FULL_RUCHE, TopologyKind.HALF_RUCHE):
        return RucheDOR(config)
    if kind is TopologyKind.RUCHE_ONE:
        return RucheOneRouting(config)
    if kind is TopologyKind.MULTI_MESH:
        return MultiMeshRouting(config)
    if kind.is_torus:
        return TorusDOR(config)
    if kind.is_3d:
        # Imported lazily: the 3-D pack depends on this module.
        from repro.core.topo3d import make_routing_3d

        return make_routing_3d(config)
    raise RoutingError(f"no routing algorithm for {kind!r}")


def clear_routing_caches() -> None:
    """Drop the memoized routing instances (and their route tables).

    The ``lru_cache`` bound (128 configs) caps growth within a process;
    this hook exists for callers that need a cold start — the bench
    harness clears it before timing the first campaign leg, and tests
    use it to isolate cache effects.
    """
    make_routing.cache_clear()


# Registered names let a spec (or a plugin) pick an algorithm explicitly
# instead of relying on the config-kind dispatch in make_routing.
register_routing(
    "mesh-dor", description="minimal X-Y / Y-X dimension-ordered routing"
)(MeshDOR)
register_routing(
    "ruche-dor",
    description=(
        "Ruche-first / local-first DOR (pop and depop, Figure 4)"
    ),
)(RucheDOR)
register_routing(
    "ruche-one",
    description="RF=1 dual-subnet routing balanced by path parity",
)(RucheOneRouting)
register_routing(
    "multi-mesh",
    description="two parallel meshes balanced by path parity",
)(MultiMeshRouting)
register_routing(
    "torus-dor",
    description="shortest-way ring DOR with dateline VC promotion",
)(TorusDOR)
