"""Coordinates and port directions for tiled NoC topologies.

The direction naming follows the convention of the BaseJump STL / HammerBlade
router generators referenced by the paper:

* An **output** port is named for the side of the tile the channel leaves
  from (an ``E`` output sends a packet toward the east neighbour).
* An **input** port is named for the side the channel arrives on (a packet
  that arrives on the ``W`` input came from the west neighbour and is
  travelling east).

Ruche directions (``RE``/``RW``/``RN``/``RS``) are the long-range channels
whose skip distance is the *Ruche Factor* of the network.  ``P`` is the
processor (local injection/ejection) port.
"""

from __future__ import annotations

import enum
from typing import Tuple


class Direction(enum.IntEnum):
    """Router port directions.

    The integer values are stable and are used to index port arrays inside
    the simulator, and to index rows/columns of crossbar connectivity
    matrices (see :mod:`repro.core.connectivity`).
    """

    P = 0   #: processor (local) port
    W = 1   #: local west
    E = 2   #: local east
    N = 3   #: local north
    S = 4   #: local south
    RW = 5  #: Ruche west
    RE = 6  #: Ruche east
    RN = 7  #: Ruche north
    RS = 8  #: Ruche south

    @property
    def is_ruche(self) -> bool:
        """True for the four long-range (Ruche) directions."""
        return self >= Direction.RW

    @property
    def is_local_link(self) -> bool:
        """True for the four single-hop mesh directions (excludes ``P``)."""
        return Direction.W <= self <= Direction.S

    @property
    def is_horizontal(self) -> bool:
        """True if the direction moves along the X axis."""
        return self in _HORIZONTAL

    @property
    def is_vertical(self) -> bool:
        """True if the direction moves along the Y axis."""
        return self in _VERTICAL

    @property
    def opposite(self) -> "Direction":
        """The direction a packet *arrives on* after leaving on ``self``.

        A packet leaving on the ``E`` output of one router arrives on the
        ``W`` input of the neighbour, and similarly for every other pair.
        ``P`` is its own opposite.
        """
        return _OPPOSITE[self]

    def step(self, ruche_factor: int) -> Tuple[int, int]:
        """The ``(dx, dy)`` displacement of one hop in this direction.

        Local links move one tile; Ruche links move ``ruche_factor`` tiles.
        ``P`` does not move.
        """
        if self is Direction.P:
            return (0, 0)
        dx, dy = _UNIT[self]
        if self.is_ruche:
            return (dx * ruche_factor, dy * ruche_factor)
        return (dx, dy)


_HORIZONTAL = frozenset(
    (Direction.W, Direction.E, Direction.RW, Direction.RE)
)
_VERTICAL = frozenset(
    (Direction.N, Direction.S, Direction.RN, Direction.RS)
)

_OPPOSITE = {
    Direction.P: Direction.P,
    Direction.W: Direction.E,
    Direction.E: Direction.W,
    Direction.N: Direction.S,
    Direction.S: Direction.N,
    Direction.RW: Direction.RE,
    Direction.RE: Direction.RW,
    Direction.RN: Direction.RS,
    Direction.RS: Direction.RN,
}

_UNIT = {
    Direction.W: (-1, 0),
    Direction.E: (1, 0),
    Direction.N: (0, -1),
    Direction.S: (0, 1),
    Direction.RW: (-1, 0),
    Direction.RE: (1, 0),
    Direction.RN: (0, -1),
    Direction.RS: (0, 1),
}

#: All nine directions, in index order.
ALL_DIRECTIONS = tuple(Direction)

#: The five directions of a plain 2-D mesh router.
MESH_DIRECTIONS = (
    Direction.P,
    Direction.W,
    Direction.E,
    Direction.N,
    Direction.S,
)

#: Ruche directions only.
RUCHE_DIRECTIONS = (
    Direction.RW,
    Direction.RE,
    Direction.RN,
    Direction.RS,
)

#: Horizontal Ruche directions (the ones Half Ruche adds).
RUCHE_HORIZONTAL = (Direction.RW, Direction.RE)

#: Vertical Ruche directions.
RUCHE_VERTICAL = (Direction.RN, Direction.RS)


class Coord(Tuple[int, int]):
    """An immutable ``(x, y)`` tile coordinate.

    ``x`` grows eastward and ``y`` grows southward, matching the paper's
    figures (memory tiles sit on the northern and southern edges, i.e. at
    minimum and maximum ``y``).
    """

    __slots__ = ()

    def __new__(cls, x: int, y: int) -> "Coord":
        return super().__new__(cls, (x, y))

    @property
    def x(self) -> int:
        return self[0]

    @property
    def y(self) -> int:
        return self[1]

    def manhattan(self, other: "Coord") -> int:
        """Manhattan (hop-count on a mesh) distance to ``other``."""
        return abs(self[0] - other[0]) + abs(self[1] - other[1])

    def offset(self, dx: int, dy: int) -> "Coord":
        """A new coordinate displaced by ``(dx, dy)``."""
        return Coord(self[0] + dx, self[1] + dy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Coord({self[0]}, {self[1]})"


class Coord3(Coord):
    """An immutable ``(x, y, z)`` tile coordinate for 3-D topologies.

    Extends the 2-D convention with ``z`` growing *upward* through the
    stack; the 3-D topology pack (:mod:`repro.core.topo3d`) rides its
    ``z`` channels on the otherwise-unused vertical Ruche port pair, so
    ``Coord3`` nodes flow through the same 9-port machinery as 2-D
    tiles.  Subclassing :class:`Coord` keeps every coordinate a plain
    tuple (port-graph fingerprints and route tables hash it
    canonically) while ``x``/``y`` accessors keep working.
    """

    __slots__ = ()

    def __new__(cls, x: int, y: int, z: int) -> "Coord3":
        return tuple.__new__(cls, (x, y, z))

    def _xyz(self) -> Tuple[int, int, int]:
        # Widen away Coord's fixed 2-tuple typing before indexing z.
        widened: Tuple[int, ...] = self
        return widened[0], widened[1], widened[2]

    @property
    def z(self) -> int:
        return self._xyz()[2]

    def manhattan(self, other: "Coord") -> int:
        """Manhattan distance over every shared axis."""
        return sum(abs(a - b) for a, b in zip(self, other))

    def offset(self, dx: int, dy: int) -> "Coord3":
        """A new coordinate displaced by ``(dx, dy)`` in the same layer."""
        x, y, z = self._xyz()
        return Coord3(x + dx, y + dy, z)

    def offset3(self, dx: int, dy: int, dz: int) -> "Coord3":
        """A new coordinate displaced by ``(dx, dy, dz)``."""
        x, y, z = self._xyz()
        return Coord3(x + dx, y + dy, z + dz)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Coord3({}, {}, {})".format(*self._xyz())
