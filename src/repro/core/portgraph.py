"""The port-graph intermediate representation of a topology.

A :class:`PortGraph` is the topology-agnostic contract between the
construction layer and every consumer downstream of it: a node set
(opaque hashable ids — 2-D tiles use :class:`~repro.core.coords.Coord`,
3-D tiles :class:`~repro.core.coords.Coord3`), integer port ids per
node, a directed channel list with per-channel latency and width, and
one designated ejection port.  Emitters
(:meth:`repro.core.topology.Topology.port_graph` and any plugin
topology) guarantee that ``channels`` preserve construction order, so
fingerprints — and every tie-break taken while walking the graph — are
bit-stable across processes and releases.

Consumers:

* :func:`repro.core.routing.tabulate_next_hops` and
  :class:`~repro.core.routing.FaultAwareTableRouting` produce
  next-hop tables keyed ``(node, port)`` over it;
* :mod:`repro.sim.fastsim` lowers route tables straight from it (the
  generic tabulation path behind non-builtin routings);
* :mod:`repro.verify.certify` certifies route soundness, turn
  legality, and CDG acyclicity natively on it, with no 2-D coordinate
  assumptions.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

#: An opaque node id.  Builtin emitters use coordinate tuples, but
#: consumers must treat ids as hashable tokens only.
NodeId = Tuple[int, ...]


class PortChannel(NamedTuple):
    """One directed physical channel of the port graph."""

    #: Source node and the output port the channel leaves on.
    src: NodeId
    out_port: int
    #: Destination node and the input port the channel arrives on.
    dst: NodeId
    in_port: int
    #: Traversal latency in cycles (>= 1).
    latency: int
    #: Channel width in bits (flit width).
    width: int


class PortGraph:
    """A materialized topology, free of coordinate semantics.

    Parameters
    ----------
    nodes:
        The routable nodes, in the emitter's canonical order (this is
        the enumeration order of every consumer, so it is part of the
        fingerprint).  Channel endpoints outside this set are allowed —
        edge-memory stubs, for example — and are reported by
        :attr:`endpoint_only_nodes`.
    num_ports:
        Ports per node; port ids are ``0 .. num_ports - 1``.
    ejection_port:
        The port id packets eject (and inject) on.
    port_names:
        Human-readable name per port id, for rendering findings.
    channels:
        Directed channels in emitter order.
    """

    __slots__ = (
        "nodes",
        "num_ports",
        "ejection_port",
        "port_names",
        "channels",
        "out_map",
        "in_channels",
        "endpoint_only_nodes",
    )

    def __init__(
        self,
        *,
        nodes: Tuple[NodeId, ...],
        num_ports: int,
        ejection_port: int,
        port_names: Tuple[str, ...],
        channels: Tuple[PortChannel, ...],
    ) -> None:
        if len(port_names) != num_ports:
            raise ValueError(
                f"port_names has {len(port_names)} entries for "
                f"{num_ports} ports"
            )
        if not 0 <= ejection_port < num_ports:
            raise ValueError(
                f"ejection_port {ejection_port} out of range for "
                f"{num_ports} ports"
            )
        self.nodes = nodes
        self.num_ports = num_ports
        self.ejection_port = ejection_port
        self.port_names = port_names
        self.channels = channels
        #: ``(src, out_port) -> (dst, in_port, latency)``.
        out_map: Dict[Tuple[NodeId, int], Tuple[NodeId, int, int]] = {}
        #: Incoming channels per destination node, in channel order.
        in_channels: Dict[NodeId, List[PortChannel]] = {}
        node_set = frozenset(nodes)
        extra: List[NodeId] = []
        seen_extra = set(node_set)
        for channel in channels:
            if not 0 <= channel.out_port < num_ports:
                raise ValueError(
                    f"channel {channel!r}: out_port out of range"
                )
            if not 0 <= channel.in_port < num_ports:
                raise ValueError(
                    f"channel {channel!r}: in_port out of range"
                )
            if channel.latency < 1:
                raise ValueError(
                    f"channel {channel!r}: latency must be >= 1"
                )
            key = (channel.src, channel.out_port)
            if key in out_map:
                raise ValueError(
                    f"duplicate output channel at {key!r}"
                )
            out_map[key] = (channel.dst, channel.in_port, channel.latency)
            in_channels.setdefault(channel.dst, []).append(channel)
            for endpoint in (channel.src, channel.dst):
                if endpoint not in seen_extra:
                    seen_extra.add(endpoint)
                    extra.append(endpoint)
        self.out_map = out_map
        self.in_channels = in_channels
        #: Channel endpoints that are not routable nodes (memory stubs).
        self.endpoint_only_nodes: Tuple[NodeId, ...] = tuple(extra)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_output(self, node: NodeId, out_port: int) -> bool:
        return (node, out_port) in self.out_map

    def dest_of(self, node: NodeId, out_port: int) -> NodeId:
        """Destination node of ``node``'s ``out_port`` channel."""
        return self.out_map[(node, out_port)][0]

    def output_ports(self, node: NodeId) -> Tuple[int, ...]:
        """The wired output ports of ``node`` (excluding ejection)."""
        return tuple(
            port
            for port in range(self.num_ports)
            if port != self.ejection_port
            and (node, port) in self.out_map
        )

    def port_name(self, port: int) -> str:
        """Render a port id (falls back to ``p<id>`` off the menu)."""
        if 0 <= port < len(self.port_names):
            return self.port_names[port]
        return f"p{port}"

    def render_node(self, node: NodeId) -> str:
        """Render a node id for findings (``(x, y[, z])``)."""
        return "(" + ", ".join(str(part) for part in node) + ")"

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def canonical_lines(self) -> Iterable[str]:
        """The canonical rendering :meth:`fingerprint` hashes."""
        yield f"ports={self.num_ports} eject={self.ejection_port}"
        yield "names=" + ",".join(self.port_names)
        yield "nodes=" + ";".join(
            ",".join(str(part) for part in node) for node in self.nodes
        )
        for channel in self.channels:
            yield (
                ",".join(str(part) for part in channel.src)
                + f">{channel.out_port}>{channel.in_port}>"
                + ",".join(str(part) for part in channel.dst)
                + f"@{channel.latency}w{channel.width}"
            )

    def fingerprint(self) -> str:
        """Stable content address of this graph (sha256 hex).

        Covers node order, channel order, port naming, and per-channel
        latency/width — two emitters produce the same fingerprint iff
        they describe the same wired machine the same way.
        """
        digest = hashlib.sha256()
        for line in self.canonical_lines():
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PortGraph(nodes={len(self.nodes)}, "
            f"channels={len(self.channels)}, ports={self.num_ports})"
        )


def ensure_port_graph(topology_or_graph: object) -> PortGraph:
    """Normalize a :class:`PortGraph` or anything with ``port_graph()``.

    The adapter the table producers use so call sites can hand either a
    materialized :class:`~repro.core.topology.Topology` (which emits its
    graph) or the graph itself.
    """
    if isinstance(topology_or_graph, PortGraph):
        return topology_or_graph
    emit = getattr(topology_or_graph, "port_graph", None)
    if emit is None:
        raise TypeError(
            f"expected a PortGraph or a topology with port_graph(), "
            f"got {type(topology_or_graph).__name__}"
        )
    graph = emit()
    if not isinstance(graph, PortGraph):
        raise TypeError(
            f"{type(topology_or_graph).__name__}.port_graph() returned "
            f"{type(graph).__name__}, expected PortGraph"
        )
    return graph


def minimal_distances(
    graph: PortGraph, dest: NodeId
) -> Dict[NodeId, int]:
    """Hop-count BFS distances *to* ``dest`` over the channel graph.

    The graph-distance minimality basis: level-synchronous backward BFS
    over predecessors, in channel order, so results are deterministic
    for a fixed emitter.
    """
    dist: Dict[NodeId, int] = {dest: 0}
    frontier: List[NodeId] = [dest]
    hops = 0
    while frontier:
        hops += 1
        nxt: List[NodeId] = []
        for node in frontier:
            for channel in graph.in_channels.get(node, ()):
                if channel.src not in dist:
                    dist[channel.src] = hops
                    nxt.append(channel.src)
        frontier = nxt
    return dist


__all__ = [
    "NodeId",
    "PortChannel",
    "PortGraph",
    "ensure_port_graph",
    "minimal_distances",
]
