"""The 3-D mesh / torus topology pack.

The proof load for the port-graph IR: a topology family whose nodes are
*not* 2-D coordinates, built entirely from the same machinery the 2-D
families use — :class:`~repro.core.topology.Topology` subclasses emit
the port graph, :class:`~repro.core.routing.RoutingAlgorithm`
subclasses provide per-hop XYZ dimension order, and the shared seven
-port crossbar matrix feeds the certifier's turn model.  Nothing
downstream of construction (tabulation, compiled-engine lowering,
certification) knows these networks have a third axis.

Port mapping: a 3-D router has seven ports — ``P``, the four planar
mesh directions, and an up/down pair for the ``z`` axis.  The ``z``
channels ride the otherwise-unused vertical Ruche port ids (``RN`` for
``z-``, ``RS`` for ``z+``) so nodes flow through the same 9-port
arrays as 2-D tiles; :meth:`port_names` renders them ``D`` and ``U``.
Inter-layer (e.g. TSV) latency is modelled with the existing
``ruche_channel_latency`` knob, which :meth:`NetworkConfig.latency_for`
already applies to those port ids.

Deadlock freedom: ``mesh3d`` uses strict XYZ dimension order, acyclic
by construction (the certifier proves CDG acyclicity over the IR).
``torus3d`` routes each ring shortest-way and requires flit-buffer
flow control (``fbfc=True`` is forced by the config layer); per-ring
bubble invariants stand in for datelines exactly as on the 2-D
``torus-fbfc`` design points, so the certifier applies the same CDG
waiver.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.core.connectivity import Matrix, _freeze
from repro.core.coords import Coord, Coord3, Direction
from repro.core.params import NetworkConfig, TopologyKind
from repro.core.registry import register_routing, register_topology
from repro.core.routing import RoutingAlgorithm
from repro.core.topology import Channel, Topology
from repro.errors import ConfigError, RoutingError

P, W, E, N, S, RN, RS = (
    Direction.P,
    Direction.W,
    Direction.E,
    Direction.N,
    Direction.S,
    Direction.RN,
    Direction.RS,
)

#: Output direction per axis, negative then positive way.
_AXIS_DIRS: Tuple[Tuple[Direction, Direction], ...] = (
    (W, E),
    (N, S),
    (RN, RS),
)

#: Per-direction (dx, dy, dz) unit steps of the 3-D packs.
_STEP3: Dict[Direction, Tuple[int, int, int]] = {
    W: (-1, 0, 0),
    E: (1, 0, 0),
    N: (0, -1, 0),
    S: (0, 1, 0),
    RN: (0, 0, -1),
    RS: (0, 0, 1),
}

#: XYZ dimension-ordered seven-port crossbar, shared by ``mesh3d`` and
#: ``torus3d`` (torus routers have the same switch as mesh; the flow
#: control sits in front of it, as on the 2-D torus).  Inputs may only
#: continue their own axis, turn to a *later* axis, or eject.
MESH3D_XYZ: Matrix = _freeze({
    P: (P, W, E, N, S, RN, RS),
    W: (E, N, S, RN, RS, P),
    E: (W, N, S, RN, RS, P),
    N: (S, RN, RS, P),
    S: (N, RN, RS, P),
    RN: (RS, P),
    RS: (RN, P),
})


def connectivity_matrix_3d(config: NetworkConfig) -> Matrix:
    """The seven-port crossbar of the 3-D packs."""
    if not config.kind.is_3d:
        raise ConfigError(
            f"3-D connectivity requested for {config.kind!r}"
        )
    return MESH3D_XYZ


# ---------------------------------------------------------------------------
# Topologies
# ---------------------------------------------------------------------------
class Mesh3dTopology(Topology):
    """An open ``width x height x depth`` 3-D mesh."""

    def _build_nodes(self) -> Iterable[Coord]:
        # Layer-major: z outermost, then the familiar row-major plane,
        # matching the traffic layer's node enumeration.
        return (
            Coord3(x, y, z)
            for z in range(self.config.depth)
            for y in range(self.height)
            for x in range(self.width)
        )

    def _build_channels(self) -> Iterable[Channel]:
        depth = self.config.depth
        limits = (self.width, self.height, depth)
        for node in self.nodes:
            assert isinstance(node, Coord3)
            xyz = (node.x, node.y, node.z)
            for axis, (neg, pos) in enumerate(_AXIS_DIRS):
                if xyz[axis] + 1 < limits[axis]:
                    yield (node, pos, node.offset3(*_STEP3[pos]))
                if xyz[axis] - 1 >= 0:
                    yield (node, neg, node.offset3(*_STEP3[neg]))

    def port_names(self) -> Tuple[str, ...]:
        # The z pair rides the RN/RS port ids; render them honestly.
        names = [d.name for d in Direction]
        names[int(RN)] = "D"
        names[int(RS)] = "U"
        return tuple(names)

    @property
    def router_directions(self) -> Tuple[Direction, ...]:
        return (P, W, E, N, S, RN, RS)

    def link_span(self, direction: Direction) -> int:
        if direction is Direction.P:
            return 0
        if direction in (RN, RS):
            # One layer pitch, not a Ruche span (ruche_factor is 0).
            return 1
        if (
            self.config.kind is TopologyKind.TORUS3D
            and direction.is_local_link
        ):
            # Folded rings interleave every other tile, as on the 2-D
            # folded torus.
            return 2
        return 1


class Torus3dTopology(Mesh3dTopology):
    """A ``width x height x depth`` torus: rings on all three axes."""

    def _build_channels(self) -> Iterable[Channel]:
        limits = (self.width, self.height, self.config.depth)
        for node in self.nodes:
            assert isinstance(node, Coord3)
            xyz = (node.x, node.y, node.z)
            for axis, (neg, pos) in enumerate(_AXIS_DIRS):
                k = limits[axis]
                for direction in (pos, neg):
                    step = _STEP3[direction]
                    nxt = [
                        (c + d) % k if i == axis else c + d
                        for i, (c, d) in enumerate(zip(xyz, step))
                    ]
                    yield (node, direction, Coord3(*nxt))


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------
class _Routing3d(RoutingAlgorithm):
    """Shared 3-D scaffolding: Coord3 stepping and declared minimality."""

    def __init__(self, config: NetworkConfig) -> None:
        super().__init__(config)
        if not config.kind.is_3d:
            raise ConfigError(
                f"{type(self).__name__} requires a 3-D config, "
                f"got {config.kind!r}"
            )
        self.depth = config.depth

    def _advance(self, node: Coord, out_dir: Direction) -> Coord:
        if not isinstance(node, Coord3):
            raise RoutingError(f"3-D routing reached 2-D node {node!r}")
        step = _STEP3.get(out_dir)
        if step is None:
            raise RoutingError(
                f"3-D routing produced non-3-D direction {out_dir.name}"
            )
        nxt = node.offset3(*step)
        if self.config.kind is TopologyKind.TORUS3D:
            return Coord3(
                nxt.x % self.width, nxt.y % self.height, nxt.z % self.depth
            )
        return nxt

    @staticmethod
    def _deltas(node: Coord, dest: Coord) -> Tuple[int, ...]:
        if not (isinstance(node, Coord3) and isinstance(dest, Coord3)):
            raise RoutingError(
                f"3-D routing needs Coord3 endpoints, got "
                f"{node!r} -> {dest!r}"
            )
        return tuple(d - c for c, d in zip(node, dest))


@register_routing(
    "mesh3d-dor", description="minimal X-Y-Z dimension-ordered routing"
)
class Mesh3dDOR(_Routing3d):
    """Strict XYZ dimension order on the open 3-D mesh."""

    def route(
        self, node: Coord, in_dir: Direction, dest: Coord, subnet: int = 0
    ) -> Direction:
        for axis, delta in enumerate(self._deltas(node, dest)):
            if delta != 0:
                neg, pos = _AXIS_DIRS[axis]
                return pos if delta > 0 else neg
        return Direction.P

    def minimal_hops(self, src: Coord, dest: Coord) -> int:
        """3-axis Manhattan distance (declared-minimal basis)."""
        return sum(abs(d) for d in self._deltas(src, dest))


@register_routing(
    "torus3d-dor",
    description="per-ring shortest-way X-Y-Z order (FBFC rings)",
)
class Torus3dDOR(_Routing3d):
    """XYZ order, each ring traversed the shortest way.

    Ties on an even ring (distance exactly half the ring) break toward
    the positive direction, deterministically.  Deadlock freedom within
    each ring comes from the FBFC bubble invariant, not datelines, so
    the algorithm is single-VC.
    """

    def route(
        self, node: Coord, in_dir: Direction, dest: Coord, subnet: int = 0
    ) -> Direction:
        limits = (self.width, self.height, self.depth)
        for axis, delta in enumerate(self._deltas(node, dest)):
            if delta != 0:
                k = limits[axis]
                neg, pos = _AXIS_DIRS[axis]
                forward = delta % k
                return pos if forward <= k - forward else neg
        return Direction.P

    def minimal_hops(self, src: Coord, dest: Coord) -> int:
        """Sum of per-ring shortest-way distances."""
        limits = (self.width, self.height, self.depth)
        total = 0
        for axis, delta in enumerate(self._deltas(src, dest)):
            forward = delta % limits[axis]
            total += min(forward, limits[axis] - forward)
        return total


# ---------------------------------------------------------------------------
# Factories and registration
# ---------------------------------------------------------------------------
def topology_for_config(config: NetworkConfig) -> Topology:
    """The 3-D :class:`Topology` subclass for a 3-D config."""
    if config.kind is TopologyKind.MESH3D:
        return Mesh3dTopology(config)
    if config.kind is TopologyKind.TORUS3D:
        return Torus3dTopology(config)
    raise ConfigError(f"not a 3-D topology kind: {config.kind!r}")


def make_routing_3d(config: NetworkConfig) -> RoutingAlgorithm:
    """The 3-D routing algorithm for a 3-D config."""
    if config.kind is TopologyKind.MESH3D:
        return Mesh3dDOR(config)
    if config.kind is TopologyKind.TORUS3D:
        return Torus3dDOR(config)
    raise ConfigError(f"not a 3-D topology kind: {config.kind!r}")


def _config3d(
    name: str, width: int, height: int, **options: object
) -> NetworkConfig:
    # Depth arrives through spec options ({"depth": 4}); everything else
    # follows the builtin from_name grammar (torus3d forces fbfc there).
    return NetworkConfig.from_name(name, width, height, **options)


# Registered without custom component factories: the builtin
# make_topology / make_routing / connectivity_matrix dispatchers are
# kind-aware, so the 3-D packs behave as first-class builtins everywhere
# (including paths that start from a bare config).
register_topology(
    "mesh3d",
    description="3-D mesh, X-Y-Z DOR (depth option sets layers)",
    aliases=("mesh-3d",),
)(_config3d)
register_topology(
    "torus3d",
    description="3-D torus, per-ring shortest-way DOR over FBFC",
    aliases=("torus-3d",),
)(_config3d)


__all__ = [
    "MESH3D_XYZ",
    "Mesh3dDOR",
    "Mesh3dTopology",
    "Torus3dDOR",
    "Torus3dTopology",
    "connectivity_matrix_3d",
    "make_routing_3d",
    "topology_for_config",
]
