"""Named component registries for the network construction path.

The paper's whole evaluation is a sweep over design points — topology
family x dimensions x Ruche Factor x population x routing x traffic —
so every axis that varies is registered here under a stable name:
topologies, routing algorithms, router microarchitectures, traffic
patterns, and switch allocators.  :mod:`repro.core.spec` resolves names
through these registries when it builds a network, which makes each
axis pluggable: an out-of-tree module can register a new topology (see
``examples/plugin_topology.py``) and every consumer — simulator, static
verifier, benchmarks, experiment drivers — picks it up without a core
change.

Builtin components self-register when their defining module is imported
(:mod:`repro.core.routing` for routing algorithms,
:mod:`repro.sim.router` for router kinds, :mod:`repro.sim.traffic` for
patterns, :mod:`repro.sim.allocator` for allocators, and
:mod:`repro.core.spec` for the paper's topology families).

A miss never fails silently: :meth:`Registry.get` raises
:class:`~repro.errors.ConfigError` listing every known name.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Generic, Optional, Tuple, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")

__all__ = [
    "ALLOCATORS",
    "ENGINES",
    "PATTERNS",
    "ROUTERS",
    "ROUTINGS",
    "TOPOLOGIES",
    "Registry",
    "TopologyProvider",
    "register_allocator",
    "register_engine",
    "register_pattern",
    "register_router",
    "register_routing",
    "register_topology",
]


class Registry(Generic[T]):
    """A named collection of factories for one component kind.

    Names are case-preserving but matched as given; register lowercase
    names and normalize at the call site.  ``aliases`` resolve to the
    same item but are not listed by :meth:`available` (which reports
    canonical names only, sorted).
    """

    def __init__(
        self,
        kind: str,
        *,
        populate: Optional[Callable[[], None]] = None,
    ) -> None:
        self.kind = kind
        self._items: Dict[str, T] = {}
        self._descriptions: Dict[str, str] = {}
        self._aliases: Dict[str, str] = {}
        #: Lazy self-population hook: registries whose builtin entries
        #: live in modules nobody has imported yet (the engines register
        #: at ``repro.sim.simulator`` import) run it once, before the
        #: first lookup, so a miss always reports the real menu instead
        #: of "(none registered)".
        self._populate = populate
        self._populated = populate is None

    def _ensure_populated(self) -> None:
        if not self._populated:
            # Flip the flag first: the populate hook imports the module
            # whose registrations land right back here.
            self._populated = True
            assert self._populate is not None
            self._populate()

    def register(
        self,
        name: str,
        item: T,
        *,
        description: str = "",
        aliases: Tuple[str, ...] = (),
        replace: bool = False,
    ) -> T:
        """Register ``item`` under ``name`` (and ``aliases``)."""
        if not replace and name in self:
            raise ConfigError(
                f"{self.kind} {name!r} is already registered; pass "
                f"replace=True to override"
            )
        self._items[name] = item
        self._descriptions[name] = description
        for alias in aliases:
            if not replace and alias in self:
                raise ConfigError(
                    f"{self.kind} alias {alias!r} is already registered"
                )
            self._aliases[alias] = name
        return item

    def add(
        self,
        name: str,
        *,
        description: str = "",
        aliases: Tuple[str, ...] = (),
        replace: bool = False,
    ) -> Callable[[T], T]:
        """Decorator form of :meth:`register`."""

        def decorate(item: T) -> T:
            return self.register(
                name,
                item,
                description=description,
                aliases=aliases,
                replace=replace,
            )

        return decorate

    def get(self, name: str) -> T:
        """The item registered under ``name`` (or an alias of it).

        Raises :class:`~repro.errors.ConfigError` naming every known
        component on a miss, so a typo in a sweep fails with the menu in
        hand instead of a bare KeyError hours in.
        """
        self._ensure_populated()
        canonical = self._aliases.get(name, name)
        item = self._items.get(canonical)
        if item is None:
            known = ", ".join(self.available())
            raise ConfigError(
                f"unknown {self.kind} {name!r}; known {self.kind}s: "
                f"{known or '(none registered)'}"
            )
        return item

    def describe(self, name: str) -> str:
        """One-line description recorded at registration time."""
        self.get(name)  # raise the canonical miss error
        return self._descriptions[self._aliases.get(name, name)]

    def available(self) -> Tuple[str, ...]:
        """All canonical names, sorted."""
        self._ensure_populated()
        return tuple(sorted(self._items))

    def aliases_of(self, name: str) -> Tuple[str, ...]:
        """The aliases resolving to canonical ``name``, sorted."""
        self._ensure_populated()
        return tuple(
            sorted(a for a, c in self._aliases.items() if c == name)
        )

    def menu(self) -> Tuple[Tuple[str, Tuple[str, ...], str], ...]:
        """``(name, aliases, description)`` rows, sorted by name.

        The registry's printable catalogue — assembled purely from
        registration metadata, so listing a menu never constructs a
        component (a registered factory with a heavy import or a
        validation-time failure still lists cleanly).
        """
        self._ensure_populated()
        return tuple(
            (name, self.aliases_of(name), self._descriptions[name])
            for name in self.available()
        )

    def __contains__(self, name: object) -> bool:
        self._ensure_populated()
        return name in self._items or name in self._aliases

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self._items)

    def unregister(self, name: str) -> None:
        """Remove a registration (test hygiene for plugin round-trips)."""
        self._items.pop(name, None)
        self._descriptions.pop(name, None)
        stale = [a for a, c in sorted(self._aliases.items()) if c == name]
        for alias in stale:
            del self._aliases[alias]


@dataclasses.dataclass(frozen=True)
class TopologyProvider:
    """Everything needed to materialize one named topology family.

    ``config_factory(name, width, height, **options)`` must return a
    :class:`~repro.core.params.NetworkConfig`.  The remaining factories
    are optional overrides, each taking the built config; when ``None``
    the builtin components are used
    (:class:`~repro.core.topology.Topology`,
    :func:`~repro.core.routing.make_routing`, and
    :func:`~repro.core.connectivity.connectivity_matrix`).
    """

    name: str
    description: str
    config_factory: Callable[..., Any]
    topology_factory: Optional[Callable[..., Any]] = None
    routing_factory: Optional[Callable[..., Any]] = None
    matrix_factory: Optional[Callable[..., Any]] = None

    @property
    def has_custom_components(self) -> bool:
        return (
            self.topology_factory is not None
            or self.routing_factory is not None
            or self.matrix_factory is not None
        )


#: Topology families, e.g. ``"mesh"``, ``"ruche"``, plugin topologies.
TOPOLOGIES: Registry[TopologyProvider] = Registry("topology")
#: Routing algorithm classes/factories taking a config.
ROUTINGS: Registry[Callable[..., Any]] = Registry("routing algorithm")
#: Router microarchitecture builders (``wormhole`` / ``vc`` / ``fbfc``).
ROUTERS: Registry[Callable[..., Any]] = Registry("router kind")
#: Traffic pattern factories taking a config.
PATTERNS: Registry[Callable[..., Any]] = Registry("traffic pattern")
#: Switch allocator factories ``(num_inputs, num_outputs) -> allocator``.
ALLOCATORS: Registry[Callable[..., Any]] = Registry("allocator")
def _populate_engines() -> None:
    import repro.sim.simulator  # noqa: F401


#: Simulation engines sharing run_synthetic's signature: ``"reference"``
#: (the object-per-flit Network) and ``"compiled"`` (the flat-array
#: engine of :mod:`repro.sim.fastsim`); both register on import of
#: :mod:`repro.sim.simulator`, which the registry imports on first
#: lookup so a miss in a fresh process still prints the engine menu.
ENGINES: Registry[Callable[..., Any]] = Registry(
    "simulation engine", populate=_populate_engines
)


def register_topology(
    name: str,
    *,
    description: str = "",
    aliases: Tuple[str, ...] = (),
    topology: Optional[Callable[..., Any]] = None,
    routing: Optional[Callable[..., Any]] = None,
    matrix: Optional[Callable[..., Any]] = None,
    replace: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a topology family; decorates its config factory.

    The decorated function receives ``(name, width, height, **options)``
    and returns a :class:`~repro.core.params.NetworkConfig`.  Optional
    ``topology`` / ``routing`` / ``matrix`` factories plug in custom
    channel construction, route computation, and crossbar connectivity —
    the full recipe an out-of-tree topology needs (see
    ``docs/architecture.md``, "Writing a plugin topology").
    """

    def decorate(config_factory: Callable[..., Any]) -> Callable[..., Any]:
        provider = TopologyProvider(
            name=name,
            description=description,
            config_factory=config_factory,
            topology_factory=topology,
            routing_factory=routing,
            matrix_factory=matrix,
        )
        TOPOLOGIES.register(
            name,
            provider,
            description=description,
            aliases=aliases,
            replace=replace,
        )
        return config_factory

    return decorate


def register_routing(
    name: str,
    *,
    description: str = "",
    aliases: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a routing algorithm factory ``(config) -> routing``."""
    return ROUTINGS.add(
        name, description=description, aliases=aliases, replace=replace
    )


def register_router(
    name: str,
    *,
    description: str = "",
    aliases: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a router builder (see :mod:`repro.sim.router`)."""
    return ROUTERS.add(
        name, description=description, aliases=aliases, replace=replace
    )


def register_pattern(
    name: str,
    *,
    description: str = "",
    aliases: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a traffic pattern factory ``(config) -> PatternFn``."""
    return PATTERNS.add(
        name, description=description, aliases=aliases, replace=replace
    )


def register_allocator(
    name: str,
    *,
    description: str = "",
    aliases: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a switch allocator factory ``(inputs, outputs) -> alloc``."""
    return ALLOCATORS.add(
        name, description=description, aliases=aliases, replace=replace
    )


def register_engine(
    name: str,
    *,
    description: str = "",
    aliases: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a simulation engine.

    The registered callable must accept the full
    :func:`repro.sim.simulator.run_synthetic` signature (minus
    ``engine``) and return a ``RunResult``; engines are interchangeable
    per the cross-engine equivalence contract (identical metric
    fingerprints for identical inputs).
    """
    return ENGINES.add(
        name, description=description, aliases=aliases, replace=replace
    )
