"""Crossbar connectivity matrices (paper Figure 5).

A connectivity matrix maps each *input* port to the set of *output* ports
its packets may be switched to.  The matrix determines

* which crossbar mux inputs physically exist (area and energy models), and
* which moves the simulator may legally perform (validated in tests against
  the routing algorithms).

The paper's Figure 5 reports, for the Full Ruche X-Y DOR router, that
depopulation removes 16 connections, shrinks the P output from 9 inputs to
7, and removes 5 inputs from each of the RS/RN outputs.  Those counts are
reproduced exactly by :func:`connectivity_matrix` and locked in by tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Tuple

from repro.core.coords import Direction
from repro.core.params import DorOrder, NetworkConfig, TopologyKind
from repro.errors import ConfigError

Matrix = Dict[Direction, FrozenSet[Direction]]

P, W, E, N, S, RW, RE, RN, RS = (
    Direction.P,
    Direction.W,
    Direction.E,
    Direction.N,
    Direction.S,
    Direction.RW,
    Direction.RE,
    Direction.RN,
    Direction.RS,
)

# Axis swap used to derive Y-X matrices from X-Y ones.
_SWAP = {P: P, W: N, N: W, E: S, S: E, RW: RN, RN: RW, RE: RS, RS: RE}


def _freeze(raw: Mapping[Direction, Tuple[Direction, ...]]) -> Matrix:
    return {k: frozenset(v) for k, v in raw.items()}


def _swap_axes(matrix: Matrix) -> Matrix:
    return {
        _SWAP[inp]: frozenset(_SWAP[out] for out in outs)
        for inp, outs in matrix.items()
    }


# ---------------------------------------------------------------------------
# Base matrices, all in X-Y DOR form (first dimension X).
# ---------------------------------------------------------------------------

#: Minimal 2-D mesh DOR crossbar (the "o" marks of Figure 5), as employed in
#: the Celerity manycore.
MESH_XY: Matrix = _freeze({
    P: (P, W, E, N, S),
    W: (E, N, S, P),
    E: (W, N, S, P),
    N: (S, P),
    S: (N, P),
})

#: Full Ruche, depopulated (Figure 5 blue triangles + mesh "o" marks).
#: Ruche channels are boarded at injection (X) or from same-axis local
#: links (Y); packets leave an X Ruche channel onto local links before
#: turning, and ride Y Ruche channels straight to ejection.
FULL_RUCHE_DEPOP_XY: Matrix = _freeze({
    P: (P, W, E, N, S, RW, RE),
    W: (E, N, S, P),
    E: (W, N, S, P),
    N: (S, P, RS),
    S: (N, P, RN),
    RW: (RE, E),
    RE: (RW, W),
    RN: (RS, P),
    RS: (RN, P),
})

#: The 16 extra connections of the fully-populated router (Figure 5 red x):
#: direct turns off the X Ruche channels and direct boarding of the Y Ruche
#: channels from non-axis inputs.
_FULL_RUCHE_POP_EXTRA: Mapping[Direction, Tuple[Direction, ...]] = {
    RW: (N, S, P, RN, RS),
    RE: (N, S, P, RN, RS),
    W: (RN, RS),
    E: (RN, RS),
    P: (RN, RS),
}

#: Half Ruche (horizontal Ruche channels only), depopulated, X-Y DOR.
HALF_RUCHE_DEPOP_XY: Matrix = _freeze({
    P: (P, W, E, N, S, RW, RE),
    W: (E, N, S, P),
    E: (W, N, S, P),
    N: (S, P),
    S: (N, P),
    RW: (RE, E),
    RE: (RW, W),
})

_HALF_RUCHE_POP_EXTRA: Mapping[Direction, Tuple[Direction, ...]] = {
    RW: (N, S, P),
    RE: (N, S, P),
}

#: Half Ruche, depopulated, Y-X DOR (the response-network router of the
#: cellular manycore).  X is now the second dimension, so its Ruche
#: channels are boarded local-first from same-axis inputs.
HALF_RUCHE_DEPOP_YX: Matrix = _freeze({
    P: (P, W, E, N, S),
    N: (S, E, W, P),
    S: (N, E, W, P),
    W: (E, RE, P),
    E: (W, RW, P),
    RW: (RE, P),
    RE: (RW, P),
})

_HALF_RUCHE_POP_EXTRA_YX: Mapping[Direction, Tuple[Direction, ...]] = {
    N: (RE, RW),
    S: (RE, RW),
    P: (RE, RW),
}

#: 2x multi-mesh: two disjoint mesh crossbars; the second mesh reuses the
#: Ruche port names.  Only the P port fans out to both meshes.
MULTI_MESH: Matrix = _freeze({
    P: (P, W, E, N, S, RW, RE, RN, RS),
    W: (E, N, S, P),
    E: (W, N, S, P),
    N: (S, P),
    S: (N, P),
    RW: (RE, RN, RS, P),
    RE: (RW, RN, RS, P),
    RN: (RS, P),
    RS: (RN, P),
})


def _with_extra(
    base: Matrix, extra: Mapping[Direction, Tuple[Direction, ...]]
) -> Matrix:
    merged = {k: set(v) for k, v in base.items()}
    for inp, outs in extra.items():
        merged.setdefault(inp, set()).update(outs)
    return {k: frozenset(v) for k, v in merged.items()}


FULL_RUCHE_POP_XY: Matrix = _with_extra(
    FULL_RUCHE_DEPOP_XY, _FULL_RUCHE_POP_EXTRA
)
HALF_RUCHE_POP_XY: Matrix = _with_extra(
    HALF_RUCHE_DEPOP_XY, _HALF_RUCHE_POP_EXTRA
)
HALF_RUCHE_POP_YX: Matrix = _with_extra(
    HALF_RUCHE_DEPOP_YX, _HALF_RUCHE_POP_EXTRA_YX
)


def connectivity_matrix(config: NetworkConfig) -> Matrix:
    """The crossbar connectivity matrix for a design point's router."""
    kind = config.kind
    xy = config.dor_order is DorOrder.XY
    if kind is TopologyKind.MESH or kind.is_torus:
        # Torus routers have the same five-port crossbar as mesh; the VC
        # structure sits in front of it (Figure 3c).
        return MESH_XY if xy else _swap_axes(MESH_XY)
    if kind is TopologyKind.MULTI_MESH:
        return MULTI_MESH if xy else _swap_axes(MULTI_MESH)
    if kind in (TopologyKind.FULL_RUCHE, TopologyKind.RUCHE_ONE):
        # Ruche-One requires the fully-populated crossbar (Section 3.2).
        depop = config.depopulated and kind is TopologyKind.FULL_RUCHE
        base = FULL_RUCHE_DEPOP_XY if depop else FULL_RUCHE_POP_XY
        return base if xy else _swap_axes(base)
    if kind is TopologyKind.HALF_RUCHE:
        if xy:
            return (
                HALF_RUCHE_DEPOP_XY
                if config.depopulated
                else HALF_RUCHE_POP_XY
            )
        return (
            HALF_RUCHE_DEPOP_YX if config.depopulated else HALF_RUCHE_POP_YX
        )
    if kind.is_3d:
        # Imported lazily: the 3-D pack depends on this module.
        from repro.core.topo3d import connectivity_matrix_3d

        return connectivity_matrix_3d(config)
    raise ConfigError(f"no connectivity matrix for {kind!r}")


def port_turns(matrix: Matrix) -> Dict[int, FrozenSet[int]]:
    """A connectivity matrix as integer port-id turn sets.

    The port-graph-IR view of a crossbar: ``in_port -> {out_port}``
    with :class:`~repro.core.coords.Direction` erased, which is what
    the table certifier consumes (it never sees coordinates or
    directions, only port ids).
    """
    return {
        int(inp): frozenset(int(out) for out in outs)
        for inp, outs in matrix.items()
    }


def fault_tolerant_matrix(config: NetworkConfig) -> Matrix:
    """Fully-connected crossbar for graceful-degradation operation.

    Dimension-ordered crossbars physically lack the turns a detour
    around a dead link needs (a mesh DOR router cannot turn Y back to
    X), so a single link failure would partition whole row/column
    pairs.  Fault-tolerant routing therefore assumes a router whose
    switch connects every input to every output — including the
    reverse turn back out the input's own side, which dead-end detours
    require.  The area cost of that provisioning is measurable with the
    existing physical models (``max_mux_inputs`` grows to the full port
    count); see the fault-injection section of ``docs/methodology.md``.
    """
    from repro.core.topology import make_topology

    ports = frozenset(make_topology(config).router_directions)
    return {inp: ports for inp in ports}


# ---------------------------------------------------------------------------
# Accounting helpers (feed the physical models)
# ---------------------------------------------------------------------------

def total_connections(matrix: Matrix) -> int:
    """Total number of crossbar connections (Figure 5 discussion)."""
    return sum(len(outs) for outs in matrix.values())


def output_fanin(matrix: Matrix) -> Dict[Direction, int]:
    """Per-output mux input count (crossbar mux sizes)."""
    fanin: Dict[Direction, int] = {}
    for inp, outs in matrix.items():
        for out in outs:
            fanin[out] = fanin.get(out, 0) + 1
    return fanin


def max_mux_inputs(matrix: Matrix) -> int:
    """The largest crossbar mux (7 for depop, 9 for pop Full Ruche)."""
    return max(output_fanin(matrix).values())


def input_fanout(matrix: Matrix) -> Dict[Direction, int]:
    """Per-input fanout (drives the input buffer's load in timing models)."""
    return {inp: len(outs) for inp, outs in matrix.items()}
