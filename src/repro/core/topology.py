"""Topology construction: nodes, channels, bisection accounting.

A :class:`Topology` materializes a :class:`~repro.core.params.NetworkConfig`
into the set of tiles and physical channels that the simulator instantiates
and that the physical models measure.  It also provides the analytic
quantities used by the paper's Table 4 (bisection bandwidth vs. memory-tile
bandwidth) and Table 1 (physical-scalability properties).

Coordinate system: ``x`` in ``[0, width)`` grows eastward; ``y`` in
``[0, height)`` grows southward.  When ``edge_memory`` is enabled, memory
endpoints occupy the phantom rows ``y = -1`` (north) and ``y = height``
(south), one per column, reachable through the edge routers' vertical
channels — the arrangement of the cellular manycore in Section 4.5+.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.core.coords import (
    ALL_DIRECTIONS,
    MESH_DIRECTIONS,
    RUCHE_HORIZONTAL,
    RUCHE_VERTICAL,
    Coord,
    Direction,
)
from repro.core.params import NetworkConfig, TopologyKind
from repro.core.portgraph import PortChannel, PortGraph
from repro.errors import ConfigError

#: A physical channel: (source tile, output direction, destination tile).
Channel = Tuple[Coord, Direction, Coord]


class Topology:
    """The physical structure of one network design point.

    Parameters
    ----------
    config:
        The network design point to materialize.
    """

    def __init__(self, config: NetworkConfig) -> None:
        self.config = config
        self.width = config.width
        self.height = config.height
        self.nodes: List[Coord] = list(self._build_nodes())
        self.memory_nodes: List[Coord] = []
        if config.edge_memory:
            self.memory_nodes = [Coord(x, -1) for x in range(self.width)]
            self.memory_nodes += [
                Coord(x, self.height) for x in range(self.width)
            ]
        self.channels: List[Channel] = list(self._build_channels())
        # Outgoing channel map: (coord, direction) -> destination coord.
        self.channel_map: Dict[Tuple[Coord, Direction], Coord] = {
            (src, direction): dst for src, direction, dst in self.channels
        }

    # ------------------------------------------------------------------
    # Node and channel construction
    # ------------------------------------------------------------------
    def _build_nodes(self) -> Iterable[Coord]:
        """The routable tiles, in canonical (row-major) order.

        Subclasses override this to change the node set — the 3-D pack
        yields :class:`~repro.core.coords.Coord3` tiles layer by layer —
        and every consumer (simulator enumeration, port-graph
        fingerprints, route tables) follows this order.
        """
        return (
            Coord(x, y)
            for y in range(self.height)
            for x in range(self.width)
        )

    def _build_channels(self) -> Iterable[Channel]:
        cfg = self.config
        kind = cfg.kind
        for node in self.nodes:
            x, y = node
            # Local (mesh) channels.  Torus dimensions use wrap-around
            # rings instead of open rows/columns.
            if kind.is_torus:
                yield from self._ring_channels(node, horizontal=True)
            else:
                if x + 1 < self.width:
                    yield (node, Direction.E, Coord(x + 1, y))
                if x - 1 >= 0:
                    yield (node, Direction.W, Coord(x - 1, y))
            if kind is TopologyKind.FOLDED_TORUS:
                yield from self._ring_channels(node, horizontal=False)
            else:
                if y + 1 < self.height:
                    yield (node, Direction.S, Coord(x, y + 1))
                if y - 1 >= 0:
                    yield (node, Direction.N, Coord(x, y - 1))
            # Ruche channels, horizontal then vertical.
            rf = cfg.ruche_factor
            if cfg.has_horizontal_ruche:
                if x + rf < self.width:
                    yield (node, Direction.RE, Coord(x + rf, y))
                if x - rf >= 0:
                    yield (node, Direction.RW, Coord(x - rf, y))
            if cfg.has_vertical_ruche:
                if y + rf < self.height:
                    yield (node, Direction.RS, Coord(x, y + rf))
                if y - rf >= 0:
                    yield (node, Direction.RN, Coord(x, y - rf))
        # Edge memory channels (both directions, so memory tiles can both
        # receive requests and inject responses).
        if cfg.edge_memory:
            if kind is TopologyKind.FOLDED_TORUS:
                raise ConfigError(
                    "edge memory is not defined for a full torus "
                    "(the vertical dimension has no edges)"
                )
            for x in range(self.width):
                north = Coord(x, -1)
                south = Coord(x, self.height)
                yield (Coord(x, 0), Direction.N, north)
                yield (north, Direction.S, Coord(x, 0))
                yield (Coord(x, self.height - 1), Direction.S, south)
                yield (south, Direction.N, Coord(x, self.height - 1))

    def _ring_channels(self, node: Coord, horizontal: bool) -> Iterable[Channel]:
        x, y = node
        if horizontal:
            k = self.width
            yield (node, Direction.E, Coord((x + 1) % k, y))
            yield (node, Direction.W, Coord((x - 1) % k, y))
        else:
            k = self.height
            yield (node, Direction.S, Coord(x, (y + 1) % k))
            yield (node, Direction.N, Coord(x, (y - 1) % k))

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def neighbor(self, node: Coord, direction: Direction) -> Coord:
        """Destination tile of ``node``'s ``direction`` output channel.

        Raises ``KeyError`` if that channel does not exist (array edge).
        """
        return self.channel_map[(node, direction)]

    def has_channel(self, node: Coord, direction: Direction) -> bool:
        return (node, direction) in self.channel_map

    def output_directions(self, node: Coord) -> Tuple[Direction, ...]:
        """The output directions wired at ``node`` (excluding ``P``)."""
        return tuple(
            d for d in ALL_DIRECTIONS
            if d is not Direction.P and (node, d) in self.channel_map
        )

    # ------------------------------------------------------------------
    # Port-graph emission
    # ------------------------------------------------------------------
    def port_names(self) -> Tuple[str, ...]:
        """Human-readable name per port id, for rendering findings."""
        return tuple(direction.name for direction in ALL_DIRECTIONS)

    def port_graph(self) -> PortGraph:
        """Emit this topology as the port-graph IR.

        The single contract between construction and every downstream
        consumer (route tabulation, engine lowering, certification).
        Channel order preserves :attr:`channels` construction order
        bit-for-bit, so two builds of the same config produce the same
        :meth:`~repro.core.portgraph.PortGraph.fingerprint`.
        """
        cfg = self.config
        return PortGraph(
            nodes=tuple(self.nodes),
            num_ports=len(ALL_DIRECTIONS),
            ejection_port=int(Direction.P),
            port_names=self.port_names(),
            channels=tuple(
                PortChannel(
                    src=src,
                    out_port=int(direction),
                    dst=dst,
                    in_port=int(direction.opposite),
                    latency=cfg.latency_for(direction),
                    width=cfg.channel_width_bits,
                )
                for src, direction, dst in self.channels
            ),
        )

    @property
    def router_directions(self) -> Tuple[Direction, ...]:
        """The full port list of this design's router (including ``P``).

        This is the router *radix* used by the physical models; edge tiles
        leave some ports unconnected but are physically identical tiles
        (the paper's tiling requirement).
        """
        cfg = self.config
        dirs: List[Direction] = list(MESH_DIRECTIONS)
        if cfg.has_horizontal_ruche:
            dirs += list(RUCHE_HORIZONTAL)
        if cfg.has_vertical_ruche:
            dirs += list(RUCHE_VERTICAL)
        return tuple(dirs)

    def link_span(self, direction: Direction) -> int:
        """Physical length of a channel, in tile pitches.

        Local mesh links span one tile; Ruche links span ``ruche_factor``
        tiles; folded-torus links span two tiles (the folding interleaves
        every other tile, exactly as in the Tenstorrent layouts the paper
        cites).
        """
        if direction is Direction.P:
            return 0
        if direction.is_ruche:
            return self.config.ruche_factor
        if self.config.kind is TopologyKind.FOLDED_TORUS:
            return 2
        if self.config.kind is TopologyKind.HALF_TORUS and direction.is_horizontal:
            return 2
        return 1

    # ------------------------------------------------------------------
    # Analytic bandwidth quantities (Table 4)
    # ------------------------------------------------------------------
    def bisection_channels(self, axis: str = "vertical") -> int:
        """Number of channels crossing the array's bisection cut.

        ``axis="vertical"`` cuts between columns ``width/2 - 1`` and
        ``width/2`` (the cut stressed by the paper's all-to-edge traffic);
        ``axis="horizontal"`` cuts between the middle rows.  Each channel
        carries one flit per cycle, so this count *is* the bisection
        bandwidth in flits/cycle for unit channel width.
        """
        if axis == "vertical":
            cut = self.width // 2

            def crosses(src: Coord, dst: Coord) -> bool:
                return (src.x < cut) != (dst.x < cut)

        elif axis == "horizontal":
            cut = self.height // 2

            def crosses(src: Coord, dst: Coord) -> bool:
                return (src.y < cut) != (dst.y < cut)

        else:
            raise ConfigError(f"unknown bisection axis: {axis!r}")
        return sum(
            1
            for src, _direction, dst in self.channels
            if dst.y not in (-1, self.height)  # exclude memory stubs
            and src.y not in (-1, self.height)
            and crosses(src, dst)
        )

    def memory_tile_bandwidth(self) -> int:
        """Aggregate memory-port bandwidth in flits/cycle (Table 4).

        One port per column on each of the northern and southern edges.
        """
        return 2 * self.width

    # ------------------------------------------------------------------
    # Table 1: physical scalability criteria
    # ------------------------------------------------------------------
    def physical_properties(self) -> Dict[str, bool]:
        """The paper's Table 1 row for this topology."""
        return physical_properties(self.config.kind)


#: Table 1 reference rows for topologies the paper compares against but does
#: not simulate.  Keys are the column headers of Table 1.
_TABLE1_CRITERIA = (
    "regular_tile_shape",
    "regular_wire_routing",
    "constant_router_radix",
    "standard_cell_based",
    "non_power_of_2_tiling",
    "long_range_links",
    "constant_link_distance",
)

_TABLE1_ROWS: Dict[str, Sequence[bool]] = {
    "ruche": (True, True, True, True, True, True, True),
    "torus": (True, True, True, True, True, True, True),
    "mesh": (True, True, True, True, True, False, True),
    "multimesh": (True, True, True, True, True, False, True),
    "flattened-butterfly": (False, False, False, True, False, True, False),
    "mecs": (False, False, False, True, True, True, False),
    "swizzle-switch": (False, False, False, False, True, True, False),
}

_KIND_TO_TABLE1 = {
    TopologyKind.MESH: "mesh",
    TopologyKind.FOLDED_TORUS: "torus",
    TopologyKind.HALF_TORUS: "torus",
    TopologyKind.FULL_RUCHE: "ruche",
    TopologyKind.HALF_RUCHE: "ruche",
    TopologyKind.RUCHE_ONE: "ruche",
    TopologyKind.MULTI_MESH: "multimesh",
    # The 3-D pack inherits its per-layer physical row: a 3-D mesh is a
    # stack of meshes, a 3-D (folded) torus a stack of tori.
    TopologyKind.MESH3D: "mesh",
    TopologyKind.TORUS3D: "torus",
}


def make_topology(config: NetworkConfig) -> Topology:
    """The builtin :class:`Topology` subclass for a config's kind.

    The kind-aware counterpart of calling ``Topology(config)`` directly:
    3-D kinds dispatch to the :mod:`repro.core.topo3d` subclasses (whose
    node set and channels span layers), everything else builds the base
    2-D topology.  Construction paths that take a bare config
    (fault-tolerant matrices, the static verifier, fault-aware tables)
    route through here so they stay kind-agnostic.
    """
    if config.kind.is_3d:
        # Imported lazily: topo3d depends on this module.
        from repro.core.topo3d import topology_for_config

        return topology_for_config(config)
    return Topology(config)


def physical_properties(kind: Union[TopologyKind, str]) -> Dict[str, bool]:
    """Table 1 physical-scalability row for a topology.

    ``kind`` may be a :class:`TopologyKind` or one of the reference row
    names (``"flattened-butterfly"``, ``"mecs"``, ``"swizzle-switch"``).
    """
    if isinstance(kind, TopologyKind):
        row = _TABLE1_ROWS[_KIND_TO_TABLE1[kind]]
    else:
        try:
            row = _TABLE1_ROWS[str(kind)]
        except KeyError as exc:
            raise ConfigError(
                f"unknown topology for Table 1: {kind!r}"
            ) from exc
    return dict(zip(_TABLE1_CRITERIA, row))


def table1_criteria() -> Tuple[str, ...]:
    """Column headers of Table 1, in paper order."""
    return _TABLE1_CRITERIA


def table1_topologies() -> Tuple[str, ...]:
    """Row names of Table 1, in paper order."""
    return (
        "ruche",
        "torus",
        "mesh",
        "multimesh",
        "flattened-butterfly",
        "mecs",
        "swizzle-switch",
    )
