"""Core Ruche-network abstractions: configs, topologies, routing, crossbars.

This subpackage implements the paper's primary contribution — the Ruche
network family (Section 3) — alongside the baselines it is evaluated
against (2-D mesh, 2x multi-mesh, folded torus).
"""

from repro.core.connectivity import (
    connectivity_matrix,
    fault_tolerant_matrix,
    max_mux_inputs,
    output_fanin,
    total_connections,
)
from repro.core.coords import Coord, Direction
from repro.core.params import DorOrder, NetworkConfig, TopologyKind
from repro.core.routing import (
    FaultAwareTableRouting,
    MeshDOR,
    MultiMeshRouting,
    RoutingAlgorithm,
    RucheDOR,
    RucheOneRouting,
    TorusDOR,
    make_fault_aware_routing,
    make_routing,
)
from repro.core.topology import (
    Topology,
    physical_properties,
    table1_criteria,
    table1_topologies,
)

__all__ = [
    "Coord",
    "Direction",
    "DorOrder",
    "NetworkConfig",
    "TopologyKind",
    "Topology",
    "RoutingAlgorithm",
    "MeshDOR",
    "RucheDOR",
    "RucheOneRouting",
    "MultiMeshRouting",
    "TorusDOR",
    "make_routing",
    "FaultAwareTableRouting",
    "make_fault_aware_routing",
    "connectivity_matrix",
    "fault_tolerant_matrix",
    "total_connections",
    "output_fanin",
    "max_mux_inputs",
    "physical_properties",
    "table1_criteria",
    "table1_topologies",
]
