"""Declarative network specs and the single construction path.

A :class:`NetworkSpec` is a frozen, JSON-serializable description of one
simulation design point: topology name and dimensions, config options,
routing/router/allocator overrides, traffic pattern and rate, the
three-phase measurement window, and the fault/watchdog knobs.  Specs are
hashable (options are stored as a sorted tuple of pairs), so they can
key caches and campaign checkpoints directly.

Construction of simulator objects goes through this module and nowhere
else:

* :func:`build_network` — a wired :class:`~repro.sim.network.Network`
  from a spec or a bare :class:`~repro.core.params.NetworkConfig`;
* :func:`build_run` — one open-loop measurement
  (:func:`~repro.sim.simulator.run_synthetic`) of a spec;
* :func:`build_routing` / :func:`build_pattern` — the named component
  lookups behind the network;
* :func:`network_components` — the (topology, routing, matrix) bundle a
  :class:`~repro.sim.network.Network` consumes.

Topology names resolve through :data:`repro.core.registry.TOPOLOGIES`,
so a plugin registered with
:func:`~repro.core.registry.register_topology` is constructible,
simulable, and statically verifiable with zero core changes.

Layering: this module lives in ``core`` and therefore never imports
``repro.sim`` at module level — simulator classes are imported lazily
inside the build functions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple

from repro.core.connectivity import (
    Matrix,
    connectivity_matrix,
    fault_tolerant_matrix,
)
from repro.core.params import DorOrder, NetworkConfig, TopologyKind
from repro.core.registry import (
    ROUTINGS,
    TOPOLOGIES,
    TopologyProvider,
    register_topology,
)
from repro.core.routing import (
    RoutingAlgorithm,
    make_fault_aware_routing,
    make_routing,
)
from repro.core.topology import Topology, make_topology
from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.sim.network import Network
    from repro.sim.simulator import RunResult

#: Config overrides frozen as a sorted tuple of pairs (hashable).
Options = Tuple[Tuple[str, Any], ...]


def _freeze_options(options: Mapping[str, Any]) -> Options:
    return tuple(sorted(options.items()))


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class NetworkSpec:
    """One simulation design point, declaratively.

    Only ``topology``, ``width``, and ``height`` are required; the
    defaults reproduce the open-loop methodology of
    :func:`~repro.sim.simulator.run_synthetic`.  ``options`` are keyword
    overrides forwarded to the topology's config factory (for the
    builtin families: :meth:`~repro.core.params.NetworkConfig.from_name`
    keywords such as ``half`` or ``edge_memory``).
    """

    #: Registered topology name (``"mesh"``, ``"ruche2-depop"``, a
    #: plugin name, ...).
    topology: str
    width: int
    height: int
    options: Options = ()
    #: Optional named overrides; ``None`` means the topology's default.
    routing: Optional[str] = None
    router: Optional[str] = None
    allocator: Optional[str] = None
    #: Traffic.
    pattern: str = "uniform_random"
    rate: float = 0.1
    #: Three-phase measurement window.
    warmup: int = 500
    measure: int = 1000
    drain_limit: int = 3000
    seed: int = 1
    #: Fault injection (``FaultSchedule.random_mixed`` arguments); all
    #: counts zero without ``degraded_model`` means no faults.
    fault_links: int = 0
    fault_routers: int = 0
    fault_transient: int = 0
    fault_drop_prob: float = 0.01
    fault_seed: int = 0
    degraded_model: bool = False
    #: Watchdog thresholds; ``None`` keeps the simulator defaults.
    stall_window: Optional[int] = None
    starvation_window: Optional[int] = None
    #: Tripwires and budgets (see :func:`~repro.sim.simulator.run_synthetic`).
    audit_every: Optional[int] = None
    max_cycles: Optional[int] = None
    max_wall_seconds: Optional[float] = None
    #: Simulation engine (a :data:`repro.core.registry.ENGINES` name);
    #: ``None`` means the reference engine.  Engines are equivalent by
    #: contract, so this is a performance knob, not a semantic one.
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.options, tuple):
            object.__setattr__(
                self, "options", _freeze_options(dict(self.options))
            )

    # -- construction helpers ------------------------------------------
    @classmethod
    def for_network(
        cls, topology: str, width: int, height: int, **kwargs: Any
    ) -> "NetworkSpec":
        """Build a spec, sorting unknown keywords into ``options``.

        ``NetworkSpec.for_network("ruche2-depop", 16, 8, half=True,
        pattern="tile_to_memory", edge_memory=True)`` puts ``half`` and
        ``edge_memory`` into ``options`` and ``pattern`` into the spec
        field of that name.
        """
        field_names = frozenset(
            f.name for f in dataclasses.fields(cls)
        )
        spec_kwargs: Dict[str, Any] = {}
        options: Dict[str, Any] = {}
        for key, value in kwargs.items():
            if key in field_names:
                spec_kwargs[key] = value
            else:
                options[key] = value
        return cls(
            topology=topology,
            width=width,
            height=height,
            options=_freeze_options(options),
            **spec_kwargs,
        )

    def replace(self, **changes: Any) -> "NetworkSpec":
        """A copy with ``changes`` applied; ``options`` may be a dict."""
        if "options" in changes and not isinstance(
            changes["options"], tuple
        ):
            changes["options"] = _freeze_options(dict(changes["options"]))
        return dataclasses.replace(self, **changes)

    def with_options(self, **options: Any) -> "NetworkSpec":
        """A copy with ``options`` merged over the existing ones."""
        merged = dict(self.options)
        merged.update(options)
        return dataclasses.replace(
            self, options=_freeze_options(merged)
        )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; round-trips through :meth:`from_dict`."""
        data: Dict[str, Any] = dataclasses.asdict(self)
        data["options"] = dict(self.options)
        return data

    def content_hash(self) -> str:
        """Stable content address of this design point (sha256 hex).

        Computed over the canonical JSON rendering (sorted keys, no
        whitespace), so — unlike ``hash()``, which is salted per process
        for strings — two processes, or two runs years apart, derive the
        same digest for the same spec.  This is the join key between
        certification reports, campaign checkpoints, and the planned
        content-addressed result store.
        """
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetworkSpec":
        payload = dict(data)
        raw_options = payload.pop("options", {})
        if isinstance(raw_options, Mapping):
            options = _freeze_options(raw_options)
        else:
            options = tuple(
                (str(key), value) for key, value in raw_options
            )
        return cls(options=options, **payload)

    # -- resolution ------------------------------------------------------
    def provider(self) -> TopologyProvider:
        return resolve_topology(self.topology)

    def config(self) -> NetworkConfig:
        """The :class:`NetworkConfig` this spec materializes."""
        return build_config(self)


# ----------------------------------------------------------------------
# Builtin topology families
# ----------------------------------------------------------------------
def _from_name(
    name: str, width: int, height: int, **options: Any
) -> NetworkConfig:
    # Specs keep options JSON-serializable (content_hash canonicalizes
    # them), so ``dor_order`` arrives as "xy"/"yx" and is coerced here.
    dor = options.get("dor_order")
    if isinstance(dor, str):
        options["dor_order"] = DorOrder(dor)
    return NetworkConfig.from_name(name, width, height, **options)


register_topology(
    "mesh", description="2D mesh (Figure 1a)"
)(_from_name)
register_topology(
    "torus", description="folded torus, 2 VCs or FBFC (Figure 1b)"
)(_from_name)
register_topology(
    "half-torus",
    description="horizontal rings only (Figure 1c)",
    aliases=("halftorus", "half_torus"),
)(_from_name)
register_topology(
    "multimesh",
    description="two parallel meshes, parity-balanced (Figure 3a)",
    aliases=("multi-mesh", "multi_mesh"),
)(_from_name)
register_topology(
    "ruche",
    description=(
        "Ruche family: ruche<RF>[-pop|-depop], Full or Half "
        "(Figures 1d-1f)"
    ),
)(_from_name)


def resolve_topology(name: str) -> TopologyProvider:
    """The provider for a topology name.

    Exact registrations win (so a plugin can claim any name); otherwise
    paper-style ``ruche<RF>[-pop|-depop]`` names fall back to the
    builtin Ruche family, whose config factory parses the grammar.  A
    miss raises :class:`~repro.errors.ConfigError` listing every
    registered topology.
    """
    lowered = name.strip().lower()
    if lowered in TOPOLOGIES:
        return TOPOLOGIES.get(lowered)
    base = lowered
    if base.endswith("-fbfc"):
        base = base[: -len("-fbfc")]
    if base in TOPOLOGIES:
        return TOPOLOGIES.get(base)
    if base.startswith("ruche"):
        return TOPOLOGIES.get("ruche")
    return TOPOLOGIES.get(lowered)  # raises with the available names


def build_config(spec: NetworkSpec) -> NetworkConfig:
    """The :class:`NetworkConfig` for a spec, via its provider."""
    provider = resolve_topology(spec.topology)
    config = provider.config_factory(
        spec.topology, spec.width, spec.height, **dict(spec.options)
    )
    if not isinstance(config, NetworkConfig):
        raise ConfigError(
            f"topology {spec.topology!r}: config factory returned "
            f"{type(config).__name__}, expected NetworkConfig"
        )
    return config


#: NetworkConfig field defaults, for :func:`spec_for_config` to elide.
_CONFIG_FIELD_DEFAULTS: Dict[str, Any] = {
    f.name: f.default
    for f in dataclasses.fields(NetworkConfig)
    if f.default is not dataclasses.MISSING
}


def spec_for_config(
    config: NetworkConfig, **spec_fields: Any
) -> NetworkSpec:
    """The :class:`NetworkSpec` that rebuilds ``config``.

    The inverse of :func:`build_config` for the builtin families:
    ``build_config(spec_for_config(c)) == c`` for every design point
    :meth:`NetworkConfig.from_name` can express.  This lets reports
    produced from bare configs (the verifier's paper matrix) carry the
    same :meth:`NetworkSpec.content_hash` join key as spec-driven runs.
    ``spec_fields`` forwards additional spec fields (``pattern``,
    ``rate``, ``seed``, ...).
    """
    options: Dict[str, Any] = {}
    if config.kind is TopologyKind.HALF_RUCHE:
        options["half"] = True
    if config.dor_order is not DorOrder.XY:
        # Stored as the enum's string value: options must stay
        # JSON-serializable for content_hash (coerced in _from_name).
        options["dor_order"] = config.dor_order.value
    if not config.depopulated and config.kind in (
        TopologyKind.MESH,
        TopologyKind.FOLDED_TORUS,
        TopologyKind.HALF_TORUS,
    ):
        # Ruche population is encoded in the name (-pop/-depop);
        # Ruche-One and multi-mesh force fully-populated anyway.
        options["depopulated"] = False
    for field in (
        "channel_width_bits",
        "fifo_depth",
        "num_vcs",
        "edge_memory",
        "channel_latency",
        "ruche_channel_latency",
        "depth",
    ):
        value = getattr(config, field)
        if value != _CONFIG_FIELD_DEFAULTS[field]:
            options[field] = value
    return NetworkSpec.for_network(
        config.name, config.width, config.height, **options, **spec_fields
    )


def default_router_kind(config: NetworkConfig) -> str:
    """The registered router kind a config's routers default to."""
    if config.uses_vcs:
        return "vc"
    if config.fbfc:
        return "fbfc"
    return "wormhole"


# ----------------------------------------------------------------------
# Component resolution
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class NetworkComponents:
    """The construction bundle one :class:`Network` consumes."""

    topology: Topology
    routing: RoutingAlgorithm
    matrix: Matrix


def build_routing(
    config: NetworkConfig,
    *,
    name: Optional[str] = None,
    faults: Optional[Any] = None,
) -> RoutingAlgorithm:
    """The routing algorithm for a design point.

    ``name`` selects a registered algorithm; ``faults`` (a
    :class:`~repro.sim.faults.FaultSchedule` whose ``affects_routing``
    is true) switches to BFS detour tables computed around the dead
    links/routers.  With neither, the config's builtin algorithm is
    used (memoized per config).
    """
    if faults is not None and faults.affects_routing:
        return make_fault_aware_routing(
            config,
            dead_links=faults.dead_links,
            dead_nodes=faults.dead_routers,
        )
    if name is not None:
        factory = ROUTINGS.get(name)
        named = factory(config)
        if not isinstance(named, RoutingAlgorithm):
            raise ConfigError(
                f"routing {name!r} built {type(named).__name__}, "
                f"expected a RoutingAlgorithm"
            )
        return named
    return make_routing(config)


def build_pattern(name: str, config: NetworkConfig) -> Any:
    """The destination function for a registered traffic pattern.

    Pattern names may carry a colon-separated argument (e.g.
    ``"trace_replay:<path>"``): the base name resolves through the
    registry, the argument reaches the factory verbatim.
    """
    from repro.core.registry import PATTERNS

    import repro.sim.traffic  # noqa: F401 - registers builtin patterns

    base, sep, arg = name.strip().partition(":")
    factory = PATTERNS.get(base.strip().lower())
    if sep:
        return factory(config, arg)
    return factory(config)


def network_components(
    config: NetworkConfig,
    *,
    faults: Optional[Any] = None,
    provider: Optional[TopologyProvider] = None,
    routing_name: Optional[str] = None,
) -> NetworkComponents:
    """Resolve the (topology, routing, matrix) bundle for a network.

    Fault schedules that affect routing force the builtin topology, the
    fault-aware tables, and the fully-connected crossbar — degraded
    detours need turns the DOR crossbars lack.  Otherwise the provider's
    factories (when given) override the builtin components.
    """
    if faults is not None and faults.affects_routing:
        if provider is not None and provider.has_custom_components:
            raise ConfigError(
                f"topology {provider.name!r}: fault-aware routing is "
                f"not supported for plugin topologies"
            )
        return NetworkComponents(
            topology=make_topology(config),
            routing=build_routing(config, faults=faults),
            matrix=fault_tolerant_matrix(config),
        )
    if provider is None:
        topology = make_topology(config)
        routing = build_routing(config, name=routing_name)
        matrix = connectivity_matrix(config)
        return NetworkComponents(topology, routing, matrix)
    topology_factory = provider.topology_factory
    topology = (
        topology_factory(config)
        if topology_factory is not None
        else make_topology(config)
    )
    if routing_name is not None:
        routing = build_routing(config, name=routing_name)
    elif provider.routing_factory is not None:
        routing = provider.routing_factory(config)
    else:
        routing = make_routing(config)
    matrix_factory = provider.matrix_factory
    matrix = (
        matrix_factory(config)
        if matrix_factory is not None
        else connectivity_matrix(config)
    )
    return NetworkComponents(topology, routing, matrix)


# ----------------------------------------------------------------------
# Fault / watchdog materialization
# ----------------------------------------------------------------------
def build_faults(spec: NetworkSpec, config: NetworkConfig) -> Optional[Any]:
    """The spec's :class:`~repro.sim.faults.FaultSchedule` (or None)."""
    if (
        spec.fault_links <= 0
        and spec.fault_routers <= 0
        and spec.fault_transient <= 0
        and not spec.degraded_model
    ):
        return None
    from repro.sim.faults import FaultSchedule

    if spec.fault_routers <= 0 and spec.fault_transient <= 0:
        # Preserves the pre-mixed-schedule spec semantics byte for byte.
        return FaultSchedule.random_dead_links(
            config,
            spec.fault_links,
            seed=spec.fault_seed,
            degraded_model=spec.degraded_model,
        )
    return FaultSchedule.random_mixed(
        config,
        links=spec.fault_links,
        routers=spec.fault_routers,
        transient=spec.fault_transient,
        drop_prob=spec.fault_drop_prob,
        seed=spec.fault_seed,
        degraded_model=spec.degraded_model,
    )


def build_watchdog(spec: NetworkSpec) -> Optional[Any]:
    """The spec's :class:`~repro.sim.watchdog.WatchdogConfig` (or None)."""
    if spec.stall_window is None and spec.starvation_window is None:
        return None
    from repro.sim.watchdog import WatchdogConfig

    kwargs: Dict[str, Any] = {}
    if spec.stall_window is not None:
        kwargs["stall_window"] = spec.stall_window
    if spec.starvation_window is not None:
        kwargs["starvation_window"] = spec.starvation_window
    return WatchdogConfig(**kwargs)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def build_network(
    target: "Any",
    *,
    metrics: Optional[Any] = None,
    sink_factory: Optional[Any] = None,
    memory_sink_factory: Optional[Any] = None,
    faults: Optional[Any] = None,
    watchdog: Optional[Any] = None,
) -> "Network":
    """Materialize a :class:`~repro.sim.network.Network`.

    ``target`` is a :class:`NetworkSpec` or a bare
    :class:`NetworkConfig`.  For a spec, the topology provider's
    components, the named routing/router/allocator overrides, and the
    spec's fault/watchdog options (unless explicitly overridden here)
    are all resolved through the registries.  This is the only
    sanctioned construction path for networks in the sim, verify,
    bench, and experiments layers.
    """
    from repro.sim.network import Network

    if isinstance(target, NetworkConfig):
        return Network(
            target,
            metrics=metrics,
            sink_factory=sink_factory,
            memory_sink_factory=memory_sink_factory,
            faults=faults,
            watchdog=watchdog,
        )
    spec: NetworkSpec = target
    provider = resolve_topology(spec.topology)
    config = build_config(spec)
    if faults is None:
        faults = build_faults(spec, config)
    if watchdog is None:
        watchdog = build_watchdog(spec)
    components = network_components(
        config,
        faults=faults,
        provider=provider,
        routing_name=spec.routing,
    )
    return Network(
        config,
        metrics=metrics,
        sink_factory=sink_factory,
        memory_sink_factory=memory_sink_factory,
        faults=faults,
        watchdog=watchdog,
        topology=components.topology,
        routing=components.routing,
        matrix=components.matrix,
        router=spec.router,
        allocator=spec.allocator,
    )


def build_run(
    spec: NetworkSpec,
    *,
    track_per_source: bool = False,
    keep_samples: bool = False,
    track_links: bool = False,
) -> "RunResult":
    """One open-loop measurement of a spec.

    Expands the spec's traffic, window, fault, and budget fields into a
    :func:`~repro.sim.simulator.run_synthetic` call; the network itself
    is built through :func:`build_network`, so plugin topologies and
    named overrides apply.
    """
    from repro.sim.simulator import run_synthetic

    return run_synthetic(
        spec,
        spec.pattern,
        spec.rate,
        warmup=spec.warmup,
        measure=spec.measure,
        drain_limit=spec.drain_limit,
        seed=spec.seed,
        track_per_source=track_per_source,
        keep_samples=keep_samples,
        track_links=track_links,
        audit_every=spec.audit_every,
        max_cycles=spec.max_cycles,
        max_wall_seconds=spec.max_wall_seconds,
        engine=spec.engine,
    )


# The 3-D topology pack registers its families (mesh3d / torus3d) on
# import; pulled in here so any spec-layer consumer sees them without a
# separate import, exactly like the builtin 2-D registrations above.
import repro.core.topo3d  # noqa: E402,F401  isort:skip
