"""Hardened sweep campaigns: checkpointing and retry-with-fresh-seed.

Long fault-injection sweeps multiply every axis of an experiment by a
fault count and a fault seed, so a single campaign can run for hours and
individual rows can die in ways healthy sweeps never do — a watchdog
trip (:class:`~repro.errors.DeadlockError`), a blown cycle or wall-clock
budget (:class:`~repro.errors.SimulationTimeout`), or an invariant audit
failure.  This module wraps a row-at-a-time runner with two protections:

* **Checkpointing** — every *successful* row is written to a JSON file
  (atomically: temp file + rename) keyed by its parameter dict, so a
  killed campaign resumes where it left off instead of recomputing
  finished rows.  Failed rows are deliberately *not* checkpointed; a
  rerun retries them.
* **Retry with a fresh seed** — a row that trips the watchdog is retried
  with ``seed + retry_seed_stride`` up to ``max_retries`` times before
  being recorded as failed.  The checkpoint key stays the *original*
  parameters, so resumption is insensitive to which retry succeeded.
* **Pre-flight verification** (opt-in) — a ``preflight`` callable runs
  before the first row; any problems it returns abort the campaign with
  :class:`~repro.errors.ConfigError` so a misconfigured network fails in
  seconds, not after hours of checkpointed simulation.  Pair it with
  :func:`repro.verify.campaign_preflight`, which statically proves
  deadlock freedom, turn legality, and reachability for every design
  point in the sweep (and, with ``certify=True``, route-table soundness
  via the table certifier).
* **Parallel sharding** (``jobs > 1``) — rows are embarrassingly
  parallel (each seeds its own RNGs from its parameter dict), so
  :func:`run_campaign` shards them across a process pool with results
  bit-identical to a serial run; see the function docstring for the
  determinism argument and the worker-crash retry policy.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, SimulationError
from repro.sim.rng import derive_rng

#: Exception types a campaign converts into retries / failed rows.
#: Everything else (programming errors) propagates.
RECOVERABLE = (SimulationError,)

#: Worker-crash pool-rebuild backoff: first rebuild waits ``_BACKOFF_BASE``
#: seconds (scaled by jitter), doubling per rebuild wave up to
#: ``_BACKOFF_CAP``.
_BACKOFF_BASE = 0.5
_BACKOFF_CAP = 8.0


def _crash_backoff_seconds(
    wave: int, base: float = _BACKOFF_BASE, cap: float = _BACKOFF_CAP
) -> float:
    """Capped exponential backoff before rebuild ``wave`` (1-based).

    A crashed worker is often a symptom of transient pressure (OOM
    killer, container throttling); hammering a fresh pool straight back
    into the same conditions re-crashes it.  The delay doubles per wave
    and is scaled by a deterministic jitter in [0.5, 1.0] drawn from the
    wave number's own ``campaign:crash-backoff`` stream — reproducible
    (no wall-clock or PID entropy) yet desynchronized across waves.
    """
    delay = min(cap, base * (2.0 ** (wave - 1)))
    jitter = 0.5 + 0.5 * derive_rng(wave, "campaign:crash-backoff").random()
    return delay * jitter


def row_key(params: Dict[str, Any]) -> str:
    """Stable string identity for one row's parameters.

    Sorted-key JSON, so dict insertion order never changes the key and
    the same parameters always resume the same checkpoint entry.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


class CheckpointStore:
    """Completed campaign rows persisted as one JSON file.

    The file maps :func:`row_key` strings to row dicts.  Writes go
    through a temp file in the same directory followed by ``os.replace``
    so a kill mid-write can never corrupt previously saved rows.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._rows: Dict[str, Dict[str, Any]] = {}
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                try:
                    self._rows = json.load(fh)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"checkpoint file {path!r} is not valid JSON "
                        f"({exc}); delete it to restart the campaign"
                    ) from exc

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: str) -> bool:
        return key in self._rows

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._rows.get(key)

    def put(self, key: str, row: Dict[str, Any]) -> None:
        """Record a completed row and flush the store to disk."""
        self._rows[key] = row
        self._flush()

    def _flush(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".campaign-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self._rows, fh, indent=1, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


@dataclasses.dataclass
class CampaignResult:
    """Outcome of :func:`run_campaign` with provenance counters."""

    #: One entry per grid point, in grid order.  Failed rows carry
    #: ``"failed": True`` plus ``"error"`` and ``"attempts"`` fields.
    rows: List[Dict[str, Any]]
    #: Rows actually computed by the runner this invocation.
    computed: int = 0
    #: Rows served from the checkpoint without recomputation.
    reused: int = 0
    #: Rows that exhausted their retries (subset of ``rows``).
    failures: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    #: Recoverable errors that were absorbed by a successful retry.
    retried: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


def _attempt_row(
    runner: Callable[[Dict[str, Any]], Dict[str, Any]],
    params: Dict[str, Any],
    max_retries: int,
    retry_seed_stride: int,
    *,
    first_attempt: int = 0,
    prior_error: Optional[str] = None,
) -> Tuple[Optional[Dict[str, Any]], Optional[str], int]:
    """One row, with the retry-with-fresh-seed loop.

    Module-level (and taking only picklable arguments) so the parallel
    path can ship it to worker processes; the serial path calls it
    directly.  ``first_attempt``/``prior_error`` let the batched path
    resume the loop after its own attempt 0 failed (the retry seeds and
    attempt counts stay identical to a purely serial run).  Returns
    ``(row or None, error string, attempts)``.
    """
    row, error, attempts = None, prior_error, first_attempt
    for attempt in range(first_attempt, max_retries + 1):
        attempts = attempt + 1
        trial = dict(params)
        if attempt and "seed" in trial:
            trial["seed"] = trial["seed"] + attempt * retry_seed_stride
        try:
            row = runner(trial)
            return row, None, attempts
        except RECOVERABLE as exc:
            error = f"{type(exc).__name__}: {exc}"
    return None, error, attempts


def _attempt_chunk(
    runner: Callable[[Dict[str, Any]], Dict[str, Any]],
    chunk: List[Tuple[int, Dict[str, Any], str]],
    max_retries: int,
    retry_seed_stride: int,
    batch_runner: Optional[
        Callable[[List[Dict[str, Any]]], List[Tuple[Any, Any]]]
    ] = None,
) -> List[Tuple[int, Optional[Dict[str, Any]], Optional[str], int]]:
    """A worker's whole share of the grid, one pool task.

    Submitting one chunk per worker instead of one future per row pays
    the pool's pickle/IPC round-trip once per worker, so short rows (the
    compiled engine makes most rows short) are not dominated by
    scheduling overhead.  With a ``batch_runner`` the whole chunk is
    additionally *batched*: attempt 0 of every row runs in one
    structure-of-arrays kernel invocation (``batch_runner(params_list)``
    returns an in-order ``(row, exception)`` pair per row), and only
    rows whose batched attempt failed re-enter the serial
    retry-with-fresh-seed loop from attempt 1 — the batched attempt is
    bit-identical to serial attempt 0, so retry seeds, attempt counts,
    and error strings are unchanged.  Returns ``(idx, row, error,
    attempts)`` per entry; a worker crash mid-chunk loses only this
    chunk, which the parent then retries row-at-a-time.
    """
    out: List[Tuple[int, Optional[Dict[str, Any]], Optional[str], int]] = []
    if batch_runner is not None and chunk:
        outcomes = batch_runner([params for _idx, params, _key in chunk])
        for (idx, params, _key), (row, exc) in zip(chunk, outcomes):
            if row is not None:
                out.append((idx, row, None, 1))
                continue
            prior = f"{type(exc).__name__}: {exc}"
            row, error, attempts = _attempt_row(
                runner,
                params,
                max_retries,
                retry_seed_stride,
                first_attempt=1,
                prior_error=prior,
            )
            out.append((idx, row, error, attempts))
        return out
    for idx, params, _key in chunk:
        row, error, attempts = _attempt_row(
            runner, params, max_retries, retry_seed_stride
        )
        out.append((idx, row, error, attempts))
    return out


def _usable_cpus() -> int:
    """CPUs this process is actually allowed to schedule on."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _worker_init() -> None:
    """Worker-process initializer: pay one-time setup before row one.

    Importing the simulator stack and building the optional native step
    kernel are the expensive first-row surprises; doing them here keeps
    every row's wall-clock representative.  Fork-inherited routing
    caches are deliberately kept warm: each memo entry is a pure
    function of its design point (the determinism contract), so an
    inherited entry changes wall-clock, never results, and the memo is
    bounded so it cannot accumulate across pool rebuilds.
    """
    import repro.core.routing  # noqa: F401
    import repro.core.spec  # noqa: F401
    import repro.sim.simulator  # noqa: F401
    from repro.sim import _ckernel

    _ckernel.get_kernel()


def _run_parallel(
    pending: List[Tuple[int, Dict[str, Any], str]],
    runner: Callable[[Dict[str, Any]], Dict[str, Any]],
    jobs: int,
    max_retries: int,
    retry_seed_stride: int,
    record: Callable[..., None],
    batch_runner: Optional[
        Callable[[List[Dict[str, Any]]], List[Tuple[Any, Any]]]
    ] = None,
) -> None:
    """Shard pending rows across a pool, one chunk per worker.

    Rows are dealt round-robin (``pending[w::jobs]``) so each worker
    gets an interleaved — hence load-balanced — slice of the grid and
    the whole campaign costs ``jobs`` futures instead of ``len(grid)``.
    With a ``batch_runner`` each worker additionally runs its chunk as
    one batched kernel invocation (see :func:`_attempt_chunk`).  A chunk
    whose worker dies falls back to the row-at-a-time wave
    (:func:`_run_parallel_rows`), where the per-row crash budget
    isolates the poisoned row and the healthy remainder completes.
    """
    chunks = [c for c in (pending[w::jobs] for w in range(jobs)) if c]
    # Warm the parent first: under the fork start method every worker
    # inherits the imported stack and the built kernel for free, and the
    # initializer call in the child becomes a no-op.
    _worker_init()
    executor = ProcessPoolExecutor(
        max_workers=len(chunks), initializer=_worker_init
    )
    crashed: List[Tuple[int, Dict[str, Any], str]] = []
    broken = False
    try:
        futures = {
            executor.submit(
                _attempt_chunk, runner, chunk,
                max_retries, retry_seed_stride, batch_runner,
            ): chunk
            for chunk in chunks
        }
        waiting = set(futures)
        while waiting:
            done, waiting = wait(waiting, return_when=FIRST_COMPLETED)
            for fut in done:
                chunk = futures[fut]
                try:
                    outcomes = fut.result()
                except BrokenProcessPool:
                    broken = True
                    crashed.extend(chunk)
                    continue
                by_idx = {idx: (params, key) for idx, params, key in chunk}
                for idx, row, error, attempts in outcomes:
                    params, key = by_idx[idx]
                    record(idx, params, key, row, error, attempts)
    finally:
        executor.shutdown(wait=not broken, cancel_futures=True)
    if crashed:
        crashed.sort(key=lambda entry: entry[0])
        _run_parallel_rows(
            crashed, runner, jobs, max_retries, retry_seed_stride, record
        )


def _run_parallel_rows(
    pending: List[Tuple[int, Dict[str, Any], str]],
    runner: Callable[[Dict[str, Any]], Dict[str, Any]],
    jobs: int,
    max_retries: int,
    retry_seed_stride: int,
    record: Callable[..., None],
) -> None:
    """Row-at-a-time pool wave, surviving worker death.

    The crash-recovery path behind :func:`_run_parallel`: a crashed
    worker breaks the whole :class:`ProcessPoolExecutor`; the pool is
    rebuilt and every unfinished row is resubmitted with its crash
    budget decremented, so one poisoned row cannot take down the
    campaign — after ``max_retries + 1`` pool rebuilds it is recorded as
    failed and the rest of the grid completes.  Each rebuild waits
    :func:`_crash_backoff_seconds` first (capped exponential with
    deterministic jitter), giving transient host pressure room to clear
    instead of immediately re-crashing the fresh pool.
    """
    remaining = pending
    crashes: Dict[int, int] = {}
    wave = 0
    while remaining:
        wave += 1
        time.sleep(_crash_backoff_seconds(wave))
        executor = ProcessPoolExecutor(
            max_workers=jobs, initializer=_worker_init
        )
        unfinished: List[Tuple[int, Dict[str, Any], str]] = []
        broken = False
        try:
            futures = {
                executor.submit(
                    _attempt_row, runner, params,
                    max_retries, retry_seed_stride,
                ): (idx, params, key)
                for idx, params, key in remaining
            }
            waiting = set(futures)
            while waiting:
                done, waiting = wait(waiting, return_when=FIRST_COMPLETED)
                for fut in done:
                    idx, params, key = futures[fut]
                    try:
                        row, error, attempts = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        crashes[idx] = crashes.get(idx, 0) + 1
                        if crashes[idx] > max_retries:
                            record(idx, params, key, None,
                                   "worker process crashed",
                                   crashes[idx])
                        else:
                            unfinished.append((idx, params, key))
                        continue
                    record(idx, params, key, row, error, attempts)
        finally:
            # A broken pool cannot run pending work; don't block on it.
            executor.shutdown(wait=not broken, cancel_futures=True)
        remaining = unfinished


def run_campaign(
    grid: Sequence[Dict[str, Any]],
    runner: Callable[[Dict[str, Any]], Dict[str, Any]],
    *,
    checkpoint: Optional[CheckpointStore] = None,
    max_retries: int = 2,
    retry_seed_stride: int = 1000,
    preflight: Optional[Callable[[], Sequence[str]]] = None,
    jobs: int = 1,
    batch_runner: Optional[
        Callable[[List[Dict[str, Any]]], List[Tuple[Any, Any]]]
    ] = None,
) -> CampaignResult:
    """Run ``runner`` over every parameter dict in ``grid``, hardened.

    ``runner(params)`` must return a JSON-serialisable row dict.  Rows
    already present in ``checkpoint`` are reused verbatim.  A runner
    call that raises one of :data:`RECOVERABLE` is retried with the
    ``"seed"`` entry advanced by ``retry_seed_stride`` (when the params
    carry a seed); after ``max_retries`` retries the row is recorded as
    failed — with the error string — but *not* checkpointed, so the next
    invocation tries it again.

    ``jobs > 1`` shards the uncached rows across a
    :class:`~concurrent.futures.ProcessPoolExecutor`, one round-robin
    chunk of the grid per worker (heavy imports and the native-kernel
    build happen once per worker, in the pool initializer).  Results are
    **bit-identical to a serial run**: every row's outcome is a pure
    function of its own parameter dict (each simulation seeds its own
    RNGs from ``params["seed"]``), ``result.rows`` is assembled in grid
    order regardless of completion order, and the checkpoint file is
    dumped with sorted keys so its bytes never depend on scheduling
    (rows land in the checkpoint when their worker's chunk completes,
    so a killed parallel campaign may recompute up to one in-flight
    chunk per worker on resume).
    ``runner`` must be picklable (a module-level function or a
    :func:`functools.partial` over one).  A worker crash (e.g. the OOM
    killer) drops its chunk to a row-at-a-time wave, where the crashing
    row is retried on a rebuilt pool with a budget of ``max_retries``
    before being recorded as failed.  On a host with a single
    schedulable CPU the rows run inline instead — same results, none of
    the pool overhead.

    ``preflight``, when given, runs first and must return a sequence of
    problem strings (empty = verified); any problem raises
    :class:`~repro.errors.ConfigError` before a single row is computed.

    ``batch_runner``, when given, is the batched counterpart of
    ``runner``: ``batch_runner(params_list)`` returns one ``(row,
    exception)`` pair per entry, in order, with each row bit-identical
    to ``runner(params)``.  Attempt 0 of every pending chunk then runs
    through it as a single structure-of-arrays kernel invocation
    (serially: the whole pending list is one chunk; in parallel: one
    chunk per worker), and only rows whose batched attempt failed
    re-enter the serial retry-with-fresh-seed loop — so row results,
    retry accounting, and checkpoint bytes are all identical with or
    without batching.  Like ``runner`` it must be picklable for
    ``jobs > 1``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if preflight is not None:
        problems = list(preflight())
        if problems:
            raise ConfigError(
                "campaign preflight failed:\n  " + "\n  ".join(problems)
            )
    result = CampaignResult(rows=[])
    slots: List[Optional[Dict[str, Any]]] = [None] * len(grid)
    failed_idx: set = set()
    pending: List[Tuple[int, Dict[str, Any], str]] = []
    for idx, params in enumerate(grid):
        key = row_key(params)
        if checkpoint is not None:
            cached = checkpoint.get(key)
            if cached is not None:
                slots[idx] = cached
                result.reused += 1
                continue
        pending.append((idx, params, key))

    def record(idx, params, key, row, error, attempts):
        if row is not None:
            if attempts > 1:
                result.retried += attempts - 1
            slots[idx] = row
            result.computed += 1
            if checkpoint is not None:
                checkpoint.put(key, row)
        else:
            failed = dict(params)
            failed.update(failed=True, error=error, attempts=attempts)
            slots[idx] = failed
            failed_idx.add(idx)

    if jobs > 1 and pending and _usable_cpus() > 1:
        _run_parallel(
            pending, runner, jobs, max_retries, retry_seed_stride,
            record, batch_runner,
        )
    elif batch_runner is not None and pending:
        # Includes requested jobs > 1 on a single schedulable CPU (see
        # below); the batched kernel still amortizes interpreter
        # overhead across the whole pending list there.
        by_idx = {idx: (params, key) for idx, params, key in pending}
        for idx, row, error, attempts in _attempt_chunk(
            runner, pending, max_retries, retry_seed_stride, batch_runner
        ):
            params, key = by_idx[idx]
            record(idx, params, key, row, error, attempts)
    else:
        # Includes requested jobs > 1 on a single schedulable CPU:
        # worker processes cannot overlap row computation there, so the
        # pool would only add fork/IPC overhead on top of the same
        # serial work.  Results are identical either way.
        for idx, params, key in pending:
            row, error, attempts = _attempt_row(
                runner, params, max_retries, retry_seed_stride
            )
            record(idx, params, key, row, error, attempts)

    for idx, row in enumerate(slots):
        result.rows.append(row)
        if idx in failed_idx:
            result.failures.append(row)
    return result
