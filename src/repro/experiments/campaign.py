"""Hardened sweep campaigns: checkpointing and retry-with-fresh-seed.

Long fault-injection sweeps multiply every axis of an experiment by a
fault count and a fault seed, so a single campaign can run for hours and
individual rows can die in ways healthy sweeps never do — a watchdog
trip (:class:`~repro.errors.DeadlockError`), a blown cycle or wall-clock
budget (:class:`~repro.errors.SimulationTimeout`), or an invariant audit
failure.  This module wraps a row-at-a-time runner with two protections:

* **Checkpointing** — every *successful* row is written to a JSON file
  (atomically: temp file + rename) keyed by its parameter dict, so a
  killed campaign resumes where it left off instead of recomputing
  finished rows.  Failed rows are deliberately *not* checkpointed; a
  rerun retries them.
* **Retry with a fresh seed** — a row that trips the watchdog is retried
  with ``seed + retry_seed_stride`` up to ``max_retries`` times before
  being recorded as failed.  The checkpoint key stays the *original*
  parameters, so resumption is insensitive to which retry succeeded.
* **Pre-flight verification** (opt-in) — a ``preflight`` callable runs
  before the first row; any problems it returns abort the campaign with
  :class:`~repro.errors.ConfigError` so a misconfigured network fails in
  seconds, not after hours of checkpointed simulation.  Pair it with
  :func:`repro.verify.campaign_preflight`, which statically proves
  deadlock freedom, turn legality, and reachability for every design
  point in the sweep.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigError, SimulationError

#: Exception types a campaign converts into retries / failed rows.
#: Everything else (programming errors) propagates.
RECOVERABLE = (SimulationError,)


def row_key(params: Dict[str, Any]) -> str:
    """Stable string identity for one row's parameters.

    Sorted-key JSON, so dict insertion order never changes the key and
    the same parameters always resume the same checkpoint entry.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


class CheckpointStore:
    """Completed campaign rows persisted as one JSON file.

    The file maps :func:`row_key` strings to row dicts.  Writes go
    through a temp file in the same directory followed by ``os.replace``
    so a kill mid-write can never corrupt previously saved rows.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._rows: Dict[str, Dict[str, Any]] = {}
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                try:
                    self._rows = json.load(fh)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"checkpoint file {path!r} is not valid JSON "
                        f"({exc}); delete it to restart the campaign"
                    ) from exc

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: str) -> bool:
        return key in self._rows

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._rows.get(key)

    def put(self, key: str, row: Dict[str, Any]) -> None:
        """Record a completed row and flush the store to disk."""
        self._rows[key] = row
        self._flush()

    def _flush(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".campaign-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self._rows, fh, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise


@dataclasses.dataclass
class CampaignResult:
    """Outcome of :func:`run_campaign` with provenance counters."""

    #: One entry per grid point, in grid order.  Failed rows carry
    #: ``"failed": True`` plus ``"error"`` and ``"attempts"`` fields.
    rows: List[Dict[str, Any]]
    #: Rows actually computed by the runner this invocation.
    computed: int = 0
    #: Rows served from the checkpoint without recomputation.
    reused: int = 0
    #: Rows that exhausted their retries (subset of ``rows``).
    failures: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    #: Recoverable errors that were absorbed by a successful retry.
    retried: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


def run_campaign(
    grid: Sequence[Dict[str, Any]],
    runner: Callable[[Dict[str, Any]], Dict[str, Any]],
    *,
    checkpoint: Optional[CheckpointStore] = None,
    max_retries: int = 2,
    retry_seed_stride: int = 1000,
    preflight: Optional[Callable[[], Sequence[str]]] = None,
) -> CampaignResult:
    """Run ``runner`` over every parameter dict in ``grid``, hardened.

    ``runner(params)`` must return a JSON-serialisable row dict.  Rows
    already present in ``checkpoint`` are reused verbatim.  A runner
    call that raises one of :data:`RECOVERABLE` is retried with the
    ``"seed"`` entry advanced by ``retry_seed_stride`` (when the params
    carry a seed); after ``max_retries`` retries the row is recorded as
    failed — with the error string — but *not* checkpointed, so the next
    invocation tries it again.

    ``preflight``, when given, runs first and must return a sequence of
    problem strings (empty = verified); any problem raises
    :class:`~repro.errors.ConfigError` before a single row is computed.
    """
    if preflight is not None:
        problems = list(preflight())
        if problems:
            raise ConfigError(
                "campaign preflight failed:\n  " + "\n  ".join(problems)
            )
    result = CampaignResult(rows=[])
    for params in grid:
        key = row_key(params)
        if checkpoint is not None:
            cached = checkpoint.get(key)
            if cached is not None:
                result.rows.append(cached)
                result.reused += 1
                continue
        row, error, attempts = None, None, 0
        for attempt in range(max_retries + 1):
            attempts = attempt + 1
            trial = dict(params)
            if attempt and "seed" in trial:
                trial["seed"] = trial["seed"] + attempt * retry_seed_stride
            try:
                row = runner(trial)
                break
            except RECOVERABLE as exc:
                error = f"{type(exc).__name__}: {exc}"
        if row is not None:
            if attempts > 1:
                result.retried += attempts - 1
            result.rows.append(row)
            result.computed += 1
            if checkpoint is not None:
                checkpoint.put(key, row)
        else:
            failed = dict(params)
            failed.update(failed=True, error=error, attempts=attempts)
            result.rows.append(failed)
            result.failures.append(failed)
    return result
