"""Command-line experiment runner.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments fig6 --scale quick
    python -m repro.experiments all --scale smoke
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback

from repro.experiments.registry import (
    describe,
    experiment_ids,
    run_experiment,
)

#: Component registries the ``--list-<kind>`` flags print, with the
#: module whose import populates each one (``None`` = self-populating).
_REGISTRY_MENUS = (
    ("topologies", "TOPOLOGIES", "repro.core.spec"),
    # spec (not routing) also pulls in the 3-D pack's registrations.
    ("routings", "ROUTINGS", "repro.core.spec"),
    ("routers", "ROUTERS", "repro.sim.router"),
    ("patterns", "PATTERNS", "repro.sim.traffic"),
    ("allocators", "ALLOCATORS", "repro.sim.allocator"),
    ("engines", "ENGINES", None),
)


def _print_registry_menu(registry_name: str, module: str) -> None:
    """Print one registry's catalogue without constructing anything.

    Rows come from registration metadata only (name, aliases,
    description); no config, topology, or engine is ever built, so the
    menu works even for entries that would fail validation.
    """
    import importlib

    from repro.core import registry as registries

    if module:
        importlib.import_module(module)
    reg = getattr(registries, registry_name)
    for name, aliases, description in reg.menu():
        alias_note = f"  [aliases: {', '.join(aliases)}]" if aliases else ""
        print(f"{name:20s} {description}{alias_note}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (fig6, table2, ...) or 'all'",
    )
    parser.add_argument("--scale", choices=("smoke", "quick", "full"),
                        default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for campaign experiments (default 1; "
             "results are bit-identical to a serial run)",
    )
    parser.add_argument(
        "--engine", metavar="NAME", default=None,
        help="simulation engine for sweep experiments (a "
             "repro.core.registry.ENGINES name, e.g. 'compiled'; "
             "engines are bit-identical by contract, so this only "
             "changes wall-clock)",
    )
    parser.add_argument(
        "--watchdog-cycles", type=int, default=None, metavar="N",
        help="forward-progress watchdog stall window in cycles for "
             "experiments that take one (overrides their preset; both "
             "engines honor it identically)",
    )
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids")
    for flag, _registry, _module in _REGISTRY_MENUS:
        parser.add_argument(
            f"--list-{flag}", action="store_true",
            help=f"list registered {flag} (with aliases) and exit",
        )
    parser.add_argument(
        "--preflight", action="store_true",
        help="statically verify every design point before campaign "
             "experiments start simulating (see repro.verify)",
    )
    parser.add_argument("--output", metavar="FILE",
                        help="write a combined markdown report to FILE")
    args = parser.parse_args(argv)

    menus = [
        (registry, module)
        for flag, registry, module in _REGISTRY_MENUS
        if getattr(args, f"list_{flag}")
    ]
    if menus:
        for registry, module in menus:
            _print_registry_menu(registry, module)
        return 0

    if args.list or args.experiment is None:
        for exp_id in experiment_ids():
            print(f"{exp_id:8s} {describe(exp_id)}")
        return 0

    ids = (
        experiment_ids() if args.experiment == "all" else [args.experiment]
    )
    if args.output:
        from repro.experiments.report import write_report

        path = write_report(args.output, ids=ids, scale=args.scale,
                            seed=args.seed)
        print(f"wrote {path}")
        return 0
    failures = []
    for exp_id in ids:
        start = time.time()
        try:
            result = run_experiment(exp_id, scale=args.scale,
                                    seed=args.seed,
                                    preflight=args.preflight,
                                    jobs=args.jobs,
                                    engine=args.engine,
                                    watchdog_cycles=args.watchdog_cycles)
        except KeyError as exc:
            # Unknown experiment id: the registry's message carries the
            # multi-line menu of available ids; print it verbatim
            # instead of KeyError's escaped repr.
            print(f"[{exp_id}] FAILED: {exc.args[0]}", file=sys.stderr)
            failures.append(exp_id)
            continue
        except Exception as exc:
            summary = traceback.format_exception_only(
                type(exc), exc
            )[-1].strip()
            print(f"[{exp_id}] FAILED: {summary}", file=sys.stderr)
            failures.append(exp_id)
            continue
        print(result.report())
        print(f"  [{time.time() - start:.1f}s]\n")
    if failures:
        print(
            f"{len(failures)} experiment(s) failed: "
            + ", ".join(failures),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
