"""Experiment drivers: one module per paper figure/table.

Use the registry to run any experiment by id::

    from repro.experiments import run_experiment
    print(run_experiment("fig6", scale="quick").report())

or from the command line::

    python -m repro.experiments fig6 --scale quick
"""

from repro.experiments.base import ExperimentResult, resolve_scale

__all__ = [
    "ExperimentResult",
    "resolve_scale",
    "run_experiment",
    "experiment_ids",
    "describe",
]


def run_experiment(experiment_id, scale=None, seed=0, **options):
    from repro.experiments.registry import run_experiment as _run

    return _run(experiment_id, scale=scale, seed=seed, **options)


def experiment_ids():
    from repro.experiments.registry import experiment_ids as _ids

    return _ids()


def describe(experiment_id):
    from repro.experiments.registry import describe as _describe

    return _describe(experiment_id)
