"""Figure 13: total energy breakdown, normalized to 2-D mesh.

Splits each run's energy into core / stall / router / wire.  Expected
shape (Section 4.9): core energy is constant across fabrics; Ruche cuts
both router energy (fewer hops; cheap long wires) and stall energy
(lower remote latency); half-torus *increases* total energy — its higher
per-hop router energy outweighs its hop savings; wire energy stays a
small slice even at RF3.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.manycore_runs import (
    FABRICS,
    machine_config,
    prime_cache,
    run_cached,
    size_for,
    suite_for,
    suite_keys,
)
from repro.manycore.energy import system_energy


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: int = 1
) -> ExperimentResult:
    scale = resolve_scale(scale)
    width, height = size_for(scale)
    prime_cache(suite_keys(scale, width, height), jobs=jobs)
    rows: List[dict] = []
    for benchmark in suite_for(scale):
        mesh_stats = run_cached(benchmark, "mesh", width, height, scale)
        mesh_energy = system_energy(
            mesh_stats, machine_config("mesh", width, height)
        )
        for fabric in FABRICS:
            stats = run_cached(benchmark, fabric, width, height, scale)
            energy = system_energy(
                stats, machine_config(fabric, width, height)
            )
            normalized = energy.normalized_to(mesh_energy)
            rows.append({
                "benchmark": benchmark,
                "config": fabric,
                "core": normalized["core"],
                "stall": normalized["stall"],
                "router": normalized["router"],
                "wire": normalized["wire"],
                "total_vs_mesh": normalized["total"],
                "noc_uj": energy.noc,
            })
    return ExperimentResult(
        experiment_id="fig13",
        title=(
            f"Total energy breakdown normalized to mesh ({width}x{height})"
        ),
        rows=rows,
        scale=scale,
        notes=(
            "Paper shape: half-torus total > mesh in almost all "
            "benchmarks; ruche2-depop gives the sharpest reduction; wire "
            "energy is a small slice even at RF3."
        ),
    )
