"""Figure 9: Half Ruche synthetic traffic across sizes and aspect ratios.

Tile-to-tile (all-to-all) and tile-to-memory (all-to-edge) sweeps on the
manycore-shaped arrays.  Expected shape (Section 4.5): Half Ruche beats
mesh everywhere; half-torus saturates between mesh and ruche2; pop vs
depop barely matters; higher RF pays off most on 64×8; tile-to-memory
saturation approaches the compute:memory ratio bound once Ruche breaks
the horizontal bisection bottleneck.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.analysis.sweeps import saturation_throughput, zero_load_point
from repro.core.params import NetworkConfig
from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.campaign import run_campaign
from repro.sim.simulator import sweep_injection_rates

BASE_CONFIGS = (
    "mesh",
    "half-torus",
    "ruche2-depop",
    "ruche2-pop",
    "ruche3-depop",
    "ruche3-pop",
)

_PRESETS: Dict[str, dict] = {
    "smoke": dict(
        sizes=[(16, 8)],
        configs=("mesh", "ruche2-depop"),
        patterns=("tile_to_memory",),
        rates=(0.05, 0.20),
        warmup=150, measure=300, drain=600,
    ),
    "quick": dict(
        sizes=[(16, 8)],
        configs=BASE_CONFIGS,
        patterns=("tile_to_tile", "tile_to_memory"),
        rates=(0.02, 0.08, 0.14, 0.20, 0.30),
        warmup=250, measure=500, drain=1200,
    ),
    "full": dict(
        sizes=[(16, 8), (32, 16), (64, 8)],
        configs=BASE_CONFIGS,
        patterns=("tile_to_tile", "tile_to_memory"),
        rates=(0.02, 0.05, 0.08, 0.11, 0.14, 0.17, 0.20, 0.25, 0.30,
               0.40),
        warmup=500, measure=1000, drain=3000,
    ),
}


def _configs_for(size, names):
    width, height = size
    configs = list(names)
    if (width, height) == (64, 8) and "ruche4-depop" not in configs:
        configs += ["ruche4-depop"]  # Section 4.5 explores Ruche4 on 64x8
    return configs


def _run_row(params: Dict[str, Any]) -> Dict[str, Any]:
    """One campaign row: a full rate sweep for one half-Ruche design
    point (module-level and picklable for ``jobs > 1``)."""
    preset = _PRESETS[params["scale"]]
    width, height = params["width"], params["height"]
    name, pattern = params["config"], params["pattern"]
    config = NetworkConfig.from_name(
        name, width, height,
        half=name.startswith("ruche"),
        edge_memory=pattern == "tile_to_memory",
    )
    curve = sweep_injection_rates(
        config, pattern, preset["rates"],
        warmup=preset["warmup"],
        measure=preset["measure"],
        drain_limit=preset["drain"],
        seed=params["seed"],
    )
    return {
        "size": f"{width}x{height}",
        "pattern": pattern,
        "config": name,
        "zero_load_latency": zero_load_point(curve).avg_latency,
        "saturation_throughput": saturation_throughput(curve),
    }


def run(
    scale: Optional[str] = None, seed: int = 2, jobs: int = 1
) -> ExperimentResult:
    scale = resolve_scale(scale)
    preset = _PRESETS[scale]
    grid = [
        {
            "scale": scale,
            "width": size[0],
            "height": size[1],
            "pattern": pattern,
            "config": name,
            "seed": seed,
        }
        for size in preset["sizes"]
        for pattern in preset["patterns"]
        for name in _configs_for(size, preset["configs"])
    ]
    outcome = run_campaign(grid, _run_row, jobs=jobs)
    rows = outcome.rows
    return ExperimentResult(
        experiment_id="fig9",
        title="Half Ruche synthetic traffic (16x8 / 32x16 / 64x8)",
        rows=rows,
        scale=scale,
        notes=(
            "Paper shape: ruche > half-torus > mesh saturation in "
            "tile-to-tile; tile-to-memory saturation approaches the "
            "compute:memory bound (25% at 4:1, 12.5% at 8:1)."
        ),
    )
