"""Figure 9: Half Ruche synthetic traffic across sizes and aspect ratios.

Tile-to-tile (all-to-all) and tile-to-memory (all-to-edge) sweeps on the
manycore-shaped arrays.  Expected shape (Section 4.5): Half Ruche beats
mesh everywhere; half-torus saturates between mesh and ruche2; pop vs
depop barely matters; higher RF pays off most on 64×8; tile-to-memory
saturation approaches the compute:memory ratio bound once Ruche breaks
the horizontal bisection bottleneck.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.campaign import run_campaign
from repro.experiments.sweeps import (
    grid_preflight,
    rate_sweep_grid,
    run_rate_sweep_row,
    run_rate_sweep_rows,
)

BASE_CONFIGS = (
    "mesh",
    "half-torus",
    "ruche2-depop",
    "ruche2-pop",
    "ruche3-depop",
    "ruche3-pop",
)

_PRESETS: Dict[str, dict] = {
    "smoke": dict(
        sizes=[(16, 8)],
        configs=("mesh", "ruche2-depop"),
        patterns=("tile_to_memory",),
        rates=(0.05, 0.20),
        warmup=150, measure=300, drain=600,
    ),
    "quick": dict(
        sizes=[(16, 8)],
        configs=BASE_CONFIGS,
        patterns=("tile_to_tile", "tile_to_memory"),
        rates=(0.02, 0.08, 0.14, 0.20, 0.30),
        warmup=250, measure=500, drain=1200,
    ),
    "full": dict(
        sizes=[(16, 8), (32, 16), (64, 8)],
        configs=BASE_CONFIGS,
        patterns=("tile_to_tile", "tile_to_memory"),
        rates=(0.02, 0.05, 0.08, 0.11, 0.14, 0.17, 0.20, 0.25, 0.30,
               0.40),
        warmup=500, measure=1000, drain=3000,
    ),
}


def _configs_for(size, names):
    width, height = size
    configs = list(names)
    if (width, height) == (64, 8) and "ruche4-depop" not in configs:
        configs += ["ruche4-depop"]  # Section 4.5 explores Ruche4 on 64x8
    return configs


def _options_for(
    name: str, width: int, height: int, pattern: str
) -> Dict[str, Any]:
    """Half-Ruche config options: fig9 names are Half networks, and the
    tile-to-memory pattern needs the edge-memory endpoints wired."""
    options: Dict[str, Any] = {}
    if name.startswith("ruche"):
        options["half"] = True
    if pattern == "tile_to_memory":
        options["edge_memory"] = True
    return options


def run(
    scale: Optional[str] = None,
    seed: int = 2,
    jobs: int = 1,
    engine: Optional[str] = None,
    preflight: bool = False,
) -> ExperimentResult:
    scale = resolve_scale(scale)
    preset = _PRESETS[scale]
    grid = rate_sweep_grid(
        scale=scale,
        sizes=preset["sizes"],
        patterns=preset["patterns"],
        configs=preset["configs"],
        rates=preset["rates"],
        warmup=preset["warmup"],
        measure=preset["measure"],
        drain=preset["drain"],
        seed=seed,
        configs_for=lambda size: _configs_for(size, preset["configs"]),
        options_for=_options_for,
        engine=engine,
    )
    outcome = run_campaign(
        grid,
        run_rate_sweep_row,
        jobs=jobs,
        preflight=grid_preflight(grid) if preflight else None,
        batch_runner=run_rate_sweep_rows,
    )
    rows = outcome.rows
    return ExperimentResult(
        experiment_id="fig9",
        title="Half Ruche synthetic traffic (16x8 / 32x16 / 64x8)",
        rows=rows,
        scale=scale,
        notes=(
            "Paper shape: ruche > half-torus > mesh saturation in "
            "tile-to-tile; tile-to-memory saturation approaches the "
            "compute:memory bound (25% at 4:1, 12.5% at 8:1)."
        ),
    )
