"""Table 4: bisection vs memory-tile bandwidth across sizes and RFs."""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.analysis.bandwidth import minimum_rf_to_match_memory, table4
from repro.experiments.base import ExperimentResult, resolve_scale


def run(scale: Optional[str] = None, seed: int = 0) -> ExperimentResult:
    scale = resolve_scale(scale)
    rows: List[dict] = []
    for row in table4():
        entry = dataclasses.asdict(row)
        entry["meets_guideline"] = row.meets_guideline
        rows.append(entry)
    notes_extra = []
    for width, height in [(32, 8), (64, 8)]:
        rf = minimum_rf_to_match_memory(width, height)
        notes_extra.append(f"{width}x{height} needs RF={rf} to match")
    return ExperimentResult(
        experiment_id="table4",
        title="Bisection BW vs memory-tile BW (Half Ruche)",
        rows=rows,
        scale=scale,
        notes=(
            "Paper: highlighted rows have bisection >= memory BW; "
            + "; ".join(notes_extra)
            + " (paper: 32x8 matches at RF3, 64x8 'would require Ruche7')."
        ),
    )
