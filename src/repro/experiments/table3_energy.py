"""Table 3: router energy per packet, by output direction."""

from __future__ import annotations

from typing import List, Optional

from repro.core.params import NetworkConfig
from repro.experiments.base import ExperimentResult, resolve_scale
from repro.phys.energy import energy_table

CONFIG_NAMES = ("ruche2-depop", "ruche2-pop", "torus")

#: The paper's published values (pJ/packet).
PAPER_TABLE3 = {
    ("ruche2-depop", "Horizontal"): 1.66,
    ("ruche2-depop", "Vertical"): 1.82,
    ("ruche2-depop", "Ruche Horizontal"): 1.40,
    ("ruche2-depop", "Ruche Vertical"): 1.49,
    ("ruche2-pop", "Horizontal"): 1.95,
    ("ruche2-pop", "Vertical"): 2.01,
    ("ruche2-pop", "Ruche Horizontal"): 1.81,
    ("ruche2-pop", "Ruche Vertical"): 2.00,
    ("torus", "Horizontal"): 2.41,
    ("torus", "Vertical"): 3.35,
}


def run(scale: Optional[str] = None, seed: int = 0) -> ExperimentResult:
    scale = resolve_scale(scale)
    rows: List[dict] = []
    for name in CONFIG_NAMES:
        config = NetworkConfig.from_name(name, 8, 8)
        for direction, pj in energy_table(config).items():
            paper = PAPER_TABLE3.get((name, direction))
            rows.append({
                "config": name,
                "direction": direction,
                "model_pj": pj,
                "paper_pj": paper,
                "error": (pj / paper - 1.0) if paper else None,
            })
    return ExperimentResult(
        experiment_id="table3",
        title="Router energy per packet by direction (pJ)",
        rows=rows,
        scale=scale,
        notes=(
            "Paper shape: ruche < torus everywhere; depop < pop; the "
            "depopulated Ruche directions are the cheapest."
        ),
    )
