"""Shared open-loop sweep harness for the figure drivers.

fig6 (Full Ruche), fig9 (Half Ruche), and fig8 (fairness) are all the
same experiment shape: a campaign grid of declarative design points, one
:class:`~repro.core.spec.NetworkSpec` per row, measured through
:func:`~repro.core.spec.build_run`.  This module owns the two row
functions (a load–latency rate sweep and a per-tile fairness
measurement) plus the grid builder, so each driver shrinks to its preset
table and its result framing.

Row functions are module-level and parameterized purely by a picklable
``params`` dict, so ``run_campaign(..., jobs=N)`` can ship rows to
worker processes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.fairness import summarize_per_tile
from repro.analysis.sweeps import saturation_throughput, zero_load_point
from repro.core.spec import NetworkSpec, build_run

#: ``options_for(config, width, height, pattern) -> config options``.
OptionsFn = Callable[[str, int, int, str], Dict[str, Any]]


def _row_spec(params: Dict[str, Any], rate: float) -> NetworkSpec:
    return NetworkSpec.for_network(
        params["config"],
        params["width"],
        params["height"],
        pattern=params["pattern"],
        rate=rate,
        warmup=params["warmup"],
        measure=params["measure"],
        drain_limit=params["drain"],
        seed=params["seed"],
        engine=params.get("engine"),
        **params.get("options", {}),
    )


def _rate_sweep_row_from_curve(
    params: Dict[str, Any], curve: Sequence[Any]
) -> Dict[str, Any]:
    size = f"{params['width']}x{params['height']}"
    depth = params.get("options", {}).get("depth")
    if depth and depth > 1:
        size += f"x{depth}"
    return {
        "size": size,
        "pattern": params["pattern"],
        "config": params["config"],
        "zero_load_latency": zero_load_point(curve).avg_latency,
        "saturation_throughput": saturation_throughput(curve),
    }


def run_rate_sweep_row(params: Dict[str, Any]) -> Dict[str, Any]:
    """One campaign row: a full load–latency sweep for one design point.

    ``params`` carries the design point (``config``, ``width``,
    ``height``, ``pattern``, optional config ``options``) and the
    measurement recipe (``rates``, ``warmup``, ``measure``, ``drain``,
    ``seed``); the row reports the curve's zero-load latency and
    saturation throughput.
    """
    curve = [
        build_run(_row_spec(params, rate)) for rate in params["rates"]
    ]
    return _rate_sweep_row_from_curve(params, curve)


def run_rate_sweep_rows(
    params_list: Sequence[Dict[str, Any]],
) -> List[Tuple[Optional[Dict[str, Any]], Optional[Exception]]]:
    """Many rate-sweep rows through one compiled batch.

    The batch ``runner`` counterpart of :func:`run_rate_sweep_row`: the
    specs of every row's every rate point are stacked into a single
    :func:`~repro.sim.fastsim.run_compiled_batch` invocation (rows the
    batch gate rejects transparently run per-spec inside it), and the
    outcomes are re-sliced into per-row curves.  Returns one
    ``(row, error)`` pair per entry of ``params_list``, in order: a row
    dict equal to what :func:`run_rate_sweep_row` would have produced,
    or the first exception (in rate order) the row's specs raised —
    exactly the error a serial run would have surfaced first.
    """
    from repro.sim.fastsim import run_compiled_batch

    specs: List[NetworkSpec] = []
    spans: List[Tuple[int, int]] = []
    for params in params_list:
        start = len(specs)
        specs.extend(
            _row_spec(params, rate) for rate in params["rates"]
        )
        spans.append((start, len(specs)))
    outcomes = run_compiled_batch(specs)
    out: List[Tuple[Optional[Dict[str, Any]], Optional[Exception]]] = []
    for params, (start, end) in zip(params_list, spans):
        slice_ = outcomes[start:end]
        error = next(
            (o for o in slice_ if isinstance(o, Exception)), None
        )
        if error is not None:
            out.append((None, error))
        else:
            out.append((_rate_sweep_row_from_curve(params, slice_), None))
    return out


def _fairness_spec(params: Dict[str, Any]) -> NetworkSpec:
    return NetworkSpec.for_network(
        params["config"],
        params["width"],
        params["height"],
        pattern="uniform_random",
        rate=params.get("rate", 0.02),
        warmup=params.get("warmup", 300),
        measure=params["measure"],
        drain_limit=params.get("drain", 5000),
        seed=params["seed"],
        engine=params.get("engine"),
    )


def _fairness_row_from_result(
    params: Dict[str, Any], result: Any
) -> Dict[str, Any]:
    summary = summarize_per_tile(
        result.config_name, result.metrics.per_source_means()
    )
    return {
        "config": params["config"],
        "mean_latency": summary.mean,
        "stddev": summary.stddev,
        "min_tile": summary.min_tile,
        "max_tile": summary.max_tile,
    }


def run_fairness_row(params: Dict[str, Any]) -> Dict[str, Any]:
    """One campaign row: per-tile latency statistics at low load."""
    result = build_run(_fairness_spec(params), track_per_source=True)
    return _fairness_row_from_result(params, result)


def run_fairness_rows(
    params_list: Sequence[Dict[str, Any]],
) -> List[Tuple[Optional[Dict[str, Any]], Optional[Exception]]]:
    """Many fairness rows through one compiled batch.

    Batch counterpart of :func:`run_fairness_row`; see
    :func:`run_rate_sweep_rows` for the outcome contract.
    """
    from repro.sim.fastsim import run_compiled_batch

    specs = [_fairness_spec(params) for params in params_list]
    outcomes = run_compiled_batch(specs, track_per_source=True)
    return [
        (None, o)
        if isinstance(o, Exception)
        else (_fairness_row_from_result(params, o), None)
        for params, o in zip(params_list, outcomes)
    ]


def rate_sweep_grid(
    *,
    scale: str,
    sizes: Sequence[Tuple[int, int]],
    patterns: Sequence[str],
    configs: Sequence[str],
    rates: Sequence[float],
    warmup: int,
    measure: int,
    drain: int,
    seed: int,
    configs_for: Optional[
        Callable[[Tuple[int, int]], Sequence[str]]
    ] = None,
    options_for: Optional[OptionsFn] = None,
    engine: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """A campaign grid of rate-sweep rows (sizes × patterns × configs).

    ``configs_for`` lets a driver vary the config list per array size
    (fig9 adds ruche4 on 64×8); ``options_for`` injects per-row config
    options (fig9's ``half`` / ``edge_memory``).  ``engine`` names the
    simulation engine every row runs on; ``None`` (the default) leaves
    the key out entirely, so pre-engine grids — and the checkpoint keys
    derived from them — are byte-identical to before.  Iteration order
    is sizes → patterns → configs, matching the historical drivers so
    row order — and with it every checkpoint and result file — is
    stable.
    """
    grid: List[Dict[str, Any]] = []
    for width, height in sizes:
        for pattern in patterns:
            names = (
                configs_for((width, height))
                if configs_for is not None
                else configs
            )
            for name in names:
                row: Dict[str, Any] = {
                    "scale": scale,
                    "width": width,
                    "height": height,
                    "pattern": pattern,
                    "config": name,
                    "seed": seed,
                    "rates": list(rates),
                    "warmup": warmup,
                    "measure": measure,
                    "drain": drain,
                }
                if engine is not None:
                    row["engine"] = engine
                if options_for is not None:
                    options = options_for(name, width, height, pattern)
                    if options:
                        row["options"] = options
                grid.append(row)
    return grid


def grid_preflight(
    grid: Sequence[Dict[str, Any]],
    *,
    certify: bool = False,
) -> Callable[[], List[str]]:
    """A campaign ``preflight`` thunk for one sweep grid.

    Statically verifies every distinct design point in the grid and
    checks every named simulation engine against the
    :data:`~repro.core.registry.ENGINES` registry, so a typo'd
    ``--engine`` or an illegal config aborts the campaign before the
    first row simulates.  ``certify=True`` additionally runs the table
    certifier (:mod:`repro.verify.certify`) over each design point,
    gating the campaign on route-table soundness and masked-port
    escapes as well.
    """
    from repro.core.params import NetworkConfig
    from repro.verify import campaign_preflight

    configs = [
        NetworkConfig.from_name(
            row["config"],
            row["width"],
            row["height"],
            **row.get("options", {}),
        )
        for row in grid
    ]
    return campaign_preflight(
        configs,
        engines=[row.get("engine") for row in grid],
        certify=certify,
    )
