"""Registry mapping every paper figure/table to its experiment driver."""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Optional, Tuple

from repro.experiments import (
    fault_degradation,
    fig5_connectivity,
    fig6_synthetic_full,
    fig7_area_timing,
    fig8_fairness,
    fig9_synthetic_half,
    fig10_speedup,
    fig11_scalability,
    fig12_load_latency,
    fig13_energy,
    sweep3d,
    table1_properties,
    table2_area,
    table3_energy,
    table4_bandwidth,
    table6_geomean,
    tail_latency,
)  # noqa: I001 - figure order reads better than lexicographic
from repro import chaos
from repro.experiments.base import ExperimentResult

_REGISTRY: Dict[str, Tuple[Callable, str]] = {
    "table1": (table1_properties.run, "Topology physical-scalability matrix"),
    "fig5": (fig5_connectivity.run, "Crossbar connectivity, pop vs depop"),
    "fig6": (fig6_synthetic_full.run, "Full Ruche synthetic traffic"),
    "fig7": (fig7_area_timing.run, "Area vs cycle-time synthesis sweep"),
    "table2": (table2_area.run, "Router area breakdown"),
    "table3": (table3_energy.run, "Router energy per packet"),
    "fig8": (fig8_fairness.run, "Per-tile latency fairness"),
    "fig9": (fig9_synthetic_half.run, "Half Ruche synthetic traffic"),
    "table4": (table4_bandwidth.run, "Bisection vs memory bandwidth"),
    "fig10": (fig10_speedup.run, "Benchmark speedup over mesh"),
    "fig11": (fig11_scalability.run, "Scalability at 4x cores"),
    "fig12": (fig12_load_latency.run, "Remote load latency decomposition"),
    "fig13": (fig13_energy.run, "Total energy breakdown"),
    "table6": (table6_geomean.run, "Half Ruche geomean summary"),
    "sweep3d": (
        sweep3d.run,
        "3-D mesh/torus synthetic traffic (beyond-2-D pack)",
    ),
    "tail": (
        tail_latency.run,
        "Tail latency and fairness at near-saturation load",
    ),
    "faults": (
        fault_degradation.run,
        "Graceful degradation under random dead links",
    ),
    "chaos": (
        chaos.run,
        "Chaos soak: escalating fault tiers at near-saturation load",
    ),
}


def experiment_ids() -> Tuple[str, ...]:
    return tuple(_REGISTRY)


def describe(experiment_id: str) -> str:
    return _REGISTRY[experiment_id][1]


def run_experiment(
    experiment_id: str,
    scale: Optional[str] = None,
    seed: int = 0,
    **options: Any,
) -> ExperimentResult:
    """Run one paper experiment by id (e.g. ``"fig6"``, ``"table2"``).

    Extra ``options`` (e.g. ``preflight=True``) are forwarded only to
    drivers whose signature accepts them, so campaign-only switches can
    be applied to an ``all`` run without breaking simple experiments.
    """
    try:
        driver, _ = _REGISTRY[experiment_id]
    except KeyError:
        menu = "\n".join(
            f"  {name:<8} {entry[1]}"
            for name, entry in sorted(_REGISTRY.items())
        )
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available "
            f"experiments:\n{menu}"
        ) from None
    parameters = inspect.signature(driver).parameters
    accepted = {k: v for k, v in options.items() if k in parameters}
    return driver(scale=scale, seed=seed, **accepted)
