"""Figure 8: per-tile latency fairness under low-load uniform random.

Measures each tile's average latency and summarizes the distribution.
Expected shape (Section 4.4): mesh has the highest mean and stddev
(µ≈10.6, σ≈1.67 at 16×16); torus is the fairest (symmetric); Ruche
factors 2 and 3 shrink the mesh's stddev by ~2× and ~2.9× while pushing
the mean *below* the torus mean.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.fairness import FairnessSummary, fairness_comparison
from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.campaign import run_campaign
from repro.experiments.sweeps import (
    grid_preflight,
    run_fairness_row,
    run_fairness_rows,
)

CONFIG_NAMES = ("mesh", "torus", "ruche2-pop", "ruche3-pop")

_PRESETS = {
    "smoke": dict(size=8, measure=600),
    "quick": dict(size=16, measure=1500),
    "full": dict(size=16, measure=6000),
}


def run(
    scale: Optional[str] = None,
    seed: int = 5,
    jobs: int = 1,
    engine: Optional[str] = None,
    preflight: bool = False,
) -> ExperimentResult:
    scale = resolve_scale(scale)
    preset = _PRESETS[scale]
    size = preset["size"]
    grid = []
    for name in CONFIG_NAMES:
        row = {
            "config": name,
            "width": size,
            "height": size,
            "measure": preset["measure"],
            "seed": seed,
        }
        if engine is not None:
            row["engine"] = engine
        grid.append(row)
    outcome = run_campaign(
        grid,
        run_fairness_row,
        jobs=jobs,
        preflight=grid_preflight(grid) if preflight else None,
        batch_runner=run_fairness_rows,
    )
    summaries = {
        row["config"]: FairnessSummary(
            config_name=row["config"],
            mean=row["mean_latency"],
            stddev=row["stddev"],
            min_tile=row["min_tile"],
            max_tile=row["max_tile"],
        )
        for row in outcome.rows
    }
    comparison = fairness_comparison(summaries)
    rows: List[dict] = []
    for row in outcome.rows:
        name = row["config"]
        rows.append(dict(
            row,
            stddev_reduction_vs_mesh=comparison[name][
                "stddev_reduction_vs_mesh"
            ],
            mean_ratio_vs_mesh=comparison[name]["mean_ratio_vs_mesh"],
        ))
    return ExperimentResult(
        experiment_id="fig8",
        title=f"Per-tile latency fairness, {size}x{size} uniform random",
        rows=rows,
        scale=scale,
        notes=(
            "Paper anchors (16x16): mesh mu=10.6 sigma=1.67; torus "
            "sigma minimal; ruche2/ruche3 cut mesh sigma by 2.0x/2.93x "
            "and undercut the torus mean."
        ),
    )
