"""Figure 8: per-tile latency fairness under low-load uniform random.

Measures each tile's average latency and summarizes the distribution.
Expected shape (Section 4.4): mesh has the highest mean and stddev
(µ≈10.6, σ≈1.67 at 16×16); torus is the fairest (symmetric); Ruche
factors 2 and 3 shrink the mesh's stddev by ~2× and ~2.9× while pushing
the mean *below* the torus mean.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.fairness import fairness_comparison, measure_fairness
from repro.core.params import NetworkConfig
from repro.experiments.base import ExperimentResult, resolve_scale

CONFIG_NAMES = ("mesh", "torus", "ruche2-pop", "ruche3-pop")

_PRESETS = {
    "smoke": dict(size=8, measure=600),
    "quick": dict(size=16, measure=1500),
    "full": dict(size=16, measure=6000),
}


def _measure_one(task):
    """One fairness measurement; module-level so ``jobs > 1`` can ship
    it to a worker process (FairnessSummary is a plain dataclass)."""
    name, size, measure, seed = task
    config = NetworkConfig.from_name(name, size, size)
    return measure_fairness(config, measure=measure, seed=seed)


def run(
    scale: Optional[str] = None, seed: int = 5, jobs: int = 1
) -> ExperimentResult:
    scale = resolve_scale(scale)
    preset = _PRESETS[scale]
    size = preset["size"]
    tasks = [
        (name, size, preset["measure"], seed) for name in CONFIG_NAMES
    ]
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as executor:
            measured = list(executor.map(_measure_one, tasks))
    else:
        measured = [_measure_one(task) for task in tasks]
    summaries = dict(zip(CONFIG_NAMES, measured))
    comparison = fairness_comparison(summaries)
    rows: List[dict] = []
    for name, summary in summaries.items():
        rows.append({
            "config": name,
            "mean_latency": summary.mean,
            "stddev": summary.stddev,
            "min_tile": summary.min_tile,
            "max_tile": summary.max_tile,
            "stddev_reduction_vs_mesh":
                comparison[name]["stddev_reduction_vs_mesh"],
            "mean_ratio_vs_mesh": comparison[name]["mean_ratio_vs_mesh"],
        })
    return ExperimentResult(
        experiment_id="fig8",
        title=f"Per-tile latency fairness, {size}x{size} uniform random",
        rows=rows,
        scale=scale,
        notes=(
            "Paper anchors (16x16): mesh mu=10.6 sigma=1.67; torus "
            "sigma minimal; ruche2/ruche3 cut mesh sigma by 2.0x/2.93x "
            "and undercut the torus mean."
        ),
    )
