"""Common experiment-driver machinery.

Every paper figure/table has a driver module exposing
``run(scale=..., seed=...) -> ExperimentResult``.  ``scale`` selects
parameter presets:

* ``smoke`` — seconds; exercises the full code path on tiny inputs.
* ``quick`` — the default; small networks / short windows, preserves the
  paper's qualitative shape.  What the benchmark suite runs.
* ``full`` — the paper's network sizes and long measurement windows.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import render_table

SCALES = ("smoke", "quick", "full")


def resolve_scale(scale: Optional[str]) -> str:
    """Explicit argument beats the ``REPRO_SCALE`` env var beats quick."""
    chosen = scale or os.environ.get("REPRO_SCALE", "quick")
    if chosen not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {chosen!r}")
    return chosen


@dataclasses.dataclass
class ExperimentResult:
    """Outcome of one experiment driver."""

    experiment_id: str
    title: str
    rows: List[Dict[str, Any]]
    scale: str
    notes: str = ""
    columns: Optional[Sequence[str]] = None

    def report(self) -> str:
        """Human-readable report (the 'regenerated table/figure')."""
        header = f"[{self.experiment_id}] {self.title} (scale={self.scale})"
        body = render_table(self.rows, columns=self.columns)
        if self.notes:
            return f"{header}\n{body}\n\n{self.notes}"
        return f"{header}\n{body}"

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def lookup(self, **filters: Any) -> List[Dict[str, Any]]:
        """Rows matching all ``filters`` equality constraints."""
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in filters.items())
        ]

    def single(self, **filters: Any) -> Dict[str, Any]:
        rows = self.lookup(**filters)
        if len(rows) != 1:
            raise KeyError(
                f"expected one row for {filters}, found {len(rows)}"
            )
        return rows[0]
