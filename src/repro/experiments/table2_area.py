"""Table 2: router area breakdown at the most relaxed synthesis target."""

from __future__ import annotations

from typing import List, Optional

from repro.core.params import NetworkConfig
from repro.experiments.base import ExperimentResult, resolve_scale
from repro.phys.area import router_area

CONFIG_NAMES = ("multimesh", "ruche2-depop", "ruche2-pop", "torus")

#: The paper's published breakdown (µm²) for side-by-side comparison.
PAPER_TABLE2 = {
    "multimesh": dict(crossbar=791, decode=96, buffers=2250, control=53,
                      total=3190),
    "ruche2-depop": dict(crossbar=599, decode=99, buffers=2250, control=42,
                         total=2991),
    "ruche2-pop": dict(crossbar=986, decode=100, buffers=2250, control=74,
                       total=3411),
    "torus": dict(crossbar=410, decode=349, buffers=2435, control=194,
                  total=3388),
}


def run(scale: Optional[str] = None, seed: int = 0) -> ExperimentResult:
    scale = resolve_scale(scale)
    rows: List[dict] = []
    for name in CONFIG_NAMES:
        config = NetworkConfig.from_name(name, 8, 8)
        breakdown = router_area(config)
        paper = PAPER_TABLE2[name]
        rows.append({
            "config": name,
            "crossbar_um2": breakdown.crossbar,
            "decode_um2": breakdown.decode,
            "buffers_um2": breakdown.buffers,
            "control_um2": breakdown.control,
            "total_um2": breakdown.total,
            "paper_total_um2": paper["total"],
            "total_error": breakdown.total / paper["total"] - 1.0,
        })
    return ExperimentResult(
        experiment_id="table2",
        title="Router area breakdown @ ~98 FO4, 128-bit channels",
        rows=rows,
        scale=scale,
        notes="Paper ordering: depop < multimesh < torus < pop.",
    )
