"""Table 6: geomean summary of the Half Ruche evaluation.

Aggregates the Figure 10–13 runs into the paper's summary metrics:
speedup vs mesh, remote-load latency reduction (intrinsic / congestion /
total), energy efficiency (compute / NoC / total), tile-area increase,
and area-normalized speedup.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.params import NetworkConfig
from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.manycore_runs import (
    FABRICS,
    machine_config,
    prime_cache,
    run_cached,
    size_for,
    suite_for,
    suite_keys,
)
from repro.manycore.energy import system_energy
from repro.manycore.stats import (
    area_normalized_speedup,
    energy_efficiency,
    geomean,
    latency_reduction,
)
from repro.phys.area import tile_area_increase


def _tile_area(fabric: str, width: int, height: int) -> float:
    config = NetworkConfig.from_name(
        fabric, width, height, half=fabric.startswith("ruche")
    )
    return tile_area_increase(config)


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: int = 1
) -> ExperimentResult:
    scale = resolve_scale(scale)
    width, height = size_for(scale)
    suite = suite_for(scale)
    prime_cache(suite_keys(scale, width, height), jobs=jobs)

    mesh_stats = {
        b: run_cached(b, "mesh", width, height, scale) for b in suite
    }
    mesh_cfg = machine_config("mesh", width, height)
    mesh_energy = {
        b: system_energy(mesh_stats[b], mesh_cfg) for b in suite
    }

    rows: List[dict] = []
    for fabric in FABRICS:
        cfg = machine_config(fabric, width, height)
        stats: Dict[str, object] = {
            b: run_cached(b, fabric, width, height, scale) for b in suite
        }
        energy = {b: system_energy(stats[b], cfg) for b in suite}
        speedup = geomean(
            mesh_stats[b].cycles / stats[b].cycles for b in suite
        )
        tile_ratio = _tile_area(fabric, width, height)
        rows.append({
            "config": fabric,
            "speedup_vs_mesh": speedup,
            "latency_reduction_intrinsic": geomean(
                latency_reduction(mesh_stats[b], stats[b], "intrinsic")
                for b in suite
            ),
            "latency_reduction_total": geomean(
                latency_reduction(mesh_stats[b], stats[b], "total")
                for b in suite
            ),
            "energy_eff_compute": geomean(
                energy_efficiency(mesh_energy[b], energy[b], "compute")
                for b in suite
            ),
            "energy_eff_noc": geomean(
                energy_efficiency(mesh_energy[b], energy[b], "noc")
                for b in suite
            ),
            "energy_eff_total": geomean(
                energy_efficiency(mesh_energy[b], energy[b], "total")
                for b in suite
            ),
            "tile_area_increase": tile_ratio,
            "area_normalized_speedup": area_normalized_speedup(
                speedup, tile_ratio
            ),
        })
    return ExperimentResult(
        experiment_id="table6",
        title=f"Half Ruche geomean summary ({width}x{height})",
        rows=rows,
        scale=scale,
        notes=(
            "Paper anchors (32x16): speedups r2d 1.17x / r3p 1.24x / "
            "half-torus 1.08x; NoC energy efficiency r2d 1.28x, "
            "half-torus 0.75x; area-normalized speedup favors depop."
        ),
    )
