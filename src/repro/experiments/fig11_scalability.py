"""Figure 11: scalability — speedup from quadrupling the core count.

Per-core work is held constant (weak scaling), so a machine with 4× the
cores performs 4× the work; "scalability" is the equivalent-work speedup
over the 16×8 mesh, with 4× as the ideal ceiling.  Expected shape
(Section 4.7): Ruche helps everywhere; half-torus scales worst; 64×8 mesh
collapses on its bisection; at RF3, 64×8 edges past 32×16.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.manycore_runs import (
    FABRICS,
    prime_cache,
    run_cached,
    suite_for,
    suite_keys,
)
from repro.manycore.stats import geomean

#: Scaled sizes vs the 16x8 baseline (both are 4x the cores).
_SIZES = {"smoke": [(16, 8)], "quick": [(32, 16)],
          "full": [(32, 16), (64, 8)]}
_BASE = {"smoke": (8, 4), "quick": (16, 8), "full": (16, 8)}


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: int = 1
) -> ExperimentResult:
    scale = resolve_scale(scale)
    base_w, base_h = _BASE[scale]
    suite = suite_for(scale)
    keys = [
        (benchmark, "mesh", base_w, base_h, scale) for benchmark in suite
    ]
    for width, height in _SIZES[scale]:
        keys += suite_keys(scale, width, height)
    prime_cache(keys, jobs=jobs)
    rows: List[dict] = []
    for width, height in _SIZES[scale]:
        work_ratio = (width * height) / (base_w * base_h)
        per_fabric = {name: [] for name in FABRICS}
        for benchmark in suite:
            base = run_cached(benchmark, "mesh", base_w, base_h, scale)
            for fabric in FABRICS:
                stats = run_cached(benchmark, fabric, width, height, scale)
                scalability = work_ratio * base.cycles / stats.cycles
                per_fabric[fabric].append(scalability)
                rows.append({
                    "size": f"{width}x{height}",
                    "benchmark": benchmark,
                    "config": fabric,
                    "scalability": scalability,
                })
        for fabric in FABRICS:
            rows.append({
                "size": f"{width}x{height}",
                "benchmark": "GEOMEAN",
                "config": fabric,
                "scalability": geomean(per_fabric[fabric]),
            })
    return ExperimentResult(
        experiment_id="fig11",
        title=(
            f"Scalability vs {base_w}x{base_h} mesh "
            f"(ceiling = core ratio)"
        ),
        rows=rows,
        scale=scale,
        notes=(
            "Paper anchors (geomean vs 16x8 mesh): 32x16 mesh 2.20x, "
            "ruche3-pop 2.73x; 64x8 mesh 1.66x, ruche3-pop 2.83x; "
            "half-torus always below ruche."
        ),
    )
