"""Beyond-2-D: 3-D mesh/torus load-latency sweeps (fig6 shape).

The port-graph IR makes the whole pipeline dimension-agnostic, and this
driver is the proof in campaign form: the same rate-sweep grid, batched
compiled engine, and preflight/certify gates fig6 uses, pointed at the
3-D topology pack (``mesh3d`` / ``torus3d``, stacked ``depth`` layers
riding the RN/RS port ids).  The quick and full presets run the
8x8x4 torus — 256 nodes, three FBFC rings per router — through
:func:`~repro.sim.fastsim.run_compiled_batch` like any 2-D point.

See ``docs/methodology.md`` ("Beyond 2-D") for the sweep recipe.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.campaign import run_campaign
from repro.experiments.sweeps import (
    grid_preflight,
    rate_sweep_grid,
    run_rate_sweep_row,
    run_rate_sweep_rows,
)

CONFIG_NAMES = ("mesh3d", "torus3d")

#: 3-D sweeps are uniform-random only: the 2-D coordinate patterns
#: (transpose, tornado, ...) produce layer-0 destinations and would
#: measure an unintended projection, not the 3-D fabric.
PATTERNS = ("uniform_random",)

_PRESETS: Dict[str, dict] = {
    "smoke": dict(
        sizes=[(4, 4)], depth=3,
        rates=(0.05, 0.30),
        warmup=150, measure=300, drain=600,
    ),
    "quick": dict(
        sizes=[(8, 8)], depth=4,
        rates=(0.02, 0.10, 0.20, 0.30, 0.45),
        warmup=250, measure=500, drain=1200,
    ),
    "full": dict(
        sizes=[(8, 8)], depth=4,
        rates=(0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35,
               0.40, 0.45, 0.50, 0.60),
        warmup=500, measure=1000, drain=3000,
    ),
}


def make_grid(
    scale: str,
    seed: int = 1,
    sizes: Optional[Sequence[Tuple[int, int]]] = None,
    engine: Optional[str] = None,
) -> list:
    """The 3-D sweep campaign grid (also used by the pack's tests)."""
    preset = _PRESETS[scale]
    depth = preset["depth"]

    def options_for(
        name: str, width: int, height: int, pattern: str
    ) -> Dict[str, Any]:
        return {"depth": depth}

    return rate_sweep_grid(
        scale=scale,
        sizes=list(sizes or preset["sizes"]),
        patterns=PATTERNS,
        configs=CONFIG_NAMES,
        rates=preset["rates"],
        warmup=preset["warmup"],
        measure=preset["measure"],
        drain=preset["drain"],
        seed=seed,
        options_for=options_for,
        engine=engine,
    )


def run(
    scale: Optional[str] = None,
    seed: int = 1,
    sizes: Optional[Sequence[Tuple[int, int]]] = None,
    jobs: int = 1,
    engine: Optional[str] = None,
    preflight: bool = False,
) -> ExperimentResult:
    scale = resolve_scale(scale)
    grid = make_grid(scale, seed=seed, sizes=sizes, engine=engine)
    outcome = run_campaign(
        grid,
        run_rate_sweep_row,
        jobs=jobs,
        preflight=grid_preflight(grid, certify=True) if preflight
        else None,
        batch_runner=run_rate_sweep_rows,
    )
    return ExperimentResult(
        experiment_id="sweep3d",
        title="3-D mesh/torus synthetic traffic (load-latency sweeps)",
        rows=outcome.rows,
        scale=scale,
        notes=(
            "Dimension-agnostic pipeline proof: mesh3d (X-Y-Z DOR) and "
            "torus3d (per-ring shortest-way over FBFC) swept through "
            "the batched compiled engine; expect torus3d to saturate "
            "above mesh3d under uniform random."
        ),
    )
