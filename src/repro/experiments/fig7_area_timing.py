"""Figure 7: router cell area vs. synthesis target cycle time.

Sweeps the synthesis target downward (fixed decrement, 128-bit channels,
X-Y DOR crossbars) for mesh, multi-mesh, Full Ruche (pop and depop) and
2-D torus, reporting the area curve and each router's minimum achieved
cycle time.  Expected shape: Ruche routers reach far lower cycle times
than torus; depop Ruche is the smallest multi-network router everywhere;
fully-populated slightly exceeds torus area at relaxed timing.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.params import NetworkConfig
from repro.experiments.base import ExperimentResult, resolve_scale
from repro.phys.synthesis import min_achieved_cycle, synthesis_curve
from repro.phys.timing import RELAXED_CYCLE_FO4

CONFIG_NAMES = ("mesh", "multimesh", "ruche2-depop", "ruche2-pop", "torus")


def run(scale: Optional[str] = None, seed: int = 0) -> ExperimentResult:
    scale = resolve_scale(scale)
    step = {"smoke": 16.0, "quick": 4.0, "full": 2.0}[scale]
    targets = []
    t = RELAXED_CYCLE_FO4
    while t > 4.0:
        targets.append(t)
        t -= step
    rows: List[dict] = []
    for name in CONFIG_NAMES:
        config = NetworkConfig.from_name(name, 8, 8)
        curve = synthesis_curve(config, targets_fo4=targets)
        feasible = [p for p in curve if p.met_timing]
        rows.append({
            "config": name,
            "min_cycle_fo4": min_achieved_cycle(curve),
            "area_at_relaxed": feasible[0].area_um2,
            "area_at_min_cycle": feasible[-1].area_um2,
            "area_inflation": feasible[-1].area_um2 / feasible[0].area_um2,
            "curve_points": len(feasible),
        })
    return ExperimentResult(
        experiment_id="fig7",
        title="Area vs. cycle time synthesis sweep (128-bit, X-Y DOR)",
        rows=rows,
        scale=scale,
        notes=(
            "Paper shape: min cycle mesh <= ruche-depop ~= ruche-pop ~= "
            "multimesh << torus; depop has the lowest area of the "
            "multi-network routers at every target."
        ),
    )
