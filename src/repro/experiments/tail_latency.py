"""Tail latency under near-saturation load: p50/p99/p999 + fairness.

Mean latency (Figures 6/9) hides what saturation does to the *worst*
packets: near the knee, queueing noise concentrates in the distribution
tail and in unlucky tiles long before the mean moves much.  This
experiment loads each fabric with uniform-random traffic at a shared
near-saturation rate (a fixed fraction of the mesh's bisection bound,
so rows compare apples-to-apples) on the compiled engine and reports
the tail columns promoted into :mod:`repro.sim.metrics`: p50/p99/p999
latency plus per-tile fairness (max/mean ratio and CV of per-tile mean
latencies).

Expected shape: Ruche channels pull the p99/p999 tail in and flatten
the per-tile spread at the shared load — extra bandwidth helps the
tail first.  At the paper's scale this runs 64x64 (``--scale full``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.spec import NetworkSpec, build_run
from repro.experiments.base import ExperimentResult, resolve_scale
from repro.sim.metrics import tail_latency_stats

#: Fabrics compared (synthetic-traffic names).
CONFIGS = ("mesh", "half-torus", "ruche2-depop", "ruche2-pop")

#: A square mesh's uniform-random bisection bound is 4/width flits per
#: node per cycle; the shared measurement load sits at this fraction of
#: it — heavy enough that the tail separates fabrics, light enough that
#: the mesh still drains.
LOAD_FRACTION = 0.6

_PRESETS: Dict[str, dict] = {
    "smoke": dict(size=(16, 16), warmup=300, measure=600, drain=6_000),
    "quick": dict(size=(32, 32), warmup=500, measure=1_000, drain=12_000),
    "full": dict(size=(64, 64), warmup=1_000, measure=2_000, drain=30_000),
}


def near_saturation_rate(width: int) -> float:
    """The shared per-node injection rate for a ``width``-wide array."""
    return LOAD_FRACTION * 4.0 / width


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: int = 1
) -> ExperimentResult:
    scale = resolve_scale(scale)
    preset = _PRESETS[scale]
    width, height = preset["size"]
    rate = near_saturation_rate(width)
    rows: List[Dict[str, Any]] = []
    for config in CONFIGS:
        spec = NetworkSpec.for_network(
            config,
            width,
            height,
            pattern="uniform_random",
            rate=rate,
            warmup=preset["warmup"],
            measure=preset["measure"],
            drain_limit=preset["drain"],
            seed=seed,
            engine="compiled",
        )
        result = build_run(
            spec, track_per_source=True, keep_samples=True
        )
        rows.append({
            "config": config,
            "rate": rate,
            "engine": result.engine,
            "accepted_throughput": result.accepted_throughput,
            "avg_latency": result.avg_latency,
            "drained": result.drained,
            **tail_latency_stats(result.metrics),
        })
    return ExperimentResult(
        experiment_id="tail",
        title=(
            f"Tail latency at near-saturation "
            f"({width}x{height}, rate {rate:.4f})"
        ),
        rows=rows,
        scale=scale,
        notes=(
            "Shared uniform-random load at "
            f"{LOAD_FRACTION:.0%} of the mesh bisection bound; tail "
            "columns (p50/p99/p999, per-tile fairness) come from "
            "repro.sim.metrics on the compiled engine."
        ),
    )
