"""Figure 5: Full Ruche crossbar connectivity matrix, pop vs depop."""

from __future__ import annotations

from typing import List, Optional

from repro.core.connectivity import (
    FULL_RUCHE_DEPOP_XY,
    FULL_RUCHE_POP_XY,
    max_mux_inputs,
    output_fanin,
    total_connections,
)
from repro.core.coords import Direction
from repro.experiments.base import ExperimentResult, resolve_scale


def run(scale: Optional[str] = None, seed: int = 0) -> ExperimentResult:
    scale = resolve_scale(scale)
    pop_fanin = output_fanin(FULL_RUCHE_POP_XY)
    depop_fanin = output_fanin(FULL_RUCHE_DEPOP_XY)
    rows: List[dict] = []
    for direction in Direction:
        rows.append({
            "output": direction.name,
            "fanin_depop": depop_fanin.get(direction, 0),
            "fanin_pop": pop_fanin.get(direction, 0),
            "removed_by_depop": (
                pop_fanin.get(direction, 0)
                - depop_fanin.get(direction, 0)
            ),
        })
    rows.append({
        "output": "TOTAL",
        "fanin_depop": total_connections(FULL_RUCHE_DEPOP_XY),
        "fanin_pop": total_connections(FULL_RUCHE_POP_XY),
        "removed_by_depop": (
            total_connections(FULL_RUCHE_POP_XY)
            - total_connections(FULL_RUCHE_DEPOP_XY)
        ),
    })
    return ExperimentResult(
        experiment_id="fig5",
        title="Full Ruche crossbar connectivity (X-Y DOR)",
        rows=rows,
        scale=scale,
        notes=(
            f"Paper: depop removes 16 connections; P output 9->7; RS/RN "
            f"lose 5 inputs each; max mux "
            f"{max_mux_inputs(FULL_RUCHE_DEPOP_XY)} (depop) vs "
            f"{max_mux_inputs(FULL_RUCHE_POP_XY)} (pop)."
        ),
    )
