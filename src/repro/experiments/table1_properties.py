"""Table 1: physical-scalability property matrix of NoC topologies."""

from __future__ import annotations

from typing import List, Optional

from repro.core.topology import (
    physical_properties,
    table1_criteria,
    table1_topologies,
)
from repro.experiments.base import ExperimentResult, resolve_scale


def run(scale: Optional[str] = None, seed: int = 0) -> ExperimentResult:
    scale = resolve_scale(scale)
    rows: List[dict] = []
    for name in table1_topologies():
        row = {"topology": name}
        row.update(physical_properties(name))
        rows.append(row)
    return ExperimentResult(
        experiment_id="table1",
        title="Physical scalability criteria by topology",
        rows=rows,
        scale=scale,
        columns=["topology", *table1_criteria()],
        notes=(
            "Ruche and folded torus meet all criteria; mesh lacks only "
            "long-range links; the high-radix topologies fail tiling."
        ),
    )
