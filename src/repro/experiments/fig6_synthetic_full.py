"""Figure 6: Full Ruche vs mesh/torus/multi-mesh under synthetic traffic.

Sweeps injection rate for every topology on square arrays and reports
zero-load latency and saturation throughput per (size, pattern, config).
Expected shape (paper Section 4.1): in uniform random, mesh saturates
lowest, torus above mesh but *below* ruche1-pop (the halved-crossbar
insight), multi-mesh ≈ ruche1-pop, and higher Ruche Factors raise
saturation — except ruche3-depop, which regresses on 8×8.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.campaign import run_campaign
from repro.experiments.sweeps import (
    grid_preflight,
    rate_sweep_grid,
    run_rate_sweep_row,
    run_rate_sweep_rows,
)

CONFIG_NAMES = (
    "mesh",
    "torus",
    "multimesh",
    "ruche1",
    "ruche2-depop",
    "ruche2-pop",
    "ruche3-depop",
    "ruche3-pop",
)

PATTERNS = ("uniform_random", "bit_complement", "transpose", "tornado")

_PRESETS: Dict[str, dict] = {
    "smoke": dict(
        sizes=[(8, 8)],
        patterns=("uniform_random",),
        configs=("mesh", "torus", "ruche1", "ruche2-depop"),
        rates=(0.05, 0.30, 0.60),
        warmup=150, measure=300, drain=600,
    ),
    "quick": dict(
        sizes=[(8, 8)],
        patterns=PATTERNS,
        configs=CONFIG_NAMES,
        rates=(0.02, 0.10, 0.20, 0.30, 0.45, 0.60),
        warmup=250, measure=500, drain=1200,
    ),
    "full": dict(
        sizes=[(8, 8), (16, 16)],
        patterns=PATTERNS,
        configs=CONFIG_NAMES,
        rates=(0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35,
               0.40, 0.45, 0.50, 0.60),
        warmup=500, measure=1000, drain=3000,
    ),
}


#: The fig6 row function: the shared rate-sweep row (kept under the
#: historical name for the parallel-equivalence tests and the bench
#: harness).
_run_row = run_rate_sweep_row


def make_grid(
    scale: str,
    seed: int = 1,
    sizes: Optional[Sequence[Tuple[int, int]]] = None,
    engine: Optional[str] = None,
) -> list:
    """The fig6 campaign grid (also used by the parallel-equivalence
    tests and the bench harness)."""
    preset = _PRESETS[scale]
    return rate_sweep_grid(
        scale=scale,
        sizes=list(sizes or preset["sizes"]),
        patterns=preset["patterns"],
        configs=preset["configs"],
        rates=preset["rates"],
        warmup=preset["warmup"],
        measure=preset["measure"],
        drain=preset["drain"],
        seed=seed,
        engine=engine,
    )


def run(
    scale: Optional[str] = None,
    seed: int = 1,
    sizes: Optional[Sequence[Tuple[int, int]]] = None,
    jobs: int = 1,
    engine: Optional[str] = None,
    preflight: bool = False,
) -> ExperimentResult:
    scale = resolve_scale(scale)
    grid = make_grid(scale, seed=seed, sizes=sizes, engine=engine)
    outcome = run_campaign(
        grid,
        _run_row,
        jobs=jobs,
        preflight=grid_preflight(grid) if preflight else None,
        batch_runner=run_rate_sweep_rows,
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Full Ruche synthetic traffic (load-latency sweeps)",
        rows=outcome.rows,
        scale=scale,
        notes=(
            "Paper shape: UR saturation mesh < torus < ruche1-pop ~= "
            "multimesh < ruche2/3-pop; ruche3-depop regresses on 8x8."
        ),
    )
