"""Figure 12: average remote load latency, split intrinsic vs congestion.

Expected shape (Section 4.8): intrinsic latency is nearly uniform across
benchmarks (IPOLY balances the banks); Ruche cuts intrinsic latency by
~27% at ruche2-depop with diminishing returns beyond; congestion
dominates for the streaming workloads; congestion is never *worsened* by
Ruche channels.

Each row additionally replays the run's captured request-network
injection trace on the compiled engine (capture once, replay many — see
:mod:`repro.experiments.manycore_runs`) and reports the tail of the
replayed network latency distribution: ``replay_p50/p99/p999`` plus the
per-tile fairness columns from :mod:`repro.sim.metrics`, with
``replay_engine`` recording the engine that actually ran.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.manycore_runs import (
    FABRICS,
    prime_cache,
    replay_result,
    run_cached,
    size_for,
    suite_for,
    suite_keys,
)
from repro.sim.metrics import tail_latency_stats


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: int = 1
) -> ExperimentResult:
    scale = resolve_scale(scale)
    width, height = size_for(scale)
    prime_cache(suite_keys(scale, width, height), jobs=jobs)
    rows: List[dict] = []
    for benchmark in suite_for(scale):
        for fabric in FABRICS:
            stats = run_cached(benchmark, fabric, width, height, scale)
            replay = replay_result(
                benchmark,
                fabric,
                width,
                height,
                scale,
                stream="fwd",
                engine="compiled",
                track_per_source=True,
                keep_samples=True,
            )
            tail = tail_latency_stats(replay.metrics)
            rows.append({
                "benchmark": benchmark,
                "config": fabric,
                "intrinsic": stats.avg_intrinsic_latency,
                "congestion": stats.avg_congestion_latency,
                "total": stats.avg_load_latency,
                "replay_engine": replay.engine,
                **{f"replay_{k}": v for k, v in tail.items()},
            })
    return ExperimentResult(
        experiment_id="fig12",
        title=f"Remote load latency decomposition ({width}x{height})",
        rows=rows,
        scale=scale,
        notes=(
            "Paper anchors (32x16 geomean): ruche2-depop cuts intrinsic "
            "latency ~1.28x and total ~1.27x vs mesh; half-torus ~1.11x."
        ),
    )
