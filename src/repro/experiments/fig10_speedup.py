"""Figure 10: parallel benchmark speedup over 2-D mesh.

Runs the benchmark suite on every fabric and reports runtime speedups
relative to the mesh.  Expected shape (Section 4.6): Half Ruche beats
mesh and half-torus across the board, ruche2-depop already captures most
of the gain, pop > depop slightly, ruche3 > ruche2 slightly; SpGEMM's
atomic hotspot caps its gains; Jacobi regresses on half-torus.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.manycore_runs import (
    FABRICS,
    prime_cache,
    run_cached,
    size_for,
    suite_for,
    suite_keys,
)
from repro.manycore.stats import geomean


def run(
    scale: Optional[str] = None, seed: int = 0, jobs: int = 1
) -> ExperimentResult:
    scale = resolve_scale(scale)
    width, height = size_for(scale)
    suite = suite_for(scale)
    prime_cache(suite_keys(scale, width, height), jobs=jobs)
    rows: List[dict] = []
    per_fabric_speedups = {name: [] for name in FABRICS}
    for benchmark in suite:
        mesh = run_cached(benchmark, "mesh", width, height, scale)
        for fabric in FABRICS:
            stats = run_cached(benchmark, fabric, width, height, scale)
            speedup = mesh.cycles / stats.cycles
            per_fabric_speedups[fabric].append(speedup)
            rows.append({
                "benchmark": benchmark,
                "config": fabric,
                "cycles": stats.cycles,
                "speedup_vs_mesh": speedup,
            })
    for fabric in FABRICS:
        rows.append({
            "benchmark": "GEOMEAN",
            "config": fabric,
            "cycles": None,
            "speedup_vs_mesh": geomean(per_fabric_speedups[fabric]),
        })
    return ExperimentResult(
        experiment_id="fig10",
        title=f"Benchmark speedup over mesh ({width}x{height})",
        rows=rows,
        scale=scale,
        notes=(
            "Paper anchors (32x16 geomean): ruche2-depop 1.17x, "
            "ruche3-pop 1.24x, half-torus 1.08x."
        ),
    )
