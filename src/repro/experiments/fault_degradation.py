"""Graceful degradation under link faults: mesh vs. Full Ruche.

Not a paper figure — a robustness study the fault subsystem enables.
For each topology and dead-link count, kill random links, rebuild the
route tables around them (fault-tolerant crossbar + BFS detours), then
sweep injection rate to find the degraded saturation throughput and
zero-load latency.  Normalising against the zero-fault row yields the
graceful-degradation curve.

Expected shape: a mesh has exactly one minimal DOR path per pair, so a
single dead link forces long detours through an already-minimal
channel budget — throughput collapses and, near saturation, the detour
turns deadlock (caught by the watchdog and recorded as the row's
``deadlock_load``).  Full Ruche keeps near-healthy throughput through
several dead links because ruche channels give the tables real path
diversity.

Rows carry per-rate sweep points; a watchdog trip at a rate point is
*recorded as saturation at that load* (the network provably cannot
carry it) rather than failing the row.  Campaign-level hardening
(checkpoint resume, retry-with-fresh-seed, budgets) comes from
:mod:`repro.experiments.campaign`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.analysis.degradation import degradation_curves, degradation_rows
from repro.core.params import NetworkConfig
from repro.errors import DeadlockError
from repro.experiments.base import ExperimentResult, resolve_scale
from repro.experiments.campaign import CheckpointStore, run_campaign
from repro.sim.faults import FaultSchedule
from repro.sim.simulator import run_synthetic
from repro.sim.watchdog import WatchdogConfig

#: Fault injection requires wormhole routers (no VCs / FBFC), so the
#: torus baselines are out; mesh vs. the Full Ruche family is the
#: interesting comparison anyway.
_PRESETS: Dict[str, dict] = {
    "smoke": dict(
        size=(8, 8),
        configs=("mesh", "ruche2-depop"),
        fault_counts=(0, 1, 2, 4),
        fault_seeds=(0,),
        rates=(0.05, 0.15, 0.25, 0.35, 0.45),
        warmup=100, measure=200, drain=400,
        stall_window=300, max_cycles=20_000, max_wall_seconds=120.0,
    ),
    "quick": dict(
        size=(8, 8),
        configs=("mesh", "ruche2-depop", "ruche2-pop"),
        fault_counts=(0, 1, 2, 4, 8),
        fault_seeds=(0, 1),
        rates=(0.02, 0.10, 0.20, 0.30, 0.40, 0.50),
        warmup=250, measure=500, drain=1200,
        stall_window=600, max_cycles=60_000, max_wall_seconds=600.0,
    ),
    "full": dict(
        size=(16, 16),
        configs=("mesh", "multimesh", "ruche2-depop", "ruche2-pop",
                 "ruche3-pop"),
        fault_counts=(0, 1, 2, 4, 8, 16),
        fault_seeds=(0, 1, 2),
        rates=(0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40,
               0.45, 0.50),
        warmup=500, measure=1000, drain=3000,
        stall_window=1000, max_cycles=200_000, max_wall_seconds=3600.0,
    ),
}

PATTERN = "uniform_random"


def _run_row(params: Dict[str, Any]) -> Dict[str, Any]:
    """One campaign row: a full rate sweep at one fault configuration.

    The preset is recovered from ``params["scale"]`` so the runner is a
    module-level function of one picklable dict — required for the
    campaign's ``jobs > 1`` worker processes.
    """
    preset = _PRESETS[params["scale"]]
    width, height = preset["size"]
    config = NetworkConfig.from_name(params["config"], width, height)
    # degraded_model pins every row (including the zero-fault baseline)
    # to the same microarchitecture — BFS tables on the fault-tolerant
    # crossbar — so the fractions isolate fault impact rather than the
    # DOR-vs-table routing difference.
    schedule = FaultSchedule.random_dead_links(
        config,
        params["fault_count"],
        seed=params["fault_seed"],
        degraded_model=True,
    )
    partitioned = 0
    if schedule.affects_routing:
        from repro.core.spec import build_routing

        routing = build_routing(config, faults=schedule)
        partitioned = len(routing.partitioned_pairs())

    stall_window = params.get("watchdog_cycles") or preset["stall_window"]
    points: List[List[float]] = []
    deadlock_load: Optional[float] = None
    for rate in preset["rates"]:
        try:
            point = run_synthetic(
                config,
                PATTERN,
                rate,
                engine=params.get("engine"),
                warmup=preset["warmup"],
                measure=preset["measure"],
                drain_limit=preset["drain"],
                seed=params["seed"],
                faults=schedule,
                watchdog=WatchdogConfig(stall_window=stall_window),
                max_cycles=preset["max_cycles"],
                max_wall_seconds=preset["max_wall_seconds"],
            )
        except DeadlockError:
            # The degraded network provably cannot carry this load:
            # count the point as saturation, not as a campaign failure.
            deadlock_load = rate
            break
        points.append(
            [rate, point.accepted_throughput, point.avg_latency]
        )
        if point.saturated:
            break
    if not points:
        raise DeadlockError(
            f"{params['config']} with {params['fault_count']} dead links "
            f"deadlocked at the lowest swept rate {preset['rates'][0]}"
        )
    row = dict(params)
    row.update(
        partitioned_pairs=partitioned,
        saturation_throughput=max(p[1] for p in points),
        zero_load_latency=points[0][2],
        deadlock_load=deadlock_load,
        points=points,
    )
    return row


def run(
    scale: Optional[str] = None,
    seed: int = 0,
    checkpoint: Optional[str] = None,
    preflight: bool = False,
    jobs: int = 1,
    watchdog_cycles: Optional[int] = None,
    engine: Optional[str] = None,
) -> ExperimentResult:
    """Fault-degradation campaign (experiment id ``faults``).

    ``checkpoint`` names a JSON file; when given, completed rows persist
    there and a rerun resumes instead of recomputing them.  With
    ``preflight=True``, every healthy design point in the sweep is
    statically verified (deadlock freedom, turn legality, reachability —
    see :mod:`repro.verify`) before the first row simulates.
    ``jobs > 1`` shards rows across worker processes with bit-identical
    results (see :func:`repro.experiments.campaign.run_campaign`).
    ``watchdog_cycles`` overrides the preset's stall window (the CLI's
    ``--watchdog-cycles``), and ``engine`` pins the simulation engine;
    both enter the parameter grid — and so the checkpoint key — only
    when set, keeping existing checkpoints resumable.
    """
    scale = resolve_scale(scale)
    preset = _PRESETS[scale]
    width, height = preset["size"]
    overrides: Dict[str, Any] = {}
    if watchdog_cycles is not None:
        overrides["watchdog_cycles"] = watchdog_cycles
    if engine is not None:
        overrides["engine"] = engine
    grid = [
        {
            "config": name,
            "size": f"{width}x{height}",
            "pattern": PATTERN,
            "scale": scale,
            "fault_count": count,
            "fault_seed": fault_seed,
            "seed": seed + 1,
            **overrides,
        }
        for name in preset["configs"]
        for count in preset["fault_counts"]
        for fault_seed in preset["fault_seeds"]
    ]
    store = CheckpointStore(checkpoint) if checkpoint else None
    preflight_fn = None
    if preflight:
        from repro.verify import campaign_preflight

        preflight_fn = campaign_preflight(
            NetworkConfig.from_name(name, width, height)
            for name in preset["configs"]
        )
    outcome = run_campaign(
        grid,
        _run_row,
        checkpoint=store,
        preflight=preflight_fn,
        jobs=jobs,
    )
    curves = degradation_curves(outcome.rows)
    rows = degradation_rows(curves)
    notes = (
        "throughput_frac/latency_frac are relative to each config's "
        "zero-fault row; deadlock_load is the offered load at which the "
        "watchdog tripped (counted as saturation). Expected shape: mesh "
        "degrades steeply and deadlocks past saturation once links die; "
        "Full Ruche retains near-1.0 throughput_frac via detour "
        "diversity."
    )
    if outcome.failures:
        failed = ", ".join(
            f"{f['config']}/n={f['fault_count']}" for f in outcome.failures
        )
        notes += f" FAILED ROWS (excluded): {failed}."
    if outcome.reused:
        notes += f" ({outcome.reused} rows resumed from checkpoint.)"
    return ExperimentResult(
        experiment_id="faults",
        title="Graceful degradation under random dead links",
        rows=rows,
        scale=scale,
        notes=notes,
        columns=(
            "config", "fault_count", "fault_seed", "partitioned_pairs",
            "saturation_throughput", "throughput_frac",
            "zero_load_latency", "latency_frac", "deadlock_load",
        ),
    )
