"""Shared, cached manycore runs for the Figure 10–13 / Table 6 drivers.

The same (benchmark, network, size) simulations feed several experiment
drivers; this module memoizes them per process so Table 6 can aggregate
the Figure 10–13 data without re-simulating.  :func:`prime_cache` fills
the memo across worker processes (each run is a pure, deterministic
function of its key) so the drivers' ``--jobs`` flag parallelizes the
expensive simulations while every aggregation step stays serial.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.manycore import (
    Machine,
    MachineConfig,
    MachineStats,
    build_workload,
)

#: Cache key: (benchmark, network, width, height, scale).
RunKey = Tuple[str, str, int, int, str]

#: Manycore fabrics compared in Figures 10-13 (paper order).
FABRICS = (
    "mesh",
    "half-torus",
    "ruche2-depop",
    "ruche2-pop",
    "ruche3-depop",
    "ruche3-pop",
)

#: Kernel parameter presets per scale: smaller problems, same shape.
KERNEL_PRESETS: Dict[str, Dict[str, dict]] = {
    "smoke": {
        "jacobi": dict(block=3, iterations=2),
        "sgemm": dict(block=3, k_panels=2),
        "fft": dict(points_per_core=8, stages=2),
        "bh": dict(bodies_per_core=2, walk_depth=4),
        "bfs": dict(max_levels=3),
        "pr": dict(max_edges_per_core=80),
        "spgemm": dict(rows_per_core=1, max_chain=3),
    },
    "quick": {
        "jacobi": dict(block=4, iterations=4),
        "sgemm": dict(block=4, k_panels=4),
        "fft": dict(points_per_core=12, stages=3),
        "bh": dict(bodies_per_core=4, walk_depth=6),
        "bfs": dict(max_levels=4),
        "pr": dict(max_edges_per_core=200),
        "spgemm": dict(rows_per_core=2, max_chain=4),
    },
    "full": {
        "jacobi": dict(block=6, iterations=6),
        "sgemm": dict(block=5, k_panels=6),
        "fft": dict(points_per_core=16, stages=4),
        "bh": dict(bodies_per_core=6, walk_depth=8),
        "bfs": dict(max_levels=8),
        "pr": dict(max_edges_per_core=500),
        "spgemm": dict(rows_per_core=3, max_chain=6),
    },
}


def kernel_params(benchmark: str, scale: str) -> dict:
    kernel = benchmark.partition("-")[0]
    return dict(KERNEL_PRESETS[scale].get(kernel, {}))


_CACHE: Dict[RunKey, MachineStats] = {}


def _simulate(
    benchmark: str, network: str, width: int, height: int, scale: str
) -> MachineStats:
    """One manycore simulation (pure function of its arguments)."""
    mcfg = MachineConfig(network=network, width=width, height=height)
    workload = build_workload(
        benchmark, mcfg, **kernel_params(benchmark, scale)
    )
    return Machine(mcfg, workload).run(max_cycles=3_000_000)


def _simulate_key(key: RunKey) -> MachineStats:
    """Picklable worker entry point for :func:`prime_cache`."""
    return _simulate(*key)


def run_cached(
    benchmark: str,
    network: str,
    width: int,
    height: int,
    scale: str,
) -> MachineStats:
    """One memoized manycore simulation."""
    key = (benchmark, network, width, height, scale)
    stats = _CACHE.get(key)
    if stats is None:
        stats = _CACHE[key] = _simulate(*key)
    return stats


def prime_cache(keys: Iterable[RunKey], jobs: int = 1) -> int:
    """Fill the memo for ``keys``, optionally across worker processes.

    Returns the number of simulations actually computed.  Each run is
    deterministic per key, so parallel priming yields the same stats a
    serial run would; subsequent :func:`run_cached` calls are hits.
    """
    missing = [k for k in dict.fromkeys(keys) if k not in _CACHE]
    if not missing:
        return 0
    if jobs <= 1 or len(missing) == 1:
        for key in missing:
            run_cached(*key)
        return len(missing)
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=jobs) as executor:
        for key, stats in zip(missing, executor.map(_simulate_key, missing)):
            _CACHE[key] = stats
    return len(missing)


def suite_keys(
    scale: str,
    width: int,
    height: int,
    fabrics: Sequence[str] = FABRICS,
) -> List[RunKey]:
    """All (benchmark, fabric) run keys a figure driver will need."""
    return [
        (benchmark, fabric, width, height, scale)
        for benchmark in suite_for(scale)
        for fabric in fabrics
    ]


def machine_config(network: str, width: int, height: int) -> MachineConfig:
    return MachineConfig(network=network, width=width, height=height)


def clear_cache() -> None:
    _CACHE.clear()


def suite_for(scale: str) -> Tuple[str, ...]:
    from repro.manycore.kernels import benchmark_names, quick_suite

    if scale == "smoke":
        return ("jacobi", "spgemm-CA")
    if scale == "quick":
        return quick_suite() + ("fft", "pr-PK")
    return benchmark_names()


def size_for(scale: str) -> Tuple[int, int]:
    return {"smoke": (8, 4), "quick": (16, 8), "full": (32, 16)}[scale]
