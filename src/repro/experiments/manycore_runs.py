"""Shared, cached manycore runs for the Figure 10–13 / Table 6 drivers.

The same (benchmark, network, size) simulations feed several experiment
drivers; this module memoizes them per process so Table 6 can aggregate
the Figure 10–13 data without re-simulating.
"""

from __future__ import annotations

import functools
from typing import Dict, Tuple

from repro.manycore import (
    Machine,
    MachineConfig,
    MachineStats,
    build_workload,
)

#: Manycore fabrics compared in Figures 10-13 (paper order).
FABRICS = (
    "mesh",
    "half-torus",
    "ruche2-depop",
    "ruche2-pop",
    "ruche3-depop",
    "ruche3-pop",
)

#: Kernel parameter presets per scale: smaller problems, same shape.
KERNEL_PRESETS: Dict[str, Dict[str, dict]] = {
    "smoke": {
        "jacobi": dict(block=3, iterations=2),
        "sgemm": dict(block=3, k_panels=2),
        "fft": dict(points_per_core=8, stages=2),
        "bh": dict(bodies_per_core=2, walk_depth=4),
        "bfs": dict(max_levels=3),
        "pr": dict(max_edges_per_core=80),
        "spgemm": dict(rows_per_core=1, max_chain=3),
    },
    "quick": {
        "jacobi": dict(block=4, iterations=4),
        "sgemm": dict(block=4, k_panels=4),
        "fft": dict(points_per_core=12, stages=3),
        "bh": dict(bodies_per_core=4, walk_depth=6),
        "bfs": dict(max_levels=4),
        "pr": dict(max_edges_per_core=200),
        "spgemm": dict(rows_per_core=2, max_chain=4),
    },
    "full": {
        "jacobi": dict(block=6, iterations=6),
        "sgemm": dict(block=5, k_panels=6),
        "fft": dict(points_per_core=16, stages=4),
        "bh": dict(bodies_per_core=6, walk_depth=8),
        "bfs": dict(max_levels=8),
        "pr": dict(max_edges_per_core=500),
        "spgemm": dict(rows_per_core=3, max_chain=6),
    },
}


def kernel_params(benchmark: str, scale: str) -> dict:
    kernel = benchmark.partition("-")[0]
    return dict(KERNEL_PRESETS[scale].get(kernel, {}))


@functools.lru_cache(maxsize=None)
def run_cached(
    benchmark: str,
    network: str,
    width: int,
    height: int,
    scale: str,
) -> MachineStats:
    """One memoized manycore simulation."""
    mcfg = MachineConfig(network=network, width=width, height=height)
    workload = build_workload(
        benchmark, mcfg, **kernel_params(benchmark, scale)
    )
    return Machine(mcfg, workload).run(max_cycles=3_000_000)


def machine_config(network: str, width: int, height: int) -> MachineConfig:
    return MachineConfig(network=network, width=width, height=height)


def clear_cache() -> None:
    run_cached.cache_clear()


def suite_for(scale: str) -> Tuple[str, ...]:
    from repro.manycore.kernels import benchmark_names, quick_suite

    if scale == "smoke":
        return ("jacobi", "spgemm-CA")
    if scale == "quick":
        return quick_suite() + ("fft", "pr-PK")
    return benchmark_names()


def size_for(scale: str) -> Tuple[int, int]:
    return {"smoke": (8, 4), "quick": (16, 8), "full": (32, 16)}[scale]
