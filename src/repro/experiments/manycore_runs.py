"""Shared, cached manycore runs for the Figure 10–13 / Table 6 drivers.

The same (benchmark, network, size) simulations feed several experiment
drivers; this module memoizes them per process so Table 6 can aggregate
the Figure 10–13 data without re-simulating.  :func:`prime_cache` fills
the memo across worker processes (each run is a pure, deterministic
function of its key) so the drivers' ``--jobs`` flag parallelizes the
expensive simulations while every aggregation step stays serial.

Every reference run additionally captures its per-network injection
traces (:mod:`repro.sim.trace`) as a side effect: cache entries are
:class:`RunEntry` objects carrying the :class:`MachineStats` *and* the
``fwd`` / ``rev`` traces, so repeated network-level sweeps over the
cached workloads replay on the compiled engine instead of re-running
the execution-driven model (capture once, replay many — see
:func:`replay_result`).  The internal cache key includes the
:data:`PROVENANCE` schema tag, so a cache primed by a pre-trace build
is never silently reused for replay rows.
"""

from __future__ import annotations

import atexit
import dataclasses
import os
import shutil
import tempfile
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.manycore import (
    Machine,
    MachineConfig,
    MachineStats,
    build_workload,
)
from repro.sim.trace import Trace, TraceRecorder, replay_spec

#: Cache key: (benchmark, network, width, height, scale).
RunKey = Tuple[str, str, int, int, str]

#: Engine/trace schema tag folded into the internal cache key.  Bump it
#: whenever the capture format or the replay semantics change: entries
#: produced under an older tag (e.g. a worker running pre-trace code)
#: miss instead of feeding stale traces to replay rows.
PROVENANCE = "reference+trace-v1"

#: Manycore fabrics compared in Figures 10-13 (paper order).
FABRICS = (
    "mesh",
    "half-torus",
    "ruche2-depop",
    "ruche2-pop",
    "ruche3-depop",
    "ruche3-pop",
)

#: Kernel parameter presets per scale: smaller problems, same shape.
KERNEL_PRESETS: Dict[str, Dict[str, dict]] = {
    "smoke": {
        "jacobi": dict(block=3, iterations=2),
        "sgemm": dict(block=3, k_panels=2),
        "fft": dict(points_per_core=8, stages=2),
        "bh": dict(bodies_per_core=2, walk_depth=4),
        "bfs": dict(max_levels=3),
        "pr": dict(max_edges_per_core=80),
        "spgemm": dict(rows_per_core=1, max_chain=3),
    },
    "quick": {
        "jacobi": dict(block=4, iterations=4),
        "sgemm": dict(block=4, k_panels=4),
        "fft": dict(points_per_core=12, stages=3),
        "bh": dict(bodies_per_core=4, walk_depth=6),
        "bfs": dict(max_levels=4),
        "pr": dict(max_edges_per_core=200),
        "spgemm": dict(rows_per_core=2, max_chain=4),
    },
    "full": {
        "jacobi": dict(block=6, iterations=6),
        "sgemm": dict(block=5, k_panels=6),
        "fft": dict(points_per_core=16, stages=4),
        "bh": dict(bodies_per_core=6, walk_depth=8),
        "bfs": dict(max_levels=8),
        "pr": dict(max_edges_per_core=500),
        "spgemm": dict(rows_per_core=3, max_chain=6),
    },
}


def kernel_params(benchmark: str, scale: str) -> dict:
    kernel = benchmark.partition("-")[0]
    return dict(KERNEL_PRESETS[scale].get(kernel, {}))


@dataclasses.dataclass
class RunEntry:
    """One cached manycore run: stats plus its captured traces.

    ``paths`` memoizes where each stream's trace has been written this
    process (traces travel between prime workers and the parent in
    memory; files materialize lazily in whichever process replays).
    """

    stats: MachineStats
    traces: Dict[str, Trace]
    provenance: str = PROVENANCE
    paths: Dict[str, str] = dataclasses.field(default_factory=dict)


_CACHE: Dict[Tuple, RunEntry] = {}


def _cache_key(key: RunKey) -> Tuple:
    return (*key, PROVENANCE)


def _simulate(
    benchmark: str, network: str, width: int, height: int, scale: str
) -> RunEntry:
    """One manycore simulation (pure function of its arguments)."""
    mcfg = MachineConfig(network=network, width=width, height=height)
    workload = build_workload(
        benchmark, mcfg, **kernel_params(benchmark, scale)
    )
    machine = Machine(mcfg, workload, recorder=TraceRecorder())
    stats = machine.run(max_cycles=3_000_000)
    traces = machine.finalize_traces(
        provenance={
            "benchmark": benchmark,
            "network": network,
            "width": width,
            "height": height,
            "scale": scale,
            "schema": PROVENANCE,
        }
    )
    return RunEntry(stats=stats, traces=traces)


def _simulate_key(key: RunKey) -> RunEntry:
    """Picklable worker entry point for :func:`prime_cache`."""
    return _simulate(*key)


def run_entry(
    benchmark: str,
    network: str,
    width: int,
    height: int,
    scale: str,
) -> RunEntry:
    """One memoized manycore run with its captured traces.

    Entries whose provenance tag does not match this build's
    :data:`PROVENANCE` (or that carry no traces) are recomputed rather
    than reused — a replay row must never consume a stale capture.
    """
    key: RunKey = (benchmark, network, width, height, scale)
    entry = _CACHE.get(_cache_key(key))
    if (
        entry is None
        or entry.provenance != PROVENANCE
        or not entry.traces
    ):
        entry = _CACHE[_cache_key(key)] = _simulate(*key)
    return entry


def run_cached(
    benchmark: str,
    network: str,
    width: int,
    height: int,
    scale: str,
) -> MachineStats:
    """One memoized manycore simulation."""
    return run_entry(benchmark, network, width, height, scale).stats


def prime_cache(keys: Iterable[RunKey], jobs: int = 1) -> int:
    """Fill the memo for ``keys``, optionally across worker processes.

    Returns the number of simulations actually computed.  Each run is
    deterministic per key, so parallel priming yields the same stats a
    serial run would; subsequent :func:`run_cached` calls are hits.
    """
    missing = [
        k for k in dict.fromkeys(keys) if _cache_key(k) not in _CACHE
    ]
    if not missing:
        return 0
    if jobs <= 1 or len(missing) == 1:
        for key in missing:
            run_entry(*key)
        return len(missing)
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=jobs) as executor:
        for key, entry in zip(missing, executor.map(_simulate_key, missing)):
            _CACHE[_cache_key(key)] = entry
    return len(missing)


# ----------------------------------------------------------------------
# Trace materialization and compiled replay
# ----------------------------------------------------------------------
_TRACE_DIR: Optional[str] = None


def trace_dir() -> str:
    """Where this process writes trace files for replay.

    ``REPRO_TRACE_DIR`` pins it (and persists traces across runs);
    otherwise a process-lifetime temporary directory is used and
    removed at exit.
    """
    global _TRACE_DIR
    if _TRACE_DIR is None:
        env = os.environ.get("REPRO_TRACE_DIR")
        if env:
            os.makedirs(env, exist_ok=True)
            _TRACE_DIR = env
        else:
            _TRACE_DIR = tempfile.mkdtemp(prefix="repro-traces-")
            atexit.register(shutil.rmtree, _TRACE_DIR, True)
    return _TRACE_DIR


def write_traces(key: RunKey) -> Dict[str, str]:
    """Materialize a cached run's traces on disk; returns stream paths.

    Files are written at most once per process (re-writing would be
    byte-identical anyway — the format is deterministic).
    """
    entry = run_entry(*key)
    benchmark, network, width, height, scale = key
    for stream, tr in entry.traces.items():
        if stream in entry.paths:
            continue
        fname = (
            f"{benchmark}-{network}-{width}x{height}-{scale}"
            f"-{stream}.noctrace"
        )
        entry.paths[stream] = tr.write(
            os.path.join(trace_dir(), fname)
        )
    return dict(entry.paths)


def replay_result(
    benchmark: str,
    network: str,
    width: int,
    height: int,
    scale: str,
    *,
    stream: str = "fwd",
    engine: str = "compiled",
    track_per_source: bool = False,
    keep_samples: bool = False,
) -> Any:
    """Replay a cached run's captured trace on the chosen engine.

    Returns the :class:`~repro.sim.simulator.RunResult` of replaying
    the ``stream`` network's injection trace (``"fwd"`` requests, X-Y
    DOR; ``"rev"`` responses, Y-X DOR) — the capture-once-replay-many
    fast path behind the Figure 10–13 network-level re-measurements.
    """
    from repro.core.spec import build_run

    paths = write_traces((benchmark, network, width, height, scale))
    spec = replay_spec(paths[stream], engine=engine)
    return build_run(
        spec,
        track_per_source=track_per_source,
        keep_samples=keep_samples,
    )


def suite_keys(
    scale: str,
    width: int,
    height: int,
    fabrics: Sequence[str] = FABRICS,
) -> List[RunKey]:
    """All (benchmark, fabric) run keys a figure driver will need."""
    return [
        (benchmark, fabric, width, height, scale)
        for benchmark in suite_for(scale)
        for fabric in fabrics
    ]


def machine_config(network: str, width: int, height: int) -> MachineConfig:
    return MachineConfig(network=network, width=width, height=height)


def clear_cache() -> None:
    _CACHE.clear()


def suite_for(scale: str) -> Tuple[str, ...]:
    from repro.manycore.kernels import benchmark_names, quick_suite

    if scale == "smoke":
        return ("jacobi", "spgemm-CA")
    if scale == "quick":
        return quick_suite() + ("fft", "pr-PK")
    return benchmark_names()


def size_for(scale: str) -> Tuple[int, int]:
    return {"smoke": (8, 4), "quick": (16, 8), "full": (32, 16)}[scale]
