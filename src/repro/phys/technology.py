"""Process technology model for a generic 12 nm-class node.

The paper's physical results come from a Synopsys flow on a 12 nm
regular-Vt library; we have no such flow, so this module defines the
process-level constants that parameterize our structural area, timing and
energy models.  Constants marked *calibrated* are anchored to values the
paper itself publishes (Tables 2 and 3, Section 4.3); the rest are
standard 12 nm-class figures of merit.  All cycle times are expressed in
units of the library's fanout-of-four (FO4) inverter delay, exactly as the
paper normalizes Figure 7.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Technology:
    """Process constants consumed by the physical models."""

    name: str = "generic-12nm"
    #: FO4 inverter delay in picoseconds (12 nm-class regular-Vt).
    fo4_ps: float = 12.0
    #: Nominal supply voltage (V).
    vdd: float = 0.8
    #: Flip-flop area per stored bit (µm²).  *Calibrated*: the paper's
    #: Table 2 reports 2250 µm² of FIFO for 8 direction inputs × 2 entries
    #: × 128 bits = 2048 bits.
    flop_area_per_bit_um2: float = 2250.0 / 2048.0
    #: Per-length wire capacitance; the paper uses this exact
    #: process-independent value for Ruche-link energy (Section 4.9).
    wire_cap_pf_per_mm: float = 0.2
    #: Tile edge length (µm); the paper places routers in a 187 µm ×
    #: 187 µm region, ~1.3× a dense RISC-V core.
    tile_size_um: float = 187.0
    #: Payload activity factor assumed by the paper's energy runs
    #: ("half of bits switching every cycle" at 0.25 toggle rate).
    activity_factor: float = 0.25
    #: Repeater (driver) energy overhead as a fraction of the wire energy
    #: it drives, from the first-order repeater model of Ho et al. (gate +
    #: diffusion capacitance of optimally sized repeaters ≈ +60%).
    repeater_energy_overhead: float = 0.6
    #: Repeater cell area per driven bit per mm of wire (µm²).
    repeater_area_per_bit_mm_um2: float = 1.2

    def wire_energy_pj_per_bit_mm(self) -> float:
        """Dynamic energy to toggle one bit over 1 mm of wire (pJ).

        ``E = C · V²`` per full-swing toggle, plus the repeater overhead;
        callers scale by the activity factor and bus width.
        """
        base = self.wire_cap_pf_per_mm * self.vdd * self.vdd
        return base * (1.0 + self.repeater_energy_overhead)

    def cycle_time_ps(self, fo4: float) -> float:
        """Convert a cycle time in FO4 units to picoseconds."""
        return fo4 * self.fo4_ps


#: The default technology used throughout the package.
TECH_12NM = Technology()
