"""Analytic model of *concentration* — the alternative the paper argues
against (Section 1).

Concentration co-locates ``c`` cores on one router to cut hop counts, and
recovers the halved bisection bandwidth by widening channels.  The paper's
introduction identifies the costs that make this unattractive for
streaming manycores, all modelled here:

* **injection conflicts** — ``c`` cores share one injection port; at
  per-core injection rate ``r`` the port saturates at ``r = 1/c`` and
  conflicts grow with ``c·r`` (fine for request/wait cache traffic,
  fatal for word-per-cycle streams);
* **serialization** — a channel ``w×`` wider than the endpoint datapath
  needs ser/des logic and adds ``w − 1`` cycles of serialization latency,
  "which negates the latency reduction benefit of concentration";
* **area** — crossbar and buffer area grow linearly with channel width,
  and the radix grows with ``c``;
* **physical bandwidth** — widening the datapath grows the tile, so the
  bandwidth per mm of die edge does not improve.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.params import NetworkConfig, TopologyKind
from repro.phys.area import router_area
from repro.phys.technology import TECH_12NM, Technology


@dataclasses.dataclass(frozen=True)
class ConcentratedMeshModel:
    """A ``c``-way concentrated mesh with ``width_factor``-wide channels.

    ``base`` is the unconcentrated reference design (one core per tile,
    channel width equal to the core's datapath width).
    """

    base: NetworkConfig
    concentration: int = 2
    width_factor: int = 2

    def __post_init__(self) -> None:
        if self.concentration < 1:
            raise ValueError("concentration must be >= 1")
        if self.width_factor < 1:
            raise ValueError("width_factor must be >= 1")

    # ------------------------------------------------------------------
    @property
    def router_count_factor(self) -> float:
        """Routers shrink by the concentration degree."""
        return 1.0 / self.concentration

    @property
    def hop_count_factor(self) -> float:
        """Average hops scale with the array's linear shrink, ~1/sqrt(c)."""
        return 1.0 / math.sqrt(self.concentration)

    @property
    def bisection_bandwidth_factor(self) -> float:
        """Bisection in bits/cycle vs the unconcentrated mesh.

        Concentration halves the channel count crossing the cut per
        sqrt(c) in each dimension; widening multiplies it back.
        """
        return self.width_factor / math.sqrt(self.concentration)

    @property
    def serialization_latency(self) -> int:
        """Extra cycles to (de)serialize one endpoint word stream into a
        ``width_factor``-wide flit at the network interface."""
        return self.width_factor - 1

    @property
    def injection_saturation_rate(self) -> float:
        """Max sustainable per-core injection rate at the shared port."""
        return 1.0 / self.concentration

    def injection_conflict_probability(self, per_core_rate: float) -> float:
        """Probability another co-located core wants the port this cycle.

        ``1 - (1-r)^(c-1)`` — negligible for cache-style request/wait
        traffic (small ``r``), near 1 for word-per-cycle streams.
        """
        if not 0.0 <= per_core_rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        return 1.0 - (1.0 - per_core_rate) ** (self.concentration - 1)

    def zero_load_latency_factor(self, base_hops: float) -> float:
        """Zero-load latency vs the unconcentrated mesh, including the
        serialization penalty that eats the hop-count win."""
        concentrated = (
            base_hops * self.hop_count_factor + self.serialization_latency
        )
        return concentrated / base_hops

    def router_area_per_tile(self, tech: Technology = TECH_12NM) -> float:
        """Concentrated router area amortized per *core* (µm²).

        The concentrated router has a ``4 + c``-port crossbar at
        ``width_factor`` times the channel width; its area is shared by
        ``c`` cores.
        """
        wide = self.base.replace(
            channel_width_bits=(
                self.base.channel_width_bits * self.width_factor
            )
        )
        area = router_area(wide, tech).total
        # Extra injection ports beyond the single P port: each adds a
        # crossbar column and an input buffer at full width.
        per_port = area / 5.0
        area += per_port * (self.concentration - 1)
        return area / self.concentration

    def summary(self, per_core_rate: float = 0.2,
                base_hops: float = 8.0) -> dict:
        """All the intro's criticisms, quantified in one place."""
        return {
            "concentration": self.concentration,
            "width_factor": self.width_factor,
            "bisection_factor": self.bisection_bandwidth_factor,
            "serialization_latency": self.serialization_latency,
            "injection_conflict_prob":
                self.injection_conflict_probability(per_core_rate),
            "injection_saturation": self.injection_saturation_rate,
            "zero_load_latency_factor":
                self.zero_load_latency_factor(base_hops),
            "router_area_per_core_um2": self.router_area_per_tile(),
        }


def ruche_alternative(base: NetworkConfig, ruche_factor: int = 2) -> dict:
    """The same bandwidth goal met the Ruche way, for comparison.

    Adding Ruche channels multiplies the bisection by ``1 + RF`` per
    direction without touching the endpoint datapath — no serialization,
    no shared injection port, constant radix.
    """
    config = base.replace(
        kind=(
            TopologyKind.FULL_RUCHE
            if base.kind is TopologyKind.MESH
            else base.kind
        ),
        ruche_factor=ruche_factor,
        depopulated=True,
    )
    return {
        "config": config.name,
        "bisection_factor": 1.0 + ruche_factor,
        "serialization_latency": 0,
        "injection_conflict_prob": 0.0,
        "injection_saturation": 1.0,
        "router_area_per_core_um2": router_area(config).total,
    }
