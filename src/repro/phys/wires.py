"""Long-range wire energy and delay (first-order repeater model).

The paper estimates Ruche-link energy "using the first-order repeater
model [Ho, Mai, Horowitz 2001] and the process-independent, per-length
wire capacitance (0.2 pF/mm)", with repeater gate/diffusion capacitance
from the 12 nm library (Section 4.9).  This module implements exactly
that: per-packet energy for the portion of a channel *outside* the tile's
router region — the term Table 3 excludes and Figure 13's "wire" category
accounts for.
"""

from __future__ import annotations

from repro.core.coords import Direction
from repro.core.params import NetworkConfig
from repro.core.topology import make_topology
from repro.phys.technology import TECH_12NM, Technology


def link_length_mm(
    config: NetworkConfig,
    direction: Direction,
    tech: Technology = TECH_12NM,
) -> float:
    """Physical length of one channel, in mm.

    Local links span one tile pitch, Ruche links span ``RF`` pitches, and
    folded-torus links span two (the folding interleaves tiles).
    """
    span = make_topology(config).link_span(direction)
    return span * tech.tile_size_um / 1000.0


def wire_energy_per_packet(
    config: NetworkConfig,
    direction: Direction,
    tech: Technology = TECH_12NM,
) -> float:
    """Energy (pJ) to drive one packet across one channel's wires.

    ``E = AF · width · length · C_wire · V² · (1 + repeater overhead)``.
    Only the length *beyond* the first tile pitch counts as "long-range"
    wire energy — the first pitch's wiring is inside the router energy of
    Table 3 (the paper's accounting).
    """
    span = make_topology(config).link_span(direction)
    extra_mm = max(0, span - 1) * tech.tile_size_um / 1000.0
    if extra_mm == 0:
        return 0.0
    per_bit = tech.wire_energy_pj_per_bit_mm()
    return (
        tech.activity_factor
        * config.channel_width_bits
        * extra_mm
        * per_bit
    )


def repeated_wire_delay_fo4(length_mm: float) -> float:
    """Delay of an optimally repeated wire, in FO4 (Ho et al.).

    Optimally repeated wires have delay linear in length; ~55 ps/mm is
    typical for upper-mid metal in a 12 nm-class process, i.e. ~4.5 FO4
    per mm at a 12 ps FO4.
    """
    return 4.5 * length_mm


def ruche_link_delay_fo4(
    config: NetworkConfig, tech: Technology = TECH_12NM
) -> float:
    """Wire delay of one Ruche channel in FO4.

    Used to decide when Ruche links would need pipelining: for the
    paper's small tiles the crossbar gate delay dominates and single-cycle
    hops hold up to moderate Ruche Factors (Section 3.2).
    """
    rf = max(1, config.ruche_factor)
    return repeated_wire_delay_fo4(rf * tech.tile_size_um / 1000.0)
