"""Physical models: area, cycle time, synthesis curves, energy, wires.

Structural surrogates for the paper's Synopsys 12 nm flow, calibrated to
the absolute numbers the paper publishes (Tables 2 and 3).  See
DESIGN.md's substitution table for the fidelity argument.
"""

from repro.phys.area import (
    RouterAreaBreakdown,
    crossbar_fanins,
    router_area,
    ruche_wire_area_per_tile,
    tile_area_increase,
)
from repro.phys.concentration import (
    ConcentratedMeshModel,
    ruche_alternative,
)
from repro.phys.energy import energy_table, router_energy_per_packet
from repro.phys.synthesis import (
    SynthesisPoint,
    area_at_cycle_time,
    min_achieved_cycle,
    synthesis_curve,
)
from repro.phys.technology import TECH_12NM, Technology
from repro.phys.timing import (
    RELAXED_CYCLE_FO4,
    achievable,
    min_cycle_time_fo4,
)
from repro.phys.wires import (
    link_length_mm,
    repeated_wire_delay_fo4,
    ruche_link_delay_fo4,
    wire_energy_per_packet,
)

__all__ = [
    "Technology",
    "TECH_12NM",
    "ConcentratedMeshModel",
    "ruche_alternative",
    "RouterAreaBreakdown",
    "router_area",
    "crossbar_fanins",
    "ruche_wire_area_per_tile",
    "tile_area_increase",
    "router_energy_per_packet",
    "energy_table",
    "SynthesisPoint",
    "synthesis_curve",
    "area_at_cycle_time",
    "min_achieved_cycle",
    "min_cycle_time_fo4",
    "achievable",
    "RELAXED_CYCLE_FO4",
    "link_length_mm",
    "wire_energy_per_packet",
    "repeated_wire_delay_fo4",
    "ruche_link_delay_fo4",
]
