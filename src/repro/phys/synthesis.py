"""Area-vs-cycle-time synthesis sweep (paper Figure 7).

Emulates the methodology of Section 4.2 (after Becker): for each router,
sweep the synthesis target cycle time downward with a fixed decrement
until timing is violated, recording the post-synthesis cell area at each
achievable target.  Area inflates hyperbolically as the target approaches
the router's minimum cycle time — the standard shape of a synthesis
effort curve, where gates on near-critical paths are upsized.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.core.params import NetworkConfig
from repro.phys.area import RouterAreaBreakdown, router_area
from repro.phys.technology import TECH_12NM, Technology
from repro.phys.timing import min_cycle_time_fo4

#: Fraction of the minimum delay treated as un-tradeable (flop overhead,
#: wires); sizing can only attack the remaining logic depth.
_FLOOR_FRACTION = 0.9
#: Inflation gain: area roughly doubles at the minimum cycle time.
_INFLATION_GAIN = 0.5
#: Storage (FIFO) cells are upsized far less than logic under timing
#: pressure; only this fraction of the logic inflation applies to them.
_STORAGE_INFLATION_SHARE = 0.25


@dataclasses.dataclass(frozen=True)
class SynthesisPoint:
    """One point of a Figure 7 curve."""

    target_fo4: float
    area_um2: Optional[float]  #: None when timing is violated

    @property
    def met_timing(self) -> bool:
        return self.area_um2 is not None


def _inflation(target_fo4: float, dmin: float) -> float:
    slack_floor = _FLOOR_FRACTION * dmin
    return 1.0 + _INFLATION_GAIN * (
        (dmin - slack_floor) / (target_fo4 - slack_floor)
    )


def area_at_cycle_time(
    config: NetworkConfig,
    target_fo4: float,
    tech: Technology = TECH_12NM,
) -> Optional[float]:
    """Post-synthesis router area at a target cycle time, or ``None``.

    ``None`` mirrors the paper's sweep termination: the target violates
    timing and no netlist exists.
    """
    dmin = min_cycle_time_fo4(config)
    if target_fo4 < dmin:
        return None
    breakdown: RouterAreaBreakdown = router_area(config, tech)
    logic = breakdown.crossbar + breakdown.decode + breakdown.control
    storage = breakdown.buffers
    factor = _inflation(target_fo4, dmin)
    storage_factor = 1.0 + _STORAGE_INFLATION_SHARE * (factor - 1.0)
    return logic * factor + storage * storage_factor


def synthesis_curve(
    config: NetworkConfig,
    targets_fo4: Optional[Sequence[float]] = None,
    tech: Technology = TECH_12NM,
) -> List[SynthesisPoint]:
    """The full Figure 7 curve for one router.

    The default sweep matches the paper's: start relaxed (~98 FO4) and
    decrease with a fixed decrement until a timing violation appears.
    """
    if targets_fo4 is None:
        targets_fo4 = [98.0 - 4.0 * i for i in range(24)]
    return [
        SynthesisPoint(t, area_at_cycle_time(config, t, tech))
        for t in targets_fo4
    ]


def min_achieved_cycle(points: Sequence[SynthesisPoint]) -> float:
    """Smallest target that met timing in a sweep."""
    achieved = [p.target_fo4 for p in points if p.met_timing]
    if not achieved:
        raise ValueError("no synthesis point met timing")
    return min(achieved)
