"""Cycle-time model (paper Figure 7, x-axis).

The minimum achievable cycle time of each router is the FO4 sum of its
critical path.  For Ruche-family routers the path is short and credit
independent — flop, round-robin arbitration over the widest output mux's
inputs, the mux itself, and the inter-tile wire ("ready-valid-and",
Section 3.2).  For VC routers the request generation *depends on* the
downstream credit state ("ready-then-valid"), and switch allocation is a
wavefront ripple across the ports, which is why the paper finds torus
routers cannot reach Ruche cycle times without pipelining.
"""

from __future__ import annotations

from repro.core.connectivity import connectivity_matrix, max_mux_inputs
from repro.core.params import NetworkConfig, TopologyKind
from repro.phys import gates


#: The most relaxed synthesis target of the paper's sweep (Section 4.2).
RELAXED_CYCLE_FO4 = 98.0


def min_cycle_time_fo4(config: NetworkConfig) -> float:
    """Minimum achievable cycle time of this design's router, in FO4."""
    matrix = connectivity_matrix(config)
    widest = max_mux_inputs(matrix)
    if config.uses_vcs:
        ports = len(matrix)
        return (
            gates.FLOP_OVERHEAD_FO4
            + gates.CREDIT_GATING_DELAY_FO4
            + gates.VC_MUX_DELAY_FO4
            + gates.wavefront_allocator_delay_fo4(ports)
            + gates.mux_delay_fo4(widest)
            + gates.TILE_WIRE_DELAY_FO4
        )
    if config.kind is TopologyKind.MULTI_MESH:
        # Two 5-port crossbars; the P port adds the mesh-select decode and
        # doubled fanout (Section 4.2).
        widest = 5
        extra = gates.MULTI_MESH_INJECT_DELAY_FO4
    else:
        extra = 0.0
    return (
        gates.FLOP_OVERHEAD_FO4
        + gates.round_robin_arbiter_delay_fo4(widest)
        + gates.mux_delay_fo4(widest)
        + gates.TILE_WIRE_DELAY_FO4
        + extra
    )


def achievable(config: NetworkConfig, target_fo4: float) -> bool:
    """Whether a synthesis target meets timing without pipelining."""
    return target_fo4 >= min_cycle_time_fo4(config)
