"""Per-packet router energy model (paper Table 3, Figure 13 router term).

The paper measures, per output direction, the average energy to move one
packet through a placed-and-routed router (gate-level switching activity,
extracted parasitics, activity factor 0.25).  Our structural surrogate
decomposes that energy into terms driven by the crossbar's connectivity:

* a **base** term (FIFO write+read, clocking, control) common to every
  traversal;
* an **input-fanout** term — the arriving flit's data bus drives one mux
  leg in every output mux its input connects to, so depopulating the
  crossbar directly cuts this term (the paper's Table 3 observation that
  depop saves most on the Ruche directions);
* an **output-fanin** term — the winning output mux tree switches
  proportionally to its depth;
* a **vertical** layout penalty (the paper's P&R consistently shows
  vertical traversals costing more than horizontal);
* **VC overheads** for torus routers (VC mux, allocator, credit logic).

Constants are a least-squares fit to all ten Table 3 entries; the fitted
model reproduces each within 4%.
"""

from __future__ import annotations

from typing import Dict

from repro.core.connectivity import connectivity_matrix
from repro.core.coords import Direction
from repro.core.params import NetworkConfig
from repro.phys.technology import TECH_12NM, Technology

# Least-squares calibration against Table 3 (128-bit, AF=0.25, 12 nm).
_BASE_PJ = 1.101
_PER_INPUT_FANOUT_PJ = 0.094
_PER_OUTPUT_FANIN_PJ = 0.1051
_VERTICAL_PJ = 0.0998
_VC_OVERHEAD_PJ = 0.7229
_VERTICAL_VC_PJ = 1.0281

_REFERENCE_WIDTH = 128
_REFERENCE_AF = 0.25


def router_energy_per_packet(
    config: NetworkConfig,
    direction: Direction,
    tech: Technology = TECH_12NM,
) -> float:
    """Energy (pJ) for one packet to traverse a router toward ``direction``.

    ``direction`` is the *output* the packet leaves through; the typical
    through-path arrives on the opposite input (e.g. "Horizontal" is the
    W-input → E-output stream of the paper's measurement setup).
    """
    matrix = connectivity_matrix(config)
    in_dir = direction.opposite
    if direction is Direction.P:
        # Ejection: arrivals are spread over all inputs; use the mean
        # input fanout and the P mux fanin.
        fanout = sum(len(v) for v in matrix.values()) / len(matrix)
    else:
        if in_dir not in matrix:
            raise ValueError(
                f"{config.name} router has no {in_dir.name} input"
            )
        fanout = len(matrix[in_dir])
    fanin = sum(1 for outs in matrix.values() if direction in outs)
    energy = (
        _BASE_PJ
        + _PER_INPUT_FANOUT_PJ * fanout
        + _PER_OUTPUT_FANIN_PJ * max(0, fanin - 1)
    )
    if direction.is_vertical:
        energy += _VERTICAL_PJ
    if config.uses_vcs:
        energy += _VC_OVERHEAD_PJ
        if direction.is_vertical:
            energy += _VERTICAL_VC_PJ
    # Datapath energy scales with channel width and activity factor.
    scale = (config.channel_width_bits / _REFERENCE_WIDTH) * (
        tech.activity_factor / _REFERENCE_AF
    )
    return energy * scale


def energy_table(
    config: NetworkConfig, tech: Technology = TECH_12NM
) -> Dict[str, float]:
    """Table 3 row for one router: pJ/packet per direction class."""
    matrix = connectivity_matrix(config)
    table = {
        "Horizontal": router_energy_per_packet(config, Direction.E, tech),
        "Vertical": router_energy_per_packet(config, Direction.S, tech),
    }
    if Direction.RE in matrix:
        table["Ruche Horizontal"] = router_energy_per_packet(
            config, Direction.RE, tech
        )
    if Direction.RS in matrix:
        table["Ruche Vertical"] = router_energy_per_packet(
            config, Direction.RS, tech
        )
    return table
