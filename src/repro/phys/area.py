"""Router area model with component breakdown (paper Table 2, Figure 7).

The model is structural: every component's area is a function of counts
taken from the router's actual microarchitecture (crossbar mux fan-ins,
FIFO bits, allocator ports), with per-unit constants calibrated against
the four routers the paper synthesized at ~98 FO4 with 128-bit channels
(Table 2).  The calibrated model reproduces every Table 2 entry within
10% and every total within 5%, and — more importantly — reproduces the
orderings the paper argues from: depopulated Ruche < multi-mesh <
2-D torus < fully-populated Ruche.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.connectivity import connectivity_matrix, output_fanin
from repro.core.params import NetworkConfig, TopologyKind
from repro.phys.technology import TECH_12NM, Technology

# Calibrated constants (least-squares fit to Table 2; see module docstring).
#: Crossbar mux area: ``K * (fanin - 1)^ALPHA`` µm² per output at 128 bits.
_XBAR_K = 38.0471
_XBAR_ALPHA = 0.7886
#: Route-compute (decode) area per input port (µm²), wormhole routers.
_DECODE_PER_PORT = 11.0
#: Torus decode area per buffer lane (ring arithmetic + dateline state).
_TORUS_DECODE_PER_LANE = 38.8
#: Round-robin arbitration area per crossbar connection (µm²).
_ARBITER_PER_CONNECTION = 1.55
#: Wavefront allocator area per port² cell (µm²).
_ALLOCATOR_PER_CELL = 7.76
#: VC bookkeeping (mux, state) per buffer lane at 128 bits (µm²).
_VC_OVERHEAD_PER_LANE = 23.1

_REFERENCE_WIDTH = 128


@dataclasses.dataclass(frozen=True)
class RouterAreaBreakdown:
    """Component areas of one router, in µm² (Table 2 rows)."""

    crossbar: float
    decode: float
    buffers: float
    control: float
    #: "FIFO" for wormhole routers, "VC" for torus (Table 2 labels).
    buffer_label: str
    #: "Arbiter" or "Allocator".
    control_label: str

    @property
    def total(self) -> float:
        return self.crossbar + self.decode + self.buffers + self.control

    def as_dict(self) -> Dict[str, float]:
        return {
            "Crossbar": self.crossbar,
            "Decode": self.decode,
            self.buffer_label: self.buffers,
            self.control_label: self.control,
            "TOTAL": self.total,
        }


def crossbar_fanins(config: NetworkConfig) -> List[int]:
    """Per-output mux input counts of this design's crossbar(s).

    Multi-mesh is physically two disjoint 5-port mesh crossbars plus a
    2:1 merge at the shared P ejection port (Figure 3a), *not* one 9-port
    crossbar — this is exactly the structural difference Figure 3
    highlights between multi-mesh and Full Ruche.
    """
    if config.kind is TopologyKind.MULTI_MESH:
        mesh_cfg = config.replace(kind=TopologyKind.MESH, depopulated=True,
                                  ruche_factor=0)
        mesh = list(output_fanin(connectivity_matrix(mesh_cfg)).values())
        return mesh + mesh + [2]
    return list(output_fanin(connectivity_matrix(config)).values())


def _crossbar_area(config: NetworkConfig, width: int) -> float:
    scale = width / _REFERENCE_WIDTH
    return scale * sum(
        _XBAR_K * (n - 1) ** _XBAR_ALPHA
        for n in crossbar_fanins(config)
        if n > 1
    )


def _buffer_lanes(config: NetworkConfig) -> int:
    """Number of buffered input lanes (the P source queue is unbuffered).

    Half-torus routers carry virtual channels only on the ring
    (horizontal) inputs — the open vertical dimension has no cyclic
    dependency to break, so its inputs keep single FIFOs.
    """
    if config.kind is TopologyKind.FOLDED_TORUS:
        return 4 * config.num_vcs if config.uses_vcs else 4
    if config.kind is TopologyKind.HALF_TORUS:
        return 2 * config.num_vcs + 2 if config.uses_vcs else 4
    return {
        TopologyKind.MESH: 4,
        TopologyKind.MULTI_MESH: 8,
        TopologyKind.RUCHE_ONE: 8,
        TopologyKind.FULL_RUCHE: 8,
        TopologyKind.HALF_RUCHE: 6,
    }[config.kind]


def _vc_lanes(config: NetworkConfig) -> int:
    """Lanes that carry VC bookkeeping (mux, state)."""
    if not config.uses_vcs:
        return 0
    if config.kind is TopologyKind.FOLDED_TORUS:
        return 4 * config.num_vcs
    if config.kind is TopologyKind.HALF_TORUS:
        return 2 * config.num_vcs
    return 0


def router_area(
    config: NetworkConfig, tech: Technology = TECH_12NM
) -> RouterAreaBreakdown:
    """Area breakdown of one router of this design point, in µm²."""
    width = config.channel_width_bits
    lanes = _buffer_lanes(config)
    storage = lanes * config.fifo_depth * width * tech.flop_area_per_bit_um2
    xbar = _crossbar_area(config, width)
    if config.uses_vcs:
        decode = _TORUS_DECODE_PER_LANE * (lanes + 1)
        buffers = storage + _vc_lanes(config) * _VC_OVERHEAD_PER_LANE * (
            width / _REFERENCE_WIDTH
        )
        ports = len(connectivity_matrix(config))
        control = _ALLOCATOR_PER_CELL * ports * ports
        return RouterAreaBreakdown(
            xbar, decode, buffers, control, "VC", "Allocator"
        )
    matrix = connectivity_matrix(config)
    connections = sum(len(v) for v in matrix.values())
    decode = _DECODE_PER_PORT * len(matrix)
    control = _ARBITER_PER_CONNECTION * connections
    return RouterAreaBreakdown(
        xbar, decode, storage, control, "FIFO", "Arbiter"
    )


def ruche_wire_area_per_tile(
    config: NetworkConfig, tech: Technology = TECH_12NM
) -> float:
    """Repeater area for long-range wires passing over one tile (µm²).

    Each tile is overflown by ``RF`` Ruche channels per direction per
    Ruche axis (Figure 2); folded-torus links span two tiles, so each tile
    carries one extra channel per direction per folded axis.  Repeaters
    for these bits are placed in every tile they cross.
    """
    width = config.channel_width_bits
    bits = 0
    if config.kind.is_ruche and config.ruche_factor > 1:
        axes = 1 + (1 if config.has_vertical_ruche else 0)
        bits = config.ruche_factor * 2 * axes * width
    elif config.kind is TopologyKind.FOLDED_TORUS:
        bits = 2 * 2 * width
    elif config.kind is TopologyKind.HALF_TORUS:
        bits = 2 * width
    tile_mm = tech.tile_size_um / 1000.0
    return bits * tech.repeater_area_per_bit_mm_um2 * tile_mm


#: Placement utilization of NoC logic regions: synthesized cell area
#: converts to placed silicon at roughly 45% density in routing-congested
#: router/repeater areas (standard for heavily-wired NoC floorplans).
_PLACEMENT_UTILIZATION = 0.45


def tile_area_increase(
    config: NetworkConfig,
    baseline: NetworkConfig = None,
    tech: Technology = TECH_12NM,
) -> float:
    """Whole-tile area ratio vs. a mesh tile (Table 6, bottom row).

    The baseline tile is the paper's 187 µm × 187 µm region (core +
    mesh router).  Additional router cells and over-tile repeaters
    convert to placed area through the NoC-region placement utilization
    before diluting into the tile.
    """
    if baseline is None:
        baseline = config.replace(
            kind=TopologyKind.MESH, ruche_factor=0, depopulated=True
        )
    base_tile = tech.tile_size_um**2
    delta_cells = (
        router_area(config, tech).total
        - router_area(baseline, tech).total
        + ruche_wire_area_per_tile(config, tech)
        - ruche_wire_area_per_tile(baseline, tech)
    )
    return (base_tile + delta_cells / _PLACEMENT_UTILIZATION) / base_tile
