"""Logical-effort-style gate delay primitives.

These small helpers express the delays of the router building blocks in
FO4 units.  They are deliberately coarse — the goal is the *structural*
scaling the paper argues from (mux trees grow logarithmically, round-robin
arbiters stay shallow, wavefront allocators ripple across the port count),
not picosecond accuracy.
"""

from __future__ import annotations

import math


def mux_delay_fo4(inputs: int) -> float:
    """Delay of an ``inputs``-to-1 one-hot mux tree, in FO4.

    A balanced tree of 2:1 muxes has ``ceil(log2 n)`` levels; each level
    costs roughly 1.4 FO4 including the select fanout, plus one FO4 of
    output drive.
    """
    if inputs <= 1:
        return 0.5
    return 1.4 * math.ceil(math.log2(inputs)) + 1.0


def round_robin_arbiter_delay_fo4(requests: int) -> float:
    """Delay of a round-robin arbiter over ``requests`` lines, in FO4.

    A thermometer-masked priority arbiter: two priority chains (masked and
    unmasked) evaluated in parallel, each a log-depth prefix OR.
    """
    if requests <= 1:
        return 1.0
    return 2.0 + 1.2 * math.log2(requests)


def wavefront_allocator_delay_fo4(ports: int) -> float:
    """Delay of an acyclic wavefront allocator over ``ports``², in FO4.

    The grant wave ripples across the priority diagonals: the worst-case
    combinational path visits every diagonal, i.e. it is linear in the
    port count — the paper's core argument for why VC routers cannot
    match Ruche router cycle times without pipelining.
    """
    return 2.0 + 2.2 * ports


def decode_delay_fo4(ports: int) -> float:
    """Route-compute (decode) delay, in FO4 (coordinate compares)."""
    return 3.0 + 0.8 * math.log2(max(2, ports))


#: Clock-to-Q plus setup overhead of the input FIFO flops (FO4).
FLOP_OVERHEAD_FO4 = 3.0

#: Intra-tile wire delay between FIFO output and neighbouring tile input
#: at the paper's 187 µm tile pitch (FO4).
TILE_WIRE_DELAY_FO4 = 2.0

#: Extra gating for credit-dependent request generation
#: ("ready-then-valid", Section 3.2) in VC routers.
CREDIT_GATING_DELAY_FO4 = 2.5

#: VC mux stage in front of the crossbar input port (Figure 3c).
VC_MUX_DELAY_FO4 = 1.5

#: Multi-mesh P-port overhead: the injection route-compute that chooses
#: between the two meshes, plus the doubled P fanout (Section 4.2).
MULTI_MESH_INJECT_DELAY_FO4 = 1.5
