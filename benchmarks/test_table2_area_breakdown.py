"""Table 2 bench: router area breakdowns vs the paper's numbers."""

from benchmarks.conftest import scale_for
from repro.experiments import run_experiment


def test_table2_breakdown(once):
    result = once(run_experiment, "table2", scale=scale_for("quick"))
    by_config = {r["config"]: r for r in result.rows}
    # Within 5% of every published total.
    for config, row in by_config.items():
        assert abs(row["total_error"]) < 0.05, config
    # Paper ordering of totals.
    totals = {c: r["total_um2"] for c, r in by_config.items()}
    assert (
        totals["ruche2-depop"]
        < totals["multimesh"]
        < totals["torus"]
        < totals["ruche2-pop"]
    )
    # Depopulation saves ~40% of the pop crossbar.
    saving = 1 - (
        by_config["ruche2-depop"]["crossbar_um2"]
        / by_config["ruche2-pop"]["crossbar_um2"]
    )
    assert 0.30 < saving < 0.45
