"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures: they isolate one mechanism each —
crossbar depopulation, IPOLY hashing, FIFO depth (credit slack), and the
VC-mux bandwidth halving — and verify its individual effect.
"""

import pytest

from benchmarks.conftest import scale_for
from repro.core.params import NetworkConfig
from repro.manycore import Machine, MachineConfig, build_workload
from repro.phys.area import router_area
from repro.sim.simulator import run_synthetic


def test_ablation_depopulation_cost_vs_performance(once):
    """Depopulation: ~40% crossbar area for a few percent throughput."""

    def run():
        results = {}
        for name in ("ruche3-depop", "ruche3-pop"):
            cfg = NetworkConfig.from_name(name, 16, 16)
            r = run_synthetic(cfg, "uniform_random", 0.5,
                              warmup=200, measure=400, drain_limit=0)
            results[name] = {
                "throughput": r.accepted_throughput,
                "xbar_area": router_area(cfg).crossbar,
            }
        return results

    results = once(run)
    depop, pop = results["ruche3-depop"], results["ruche3-pop"]
    area_saving = 1 - depop["xbar_area"] / pop["xbar_area"]
    perf_loss = 1 - depop["throughput"] / pop["throughput"]
    assert area_saving > 0.3
    assert perf_loss < area_saving  # the cost-effectiveness claim


def test_ablation_ipoly_vs_modulo_hashing(once):
    """IPOLY spreads strided panels over banks; modulo concentrates
    SGEMM's block strides and serializes at hot banks."""

    def run():
        cycles = {}
        for hash_fn in ("ipoly", "modulo"):
            mcfg = MachineConfig(network="mesh", width=8, height=4)
            wl = build_workload("sgemm", mcfg, block=4, k_panels=3)
            cycles[hash_fn] = Machine(mcfg, wl, hash_fn=hash_fn).run().cycles
        return cycles

    cycles = once(run)
    assert cycles["ipoly"] <= cycles["modulo"] * 1.05


@pytest.mark.parametrize("depth", [1, 2, 4])
def test_ablation_fifo_depth(once, depth):
    """Depth-2 FIFOs sustain streaming; depth-1 halves link bandwidth
    (no slack for the registered-full handshake); depth-4 buys little —
    the paper's 'minimally buffered by two-element FIFOs' choice."""

    def run():
        cfg = NetworkConfig.from_name("mesh", 8, 8, fifo_depth=depth)
        return run_synthetic(cfg, "uniform_random", 0.5,
                             warmup=200, measure=400,
                             drain_limit=0).accepted_throughput

    throughput = once(run)
    if depth == 1:
        assert throughput < 0.25
    else:
        assert throughput > 0.25


def test_ablation_vc_mux_bandwidth_halving(once):
    """The Figure 3 insight head-on: a torus with doubled bisection still
    saturates below a Ruche-One, whose two parallel crossbars keep the
    full switching bandwidth."""

    def run():
        sat = {}
        for name in ("torus", "ruche1"):
            cfg = NetworkConfig.from_name(name, 16, 16)
            r = run_synthetic(cfg, "uniform_random", 0.5,
                              warmup=250, measure=500, drain_limit=0)
            sat[name] = r.accepted_throughput
        return sat

    sat = once(run)
    assert sat["ruche1"] > 1.3 * sat["torus"]
