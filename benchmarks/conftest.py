"""Benchmark-suite configuration.

Each benchmark module regenerates one of the paper's tables or figures
through its experiment driver and asserts the paper's qualitative claims
on the result.  Scale defaults to the smallest preset that preserves each
experiment's shape; export ``REPRO_SCALE=full`` to run the paper-sized
versions (slow).
"""

import os

import pytest


def scale_for(default: str) -> str:
    return os.environ.get("REPRO_SCALE", default)


@pytest.fixture
def once(benchmark):
    """Run a driver exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
