"""Figure 12 bench: remote-load latency decomposition."""

from benchmarks.conftest import scale_for
from repro.experiments import run_experiment
from repro.manycore.stats import geomean


def test_fig12_latency_decomposition(once):
    result = once(run_experiment, "fig12", scale=scale_for("smoke"))
    benchmarks = sorted({r["benchmark"] for r in result.rows})

    def geo_intrinsic(config):
        return geomean(
            result.single(benchmark=b, config=config)["intrinsic"]
            for b in benchmarks
        )

    def geo_total(config):
        return geomean(
            result.single(benchmark=b, config=config)["total"]
            for b in benchmarks
        )

    # Ruche reduces intrinsic latency (paper: ~27% at ruche2-depop).
    assert geo_intrinsic("ruche2-depop") < geo_intrinsic("mesh")
    assert geo_intrinsic("ruche3-pop") <= geo_intrinsic("ruche2-depop") * 1.05
    # Total latency improves as well.
    assert geo_total("ruche2-depop") < geo_total("mesh")
    # Congestion is never negative (sanity of the decomposition).
    assert all(r["congestion"] >= -1e-9 for r in result.rows)
    # SpGEMM is congestion-dominated (the hotspot).
    spgemm_rows = [r for r in result.rows if r["benchmark"].startswith("spgemm")]
    if spgemm_rows:
        assert all(r["congestion"] > r["intrinsic"] for r in spgemm_rows)
