"""Figure 6 bench: Full Ruche synthetic-traffic sweeps.

Asserts the paper's uniform-random saturation ordering: mesh lowest,
torus above mesh but below ruche1-pop (the halved-crossbar insight),
ruche2-depop at least matching ruche1.
"""

from benchmarks.conftest import scale_for
from repro.experiments import run_experiment


def _sat(result, config, pattern="uniform_random", size="8x8"):
    return result.single(
        size=size, pattern=pattern, config=config
    )["saturation_throughput"]


def test_fig6_uniform_random_ordering(once):
    result = once(run_experiment, "fig6", scale=scale_for("smoke"))
    mesh = _sat(result, "mesh")
    torus = _sat(result, "torus")
    ruche1 = _sat(result, "ruche1")
    assert mesh < torus < ruche1, (mesh, torus, ruche1)
    assert _sat(result, "ruche2-depop") > torus
    # Paper 8x8 anchors: mesh ~28%, torus ~42%, ruche1 ~48%.
    assert 0.22 < mesh < 0.36
    assert 0.34 < torus < 0.50
    assert 0.42 < ruche1 < 0.58


def test_fig6_zero_load_latency_ordering(once):
    result = once(run_experiment, "fig6", scale=scale_for("smoke"))
    mesh = result.single(
        size="8x8", pattern="uniform_random", config="mesh"
    )["zero_load_latency"]
    ruche2 = result.single(
        size="8x8", pattern="uniform_random", config="ruche2-depop"
    )["zero_load_latency"]
    assert ruche2 < mesh
