"""Table 3 bench: per-direction router energy vs the paper's numbers."""

from benchmarks.conftest import scale_for
from repro.experiments import run_experiment


def test_table3_energy(once):
    result = once(run_experiment, "table3", scale=scale_for("quick"))
    for row in result.rows:
        if row["paper_pj"] is not None:
            assert abs(row["error"]) < 0.08, row
    # Ruche cheaper than torus in both shared directions.
    for direction in ("Horizontal", "Vertical"):
        torus = result.single(config="torus", direction=direction)
        depop = result.single(config="ruche2-depop", direction=direction)
        assert depop["model_pj"] < torus["model_pj"]
    # Depopulated Ruche directions are the cheapest entries of the table.
    cheapest = min(result.rows, key=lambda r: r["model_pj"])
    assert cheapest["config"] == "ruche2-depop"
    assert cheapest["direction"].startswith("Ruche")
