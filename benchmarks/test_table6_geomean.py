"""Table 6 bench: the Half Ruche geomean summary."""

from benchmarks.conftest import scale_for
from repro.experiments import run_experiment


def test_table6_summary(once):
    result = once(run_experiment, "table6", scale=scale_for("smoke"))
    rows = {r["config"]: r for r in result.rows}
    r2d, r3p, ht = (
        rows["ruche2-depop"], rows["ruche3-pop"], rows["half-torus"]
    )
    # Speedups: ruche > half-torus; ruche3-pop leads.
    assert r2d["speedup_vs_mesh"] > ht["speedup_vs_mesh"]
    assert r3p["speedup_vs_mesh"] >= r2d["speedup_vs_mesh"] * 0.97
    # Latency reductions follow the same ordering.
    assert r2d["latency_reduction_total"] > 1.0
    assert r2d["latency_reduction_intrinsic"] > 1.0
    # NoC energy: ruche improves, half-torus regresses (paper: 0.75x).
    assert r2d["energy_eff_noc"] > 1.0
    assert ht["energy_eff_noc"] < 1.0
    # Tile area: depop cheaper than pop; area-normalized speedup favors
    # the depopulated router (the paper's design guideline).
    assert r2d["tile_area_increase"] < rows["ruche2-pop"]["tile_area_increase"]
    assert (
        r2d["area_normalized_speedup"]
        >= rows["ruche2-pop"]["area_normalized_speedup"] * 0.97
    )
    assert rows["mesh"]["speedup_vs_mesh"] == 1.0
