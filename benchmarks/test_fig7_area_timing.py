"""Figure 7 bench: area-vs-cycle-time synthesis sweep."""

from benchmarks.conftest import scale_for
from repro.experiments import run_experiment


def test_fig7_cycle_time_and_area_orderings(once):
    result = once(run_experiment, "fig7", scale=scale_for("full"))
    row = {r["config"]: r for r in result.rows}
    # Ruche routers reach far lower cycle times than the VC torus.
    assert row["ruche2-pop"]["min_cycle_fo4"] < 0.7 * (
        row["torus"]["min_cycle_fo4"]
    )
    # Mesh is fastest; pop and depop are within a few gate delays.
    assert row["mesh"]["min_cycle_fo4"] <= row["ruche2-depop"]["min_cycle_fo4"]
    assert (
        abs(
            row["ruche2-pop"]["min_cycle_fo4"]
            - row["ruche2-depop"]["min_cycle_fo4"]
        )
        < 3.0
    )
    # Depop is the smallest multi-network router at relaxed timing, and
    # fully-populated slightly exceeds torus.
    assert (
        row["ruche2-depop"]["area_at_relaxed"]
        < row["multimesh"]["area_at_relaxed"]
        < row["ruche2-pop"]["area_at_relaxed"]
    )
    assert row["ruche2-pop"]["area_at_relaxed"] > row["torus"]["area_at_relaxed"]
    # Area inflates under timing pressure.
    assert all(r["area_inflation"] > 1.0 for r in result.rows)
