"""Figure 11 bench: scalability at 4x the cores."""

from benchmarks.conftest import scale_for
from repro.experiments import run_experiment


def test_fig11_scalability(once):
    result = once(run_experiment, "fig11", scale=scale_for("smoke"))
    size = result.rows[0]["size"]
    geo = {
        r["config"]: r["scalability"]
        for r in result.lookup(size=size, benchmark="GEOMEAN")
    }
    # Ruche always scales better than mesh; the ceiling is 4x.
    assert geo["ruche2-depop"] > geo["mesh"]
    assert geo["ruche3-pop"] >= geo["ruche2-depop"] * 0.95
    assert all(v <= 4.3 for v in geo.values())
    # Half-torus scales worse than every Ruche config (Section 4.7).
    assert geo["half-torus"] < geo["ruche2-depop"]
