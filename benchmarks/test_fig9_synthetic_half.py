"""Figure 9 bench: Half Ruche synthetic traffic on manycore arrays."""

from benchmarks.conftest import scale_for
from repro.experiments import run_experiment


def test_fig9_half_ruche_shape(once):
    result = once(run_experiment, "fig9", scale=scale_for("smoke"))
    mem_rows = {
        r["config"]: r
        for r in result.lookup(size="16x8", pattern="tile_to_memory")
    }
    mesh = mem_rows["mesh"]
    ruche = mem_rows["ruche2-depop"]
    # Ruche relieves the horizontal bisection: higher saturation, lower
    # zero-load latency (paper: mesh ~16-17%, ruche -> ~21%, bound 25%).
    assert ruche["saturation_throughput"] > mesh["saturation_throughput"]
    assert ruche["zero_load_latency"] < mesh["zero_load_latency"]
    assert mesh["saturation_throughput"] < 0.25  # compute:memory bound


def test_fig9_quick_orderings(once):
    result = once(run_experiment, "fig9", scale=scale_for("quick"))
    if result.scale == "smoke":
        return
    t2t = {
        r["config"]: r["saturation_throughput"]
        for r in result.lookup(size="16x8", pattern="tile_to_tile")
    }
    # Half-torus falls between mesh and ruche2 (Section 4.5).
    assert t2t["mesh"] < t2t["half-torus"] < t2t["ruche2-depop"] * 1.05
    assert t2t["ruche2-depop"] > t2t["mesh"] * 1.4
    # Pop vs depop barely matters in synthetic traffic.
    assert abs(t2t["ruche2-pop"] - t2t["ruche2-depop"]) < 0.2 * t2t[
        "ruche2-depop"
    ]
