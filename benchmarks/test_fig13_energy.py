"""Figure 13 bench: total energy breakdown normalized to mesh."""

from benchmarks.conftest import scale_for
from repro.experiments import run_experiment
from repro.manycore.stats import geomean


def test_fig13_energy_breakdown(once):
    result = once(run_experiment, "fig13", scale=scale_for("smoke"))
    benchmarks = sorted({r["benchmark"] for r in result.rows})

    def geo_total(config):
        return geomean(
            result.single(benchmark=b, config=config)["total_vs_mesh"]
            for b in benchmarks
        )

    def geo_noc(config):
        rows = [result.single(benchmark=b, config=config) for b in benchmarks]
        return geomean(r["router"] + r["wire"] for r in rows)

    mesh_noc = geo_noc("mesh")
    # Ruche reduces total and NoC energy vs mesh.
    assert geo_total("ruche2-depop") < 1.0
    assert geo_noc("ruche2-depop") < mesh_noc
    # Half-torus spends MORE NoC energy than mesh (the paper's headline
    # negative result for folded torus).
    assert geo_noc("half-torus") > mesh_noc
    # Wire energy is a small slice even at RF3.
    r3 = [result.single(benchmark=b, config="ruche3-pop") for b in benchmarks]
    assert all(r["wire"] < 0.25 * r["total_vs_mesh"] for r in r3)
    # Core energy is invariant across fabrics (same instruction count).
    for b in benchmarks:
        cores = {
            r["config"]: r["core"] for r in result.lookup(benchmark=b)
        }
        assert max(cores.values()) - min(cores.values()) < 0.02
