"""Figure 8 bench: per-tile latency fairness."""

from benchmarks.conftest import scale_for
from repro.experiments import run_experiment


def test_fig8_fairness_shape(once):
    result = once(run_experiment, "fig8", scale=scale_for("quick"))
    rows = {r["config"]: r for r in result.rows}
    # Mesh is the least fair; torus the most symmetric.
    assert rows["mesh"]["stddev"] > rows["ruche2-pop"]["stddev"]
    assert rows["ruche2-pop"]["stddev"] > rows["ruche3-pop"]["stddev"]
    assert rows["torus"]["stddev"] < rows["ruche3-pop"]["stddev"]
    # Ruche undercuts the torus *mean* even without reaching its fairness.
    assert rows["ruche2-pop"]["mean_latency"] < rows["torus"]["mean_latency"]
    assert rows["ruche3-pop"]["mean_latency"] < rows["torus"]["mean_latency"]
    # Paper anchors at 16x16: mesh mu ~10.6, sigma ~1.67.
    if result.scale != "smoke":
        assert 9.8 < rows["mesh"]["mean_latency"] < 12.2
        assert 1.1 < rows["mesh"]["stddev"] < 2.4
        assert rows["ruche2-pop"]["stddev_reduction_vs_mesh"] > 1.5
        assert rows["ruche3-pop"]["stddev_reduction_vs_mesh"] > 2.0
