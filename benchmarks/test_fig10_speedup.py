"""Figure 10 bench: benchmark speedup over mesh."""

from benchmarks.conftest import scale_for
from repro.experiments import run_experiment


def test_fig10_speedups(once):
    result = once(run_experiment, "fig10", scale=scale_for("smoke"))
    geo = {
        r["config"]: r["speedup_vs_mesh"]
        for r in result.lookup(benchmark="GEOMEAN")
    }
    # Ruche helps overall; ruche2-depop captures most of the gain.
    assert geo["ruche2-depop"] > 1.03
    assert geo["ruche3-pop"] >= geo["ruche2-depop"] * 0.97
    # Half-torus trails the Ruche configs.
    assert geo["half-torus"] < geo["ruche2-depop"]
    # SpGEMM's global-atomic hotspot caps its gains (Section 4.6).
    spgemm = {
        r["config"]: r["speedup_vs_mesh"]
        for r in result.lookup(benchmark="spgemm-CA")
    }
    assert spgemm["ruche3-pop"] < 1.15
