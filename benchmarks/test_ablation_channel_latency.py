"""Ablation benches for pipelined channels and FBFC torus flow control.

These extend the paper: Section 3.2 states the credit-return sizing rule
without measuring it, and Section 5 discusses FBFC qualitatively.  Both
are quantified here.
"""

from repro.core.params import NetworkConfig
from repro.phys.area import router_area
from repro.sim.simulator import run_synthetic, zero_load_latency


def test_ablation_credit_return_sizing(once):
    """Section 3.2: with pipelined channels of latency L, FIFO capacity
    must cover the 2L-cycle credit round trip to sustain full rate."""

    def run():
        out = {}
        for latency, depth in [(1, 2), (2, 2), (2, 4), (3, 2), (3, 6)]:
            cfg = NetworkConfig.from_name(
                "mesh", 8, 8, channel_latency=latency, fifo_depth=depth
            )
            r = run_synthetic(cfg, "uniform_random", 0.6,
                              warmup=200, measure=400, drain_limit=0)
            out[(latency, depth)] = r.accepted_throughput
        return out

    sat = once(run)
    # Under-buffered pipelined links throttle throughput...
    assert sat[(2, 2)] < 0.65 * sat[(1, 2)]
    assert sat[(3, 2)] < sat[(2, 2)]
    # ...and sizing the FIFO to the round trip restores it.
    assert sat[(2, 4)] > 0.95 * sat[(1, 2)]
    assert sat[(3, 6)] > 0.95 * sat[(1, 2)]


def test_ablation_slow_ruche_links(once):
    """Longer Ruche wires (2-cycle channels) still beat the mesh: the
    latency per covered tile stays below one cycle."""

    def run():
        mesh = zero_load_latency(
            NetworkConfig.from_name("mesh", 12, 12), samples=800
        )
        slow_ruche = zero_load_latency(
            NetworkConfig.from_name(
                "ruche3-pop", 12, 12,
                ruche_channel_latency=2, fifo_depth=4,
            ),
            samples=800,
        )
        return mesh, slow_ruche

    mesh, slow_ruche = once(run)
    assert slow_ruche < mesh


def test_ablation_fbfc_vs_vc_torus(once):
    """FBFC buys torus deadlock freedom without VCs: less area and a
    shorter critical path, at some uniform-random throughput cost from
    the bubble injection restriction."""

    def run():
        out = {}
        for name in ("torus", "torus-fbfc"):
            cfg = NetworkConfig.from_name(name, 8, 8)
            r = run_synthetic(cfg, "uniform_random", 0.6,
                              warmup=250, measure=500, drain_limit=0)
            out[name] = {
                "sat": r.accepted_throughput,
                "area": router_area(cfg).total,
            }
        return out

    results = once(run)
    vc, fbfc = results["torus"], results["torus-fbfc"]
    assert fbfc["area"] < 0.6 * vc["area"]
    assert fbfc["sat"] > 0.6 * vc["sat"]  # usable, but below the VC router
    assert fbfc["sat"] < vc["sat"]
