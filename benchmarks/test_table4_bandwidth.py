"""Table 4 bench: analytic bandwidth ratios (exact paper values)."""

from benchmarks.conftest import scale_for
from repro.experiments import run_experiment

PAPER_BISECTION = {
    ("16x8", "mesh"): 16, ("16x8", "ruche2-depop"): 48,
    ("16x8", "ruche3-depop"): 64,
    ("32x16", "mesh"): 32, ("32x16", "ruche2-depop"): 96,
    ("32x16", "ruche3-depop"): 128,
    ("64x8", "mesh"): 16, ("64x8", "ruche2-depop"): 48,
    ("64x8", "ruche3-depop"): 64,
    ("32x8", "mesh"): 16, ("32x8", "ruche2-depop"): 48,
    ("32x8", "ruche3-depop"): 64,
}

PAPER_MEMORY_BW = {"16x8": 32, "32x16": 64, "64x8": 128, "32x8": 64}


def test_table4_matches_paper_exactly(once):
    result = once(run_experiment, "table4", scale=scale_for("quick"))
    for row in result.rows:
        key = (row["network_size"], row["noc"])
        assert row["bisection_bw"] == PAPER_BISECTION[key], key
        assert row["memory_tile_bw"] == PAPER_MEMORY_BW[row["network_size"]]
    # The paper's highlighted rows.
    highlighted = {
        (r["network_size"], r["noc"])
        for r in result.rows
        if r["meets_guideline"]
    }
    assert highlighted == {
        ("16x8", "ruche2-depop"), ("16x8", "ruche3-depop"),
        ("32x16", "ruche2-depop"), ("32x16", "ruche3-depop"),
        ("32x8", "ruche3-depop"),
    }
