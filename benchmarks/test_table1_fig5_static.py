"""Benches for the analytic artifacts: Table 1 and Figure 5."""

from benchmarks.conftest import scale_for
from repro.experiments import run_experiment


def test_table1_properties(once):
    result = once(run_experiment, "table1", scale=scale_for("quick"))
    ruche = result.single(topology="ruche")
    torus = result.single(topology="torus")
    mesh = result.single(topology="mesh")
    criteria = [c for c in result.rows[0] if c != "topology"]
    assert all(ruche[c] for c in criteria)
    assert all(torus[c] for c in criteria)
    assert mesh["long_range_links"] is False
    fb = result.single(topology="flattened-butterfly")
    assert fb["constant_router_radix"] is False


def test_fig5_connectivity(once):
    result = once(run_experiment, "fig5", scale=scale_for("quick"))
    total = result.single(output="TOTAL")
    assert total["removed_by_depop"] == 16
    p_row = result.single(output="P")
    assert (p_row["fanin_pop"], p_row["fanin_depop"]) == (9, 7)
    assert result.single(output="RS")["removed_by_depop"] == 5
    assert result.single(output="RN")["removed_by_depop"] == 5
