"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only enables
legacy editable installs (``pip install -e .``) on toolchains that cannot
build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
