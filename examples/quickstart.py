"""Quickstart: build Ruche networks, sweep traffic, inspect physical cost.

Run with::

    python examples/quickstart.py
"""

from repro import NetworkConfig
from repro.analysis import render_table, saturation_throughput
from repro.phys import energy_table, min_cycle_time_fo4, router_area
from repro.sim import sweep_injection_rates, zero_load_latency


def main() -> None:
    # 1. Describe design points with paper-style names.
    configs = [
        NetworkConfig.from_name(name, 8, 8)
        for name in ("mesh", "torus", "ruche2-depop", "ruche2-pop")
    ]

    # 2. Cycle-accurate load-latency sweeps (Figure 6 style).
    rows = []
    for config in configs:
        curve = sweep_injection_rates(
            config,
            pattern="uniform_random",
            rates=(0.05, 0.20, 0.40, 0.60),
            warmup=200,
            measure=400,
            drain_limit=800,
        )
        rows.append({
            "config": config.name,
            "zero_load_latency": zero_load_latency(config, samples=1000),
            "saturation_throughput": saturation_throughput(curve),
        })
    print(render_table(rows, title="8x8 uniform random"))

    # 3. Physical models: area, cycle time, energy (Tables 2-3, Fig. 7).
    phys_rows = []
    for config in configs:
        area = router_area(config)
        energy = energy_table(config)
        phys_rows.append({
            "config": config.name,
            "router_area_um2": area.total,
            "min_cycle_fo4": min_cycle_time_fo4(config),
            "energy_h_pj": energy["Horizontal"],
        })
    print()
    print(render_table(phys_rows, title="Physical cost (128-bit channels)"))


if __name__ == "__main__":
    main()
