"""Tile-position fairness study (Figure 8) plus an adversarial-traffic
check (the tornado/transpose columns of Figure 6).

Run with::

    python examples/fairness_study.py
"""

from repro.analysis import (
    measure_fairness,
    render_table,
    saturation_throughput,
)
from repro.core.params import NetworkConfig
from repro.sim import sweep_injection_rates

CONFIGS = ("mesh", "torus", "ruche2-pop", "ruche3-pop")


def main() -> None:
    # Figure 8: who suffers from sitting at the array edge?
    rows = []
    for name in CONFIGS:
        config = NetworkConfig.from_name(name, 12, 12)
        summary = measure_fairness(config, measure=1200)
        rows.append({
            "config": name,
            "mean": summary.mean,
            "stddev": summary.stddev,
            "worst_tile": summary.max_tile,
            "best_tile": summary.min_tile,
        })
    print(render_table(rows, title="Per-tile latency fairness, 12x12 UR"))

    # Adversarial patterns: do the Ruche links still help?
    print()
    adv_rows = []
    for pattern in ("transpose", "tornado"):
        for name in CONFIGS:
            config = NetworkConfig.from_name(name, 12, 12)
            curve = sweep_injection_rates(
                config, pattern, rates=(0.05, 0.15, 0.30, 0.50),
                warmup=200, measure=400, drain_limit=800,
            )
            adv_rows.append({
                "pattern": pattern,
                "config": name,
                "saturation": saturation_throughput(curve),
            })
    print(render_table(adv_rows, title="Adversarial saturation, 12x12"))


if __name__ == "__main__":
    main()
