"""Design-space exploration for a manycore fabric (Section 4.5 workflow).

Given an array size and a compute:memory budget, sweep Ruche Factors and
crossbar population to find the cheapest fabric whose bisection bandwidth
meets the memory-tile bandwidth — the paper's design guideline — then
check the winner's saturation throughput under all-to-edge traffic.

Run with::

    python examples/design_space.py [width] [height]
"""

import sys

from repro.analysis import (
    bandwidth_row,
    render_table,
    saturation_throughput,
)
from repro.core.params import NetworkConfig
from repro.phys import tile_area_increase
from repro.sim import sweep_injection_rates


def explore(width: int, height: int) -> None:
    candidates = ["mesh", "half-torus"] + [
        f"ruche{rf}-{pop}"
        for rf in (2, 3, 4)
        if rf < width
        for pop in ("depop", "pop")
    ]
    rows = []
    for name in candidates:
        half = name.startswith("ruche")
        config = NetworkConfig.from_name(name, width, height, half=half)
        bw = bandwidth_row(config)
        rows.append({
            "config": name,
            "bisection_bw": bw.bisection_bw,
            "memory_bw": bw.memory_tile_bw,
            "meets_guideline": bw.meets_guideline,
            "tile_area": tile_area_increase(config),
        })
    print(render_table(
        rows, title=f"{width}x{height} fabric candidates"
    ))

    # Paper guideline: bisection >= memory BW at the lowest tile cost.
    feasible = [r for r in rows if r["meets_guideline"]]
    pool = feasible or rows
    winner = min(pool, key=lambda r: r["tile_area"])
    print(f"\nGuideline pick: {winner['config']} "
          f"(tile area x{winner['tile_area']:.3f})")

    # Validate the pick with an all-to-edge saturation measurement.
    mem_rows = []
    for name in ("mesh", winner["config"]):
        half = name.startswith("ruche")
        config = NetworkConfig.from_name(
            name, width, height, half=half, edge_memory=True
        )
        curve = sweep_injection_rates(
            config, "tile_to_memory", rates=(0.05, 0.12, 0.20, 0.30),
            warmup=200, measure=400, drain_limit=800,
        )
        mem_rows.append({
            "config": name,
            "tile_to_memory_saturation": saturation_throughput(curve),
            "theoretical_bound": 2 * width / (width * height),
        })
    print()
    print(render_table(mem_rows, title="All-to-edge saturation check"))


if __name__ == "__main__":
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    height = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    explore(width, height)
