"""Graceful degradation under dead links: mesh vs. Full Ruche.

Runs the fault-degradation campaign with JSON checkpointing, prints the
per-config retention curves, and demonstrates resumability: kill the
script mid-sweep and rerun it — completed rows load from the
checkpoint file instead of being recomputed.

Run with::

    python examples/fault_study.py [checkpoint.json]
"""

import sys

from repro.analysis import (
    degradation_curves,
    render_table,
    worst_case_retention,
)
from repro.experiments.fault_degradation import run


def main() -> None:
    checkpoint = sys.argv[1] if len(sys.argv) > 1 else "fault_study.ckpt.json"
    result = run(scale="smoke", checkpoint=checkpoint)
    print(result.report())

    curves = degradation_curves(result.rows)
    print("\nWorst-case throughput retention (1.0 = no degradation):")
    retention = worst_case_retention(curves)
    print(render_table([
        {"config": name, "retention": frac}
        for name, frac in sorted(retention.items())
    ]))
    print(
        f"\nCheckpoint: {checkpoint} — rerun this script to resume "
        "instead of recomputing."
    )


if __name__ == "__main__":
    main()
