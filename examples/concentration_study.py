"""Why not just concentrate? (the paper's Section 1 argument, quantified)

Compares c-way concentrated meshes with widened channels against Ruche
networks at matched bisection bandwidth: serialization latency, injection
conflicts under streaming traffic, and router area per core.

Run with::

    python examples/concentration_study.py
"""

from repro.analysis import render_table
from repro.core.params import NetworkConfig
from repro.phys.concentration import ConcentratedMeshModel, ruche_alternative
from repro.sim.simulator import zero_load_latency


def main() -> None:
    base = NetworkConfig.from_name("mesh", 16, 16)
    base_hops = zero_load_latency(base, samples=1500)

    rows = []
    for c, w in [(2, 2), (4, 2), (4, 4)]:
        model = ConcentratedMeshModel(base, concentration=c, width_factor=w)
        summary = model.summary(per_core_rate=0.5, base_hops=base_hops)
        rows.append({
            "design": f"conc{c}-w{w}",
            "bisection": summary["bisection_factor"],
            "ser_latency": summary["serialization_latency"],
            "stream_conflict_p": summary["injection_conflict_prob"],
            "max_inject_rate": summary["injection_saturation"],
            "zero_load_factor": summary["zero_load_latency_factor"],
            "router_area_per_core": summary["router_area_per_core_um2"],
        })
    for rf in (2, 3):
        alt = ruche_alternative(base, ruche_factor=rf)
        rows.append({
            "design": alt["config"],
            "bisection": alt["bisection_factor"],
            "ser_latency": alt["serialization_latency"],
            "stream_conflict_p": alt["injection_conflict_prob"],
            "max_inject_rate": alt["injection_saturation"],
            "zero_load_factor": zero_load_latency(
                NetworkConfig.from_name(f"ruche{rf}-depop", 16, 16),
                samples=1500,
            ) / base_hops,
            "router_area_per_core": alt["router_area_per_core_um2"],
        })
    for row in rows:
        row["bisection_per_area"] = (
            1000 * row["bisection"] / row["router_area_per_core"]
        )
    print(render_table(
        rows,
        title=(
            "Concentrated mesh vs Ruche at 16x16 "
            "(factors relative to plain mesh; streaming rate 0.5)"
        ),
    ))
    print(
        "\nConcentration amortizes the router but pays in serialization\n"
        "latency, shared-port conflicts (fatal at streaming rates), and a\n"
        "hard per-core injection cap.  The Ruche rows deliver the most\n"
        "bisection per unit router area with none of those taxes."
    )


if __name__ == "__main__":
    main()
