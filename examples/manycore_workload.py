"""Execution-driven manycore comparison on real workloads (Figures 10-13).

Runs a few Table 5 benchmarks on mesh, half-torus and Half Ruche fabrics
and reports speedup, remote-load latency decomposition, and the energy
breakdown — the full Section 4.6-4.9 pipeline in miniature.

Run with::

    python examples/manycore_workload.py
"""

from repro.analysis import render_table
from repro.manycore import (
    Machine,
    MachineConfig,
    build_workload,
    system_energy,
)

FABRICS = ("mesh", "half-torus", "ruche2-depop", "ruche3-pop")
BENCHMARKS = ("jacobi", "sgemm", "bfs-HW")


def main() -> None:
    for benchmark in BENCHMARKS:
        rows = []
        mesh_cycles = None
        mesh_energy = None
        for fabric in FABRICS:
            mcfg = MachineConfig(network=fabric, width=16, height=8)
            workload = build_workload(benchmark, mcfg)
            stats = Machine(mcfg, workload).run()
            energy = system_energy(stats, mcfg)
            if fabric == "mesh":
                mesh_cycles = stats.cycles
                mesh_energy = energy
            rows.append({
                "fabric": fabric,
                "cycles": stats.cycles,
                "speedup": mesh_cycles / stats.cycles,
                "intrinsic_lat": stats.avg_intrinsic_latency,
                "congestion_lat": stats.avg_congestion_latency,
                "noc_energy_vs_mesh": energy.noc / mesh_energy.noc,
                "total_energy_vs_mesh": energy.total / mesh_energy.total,
            })
        print(render_table(rows, title=f"{benchmark} on 16x8"))
        print()


if __name__ == "__main__":
    main()
