"""An out-of-tree *express mesh* registered through the public registry.

This is the payoff demo for the declarative construction path
(:mod:`repro.core.spec` + :mod:`repro.core.registry`): a topology the
core has never heard of — a 2-D mesh augmented with horizontal express
channels that hop ``span`` tiles between *station* columns — becomes
constructible, simulable (``build_run``), and statically verifiable
(``repro.verify.verify_spec``) by importing this module.  No core file
changes; the test suite proves that.

Design
------
* **Channels** — a plain mesh, plus ``RE``/``RW`` express channels of
  length ``span`` *only* where the source column is a station
  (``x % span == 0``).  This differs from Half Ruche, which wires
  Ruche channels at every column; reusing the ``HALF_RUCHE`` config
  kind gives us the paper's physical bookkeeping (link spans, router
  radix) for free while the plugin narrows the channel set.
* **Routing** — X-first dimension order.  A packet travels local
  ``E``/``W`` links toward its destination and boards an express
  channel whenever it sits at a station with at least ``span`` columns
  still to cover; the remainder is walked locally, then Y finishes on
  ``N``/``S``.  Movement is monotone per axis and X strictly precedes
  Y, so the channel dependency graph is acyclic (deadlock-free), which
  the static verifier proves exhaustively.
* **Crossbar** — a depopulated matrix admitting exactly the turns the
  routing emits: express channels are boarded from same-direction
  local inputs (or injection) and exited onto same-direction local
  outputs; vertical inputs only continue vertically or eject.

Smoke check (used by CI)::

    PYTHONPATH=src python examples/plugin_topology.py
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.connectivity import Matrix
from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig, TopologyKind
from repro.core.registry import register_topology
from repro.core.routing import RoutingAlgorithm
from repro.core.spec import NetworkSpec, build_run
from repro.core.topology import Channel, Topology
from repro.errors import ConfigError

#: Default express-channel skip distance (tiles between stations).
SPAN = 4


class ExpressMeshTopology(Topology):
    """Mesh plus horizontal express channels between station columns."""

    def _build_channels(self) -> Iterable[Channel]:
        span = self.config.ruche_factor
        for src, direction, dst in super()._build_channels():
            # Keep the inherited Half Ruche express channels only where
            # the source column is a station; both endpoints then are
            # (station + span is again a multiple of span).
            if direction.is_ruche and src.x % span != 0:
                continue
            yield (src, direction, dst)


class ExpressMeshRouting(RoutingAlgorithm):
    """X-first DOR that boards express channels at station columns."""

    def __init__(self, config: NetworkConfig) -> None:
        super().__init__(config)
        self.span = config.ruche_factor

    def route(
        self, node: Coord, in_dir: Direction, dest: Coord, subnet: int = 0
    ) -> Direction:
        dx = dest.x - node.x
        if dx:
            at_station = node.x % self.span == 0
            if at_station and abs(dx) >= self.span:
                return Direction.RE if dx > 0 else Direction.RW
            return Direction.E if dx > 0 else Direction.W
        dy = dest.y - node.y
        if dy:
            return Direction.S if dy > 0 else Direction.N
        return Direction.P


def express_mesh_matrix(config: NetworkConfig) -> Matrix:
    """Depopulated crossbar: exactly the turns the routing emits."""
    d = Direction
    return {
        d.P: frozenset((d.P, d.W, d.E, d.N, d.S, d.RW, d.RE)),
        d.W: frozenset((d.E, d.RE, d.N, d.S, d.P)),
        d.E: frozenset((d.W, d.RW, d.N, d.S, d.P)),
        d.RW: frozenset((d.RE, d.E, d.N, d.S, d.P)),
        d.RE: frozenset((d.RW, d.W, d.N, d.S, d.P)),
        d.N: frozenset((d.S, d.P)),
        d.S: frozenset((d.N, d.P)),
    }


@register_topology(
    "express-mesh",
    description=(
        "mesh + span-length express channels between station columns "
        "(plugin example)"
    ),
    topology=ExpressMeshTopology,
    routing=ExpressMeshRouting,
    matrix=express_mesh_matrix,
)
def express_mesh_config(
    name: str, width: int, height: int, span: int = SPAN, **overrides: Any
) -> NetworkConfig:
    """Config factory: ``span`` rides in the Ruche Factor field."""
    if span < 2:
        raise ConfigError(
            f"express-mesh span must be >= 2, got {span} "
            f"(span 1 is just a mesh)"
        )
    return NetworkConfig(
        TopologyKind.HALF_RUCHE,
        width,
        height,
        ruche_factor=span,
        depopulated=True,
        **overrides,
    )


def demo_spec(
    width: int = 16, height: int = 8, rate: float = 0.05
) -> NetworkSpec:
    """The design point the smoke check verifies and simulates."""
    return NetworkSpec.for_network(
        "express-mesh",
        width,
        height,
        pattern="uniform_random",
        rate=rate,
        warmup=200,
        measure=400,
        drain_limit=1200,
        seed=1,
    )


def main() -> int:
    from repro.verify import certify_spec, verify_spec

    spec = demo_spec()
    report = verify_spec(spec)
    print(report.summary())
    if not report.ok:
        for problem in report.problems():
            print(f"  {problem}")
        return 1
    # The table certifier proves the same properties with no 2-D
    # coordinate assumptions — the path any plugin topology gets even
    # when the coordinate enumerator does not apply.
    certified = certify_spec(spec)
    print(certified.summary())
    if not certified.ok:
        for problem in certified.problems():
            print(f"  {problem}")
        return 1
    for diagnostic in certified.lowering:
        print(
            f"  falls back to reference engine: "
            f"{diagnostic['code']}: {diagnostic['detail']}"
        )
    result = build_run(spec)
    print(
        f"simulated express-mesh {spec.width}x{spec.height}: "
        f"avg latency {result.avg_latency:.2f} cycles, accepted "
        f"{result.accepted_throughput:.4f} flits/node/cycle"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
