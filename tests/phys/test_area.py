"""Area model tests: Table 2 anchors and the paper's orderings."""

import pytest

from repro.core.params import NetworkConfig
from repro.phys.area import (
    crossbar_fanins,
    router_area,
    ruche_wire_area_per_tile,
    tile_area_increase,
)


def cfg(name, w=8, h=8, **kw):
    half = kw.pop("half", name.startswith("ruche") and kw.pop("_half", False))
    return NetworkConfig.from_name(name, w, h, half=half, **kw)


#: Paper Table 2 anchors (128-bit channels, ~98 FO4).
TABLE2 = {
    "multimesh": {"Crossbar": 791, "Decode": 96, "FIFO": 2250, "Arbiter": 53,
                  "TOTAL": 3190},
    "ruche2-depop": {"Crossbar": 599, "Decode": 99, "FIFO": 2250,
                     "Arbiter": 42, "TOTAL": 2991},
    "ruche2-pop": {"Crossbar": 986, "Decode": 100, "FIFO": 2250,
                   "Arbiter": 74, "TOTAL": 3411},
    "torus": {"Crossbar": 410, "Decode": 349, "VC": 2435, "Allocator": 194,
              "TOTAL": 3388},
}


class TestTable2Anchors:
    @pytest.mark.parametrize("name", sorted(TABLE2))
    def test_each_component_within_ten_percent(self, name):
        model = router_area(cfg(name)).as_dict()
        for component, paper in TABLE2[name].items():
            assert model[component] == pytest.approx(paper, rel=0.11), (
                f"{name}/{component}: model {model[component]:.0f} "
                f"vs paper {paper}"
            )

    @pytest.mark.parametrize("name", sorted(TABLE2))
    def test_total_within_five_percent(self, name):
        model = router_area(cfg(name)).total
        assert model == pytest.approx(TABLE2[name]["TOTAL"], rel=0.05)

    def test_paper_total_ordering(self):
        """depop < multi-mesh < torus < pop (Table 2 bottom row)."""
        totals = {n: router_area(cfg(n)).total for n in TABLE2}
        assert (
            totals["ruche2-depop"]
            < totals["multimesh"]
            < totals["torus"]
            < totals["ruche2-pop"]
        )

    def test_depop_crossbar_saves_about_forty_percent(self):
        """Section 4.2: depopulation cuts crossbar area by ~40%."""
        pop = router_area(cfg("ruche2-pop")).crossbar
        depop = router_area(cfg("ruche2-depop")).crossbar
        assert 0.30 < 1 - depop / pop < 0.45

    def test_depop_crossbar_well_below_multimesh(self):
        assert (
            router_area(cfg("ruche2-depop")).crossbar
            < 0.85 * router_area(cfg("multimesh")).crossbar
        )

    def test_fifo_capacity_equal_for_ruche_and_multimesh(self):
        """Figure 3: both combine the same 2x multi-mesh buffering."""
        assert (
            router_area(cfg("ruche2-depop")).buffers
            == router_area(cfg("multimesh")).buffers
        )


class TestScaling:
    def test_area_scales_linearly_with_width_for_datapath(self):
        wide = router_area(cfg("ruche2-depop", channel_width_bits=256))
        base = router_area(cfg("ruche2-depop"))
        assert wide.crossbar == pytest.approx(2 * base.crossbar)
        assert wide.buffers == pytest.approx(2 * base.buffers)
        assert wide.decode == base.decode  # header logic is width-free

    def test_deeper_fifos_cost_storage(self):
        deep = router_area(cfg("mesh", fifo_depth=4))
        base = router_area(cfg("mesh"))
        assert deep.buffers == pytest.approx(2 * base.buffers)

    def test_half_ruche_smaller_than_full_ruche(self):
        half = router_area(
            NetworkConfig.from_name("ruche2-depop", 16, 8, half=True)
        )
        full = router_area(cfg("ruche2-depop"))
        assert half.total < full.total

    def test_multimesh_crossbar_is_two_meshes_plus_merge(self):
        # Mesh X-Y DOR output fanins are P:5, W:2, E:2, N:4, S:4; a 2x
        # multi-mesh duplicates them and adds a 2:1 merge at ejection.
        fanins = crossbar_fanins(cfg("multimesh"))
        assert sorted(fanins) == sorted([5, 2, 2, 4, 4] * 2 + [2])


class TestWiresAndTileArea:
    def test_ruche_wire_area_scales_with_rf(self):
        a2 = ruche_wire_area_per_tile(cfg("ruche2-depop"))
        a3 = ruche_wire_area_per_tile(cfg("ruche3-depop"))
        assert a3 == pytest.approx(1.5 * a2)

    def test_mesh_has_no_overfly_wires(self):
        assert ruche_wire_area_per_tile(cfg("mesh")) == 0.0

    def test_ruche_one_local_span_needs_no_repeaters(self):
        assert ruche_wire_area_per_tile(cfg("ruche1")) == 0.0

    @pytest.mark.parametrize(
        "name, paper",
        [
            ("ruche2-depop", 1.058),
            ("ruche2-pop", 1.085),
            ("ruche3-depop", 1.063),
            ("ruche3-pop", 1.090),
            ("half-torus", 1.071),
        ],
    )
    def test_table6_tile_area_increase(self, name, paper):
        half = name.startswith("ruche")
        c = NetworkConfig.from_name(name, 32, 16, half=half)
        assert tile_area_increase(c) == pytest.approx(paper, abs=0.025)

    def test_tile_area_ordering_depop_cheapest(self):
        r2d = tile_area_increase(
            NetworkConfig.from_name("ruche2-depop", 32, 16, half=True)
        )
        r2p = tile_area_increase(
            NetworkConfig.from_name("ruche2-pop", 32, 16, half=True)
        )
        r3d = tile_area_increase(
            NetworkConfig.from_name("ruche3-depop", 32, 16, half=True)
        )
        assert r2d < r2p
        assert r2d < r3d < tile_area_increase(
            NetworkConfig.from_name("ruche3-pop", 32, 16, half=True)
        )
