"""Tests for the concentration model (the paper's Section 1 argument)."""

import pytest

from repro.core.params import NetworkConfig
from repro.phys.concentration import ConcentratedMeshModel, ruche_alternative


def base():
    return NetworkConfig.from_name("mesh", 16, 16)


class TestConcentratedMesh:
    def test_plain_widening_recovers_bisection(self):
        model = ConcentratedMeshModel(base(), concentration=4,
                                      width_factor=2)
        assert model.bisection_bandwidth_factor == pytest.approx(1.0)

    def test_serialization_grows_with_width(self):
        assert ConcentratedMeshModel(base(), 2, 2).serialization_latency == 1
        assert ConcentratedMeshModel(base(), 4, 4).serialization_latency == 3

    def test_streaming_traffic_conflicts(self):
        """The paper's core point: conflicts are rare for request/wait
        cache traffic but near-certain for word-per-cycle streams."""
        model = ConcentratedMeshModel(base(), concentration=4)
        assert model.injection_conflict_probability(0.02) < 0.06
        assert model.injection_conflict_probability(0.9) > 0.99

    def test_streams_saturate_the_shared_port(self):
        model = ConcentratedMeshModel(base(), concentration=4)
        assert model.injection_saturation_rate == 0.25

    def test_serialization_negates_latency_win(self):
        """'The serialization latency negates the latency reduction
        benefit of concentration' — for short-haul traffic."""
        model = ConcentratedMeshModel(base(), concentration=4,
                                      width_factor=4)
        assert model.zero_load_latency_factor(base_hops=5.0) > 1.0
        # Long-haul traffic still wins on hops alone.
        assert model.zero_load_latency_factor(base_hops=30.0) < 1.0

    def test_router_area_grows_with_width(self):
        narrow = ConcentratedMeshModel(base(), 2, 1).router_area_per_tile()
        wide = ConcentratedMeshModel(base(), 2, 2).router_area_per_tile()
        assert wide > 1.8 * narrow

    def test_validation(self):
        with pytest.raises(ValueError):
            ConcentratedMeshModel(base(), concentration=0)
        with pytest.raises(ValueError):
            ConcentratedMeshModel(base(), 2, 2).injection_conflict_probability(1.5)

    def test_summary_keys(self):
        summary = ConcentratedMeshModel(base(), 2, 2).summary()
        assert {"bisection_factor", "serialization_latency",
                "injection_conflict_prob"} <= set(summary)


class TestRucheAlternative:
    def test_ruche_scales_bisection_without_serialization(self):
        alt = ruche_alternative(base(), ruche_factor=2)
        assert alt["bisection_factor"] == 3.0
        assert alt["serialization_latency"] == 0
        assert alt["injection_conflict_prob"] == 0.0

    def test_ruche_beats_wide_concentrated_router_on_area(self):
        """Matching bisection x3: ruche2-depop vs a 2-way concentrated
        mesh with ~4x channels — the Ruche router is far smaller."""
        conc = ConcentratedMeshModel(
            base(), concentration=2, width_factor=4
        )
        assert conc.bisection_bandwidth_factor > 2.5
        alt = ruche_alternative(base(), ruche_factor=2)
        assert alt["router_area_per_core_um2"] < conc.router_area_per_tile()
