"""Timing, synthesis-curve, energy and wire model tests."""

import pytest

from repro.core.coords import Direction
from repro.core.params import NetworkConfig
from repro.phys.energy import energy_table, router_energy_per_packet
from repro.phys.synthesis import (
    area_at_cycle_time,
    min_achieved_cycle,
    synthesis_curve,
)
from repro.phys.technology import TECH_12NM, Technology
from repro.phys.timing import RELAXED_CYCLE_FO4, achievable, min_cycle_time_fo4
from repro.phys.wires import (
    link_length_mm,
    repeated_wire_delay_fo4,
    ruche_link_delay_fo4,
    wire_energy_per_packet,
)


def cfg(name, w=8, h=8, **kw):
    return NetworkConfig.from_name(name, w, h, **kw)


class TestCycleTime:
    def test_mesh_is_fastest(self):
        names = ["multimesh", "ruche2-depop", "ruche2-pop", "torus"]
        mesh = min_cycle_time_fo4(cfg("mesh"))
        assert all(min_cycle_time_fo4(cfg(n)) > mesh for n in names)

    def test_torus_much_slower_than_ruche(self):
        """Figure 7: torus cannot approach Ruche cycle times."""
        torus = min_cycle_time_fo4(cfg("torus"))
        pop = min_cycle_time_fo4(cfg("ruche2-pop"))
        assert torus > 1.5 * pop

    def test_pop_and_depop_are_close(self):
        """Section 4.2: 'only a few gate delay differences' (7 vs 9 mux)."""
        pop = min_cycle_time_fo4(cfg("ruche3-pop"))
        depop = min_cycle_time_fo4(cfg("ruche3-depop"))
        assert 0 < pop - depop < 3.0

    def test_multimesh_comparable_with_ruche(self):
        mm = min_cycle_time_fo4(cfg("multimesh"))
        depop = min_cycle_time_fo4(cfg("ruche2-depop"))
        assert abs(mm - depop) < 2.0

    def test_achievable_threshold(self):
        c = cfg("mesh")
        dmin = min_cycle_time_fo4(c)
        assert achievable(c, dmin + 0.1)
        assert not achievable(c, dmin - 0.1)


class TestSynthesisCurve:
    def test_violated_targets_yield_none(self):
        points = synthesis_curve(cfg("torus"), targets_fo4=[98, 40, 20, 10])
        met = {p.target_fo4: p.met_timing for p in points}
        assert met[98] and met[40]
        assert not met[10]

    def test_area_monotone_in_timing_pressure(self):
        c = cfg("ruche2-depop")
        areas = [
            area_at_cycle_time(c, t)
            for t in (98, 60, 30, 18)
        ]
        assert all(a is not None for a in areas)
        assert areas == sorted(areas)

    def test_relaxed_area_matches_table2_model(self):
        from repro.phys.area import router_area

        c = cfg("ruche2-depop")
        relaxed = area_at_cycle_time(c, RELAXED_CYCLE_FO4)
        assert relaxed == pytest.approx(router_area(c).total, rel=0.03)

    def test_pop_slightly_larger_than_torus_when_relaxed(self):
        """Figure 7: at ~100 FO4 fully-populated exceeds torus area."""
        pop = area_at_cycle_time(cfg("ruche2-pop"), 98.0)
        torus = area_at_cycle_time(cfg("torus"), 98.0)
        assert pop > torus > 0.9 * pop

    def test_depop_below_multimesh_everywhere(self):
        for t in (98, 60, 30, 20):
            depop = area_at_cycle_time(cfg("ruche2-depop"), t)
            mm = area_at_cycle_time(cfg("multimesh"), t)
            if depop is not None and mm is not None:
                assert depop < mm

    def test_min_achieved_cycle_ordering(self):
        sweep = [98.0 - 2 * i for i in range(45)]
        ruche = min_achieved_cycle(synthesis_curve(cfg("ruche2-pop"), sweep))
        torus = min_achieved_cycle(synthesis_curve(cfg("torus"), sweep))
        mesh = min_achieved_cycle(synthesis_curve(cfg("mesh"), sweep))
        assert mesh <= ruche < torus

    def test_min_achieved_requires_a_feasible_point(self):
        with pytest.raises(ValueError):
            min_achieved_cycle(synthesis_curve(cfg("torus"), [5.0]))


#: Paper Table 3 (pJ/packet).
TABLE3 = {
    "ruche2-depop": {"Horizontal": 1.66, "Vertical": 1.82,
                     "Ruche Horizontal": 1.40, "Ruche Vertical": 1.49},
    "ruche2-pop": {"Horizontal": 1.95, "Vertical": 2.01,
                   "Ruche Horizontal": 1.81, "Ruche Vertical": 2.00},
    "torus": {"Horizontal": 2.41, "Vertical": 3.35},
}


class TestEnergy:
    @pytest.mark.parametrize("name", sorted(TABLE3))
    def test_table3_anchors_within_eight_percent(self, name):
        model = energy_table(cfg(name))
        for direction, paper in TABLE3[name].items():
            assert model[direction] == pytest.approx(paper, rel=0.08), (
                f"{name}/{direction}"
            )

    def test_ruche_cheaper_than_torus_every_direction(self):
        torus = energy_table(cfg("torus"))
        for name in ("ruche2-depop", "ruche2-pop"):
            ruche = energy_table(cfg(name))
            assert ruche["Horizontal"] < torus["Horizontal"]
            assert ruche["Vertical"] < torus["Vertical"]

    def test_depop_cheaper_than_pop_especially_ruche_dirs(self):
        depop = energy_table(cfg("ruche2-depop"))
        pop = energy_table(cfg("ruche2-pop"))
        for k in depop:
            assert depop[k] < pop[k]
        # Table 3 discussion: the Ruche directions save the most.
        ruche_saving = pop["Ruche Horizontal"] - depop["Ruche Horizontal"]
        local_saving = pop["Horizontal"] - depop["Horizontal"]
        assert ruche_saving > local_saving

    def test_width_scaling(self):
        wide = cfg("ruche2-depop", channel_width_bits=256)
        base = cfg("ruche2-depop")
        assert router_energy_per_packet(
            wide, Direction.E
        ) == pytest.approx(
            2 * router_energy_per_packet(base, Direction.E)
        )

    def test_missing_port_rejected(self):
        with pytest.raises(ValueError):
            router_energy_per_packet(cfg("mesh"), Direction.RE)

    def test_ejection_energy_defined(self):
        assert router_energy_per_packet(cfg("mesh"), Direction.P) > 0


class TestWires:
    def test_link_lengths(self):
        tile_mm = TECH_12NM.tile_size_um / 1000
        assert link_length_mm(cfg("mesh"), Direction.E) == pytest.approx(tile_mm)
        assert link_length_mm(cfg("ruche3-depop"), Direction.RE) == (
            pytest.approx(3 * tile_mm)
        )
        assert link_length_mm(cfg("torus"), Direction.E) == (
            pytest.approx(2 * tile_mm)
        )

    def test_local_links_carry_no_long_wire_energy(self):
        assert wire_energy_per_packet(cfg("mesh"), Direction.E) == 0.0
        assert wire_energy_per_packet(cfg("ruche1"), Direction.RE) == 0.0

    def test_ruche_wire_energy_grows_with_rf(self):
        e2 = wire_energy_per_packet(cfg("ruche2-depop"), Direction.RE)
        e3 = wire_energy_per_packet(cfg("ruche3-depop"), Direction.RE)
        assert 0 < e2 < e3
        assert e3 == pytest.approx(2 * e2)  # spans beyond the first tile

    def test_wire_energy_comparable_to_one_router_traversal(self):
        """A long Ruche wire costs the same order as a router traversal —
        large enough to show in Figure 13, small vs. whole-system energy."""
        c = cfg("ruche3-depop")
        wire = wire_energy_per_packet(c, Direction.RE)
        router = router_energy_per_packet(c, Direction.RE)
        assert 0.5 * router < wire < 2.5 * router

    def test_per_distance_ruche_beats_local_hops(self):
        """The paper's energy motivation: covering RF tiles on one Ruche
        channel (router + long wire) costs less than RF local router
        traversals."""
        c = cfg("ruche3-depop")
        ruche_hop = (
            router_energy_per_packet(c, Direction.RE)
            + wire_energy_per_packet(c, Direction.RE)
        )
        local_hops = 3 * router_energy_per_packet(c, Direction.E)
        assert ruche_hop < local_hops

    def test_wire_delay_linear(self):
        assert repeated_wire_delay_fo4(2.0) == pytest.approx(
            2 * repeated_wire_delay_fo4(1.0)
        )

    def test_ruche_link_delay_stays_single_cycle_at_small_rf(self):
        """Section 3.2: small tiles keep Ruche hops single-cycle."""
        for rf in (2, 3, 4):
            c = NetworkConfig.from_name(f"ruche{rf}-depop", 16, 16)
            assert ruche_link_delay_fo4(c) < min_cycle_time_fo4(c)

    def test_custom_technology(self):
        slow = Technology(fo4_ps=20.0)
        assert slow.cycle_time_ps(10) == 200.0
        assert TECH_12NM.wire_energy_pj_per_bit_mm() == pytest.approx(
            0.2 * 0.8 * 0.8 * 1.6
        )
