"""Tests for pipelined credited channels and FBFC torus flow control."""

import pytest

from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig
from repro.errors import ConfigError
from repro.sim.channel import PipelinedChannel
from repro.sim.network import Network
from repro.sim.packet import Packet
from repro.sim.rng import derive_rng
from repro.sim.simulator import run_synthetic


def make_packet(pid=0):
    return Packet(pid, Coord(0, 0), Coord(1, 0), 0)


class TestPipelinedChannelUnit:
    def test_delivery_after_latency(self):
        ch = PipelinedChannel(latency=3, depth=2)
        ch.send(make_packet(), cycle=10)
        assert list(ch.deliveries(12)) == []
        out = list(ch.deliveries(13))
        assert len(out) == 1 and out[0][1] == 0

    def test_credits_bound_inflight(self):
        ch = PipelinedChannel(latency=2, depth=2)
        ch.send(make_packet(0), 0)
        ch.send(make_packet(1), 0)
        assert not ch.can_send()
        with pytest.raises(OverflowError):
            ch.send(make_packet(2), 0)

    def test_credit_return_matures_after_latency(self):
        ch = PipelinedChannel(latency=2, depth=1)
        ch.send(make_packet(), 0)
        assert not ch.can_send()
        ch.credit_return(cycle=3)
        list(ch.deliveries(4))
        assert not ch.can_send()
        list(ch.deliveries(5))  # credit matures at 3 + 2
        assert ch.can_send()

    def test_per_lane_credits(self):
        ch = PipelinedChannel(latency=1, depth=1, num_lanes=2)
        ch.send(make_packet(), 0, lane=0)
        assert not ch.can_send(0)
        assert ch.can_send(1)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            PipelinedChannel(latency=0, depth=2)


class TestPipelinedNetwork:
    def test_zero_load_latency_scales_with_channel_latency(self):
        base = NetworkConfig.from_name("mesh", 8, 8)
        piped = NetworkConfig.from_name("mesh", 8, 8, channel_latency=2)
        lat1 = run_synthetic(base, "uniform_random", 0.02,
                             warmup=100, measure=300).avg_latency
        lat2 = run_synthetic(piped, "uniform_random", 0.02,
                             warmup=100, measure=300).avg_latency
        assert lat2 == pytest.approx(2 * lat1, rel=0.1)

    def test_credit_return_limits_shallow_fifos(self):
        """The paper's Section 3.2 rule: FIFO capacity must grow with the
        credit round trip or throughput collapses."""

        def sat(depth):
            cfg = NetworkConfig.from_name(
                "mesh", 8, 8, channel_latency=2, fifo_depth=depth
            )
            return run_synthetic(cfg, "uniform_random", 0.6,
                                 warmup=200, measure=400,
                                 drain_limit=0).accepted_throughput

        assert sat(4) > 1.5 * sat(2)

    def test_conservation_with_pipelined_channels(self):
        cfg = NetworkConfig.from_name(
            "ruche2-depop", 8, 8, channel_latency=2, fifo_depth=4
        )
        net = Network(cfg)
        rng = derive_rng(7, "pipe")
        nodes = net.topology.nodes
        for _ in range(200):
            net.inject(nodes[rng.randrange(64)], nodes[rng.randrange(64)],
                       measured=True)
        assert net.drain(5000)
        assert net.metrics.measured.count == 200

    def test_slow_ruche_links_only(self):
        """Long Ruche wires can be pipelined independently of the locals."""
        cfg = NetworkConfig.from_name(
            "ruche3-pop", 9, 9, ruche_channel_latency=2, fifo_depth=4
        )
        assert cfg.latency_for(Direction.RE) == 2
        assert cfg.latency_for(Direction.E) == 1
        net = Network(cfg)
        net.inject(Coord(0, 0), Coord(6, 0), measured=True)
        assert net.drain(100)
        # RE,RE ride 2-cycle channels: 2*2 hops-latency = 4 total.
        assert net.metrics.measured.mean == 4

    def test_vc_network_with_pipelined_channels(self):
        cfg = NetworkConfig.from_name(
            "torus", 8, 8, channel_latency=2, fifo_depth=4
        )
        r = run_synthetic(cfg, "uniform_random", 0.15,
                          warmup=200, measure=400, drain_limit=3000)
        assert r.drained

    def test_invalid_latency_rejected(self):
        with pytest.raises(ConfigError):
            NetworkConfig.from_name("mesh", 8, 8, channel_latency=0)


class TestFbfc:
    def test_name_round_trip(self):
        cfg = NetworkConfig.from_name("torus-fbfc", 8, 8)
        assert cfg.fbfc and not cfg.uses_vcs
        assert cfg.name == "torus-fbfc"
        cfg2 = NetworkConfig.from_name("half-torus-fbfc", 16, 8)
        assert cfg2.name == "half-torus-fbfc"

    def test_fbfc_requires_torus(self):
        with pytest.raises(ConfigError):
            NetworkConfig.from_name("mesh", 8, 8, fbfc=True)

    def test_deadlock_freedom_under_saturation(self):
        """The FBFC bubble invariant must survive adversarial overload on
        both ring dimensions."""
        net = Network(NetworkConfig.from_name("torus-fbfc", 8, 8))
        rng = derive_rng(3, "fbfc")
        nodes = net.topology.nodes
        for _ in range(400):
            for node in nodes:
                if rng.random() < 0.5:
                    dest = Coord((node.x + 3) % 8, (node.y + 3) % 8)
                    net.inject(node, dest)
            net.step()
        assert net.drain(60000)

    def test_conservation(self):
        net = Network(NetworkConfig.from_name("torus-fbfc", 6, 6))
        rng = derive_rng(9, "fbfc2")
        nodes = net.topology.nodes
        for _ in range(300):
            net.inject(nodes[rng.randrange(36)], nodes[rng.randrange(36)],
                       measured=True)
        assert net.drain(8000)
        assert net.metrics.measured.count == 300

    def test_fbfc_saves_vc_area(self):
        from repro.phys.area import router_area

        vc = router_area(NetworkConfig.from_name("torus", 8, 8))
        fbfc = router_area(NetworkConfig.from_name("torus-fbfc", 8, 8))
        assert fbfc.total < 0.6 * vc.total
        assert fbfc.control_label == "Arbiter"

    def test_fbfc_cycle_time_matches_wormhole(self):
        from repro.phys.timing import min_cycle_time_fo4

        fbfc = min_cycle_time_fo4(NetworkConfig.from_name("torus-fbfc", 8, 8))
        vc = min_cycle_time_fo4(NetworkConfig.from_name("torus", 8, 8))
        assert fbfc < 0.7 * vc

    def test_injection_restricted_when_one_slot_free(self):
        """A ring-entry move needs two free slots downstream."""
        from repro.sim.router import FbfcRouter

        net = Network(NetworkConfig.from_name("torus-fbfc", 6, 6))
        router = net.routers[Coord(0, 0)]
        assert isinstance(router, FbfcRouter)
        needs = router._entry_need[int(Direction.E)]
        assert needs[int(Direction.P)] == 2  # injection into the X ring
        assert needs[int(Direction.W)] == 1  # through traffic
