"""Traffic pattern tests."""

import pytest

from repro.core.coords import Coord
from repro.core.params import NetworkConfig
from repro.errors import ConfigError
from repro.sim.rng import derive_rng
from repro.sim.traffic import make_pattern, pattern_names


CFG = NetworkConfig.from_name("mesh", 8, 8)
RNG = derive_rng(1, "traffic")


class TestUniformRandom:
    def test_never_self(self):
        pat = make_pattern("uniform_random", CFG)
        for _ in range(500):
            src = Coord(3, 3)
            assert pat(src, RNG) != src

    def test_covers_whole_array(self):
        pat = make_pattern("uniform_random", CFG)
        dests = {pat(Coord(0, 0), RNG) for _ in range(2000)}
        assert len(dests) == 63  # everything except the source


class TestBitComplement:
    def test_mirrors_both_axes(self):
        pat = make_pattern("bit_complement", CFG)
        assert pat(Coord(0, 0), RNG) == Coord(7, 7)
        assert pat(Coord(2, 5), RNG) == Coord(5, 2)

    def test_is_an_involution(self):
        pat = make_pattern("bit_complement", CFG)
        for src in (Coord(1, 6), Coord(4, 0)):
            assert pat(pat(src, RNG), RNG) == src

    def test_odd_array_center_does_not_inject(self):
        cfg = NetworkConfig.from_name("mesh", 7, 7)
        pat = make_pattern("bit_complement", cfg)
        assert pat(Coord(3, 3), RNG) is None


class TestTranspose:
    def test_swaps_coordinates(self):
        pat = make_pattern("transpose", CFG)
        assert pat(Coord(2, 5), RNG) == Coord(5, 2)

    def test_diagonal_does_not_inject(self):
        pat = make_pattern("transpose", CFG)
        assert pat(Coord(4, 4), RNG) is None

    def test_requires_square_array(self):
        with pytest.raises(ConfigError):
            make_pattern("transpose", NetworkConfig.from_name("mesh", 16, 8))


class TestTornado:
    def test_halfway_offset(self):
        pat = make_pattern("tornado", CFG)
        # ceil(8/2) - 1 = 3 in both dimensions.
        assert pat(Coord(0, 0), RNG) == Coord(3, 3)
        assert pat(Coord(6, 7), RNG) == Coord(1, 2)

    def test_wraps_modularly(self):
        pat = make_pattern("tornado", CFG)
        assert pat(Coord(7, 7), RNG) == Coord(2, 2)


class TestTileToMemory:
    def test_requires_edge_memory(self):
        with pytest.raises(ConfigError):
            make_pattern("tile_to_memory", CFG)

    def test_targets_only_memory_rows(self):
        cfg = NetworkConfig.from_name("mesh", 16, 8, edge_memory=True)
        pat = make_pattern("tile_to_memory", cfg)
        rng = derive_rng(2, "mem")
        dests = {pat(Coord(5, 3), rng) for _ in range(500)}
        assert all(d.y in (-1, 8) for d in dests)
        # Both edges are used.
        assert any(d.y == -1 for d in dests)
        assert any(d.y == 8 for d in dests)


class TestMisc:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigError):
            make_pattern("butterfly", CFG)

    def test_neighbor_stays_adjacent(self):
        pat = make_pattern("neighbor", CFG)
        rng = derive_rng(3, "n")
        for _ in range(100):
            d = pat(Coord(0, 0), rng)
            assert Coord(0, 0).manhattan(d) == 1

    def test_hotspot_concentrates_traffic(self):
        pat = make_pattern("hotspot", CFG)
        rng = derive_rng(4, "h")
        hot = Coord(4, 4)
        hits = sum(1 for _ in range(2000) if pat(Coord(0, 0), rng) == hot)
        assert hits > 300  # ~20% plus the uniform share

    def test_pattern_names_enumerates_all(self):
        for name in pattern_names():
            cfg = (
                NetworkConfig.from_name("mesh", 8, 8, edge_memory=True)
                if name == "tile_to_memory"
                else CFG
            )
            assert make_pattern(name, cfg) is not None
