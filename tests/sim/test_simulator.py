"""Tests for the synthetic-traffic harness and its measurement semantics."""

import math

import pytest

from repro.core.params import NetworkConfig
from repro.sim.metrics import LatencyStats
from repro.sim.simulator import (
    average_hops_by_direction,
    run_synthetic,
    sweep_injection_rates,
    zero_load_latency,
)


class TestLatencyStats:
    def test_streaming_moments(self):
        s = LatencyStats()
        for v in (2, 4, 6):
            s.add(v)
        assert s.mean == 4
        assert s.min == 2 and s.max == 6
        assert math.isclose(s.stddev, math.sqrt(8 / 3))

    def test_percentiles_require_samples(self):
        s = LatencyStats()
        s.add(1)
        with pytest.raises(ValueError):
            s.percentile(0.5)
        s2 = LatencyStats(keep_samples=True)
        for v in range(100):
            s2.add(v)
        assert s2.percentile(0.99) >= 98

    def test_merge(self):
        a, b = LatencyStats(), LatencyStats()
        a.add(1)
        b.add(9)
        a.merge(b)
        assert a.count == 2 and a.max == 9 and a.min == 1

    def test_percentile_nearest_rank(self):
        s = LatencyStats(keep_samples=True)
        for v in (10, 20, 30, 40):
            s.add(v)
        # Nearest rank: smallest sample covering >= q of the mass.
        assert s.percentile(0.25) == 10
        assert s.percentile(0.50) == 20
        assert s.percentile(0.75) == 30
        assert s.percentile(1.00) == 40

    def test_p999_on_short_runs_is_the_maximum(self):
        # Fewer than 1000 samples: p999 must be the max, not an
        # arbitrary interior sample from index truncation.
        s = LatencyStats(keep_samples=True)
        for v in range(50):
            s.add(v)
        assert s.percentile(0.999) == 49
        one = LatencyStats(keep_samples=True)
        one.add(7)
        assert one.percentile(0.999) == 7
        assert one.percentile(0.5) == 7

    def test_percentile_of_empty_is_nan(self):
        s = LatencyStats(keep_samples=True)
        assert math.isnan(s.percentile(0.5))


class TestTailAndFairness:
    def test_fairness_stats_math(self):
        from repro.sim.metrics import fairness_stats

        stats = fairness_stats({"a": 10.0, "b": 20.0, "c": 30.0})
        assert stats["fairness_max_over_mean"] == pytest.approx(1.5)
        assert stats["fairness_cv"] == pytest.approx(
            math.sqrt(200 / 3) / 20
        )

    def test_fairness_stats_of_nothing_is_nan(self):
        from repro.sim.metrics import fairness_stats

        for sources in ({}, {"a": float("nan")}):
            stats = fairness_stats(sources)
            assert math.isnan(stats["fairness_max_over_mean"])
            assert math.isnan(stats["fairness_cv"])

    def test_tail_latency_stats_from_a_run(self):
        from repro.core.spec import NetworkSpec, build_run
        from repro.sim.metrics import tail_latency_stats

        spec = NetworkSpec.for_network(
            "mesh", 8, 8, pattern="uniform_random", rate=0.10,
            warmup=100, measure=300, drain_limit=2000, seed=3,
            engine="compiled",
        )
        result = build_run(
            spec, track_per_source=True, keep_samples=True
        )
        tail = tail_latency_stats(result.metrics)
        assert set(tail) == {
            "p50_latency", "p99_latency", "p999_latency",
            "fairness_max_over_mean", "fairness_cv",
        }
        assert (
            tail["p50_latency"]
            <= tail["p99_latency"]
            <= tail["p999_latency"]
        )
        assert tail["fairness_max_over_mean"] >= 1.0

    def test_tail_latency_stats_without_per_source(self):
        from repro.sim.metrics import RunMetrics, tail_latency_stats

        metrics = RunMetrics(keep_samples=True)
        metrics.measured.add(5)
        tail = tail_latency_stats(metrics)
        assert "fairness_cv" not in tail
        assert tail["p50_latency"] == 5.0


class TestRunSynthetic:
    def test_low_load_accepted_matches_offered(self):
        cfg = NetworkConfig.from_name("mesh", 8, 8)
        r = run_synthetic(cfg, "uniform_random", 0.05,
                          warmup=200, measure=600, drain_limit=2000)
        assert r.drained
        assert abs(r.accepted_throughput - 0.05) < 0.01

    def test_low_load_latency_matches_zero_load(self):
        cfg = NetworkConfig.from_name("mesh", 8, 8)
        r = run_synthetic(cfg, "uniform_random", 0.02,
                          warmup=200, measure=600)
        zl = zero_load_latency(cfg, samples=2000)
        assert abs(r.avg_latency - zl) < 0.8

    def test_oversaturation_reports_undrained(self):
        cfg = NetworkConfig.from_name("mesh", 8, 8)
        r = run_synthetic(cfg, "uniform_random", 0.9,
                          warmup=100, measure=300, drain_limit=100)
        assert r.saturated
        assert r.accepted_throughput < 0.9

    def test_deterministic_given_seed(self):
        cfg = NetworkConfig.from_name("ruche2-depop", 8, 8)
        a = run_synthetic(cfg, "uniform_random", 0.1, warmup=100,
                          measure=200, seed=42)
        b = run_synthetic(cfg, "uniform_random", 0.1, warmup=100,
                          measure=200, seed=42)
        assert a.avg_latency == b.avg_latency
        assert a.delivered_measured == b.delivered_measured

    def test_different_seeds_differ(self):
        cfg = NetworkConfig.from_name("mesh", 8, 8)
        a = run_synthetic(cfg, "uniform_random", 0.1, warmup=100,
                          measure=200, seed=1)
        b = run_synthetic(cfg, "uniform_random", 0.1, warmup=100,
                          measure=200, seed=2)
        assert a.delivered_measured != b.delivered_measured

    def test_per_source_tracking(self):
        cfg = NetworkConfig.from_name("mesh", 6, 6)
        r = run_synthetic(cfg, "uniform_random", 0.05, warmup=100,
                          measure=500, track_per_source=True)
        means = r.metrics.per_source_means()
        assert len(means) == 36
        # Corner tiles see longer average paths than the center.
        from repro.core.coords import Coord
        assert means[Coord(0, 0)] > means[Coord(3, 3)]


class TestSweep:
    def test_latency_monotone_under_load(self):
        cfg = NetworkConfig.from_name("mesh", 8, 8)
        curve = sweep_injection_rates(
            cfg, "uniform_random", [0.02, 0.1, 0.2],
            warmup=150, measure=400, drain_limit=1500,
        )
        lats = [p.avg_latency for p in curve]
        assert lats[0] < lats[1] < lats[2]

    def test_stop_when_saturated(self):
        cfg = NetworkConfig.from_name("mesh", 8, 8)
        curve = sweep_injection_rates(
            cfg, "uniform_random", [0.02, 0.8, 0.9],
            warmup=100, measure=200, drain_limit=50,
            stop_when_saturated=True,
        )
        assert len(curve) == 2
        assert curve[-1].saturated


class TestZeroLoad:
    def test_mesh_16x16_uniform_is_about_ten_point_six(self):
        """Figure 8 anchor: 2-D mesh 16x16 UR mean latency ~= 10.6."""
        cfg = NetworkConfig.from_name("mesh", 16, 16)
        zl = zero_load_latency(cfg, samples=4000)
        assert 10.1 < zl < 11.1

    def test_ruche_reduces_zero_load(self):
        mesh = zero_load_latency(NetworkConfig.from_name("mesh", 16, 16),
                                 samples=1500)
        r3 = zero_load_latency(
            NetworkConfig.from_name("ruche3-pop", 16, 16), samples=1500
        )
        assert r3 < 0.6 * mesh

    def test_direction_histogram_consistent(self):
        cfg = NetworkConfig.from_name("ruche2-pop", 8, 8)
        hops = average_hops_by_direction(cfg, samples=800)
        zl = zero_load_latency(cfg, samples=800)
        # Total per-direction hops (minus the P ejection) == hop count.
        from repro.core.coords import Direction
        total = sum(v for d, v in hops.items() if d != int(Direction.P))
        assert abs(total - zl) < 0.05


class TestSaturationAndDrain:
    def test_undrained_run_is_saturated_and_respects_drain_limit(self):
        cfg = NetworkConfig.from_name("mesh", 8, 8)
        warmup, measure, drain = 100, 300, 120
        r = run_synthetic(cfg, "uniform_random", 0.9,
                          warmup=warmup, measure=measure,
                          drain_limit=drain)
        assert r.saturated and not r.drained
        # The drain loop ran its full budget and then stopped.
        assert r.total_cycles == warmup + measure + drain
        assert r.delivered_measured < r.injected_measured

    def test_drained_run_stops_before_drain_limit(self):
        cfg = NetworkConfig.from_name("mesh", 8, 8)
        warmup, measure, drain = 100, 300, 5000
        r = run_synthetic(cfg, "uniform_random", 0.05,
                          warmup=warmup, measure=measure,
                          drain_limit=drain)
        assert r.drained
        assert warmup + measure <= r.total_cycles < warmup + measure + drain

    def test_zero_drain_limit_reports_undrained(self):
        cfg = NetworkConfig.from_name("mesh", 8, 8)
        r = run_synthetic(cfg, "uniform_random", 0.3,
                          warmup=50, measure=100, drain_limit=0)
        assert r.total_cycles == 150
        assert r.saturated


class TestMultiSeed:
    def test_multi_seed_run_deterministic(self):
        from repro.sim.simulator import multi_seed_run

        cfg = NetworkConfig.from_name("mesh", 8, 8)
        a = multi_seed_run(cfg, "uniform_random", 0.1,
                           seeds=(1, 2, 3), warmup=100, measure=200)
        b = multi_seed_run(cfg, "uniform_random", 0.1,
                           seeds=(1, 2, 3), warmup=100, measure=200)
        assert a == b
        assert a["seeds"] == 3

    def test_multi_seed_spread_nonnegative(self):
        from repro.sim.simulator import multi_seed_run

        cfg = NetworkConfig.from_name("mesh", 8, 8)
        stats = multi_seed_run(cfg, "uniform_random", 0.1,
                               seeds=(4, 5), warmup=100, measure=200)
        assert stats["latency_spread"] >= 0
        assert stats["throughput_spread"] >= 0
