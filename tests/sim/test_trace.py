"""Trace capture/replay: format round-trip, validation, engine parity.

The contract under test is the tentpole of the trace engine: a trace
written to disk loads back identically, a replay of it is bit-identical
across the reference engine, the compiled serial engine, and the
compiled batch engine, and any damaged file is rejected with an error
naming the file and the violated invariant.
"""

import dataclasses
import random
from array import array

import pytest

from repro.core.coords import Coord
from repro.core.spec import build_run
from repro.errors import ConfigError
from repro.sim.trace import (
    Trace,
    TraceError,
    TraceRecorder,
    load_trace,
    replay_spec,
    write_trace,
)


def synthetic_trace(
    width=8, height=8, duration=120, rate=0.35, seed=3,
    topology="mesh", options=None,
):
    """A deterministic random trace (uniform destinations)."""
    rng = random.Random(seed)
    n = width * height
    rows = []
    for cycle in range(duration):
        for src in range(n):
            if rng.random() >= rate:
                continue
            dest = rng.randrange(n)
            while dest == src:
                dest = rng.randrange(n)
            rows.append((cycle, src, dest, 1))
    rows.sort(key=lambda r: (r[0], r[1]))
    return Trace(
        topology=topology,
        width=width,
        height=height,
        duration=duration,
        options=dict(options or {}),
        provenance={"generator": "test", "seed": seed},
        cycles=array("i", (r[0] for r in rows)),
        srcs=array("i", (r[1] for r in rows)),
        dests=array("i", (r[2] for r in rows)),
        sizes=array("i", (r[3] for r in rows)),
    )


def fingerprint(result):
    """Everything a run reports except the engine label."""
    d = dataclasses.asdict(result)
    d.pop("metrics", None)
    d.pop("engine", None)
    m = result.metrics
    lat = m.measured
    return (
        tuple(sorted(d.items())),
        lat.count, lat.total, lat.total_sq, lat.min, lat.max,
        tuple(m.hop_counts),
        m.delivered_total, m.injected_total, m.dropped_total,
    )


@pytest.fixture()
def trace_file(tmp_path):
    tr = synthetic_trace()
    path = str(tmp_path / "t.noctrace")
    write_trace(tr, path)
    return path


class TestRoundTrip:
    def test_load_returns_identical_records(self, tmp_path):
        tr = synthetic_trace()
        path = str(tmp_path / "rt.noctrace")
        tr.write(path)
        back = load_trace(path)
        assert back.topology == tr.topology
        assert (back.width, back.height) == (tr.width, tr.height)
        assert back.duration == tr.duration
        assert back.cycles == tr.cycles
        assert back.srcs == tr.srcs
        assert back.dests == tr.dests
        assert back.sizes == tr.sizes
        assert back.provenance == tr.provenance
        assert back.source_key is not None

    def test_serialization_is_deterministic(self, tmp_path):
        a = synthetic_trace().to_bytes()
        b = synthetic_trace().to_bytes()
        assert a == b

    def test_load_is_cached_per_stat_signature(self, trace_file):
        assert load_trace(trace_file) is load_trace(trace_file)


class TestReplayParity:
    @pytest.mark.parametrize(
        "topology,options",
        [
            ("mesh", {}),
            ("torus", {}),
            ("half-torus", {}),
            ("ruche2-depop", {"half": True}),
        ],
    )
    def test_replay_bit_identical_across_engines(
        self, tmp_path, topology, options
    ):
        tr = synthetic_trace(topology=topology, options=options)
        path = str(tmp_path / "p.noctrace")
        tr.write(path)
        results = {
            engine: build_run(replay_spec(path, engine=engine))
            for engine in ("reference", "compiled")
        }
        assert results["reference"].engine == "reference"
        assert results["compiled"].engine == "compiled"
        assert fingerprint(results["reference"]) == fingerprint(
            results["compiled"]
        )
        # Every trace record was injected: the replay is exhaustive.
        assert (
            results["compiled"].metrics.injected_total == tr.records
        )

    def test_batched_replay_matches_serial(self, trace_file):
        from repro.sim.fastsim import run_compiled_batch

        spec = replay_spec(trace_file, engine="compiled")
        serial = build_run(spec)
        (batched,) = run_compiled_batch([spec])
        assert not isinstance(batched, Exception)
        assert batched.engine == "compiled-batch"
        assert fingerprint(batched) == fingerprint(serial)

    def test_batching_requires_full_rate(self, trace_file):
        from repro.sim.fastsim import batching_problems

        spec = replay_spec(trace_file, engine="compiled")
        assert batching_problems(spec) == []
        slow = dataclasses.replace(spec, rate=0.5)
        codes = [p.code for p in batching_problems(slow)]
        assert "trace-rate" in codes

    def test_replay_rejects_wrong_geometry(self, trace_file):
        from repro.core.params import NetworkConfig
        from repro.sim.trace import replay_pattern

        config = NetworkConfig.from_name("mesh", 4, 4)
        with pytest.raises(TraceError, match="8x8"):
            replay_pattern(config, trace_file)

    def test_pattern_requires_argument(self):
        from repro.core.params import NetworkConfig
        from repro.sim.traffic import make_pattern

        config = NetworkConfig.from_name("mesh", 8, 8)
        with pytest.raises(TraceError, match="trace_replay:<path>"):
            make_pattern("trace_replay", config)


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="cannot stat"):
            load_trace(str(tmp_path / "absent.noctrace"))

    def test_bad_magic(self, tmp_path, trace_file):
        blob = bytearray(open(trace_file, "rb").read())
        blob[:4] = b"XXXX"
        bad = tmp_path / "magic.noctrace"
        bad.write_bytes(bytes(blob))
        with pytest.raises(TraceError, match="magic"):
            load_trace(str(bad))

    def test_truncated_payload(self, tmp_path, trace_file):
        blob = open(trace_file, "rb").read()
        bad = tmp_path / "short.noctrace"
        bad.write_bytes(blob[:-7])
        with pytest.raises(TraceError, match="short.noctrace"):
            load_trace(str(bad))

    def test_corrupt_payload_fails_checksum(self, tmp_path, trace_file):
        blob = bytearray(open(trace_file, "rb").read())
        blob[-3] ^= 0xFF
        bad = tmp_path / "flip.noctrace"
        bad.write_bytes(bytes(blob))
        with pytest.raises(TraceError, match="sha256"):
            load_trace(str(bad))

    def test_trace_error_is_config_error(self):
        # Campaign/driver error handling catches ConfigError.
        assert issubclass(TraceError, ConfigError)

    def test_out_of_range_destination(self, tmp_path):
        tr = synthetic_trace(width=4, height=4, duration=10)
        tr.dests[0] = 99
        bad = tmp_path / "range.noctrace"
        tr.write(str(bad))
        with pytest.raises(TraceError):
            load_trace(str(bad))


class TestRecorder:
    def test_memory_endpoints_clamp_to_edge_tiles(self):
        rec = TraceRecorder()
        rec.record("fwd", 0, Coord(2, 1), Coord(3, -1))
        rec.record("fwd", 1, Coord(2, 1), Coord(3, 4))
        traces = rec.finalize(
            width=4, height=4, duration=2,
            networks={"fwd": ("mesh", {})},
        )
        tr = traces["fwd"]
        assert list(tr.dests) == [
            tr.node_id(Coord(3, 0)),
            tr.node_id(Coord(3, 3)),
        ]

    def test_self_addressed_after_clamp_is_dropped(self):
        rec = TraceRecorder()
        rec.record("fwd", 0, Coord(3, 0), Coord(3, -1))
        traces = rec.finalize(
            width=4, height=4, duration=1,
            networks={"fwd": ("mesh", {})},
        )
        assert traces["fwd"].records == 0

    def test_same_cycle_collision_spills_forward(self):
        rec = TraceRecorder()
        rec.record("fwd", 5, Coord(0, 0), Coord(1, 0))
        rec.record("fwd", 5, Coord(0, 0), Coord(2, 0))
        traces = rec.finalize(
            width=4, height=4, duration=6,
            networks={"fwd": ("mesh", {})},
        )
        tr = traces["fwd"]
        assert list(tr.cycles) == [5, 6]
        # Spilling past the end extends the replay window.
        assert tr.duration == 7

    def test_finalized_traces_satisfy_the_parser(self, tmp_path):
        rec = TraceRecorder()
        rng = random.Random(7)
        for cycle in range(40):
            for src in range(8):
                if rng.random() < 0.4:
                    rec.record(
                        "fwd", cycle,
                        Coord(src % 4, src // 4),
                        Coord(rng.randrange(4), rng.randrange(-1, 3)),
                    )
        traces = rec.finalize(
            width=4, height=2, duration=40,
            networks={"fwd": ("mesh", {})},
            provenance={"origin": "unit"},
        )
        path = str(tmp_path / "rec.noctrace")
        traces["fwd"].write(path)
        back = load_trace(path)
        assert back.provenance["origin"] == "unit"
        assert back.records == traces["fwd"].records
