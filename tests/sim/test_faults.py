"""Tests for fault injection, fault-aware routing, and the watchdog."""

import pytest

from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig
from repro.core.routing import make_fault_aware_routing
from repro.errors import ConfigError, DeadlockError, SimulationTimeout
from repro.sim.faults import FaultSchedule, TransientLinkFault
from repro.sim.simulator import run_synthetic
from repro.sim.watchdog import WatchdogConfig


def mesh8():
    return NetworkConfig.from_name("mesh", 8, 8)


class TestFaultSchedule:
    def test_dead_link_kills_both_directions(self):
        cfg = mesh8()
        sched = FaultSchedule(
            cfg, dead_links=[(Coord(2, 2), Direction.E)]
        )
        assert (Coord(2, 2), Direction.E) in sched.killed_channels
        assert (Coord(3, 2), Direction.W) in sched.killed_channels
        assert sched.affects_routing and sched.has_faults

    def test_nonexistent_link_rejected(self):
        cfg = mesh8()
        with pytest.raises(ConfigError):
            FaultSchedule(cfg, dead_links=[(Coord(7, 7), Direction.E)])

    def test_random_dead_links_deterministic(self):
        cfg = mesh8()
        a = FaultSchedule.random_dead_links(cfg, 4, seed=5)
        b = FaultSchedule.random_dead_links(cfg, 4, seed=5)
        assert a.dead_links == b.dead_links
        c = FaultSchedule.random_dead_links(cfg, 4, seed=6)
        assert a.dead_links != c.dead_links

    def test_dead_router_kills_adjacent_channels(self):
        cfg = mesh8()
        sched = FaultSchedule(cfg, dead_routers=[Coord(3, 3)])
        assert (Coord(3, 3), Direction.E) in sched.killed_channels
        assert (Coord(2, 3), Direction.E) in sched.killed_channels

    def test_vc_topologies_rejected_at_network(self):
        from repro.sim.network import Network

        cfg = NetworkConfig.from_name("torus", 8, 8)
        sched = FaultSchedule(
            cfg, dead_links=[(Coord(2, 2), Direction.E)]
        )
        with pytest.raises(ConfigError):
            Network(cfg, faults=sched)


class TestFaultAwareRouting:
    def test_healthy_tables_match_dor_hop_counts(self):
        from repro.core.routing import make_routing

        cfg = mesh8()
        table = make_fault_aware_routing(cfg)
        dor = make_routing(cfg)
        nodes = [Coord(x, y) for x in range(8) for y in range(8)]
        for src in nodes[::5]:
            for dest in nodes[::7]:
                if src == dest:
                    continue
                assert table.hop_count(src, dest) == dor.hop_count(
                    src, dest
                )

    def test_detour_avoids_dead_link(self):
        cfg = mesh8()
        dead = (Coord(3, 3), Direction.E)
        routing = make_fault_aware_routing(cfg, dead_links=[dead])
        path = routing.compute_path(Coord(0, 3), Coord(7, 3))
        assert dead not in path
        assert (Coord(4, 3), Direction.W) not in path
        assert routing.partitioned_pairs() == []

    def test_corner_cut_off_is_partitioned(self):
        cfg = mesh8()
        routing = make_fault_aware_routing(
            cfg,
            dead_links=[
                (Coord(0, 0), Direction.E),
                (Coord(0, 0), Direction.S),
            ],
        )
        pairs = routing.partitioned_pairs()
        assert len(pairs) == 2 * 63
        assert not routing.reachable(Coord(0, 0), Coord(1, 1))

    def test_dead_router_unreachable_but_rest_connected(self):
        cfg = mesh8()
        routing = make_fault_aware_routing(cfg, dead_nodes=[Coord(4, 4)])
        assert not routing.reachable(Coord(0, 0), Coord(4, 4))
        assert routing.partitioned_pairs() == []


class TestFaultedRuns:
    def test_zero_fault_schedule_is_bit_identical(self):
        cfg = mesh8()
        sched = FaultSchedule.random_dead_links(cfg, 0, seed=3)
        plain = run_synthetic(cfg, "uniform_random", 0.1,
                              warmup=100, measure=200, seed=9)
        faulted = run_synthetic(cfg, "uniform_random", 0.1,
                                warmup=100, measure=200, seed=9,
                                faults=sched)
        assert plain.avg_latency == faulted.avg_latency
        assert plain.delivered_measured == faulted.delivered_measured

    def test_dead_links_carry_no_traffic(self):
        cfg = mesh8()
        sched = FaultSchedule.random_dead_links(cfg, 4, seed=1)
        r = run_synthetic(cfg, "uniform_random", 0.1,
                          warmup=100, measure=300, seed=2,
                          faults=sched, track_links=True)
        assert r.drained
        for link in sched.killed_channels:
            assert r.metrics.link_counts.get(link, 0) == 0

    def test_dead_router_run_drains(self):
        cfg = mesh8()
        sched = FaultSchedule.random_dead_routers(cfg, 2, seed=4)
        r = run_synthetic(cfg, "uniform_random", 0.08,
                          warmup=100, measure=300, seed=2, faults=sched)
        assert r.drained
        assert r.delivered_measured > 0

    def test_transient_faults_drop_and_still_drain(self):
        cfg = mesh8()
        fault = TransientLinkFault(Coord(3, 3), Direction.E, drop_prob=1.0)
        sched = FaultSchedule(cfg, transient=[fault])
        r = run_synthetic(cfg, "uniform_random", 0.1,
                          warmup=100, measure=300, seed=2, faults=sched)
        assert r.drained
        assert r.dropped_measured > 0

    def test_degraded_model_flag_forces_table_routing(self):
        from repro.core.routing import FaultAwareTableRouting
        from repro.sim.network import Network

        cfg = NetworkConfig.from_name("ruche2-depop", 8, 8)
        sched = FaultSchedule.random_dead_links(
            cfg, 0, seed=0, degraded_model=True
        )
        assert sched.affects_routing and not sched.has_faults
        net = Network(cfg, faults=sched)
        assert isinstance(net.routing, FaultAwareTableRouting)

    def test_max_cycles_budget_raises_timeout(self):
        cfg = mesh8()
        with pytest.raises(SimulationTimeout):
            run_synthetic(cfg, "uniform_random", 0.05,
                          warmup=100, measure=200, max_cycles=50)

    def test_audit_every_passes_on_healthy_run(self):
        cfg = mesh8()
        r = run_synthetic(cfg, "uniform_random", 0.1,
                          warmup=50, measure=100, audit_every=25)
        assert r.drained


class TestWatchdog:
    # 6 dead links at rate 0.8 reliably wedges the detoured mesh: the
    # BFS tables use turns outside the DOR order, so a saturated load
    # closes a buffer-wait cycle the watchdog must catch.
    def test_routing_deadlock_raises_with_snapshot(self):
        cfg = mesh8()
        sched = FaultSchedule.random_dead_links(cfg, 6, seed=0)
        with pytest.raises(DeadlockError) as excinfo:
            run_synthetic(cfg, "uniform_random", 0.8,
                          warmup=2000, measure=2000, seed=1,
                          faults=sched,
                          watchdog=WatchdogConfig(stall_window=300))
        snap = excinfo.value.snapshot
        assert snap is not None
        assert snap.kind == "stall"
        assert snap.stalled_routers
        worst = snap.stalled_routers[0]
        assert worst.buffered > 0
        assert str(tuple(worst.coord)) in snap.summary()

    def test_watchdog_config_validation(self):
        with pytest.raises(ValueError):
            WatchdogConfig(stall_window=0)

    def test_healthy_saturated_run_does_not_trip(self):
        # Saturation is backpressure, not deadlock: packets keep moving.
        cfg = mesh8()
        r = run_synthetic(cfg, "uniform_random", 0.9,
                          warmup=100, measure=400, drain_limit=100,
                          watchdog=WatchdogConfig(stall_window=200))
        assert r.saturated
