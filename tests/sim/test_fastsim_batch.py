"""Batched execution: ``run_compiled_batch`` vs serial runs.

The batch contract extends the cross-engine contract of
``test_fastsim.py``: stacking N design points into one
structure-of-arrays arena and stepping them through the native block
kernel must be **bit-identical** to running each spec serially — same
metrics, same RNG trajectories, same watchdog trip messages — with
failures returned as data (one row's deadlock must not disturb its
batchmates) and unbatchable rows transparently run per-spec with honest
engine provenance.
"""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from property.settings import tiered_settings

from repro.core.spec import NetworkSpec, build_run
from repro.errors import DeadlockError, SimulationTimeout
from repro.sim import fastsim
from repro.sim.fastsim import batching_problems, run_compiled_batch


def fingerprint(result):
    """Every metric of a run, excluding provenance (``engine``).

    Same shape as ``test_fastsim.fingerprint`` (tests are not a package,
    so the helper is restated rather than imported).
    """
    fields = dataclasses.asdict(result)
    fields.pop("metrics")
    fields.pop("engine")
    measured = result.metrics.measured
    return (
        fields,
        measured.count,
        measured.total,
        measured.total_sq,
        measured.min,
        measured.max,
        tuple(result.metrics.hop_counts),
        result.metrics.delivered_total,
        result.metrics.injected_total,
        result.metrics.dropped_total,
        result.metrics.dropped_measured,
    )


def _spec(name, width, height, **overrides):
    base = dict(
        rate=0.1, warmup=30, measure=80, drain_limit=300, seed=3,
        engine="compiled",
    )
    base.update(overrides)
    return NetworkSpec.for_network(name, width, height, **base)


#: One design per router kind the batch arena must lay out correctly:
#: wormhole mesh, FBFC torus (depth-2 credits), dateline-VC torus, and a
#: Half Ruche point (route-table rows with ruche offsets).
_BATCH_DESIGNS = (
    ("mesh", {}),
    ("torus-fbfc", {}),
    ("torus", {}),
    ("ruche2-depop", {"half": True}),
)


class TestBatchEquivalence:
    def test_mixed_batch_bit_identical_to_serial(self):
        specs = [
            _spec(name, 8, 4, seed=5 + i, **options)
            for i, (name, options) in enumerate(_BATCH_DESIGNS)
        ]
        serial = [build_run(spec) for spec in specs]
        batched = run_compiled_batch(specs)
        for spec, ref, got in zip(specs, serial, batched):
            assert got.engine == "compiled-batch", spec.topology
            assert fingerprint(ref) == fingerprint(got), spec.topology

    def test_single_spec_batch(self):
        spec = _spec("torus", 8, 8)
        (result,) = run_compiled_batch([spec])
        assert result.engine == "compiled-batch"
        assert fingerprint(result) == fingerprint(build_run(spec))

    def test_trackers_and_samples_identical(self):
        spec = _spec("torus", 8, 4, rate=0.2, seed=9)
        kwargs = dict(
            track_per_source=True, keep_samples=True, track_links=True
        )
        ref = build_run(spec, **kwargs)
        (got,) = run_compiled_batch([spec], **kwargs)
        assert got.engine == "compiled-batch"
        # fingerprint() can't asdict Coord-keyed trackers; compare the
        # headline scalars plus every tracked structure explicitly.
        assert (ref.total_cycles, ref.avg_latency, ref.avg_hops) == (
            got.total_cycles, got.avg_latency, got.avg_hops
        )
        assert sorted(ref.metrics.link_counts.items()) == sorted(
            got.metrics.link_counts.items()
        )
        assert ref.metrics.measured._samples == got.metrics.measured._samples
        assert set(ref.metrics.per_source) == set(got.metrics.per_source)
        for key, rt in ref.metrics.per_source.items():
            gt = got.metrics.per_source[key]
            assert (rt.count, rt.total, rt.total_sq, rt.min, rt.max) == (
                gt.count, gt.total, gt.total_sq, gt.min, gt.max
            )

    def test_tiny_horizon_is_invisible(self):
        """Round-robin interleaving granularity must never leak into
        results — phase boundaries and watchdog windows are per-run."""
        specs = [_spec("mesh", 4, 4, seed=1), _spec("torus", 4, 4, seed=2)]
        coarse = run_compiled_batch(specs)
        fine = run_compiled_batch(specs, horizon=7)
        for a, b in zip(coarse, fine):
            assert fingerprint(a) == fingerprint(b)

    def test_unbatchable_rows_fall_back_with_provenance(self):
        """Mixed grids: batchable rows batch, the rest run per-spec on
        whatever engine their spec resolves to."""
        specs = [
            _spec("mesh", 4, 4),
            _spec("mesh", 4, 4, engine="reference"),
            _spec("mesh", 4, 4, engine=None),
            _spec("mesh", 4, 4, max_wall_seconds=60.0),
        ]
        results = run_compiled_batch(specs)
        engines = [r.engine for r in results]
        assert engines[0] == "compiled-batch"
        assert engines[1] == "reference"
        # Fallback rows resolve their spec's own engine choice.
        assert engines[2] != "compiled-batch"
        assert engines[3] == "compiled"
        for spec, got in zip(specs, results):
            assert fingerprint(got) == fingerprint(build_run(spec))

    @tiered_settings(10, deadline=None)
    @given(
        designs=st.lists(
            st.tuples(
                st.sampled_from(_BATCH_DESIGNS),
                st.integers(4, 8),
                st.integers(4, 6),
                st.sampled_from((0.05, 0.15, 0.3)),
                st.integers(0, 3),
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_property_batched_equals_serial(self, designs):
        specs = [
            _spec(name, width, height, rate=rate, seed=seed,
                  warmup=20, measure=60, drain_limit=200, **options)
            for (name, options), width, height, rate, seed in designs
        ]
        batched = run_compiled_batch(specs)
        for spec, got in zip(specs, batched):
            assert got.engine == "compiled-batch"
            assert fingerprint(got) == fingerprint(build_run(spec))


class TestBatchErrors:
    def test_timeout_is_data_with_serial_message(self):
        healthy = _spec("mesh", 4, 4)
        doomed = _spec("mesh", 8, 8, max_cycles=50)
        with pytest.raises(SimulationTimeout) as serial_exc:
            build_run(doomed)
        got_doomed, got_healthy = run_compiled_batch([doomed, healthy])
        assert isinstance(got_doomed, SimulationTimeout)
        assert str(got_doomed) == str(serial_exc.value)
        assert got_healthy.engine == "compiled-batch"
        assert fingerprint(got_healthy) == fingerprint(build_run(healthy))

    @pytest.mark.parametrize("name", ["mesh", "torus"])
    def test_watchdog_trip_message_matches_serial(self, name):
        """An aggressive starvation window trips identically — same
        cycle, same occupancy, same snapshot — batched or serial."""
        doomed = _spec(
            name, 8, 8, rate=0.5, warmup=200, measure=400,
            drain_limit=800, starvation_window=1,
        )
        with pytest.raises(DeadlockError) as serial_exc:
            build_run(doomed)
        (got,) = run_compiled_batch([doomed])
        assert isinstance(got, DeadlockError)
        assert str(got) == str(serial_exc.value)


class TestBatchingGate:
    def _codes(self, target, **kwargs):
        return [d.code for d in batching_problems(target, **kwargs)]

    def test_clean_compiled_spec_batches(self):
        assert batching_problems(_spec("torus", 8, 8)) == []

    def test_default_engine_is_not_batchable(self):
        codes = self._codes(_spec("mesh", 4, 4, engine=None))
        assert "engine-not-compiled" in codes

    def test_wall_clock_budget_rejected(self):
        codes = self._codes(_spec("mesh", 4, 4, max_wall_seconds=5.0))
        assert "wall-clock-budget" in codes

    def test_fault_schedule_rejected(self):
        spec = NetworkSpec.for_network(
            "mesh", 8, 8, rate=0.05, warmup=20, measure=50,
            drain_limit=200, engine="compiled",
            fault_transient=2, fault_drop_prob=0.01,
        )
        assert "fault-schedule" in self._codes(spec)

    def test_lowering_problems_subsumed(self):
        spec = _spec("mesh", 4, 4, audit_every=10)
        lowering = {
            d.code for d in fastsim.lowering_problems(spec)
        }
        assert lowering  # audit hooks don't lower
        assert lowering <= set(self._codes(spec))

    def test_missing_kernel_rejected(self, monkeypatch):
        monkeypatch.setattr(fastsim._ckernel, "get_kernel", lambda: None)
        fastsim.clear_compile_caches()
        try:
            codes = self._codes(_spec("mesh", 4, 4))
            assert codes == ["no-native-kernel"]
        finally:
            fastsim.clear_compile_caches()

    def test_gate_rejections_still_produce_rows(self):
        """Every gate code falls back inside run_compiled_batch; the
        caller always gets a result per spec."""
        specs = [
            _spec("mesh", 4, 4, audit_every=10),
            _spec("mesh", 4, 4, max_wall_seconds=30.0),
        ]
        results = run_compiled_batch(specs)
        for spec, got in zip(specs, results):
            assert fingerprint(got) == fingerprint(build_run(spec))


class TestVcKernelSerial:
    """The serial dateline-VC C kernel vs its pure-Python spec."""

    def test_c_vc_path_matches_pure_python(self, monkeypatch):
        spec = _spec("torus", 8, 8, rate=0.2, seed=13)
        with_kernel = build_run(spec, track_links=True)
        fp_with = fingerprint(build_run(spec))
        monkeypatch.setattr(fastsim._ckernel, "get_kernel", lambda: None)
        fastsim.clear_compile_caches()
        without_kernel = build_run(spec, track_links=True)
        fp_without = fingerprint(build_run(spec))
        fastsim.clear_compile_caches()
        assert with_kernel.engine == without_kernel.engine == "compiled"
        assert fp_with == fp_without
        assert sorted(with_kernel.metrics.link_counts.items()) == sorted(
            without_kernel.metrics.link_counts.items()
        )


class TestCertifyBatchability:
    def test_certify_reports_batchable(self):
        from repro.verify.certify import certify_spec

        spec = _spec("torus", 8, 8)
        report = certify_spec(spec)
        assert report.batchable is True
        assert report.batching == []

    def test_certify_names_batch_exclusion(self):
        from repro.verify.certify import certify_spec

        spec = NetworkSpec.for_network(
            "mesh", 8, 8, rate=0.05, warmup=20, measure=50,
            drain_limit=200, engine="compiled",
            fault_transient=2, fault_drop_prob=0.01,
        )
        report = certify_spec(spec)
        assert report.batchable is False
        assert "fault-schedule" in [
            d["code"] for d in report.batching
        ]
        # Transient faults still *compile* serially — the batch gate is
        # strictly tighter than the lowering gate.
        assert report.compiles is True

    def test_report_dict_round_trips_batching_fields(self):
        from repro.verify.certify import certify_spec

        report = certify_spec(_spec("mesh", 4, 4))
        payload = dataclasses.asdict(report)
        assert payload["batchable"] is True
        assert payload["batching"] == []
