"""Cross-engine equivalence: the compiled engine vs the reference.

The contract (see ``docs/architecture.md``, "Simulation engines") is
bit-identity, not approximation: for every design point the compiled
engine either produces exactly the reference metrics or transparently
falls back to the reference engine.  These tests pin that contract on
the three canonical bench cases, on hypothesis-generated small specs
across all three router kinds, on the pure-Python fallback path (native
kernel disabled), and on the fault-injection fallback.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import CASES, _case_spec
from repro.core.params import NetworkConfig
from repro.core.registry import ENGINES
from repro.core.spec import NetworkSpec, build_run
from repro.sim import fastsim
from repro.sim.faults import FaultSchedule
from repro.sim.simulator import run_synthetic


def fingerprint(result):
    """Every metric of a run, excluding provenance (``engine``)."""
    fields = dataclasses.asdict(result)
    fields.pop("metrics")
    fields.pop("engine")
    measured = result.metrics.measured
    return (
        fields,
        measured.count,
        measured.total,
        measured.total_sq,
        measured.min,
        measured.max,
        tuple(result.metrics.hop_counts),
        result.metrics.delivered_total,
        result.metrics.injected_total,
        result.metrics.dropped_total,
    )


def assert_engines_identical(spec):
    reference = build_run(spec.replace(engine="reference"))
    compiled = build_run(spec.replace(engine="compiled"))
    assert compiled.engine == "compiled", (
        f"{spec.topology} unexpectedly fell back to "
        f"{compiled.engine!r}"
    )
    assert fingerprint(reference) == fingerprint(compiled)
    return reference, compiled


class TestEngineRegistry:
    def test_both_engines_registered(self):
        assert "reference" in ENGINES
        assert "compiled" in ENGINES

    def test_unknown_engine_fails_with_menu(self):
        from repro.errors import ConfigError

        spec = NetworkSpec.for_network(
            "mesh", 4, 4, rate=0.1, warmup=10, measure=20,
            drain_limit=100, engine="warp",
        )
        with pytest.raises(ConfigError, match="known simulation engine"):
            build_run(spec)


class TestBenchCaseEquivalence:
    """Bit-identical fingerprints on the three canonical bench cases."""

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_bench_case_fingerprint(self, name):
        assert_engines_identical(_case_spec(name))


class TestFallbacks:
    def test_pure_python_path_matches_native_kernel(self, monkeypatch):
        """The scalar step loops are the kernel's executable spec."""
        spec = NetworkSpec.for_network(
            "ruche2-depop", 8, 8, half=True, rate=0.15,
            warmup=50, measure=100, drain_limit=300,
        )
        with_kernel = build_run(spec.replace(engine="compiled"))
        monkeypatch.setattr(fastsim._ckernel, "get_kernel", lambda: None)
        fastsim.clear_compile_caches()
        without_kernel = build_run(spec.replace(engine="compiled"))
        fastsim.clear_compile_caches()
        assert with_kernel.engine == without_kernel.engine == "compiled"
        assert fingerprint(with_kernel) == fingerprint(without_kernel)

    def test_fault_runs_fall_back_to_reference(self):
        config = NetworkConfig.from_name("mesh", 4, 4)
        schedule = FaultSchedule.random_dead_links(
            config, 1, seed=0, degraded_model=True
        )
        result = run_synthetic(
            config, "uniform_random", 0.05,
            warmup=20, measure=50, drain_limit=200, seed=3,
            faults=schedule, engine="compiled",
        )
        assert result.engine == "reference"

    def test_fault_fallback_matches_reference_metrics(self):
        config = NetworkConfig.from_name("ruche2-depop", 8, 8)
        schedule = FaultSchedule.random_dead_links(
            config, 2, seed=1, degraded_model=True
        )
        kwargs = dict(
            warmup=20, measure=50, drain_limit=200, seed=3,
            faults=schedule,
        )
        via_compiled = run_synthetic(
            config, "uniform_random", 0.05, engine="compiled", **kwargs
        )
        via_reference = run_synthetic(
            config, "uniform_random", 0.05, engine="reference", **kwargs
        )
        assert fingerprint(via_compiled) == fingerprint(via_reference)


#: (config name, max width, max height) combos legal at small sizes;
#: covers the wormhole, FBFC, and VC (dateline torus) router kinds.
_DESIGNS = (
    ("mesh", {}),
    ("multimesh", {}),
    ("torus", {}),
    ("torus-fbfc", {}),
    ("half-torus", {}),
    ("ruche2-depop", {}),
    ("ruche2-pop", {}),
    ("ruche2-depop", {"half": True}),
)


class TestPropertyEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        design=st.sampled_from(_DESIGNS),
        width=st.integers(4, 8),
        height=st.integers(4, 8),
        rate=st.sampled_from((0.05, 0.15, 0.3)),
        seed=st.integers(0, 3),
    )
    def test_random_small_specs_identical(
        self, design, width, height, rate, seed
    ):
        name, options = design
        spec = NetworkSpec.for_network(
            name, width, height, rate=rate, seed=seed,
            warmup=20, measure=60, drain_limit=200, **options,
        )
        reference, compiled = assert_engines_identical(spec)
        # The assertion above is full-fingerprint; spell out the
        # headline quantities the contract names.
        assert compiled.injected_measured == reference.injected_measured
        assert compiled.delivered_measured == reference.delivered_measured
        assert compiled.avg_latency == reference.avg_latency

    def test_p99_latency_identical_from_samples(self):
        spec = NetworkSpec.for_network(
            "torus", 8, 4, rate=0.2, warmup=30, measure=80,
            drain_limit=250, seed=11,
        )
        results = {
            engine: run_synthetic(
                spec, engine=engine, keep_samples=True
            )
            for engine in ("reference", "compiled")
        }
        assert results["compiled"].engine == "compiled"

        def p99(result):
            samples = sorted(result.metrics.measured._samples)
            assert samples
            return samples[(len(samples) * 99) // 100]

        assert p99(results["reference"]) == p99(results["compiled"])

    def test_trackers_identical(self):
        spec = NetworkSpec.for_network(
            "ruche2-depop", 8, 8, rate=0.15, warmup=30, measure=80,
            drain_limit=250, seed=7,
        )
        kwargs = dict(track_per_source=True, track_links=True)
        reference = run_synthetic(spec, engine="reference", **kwargs)
        compiled = run_synthetic(spec, engine="compiled", **kwargs)
        assert compiled.engine == "compiled"
        assert sorted(reference.metrics.link_counts.items()) == sorted(
            compiled.metrics.link_counts.items()
        )
        assert set(reference.metrics.per_source) == set(
            compiled.metrics.per_source
        )
        for key, ref_tracker in reference.metrics.per_source.items():
            comp_tracker = compiled.metrics.per_source[key]
            assert (
                ref_tracker.count,
                ref_tracker.total,
                ref_tracker.total_sq,
                ref_tracker.min,
                ref_tracker.max,
            ) == (
                comp_tracker.count,
                comp_tracker.total,
                comp_tracker.total_sq,
                comp_tracker.min,
                comp_tracker.max,
            )
